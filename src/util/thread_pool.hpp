// Reusable fixed-size worker pool for data-parallel simulation stages.
//
// The campaign engine fans per-VM work out across workers with
// parallel_for(n, fn): indices are claimed from a shared atomic counter,
// so scheduling is dynamic but the caller decides what order to *merge*
// results in — determinism lives in the merge, not the schedule. The
// calling thread participates as a worker, so thread_pool(1) spawns no
// threads and runs everything inline (the serial baseline), and a pool
// with concurrency c uses c-1 background threads.
//
// Exceptions thrown by fn are captured; the first one is rethrown on the
// calling thread after the batch drains (remaining indices are skipped).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace clasp {

// Cumulative scheduling counters, maintained with relaxed atomics so
// they are safe to read mid-batch. The pool deliberately has no obs
// dependency (obs sits above util); the campaign coordinator publishes
// these into the metrics registry at read time.
struct pool_stats {
  std::uint64_t batches{0};        // parallel_for invocations
  std::uint64_t tasks{0};          // indices claimed and run
  std::uint64_t busy_ns{0};        // summed per-thread drain time
  std::uint64_t wall_ns{0};        // summed caller-side batch wall time
  std::uint64_t last_batch_size{0};
  unsigned workers{1};             // pool concurrency (caller included)

  // busy time / (wall time × workers); 1.0 means every worker ran the
  // whole batch. 0 before the first batch.
  double utilization() const {
    if (wall_ns == 0 || workers == 0) return 0.0;
    return static_cast<double>(busy_ns) /
           (static_cast<double>(wall_ns) * static_cast<double>(workers));
  }
};

class thread_pool {
 public:
  // Total concurrency (caller included). 0 means hardware_concurrency().
  explicit thread_pool(unsigned concurrency = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  // Caller thread + background threads.
  unsigned concurrency() const {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  // Run fn(i) for every i in [0, n); blocks until all calls return.
  // Must be called from one coordinating thread at a time (not from
  // inside fn). Rethrows the first exception fn threw, if any.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // hardware_concurrency with a floor of 1.
  static unsigned default_concurrency();

  // Snapshot of the cumulative scheduling counters.
  pool_stats stats() const;

 private:
  // One parallel_for invocation: workers claim indices until exhausted.
  struct batch {
    std::size_t size{0};
    const std::function<void(std::size_t)>* fn{nullptr};
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // first failure; guarded by error_mu
    std::mutex error_mu;
  };

  // Claim-and-run loop shared by workers and the caller.
  void drain(batch& b);
  void worker_loop();

  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> stat_batches_{0};
  std::atomic<std::uint64_t> stat_tasks_{0};
  std::atomic<std::uint64_t> stat_busy_ns_{0};
  std::atomic<std::uint64_t> stat_wall_ns_{0};
  std::atomic<std::uint64_t> stat_last_batch_{0};
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a batch / stop
  std::condition_variable done_cv_;  // caller waits for batch completion
  std::shared_ptr<batch> batch_;     // non-null while a batch is live
  std::uint64_t generation_{0};      // bumped per batch so workers wake once
  bool stop_{false};
};

}  // namespace clasp

// Statistical primitives used by the analysis pipeline and the benches.
//
// The paper's analysis relies on order statistics (95th-percentile
// throughput, 5th-percentile latency, medians), empirical CDFs (Fig. 5),
// kernel-density estimates (Fig. 4 margins), an elbow-method threshold
// choice (Fig. 2), and — for the extension detector — autocorrelation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace clasp {

// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

// Unbiased sample standard deviation; 0 for fewer than two samples.
double sample_stddev(std::span<const double> xs);

// Linear-interpolated percentile, p in [0, 100]. Throws
// invalid_argument_error on an empty input or p outside [0, 100].
// Edge cases are exact: a single sample is returned for any p, p == 0
// returns the minimum and p == 100 the maximum (no interpolation
// round-off at the extremes).
double percentile(std::span<const double> xs, double p);

// Non-throwing variant for observability paths: returns `fallback` on
// empty input and clamps p into [0, 100].
double percentile_or(std::span<const double> xs, double p, double fallback);

// Convenience wrappers.
double median(std::span<const double> xs);

// One (x, F(x)) step of an empirical CDF.
struct cdf_point {
  double x{0.0};
  double cumulative_fraction{0.0};
};

// Empirical CDF evaluated at every distinct sample value (sorted).
std::vector<cdf_point> empirical_cdf(std::span<const double> xs);

// Fraction of samples <= x under the empirical CDF; 0 for empty input.
double cdf_at(std::span<const double> sorted_xs, double x);

// Gaussian kernel density estimate on an evaluation grid.
struct kde_point {
  double x{0.0};
  double density{0.0};
};

// Silverman's rule-of-thumb bandwidth; returns a positive fallback for
// degenerate (constant) samples.
double silverman_bandwidth(std::span<const double> xs);

// KDE over [lo, hi] with grid_points evaluation points. Throws on empty
// input or grid_points < 2.
std::vector<kde_point> gaussian_kde(std::span<const double> xs, double lo,
                                    double hi, std::size_t grid_points);

// Elbow (knee) locator for a monotonically decreasing curve y(x): the
// point with maximum distance from the chord joining the endpoints
// (the "kneedle" construction). Returns the index of the elbow.
// Throws on fewer than three points.
std::size_t elbow_index(std::span<const double> xs, std::span<const double> ys);

// Lag-k autocorrelation of a series (mean-removed); 0 when undefined.
double autocorrelation(std::span<const double> xs, std::size_t lag);

// Pearson correlation of two equal-length series; 0 when undefined.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

// Simple histogram with equal-width bins over [lo, hi].
struct histogram {
  double lo{0.0};
  double hi{1.0};
  std::vector<std::size_t> counts;

  std::size_t total() const;
};

histogram make_histogram(std::span<const double> xs, double lo, double hi,
                         std::size_t bins);

}  // namespace clasp

#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace clasp {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_tag(std::uint64_t seed, std::string_view tag) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s = h;
  return splitmix64(s);
}

rng::rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

rng::result_type rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

rng rng::fork(std::string_view tag) const {
  return rng(hash_tag(seed_ ^ state_[3], tag));
}

double rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw invalid_argument_error("uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

bool rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double rng::normal() {
  // Box-Muller; draw u1 away from zero to keep log() finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double rng::exponential(double rate) {
  if (rate <= 0.0) throw invalid_argument_error("exponential: rate <= 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double rng::pareto(double lo, double hi, double alpha) {
  if (!(lo > 0.0) || !(hi > lo) || !(alpha > 0.0)) {
    throw invalid_argument_error("pareto: need 0 < lo < hi and alpha > 0");
  }
  // Inverse-CDF sampling of the bounded Pareto distribution.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

std::size_t rng::zipf(std::size_t n, double s) {
  if (n == 0) throw invalid_argument_error("zipf: n == 0");
  // Rejection sampling (Devroye). Adequate for n up to millions.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(static_cast<double>(n) + 1.0, u));
    // x in [1, n+1); clamp to [1, n].
    if (x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::size_t>(x);
    }
  }
}

std::vector<std::size_t> rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw invalid_argument_error("sample_indices: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace clasp

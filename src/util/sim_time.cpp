#include "util/sim_time.hpp"

#include <array>
#include <cstdio>

namespace clasp {

namespace {

// Days between 1970-01-01 and 2020-01-01.
constexpr std::int64_t kEpoch2020Days = 18262;

// Floor division/modulo for possibly-negative hour counts.
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  return (a >= 0) ? a / b : -((-a + b - 1) / b);
}
constexpr std::int64_t floor_mod(std::int64_t a, std::int64_t b) {
  return a - floor_div(a, b) * b;
}

}  // namespace

std::int64_t days_from_civil(civil_date d) {
  // Howard Hinnant's algorithm, exact over the proleptic Gregorian calendar.
  const int y = d.year - (d.month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * (d.month + (d.month > 2 ? -3 : 9)) + 2) / 5 + d.day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

civil_date civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;
  const unsigned month = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return civil_date{static_cast<int>(y + (month <= 2 ? 1 : 0)), month, day};
}

hour_stamp hour_stamp::from_civil(civil_date date, unsigned utc_hour) {
  const std::int64_t days = days_from_civil(date) - kEpoch2020Days;
  return hour_stamp{days * 24 + static_cast<std::int64_t>(utc_hour)};
}

std::int64_t hour_stamp::utc_day_index() const { return floor_div(hours_, 24); }

unsigned hour_stamp::utc_hour_of_day() const {
  return static_cast<unsigned>(floor_mod(hours_, 24));
}

unsigned hour_stamp::local_hour_of_day(timezone_offset tz) const {
  return static_cast<unsigned>(floor_mod(hours_ + tz.hours_east_of_utc, 24));
}

std::int64_t hour_stamp::local_day_index(timezone_offset tz) const {
  return floor_div(hours_ + tz.hours_east_of_utc, 24);
}

civil_date hour_stamp::utc_date() const {
  return civil_from_days(utc_day_index() + kEpoch2020Days);
}

std::size_t hour_stamp::format_to(char* buf, std::size_t n) const {
  const civil_date d = utc_date();
  const int len = std::snprintf(buf, n, "%04d-%02u-%02u %02u:00Z", d.year,
                                d.month, d.day, utc_hour_of_day());
  if (len < 0) return 0;
  const auto want = static_cast<std::size_t>(len);
  return want < n ? want : n - 1;
}

std::string hour_stamp::to_string() const {
  char buf[32];
  return std::string(buf, format_to(buf, sizeof(buf)));
}

hour_range topology_campaign_window() {
  return hour_range{hour_stamp::from_civil({2020, 5, 1}, 0),
                    hour_stamp::from_civil({2020, 10, 1}, 0)};
}

hour_range differential_campaign_window() {
  return hour_range{hour_stamp::from_civil({2020, 8, 1}, 0),
                    hour_stamp::from_civil({2020, 10, 1}, 0)};
}

}  // namespace clasp

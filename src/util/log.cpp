#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace clasp {

namespace {

std::atomic<log_level> g_level{log_level::warn};

// Sink swaps are rare (tests); the mutex guards the function object and
// serializes emission so interleaved lines stay whole.
std::mutex g_sink_mu;
log_sink g_sink;  // empty → stderr default

const char* level_name(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}

void default_sink(log_level level, std::string_view component,
                  std::string_view message) {
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "[%9.3f] ", log_uptime_seconds());
  std::cerr << stamp << '[' << level_name(level) << "] " << component << ": "
            << message << '\n';
}

}  // namespace

void set_log_level(log_level level) { g_level.store(level); }
log_level get_log_level() { return g_level.load(); }

std::optional<log_level> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return log_level::debug;
  if (lower == "info") return log_level::info;
  if (lower == "warn") return log_level::warn;
  if (lower == "error") return log_level::error;
  if (lower == "off") return log_level::off;
  return std::nullopt;
}

log_level init_log_from_env() {
  if (const char* env = std::getenv("CLASP_LOG")) {
    if (const auto parsed = parse_log_level(env)) set_log_level(*parsed);
  }
  return get_log_level();
}

double log_uptime_seconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void set_log_sink(log_sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void log_message(log_level level, std::string_view component,
                 std::string_view message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, component, message);
  } else {
    default_sink(level, component, message);
  }
}

}  // namespace clasp

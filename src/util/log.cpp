#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace clasp {

namespace {

std::atomic<log_level> g_level{log_level::warn};

const char* level_name(log_level level) {
  switch (level) {
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(log_level level) { g_level.store(level); }
log_level get_log_level() { return g_level.load(); }

void log_message(log_level level, std::string_view component,
                 std::string_view message) {
  if (level < g_level.load()) return;
  std::cerr << '[' << level_name(level) << "] " << component << ": " << message
            << '\n';
}

}  // namespace clasp

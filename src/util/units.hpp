// Lightweight strongly-named units used throughout the library.
//
// Throughput is carried as megabits per second (the unit every speed-test
// platform reports) and latency as milliseconds. The wrappers are thin —
// a single double — but prevent the classic bug of mixing Mbps with MB/s
// or milliseconds with seconds at an interface boundary.
#pragma once

#include <compare>

namespace clasp {

// Network throughput in megabits per second.
struct mbps {
  double value{0.0};

  constexpr mbps() = default;
  constexpr explicit mbps(double v) : value(v) {}

  constexpr auto operator<=>(const mbps&) const = default;

  constexpr mbps operator+(mbps other) const { return mbps{value + other.value}; }
  constexpr mbps operator-(mbps other) const { return mbps{value - other.value}; }
  constexpr mbps operator*(double k) const { return mbps{value * k}; }
  constexpr mbps operator/(double k) const { return mbps{value / k}; }
  constexpr double operator/(mbps other) const { return value / other.value; }

  constexpr double bits_per_second() const { return value * 1e6; }
  constexpr double bytes_per_second() const { return value * 1e6 / 8.0; }

  static constexpr mbps from_gbps(double g) { return mbps{g * 1000.0}; }
};

// One-way or round-trip latency in milliseconds.
struct millis {
  double value{0.0};

  constexpr millis() = default;
  constexpr explicit millis(double v) : value(v) {}

  constexpr auto operator<=>(const millis&) const = default;

  constexpr millis operator+(millis other) const { return millis{value + other.value}; }
  constexpr millis operator-(millis other) const { return millis{value - other.value}; }
  constexpr millis operator*(double k) const { return millis{value * k}; }

  constexpr double seconds() const { return value / 1000.0; }
  static constexpr millis from_seconds(double s) { return millis{s * 1000.0}; }
};

// Data volume in megabytes (cloud egress billing unit granularity).
struct megabytes {
  double value{0.0};

  constexpr megabytes() = default;
  constexpr explicit megabytes(double v) : value(v) {}

  constexpr auto operator<=>(const megabytes&) const = default;

  constexpr megabytes operator+(megabytes other) const {
    return megabytes{value + other.value};
  }
  constexpr double gigabytes() const { return value / 1024.0; }
};

// Volume transferred by a flow of rate r over duration d.
constexpr megabytes transfer_volume(mbps rate, double duration_seconds) {
  return megabytes{rate.bytes_per_second() * duration_seconds / 1e6};
}

}  // namespace clasp

#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clasp {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw invalid_argument_error("text_table: no headers");
  }
}

void text_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw invalid_argument_error("text_table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string text_table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void text_table::print(std::ostream& os) const { os << render(); }

std::string text_table::to_csv() const {
  std::ostringstream out;
  out << join(headers_, ",") << '\n';
  for (const auto& row : rows_) out << join(row, ",") << '\n';
  return out.str();
}

series_writer::series_writer(std::ostream& os, std::string name,
                             std::vector<std::string> columns)
    : os_(os) {
  os_ << "# series: " << name;
  for (const auto& c : columns) os_ << ' ' << c;
  os_ << '\n';
}

void series_writer::add(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os_ << ' ';
    os_ << format_double(values[i], 4);
  }
  os_ << '\n';
}

series_writer::~series_writer() { os_ << "# end series\n"; }

}  // namespace clasp

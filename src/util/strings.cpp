#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace clasp {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* const kBlocks[8] = {"\u2581", "\u2582", "\u2583",
                                         "\u2584", "\u2585", "\u2586",
                                         "\u2587", "\u2588"};
  if (values.empty()) return "";
  double lo = values.front(), hi = values.front();
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  out.reserve(values.size() * 3);
  for (const double v : values) {
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * 7.999);
    }
    out += kBlocks[level];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Single-row Wagner-Fischer; row holds distances against a's prefix.
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
    }
  }
  return row[a.size()];
}

}  // namespace clasp

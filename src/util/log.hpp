// Minimal leveled logger.
//
// The library itself logs sparingly (campaign milestones, budget events);
// benches and examples raise the level for progress visibility. A single
// global sink keeps the substrate deterministic — logging never consumes
// random state or simulated time.
#pragma once

#include <sstream>
#include <string>

namespace clasp {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

// Global minimum level; messages below it are discarded. Defaults to warn
// so tests and benches stay quiet unless they opt in.
void set_log_level(log_level level);
log_level get_log_level();

// Emit one line to stderr as "[LEVEL] component: message".
void log_message(log_level level, std::string_view component,
                 std::string_view message);

// Stream-style convenience: CLASP_LOG(info, "campaign") << "hour " << h;
class log_line {
 public:
  log_line(log_level level, std::string_view component)
      : level_(level), component_(component) {}
  ~log_line() {
    if (level_ >= get_log_level()) log_message(level_, component_, out_.str());
  }
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;

  template <typename T>
  log_line& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  log_level level_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace clasp

#define CLASP_LOG(level, component) \
  ::clasp::log_line(::clasp::log_level::level, component)

// Minimal leveled logger.
//
// The library itself logs sparingly (campaign milestones, budget events,
// the obs heartbeat); benches and examples raise the level for progress
// visibility. A single global sink keeps the substrate deterministic —
// logging never consumes random state or simulated time.
//
// The default sink writes to stderr as
//   [   12.345] [LEVEL] component: message
// where the leading column is monotonic seconds since process start, so
// heartbeat lines are grep-able and totally ordered even when wall time
// steps. Tests swap the sink with set_log_sink to capture output.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace clasp {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

// Global minimum level; messages below it are discarded. Defaults to warn
// so tests and benches stay quiet unless they opt in.
void set_log_level(log_level level);
log_level get_log_level();

// "debug" | "info" | "warn" | "error" | "off" (case-insensitive);
// nullopt for anything else.
std::optional<log_level> parse_log_level(std::string_view name);

// Applies $CLASP_LOG when set and parseable (unset or malformed values
// leave the level untouched). Returns the level now in effect.
log_level init_log_from_env();

// Monotonic seconds since the first call in this process — the timestamp
// the default sink prefixes lines with.
double log_uptime_seconds();

// Pluggable sink. The sink receives messages that already passed the
// level gate; an empty function restores the stderr default.
using log_sink =
    std::function<void(log_level, std::string_view component,
                       std::string_view message)>;
void set_log_sink(log_sink sink);

// Emit one line through the current sink (level-gated).
void log_message(log_level level, std::string_view component,
                 std::string_view message);

// Stream-style convenience: CLASP_LOG(info, "campaign") << "hour " << h;
class log_line {
 public:
  log_line(log_level level, std::string_view component)
      : level_(level), component_(component) {}
  ~log_line() {
    if (level_ >= get_log_level()) log_message(level_, component_, out_.str());
  }
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;

  template <typename T>
  log_line& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  log_level level_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace clasp

#define CLASP_LOG(level, component) \
  ::clasp::log_line(::clasp::log_level::level, component)

// Error types shared across the CLASP libraries.
//
// All recoverable failures are reported with exceptions derived from
// clasp::error so callers can catch the library's failures with a single
// handler while still distinguishing categories.
#pragma once

#include <stdexcept>
#include <string>

namespace clasp {

// Root of the library's exception hierarchy.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

// A caller violated a documented precondition (bad argument, out-of-range
// index, malformed identifier, ...).
class invalid_argument_error : public error {
 public:
  explicit invalid_argument_error(const std::string& what) : error(what) {}
};

// A lookup for an entity (AS, router, server, series, ...) found nothing.
class not_found_error : public error {
 public:
  explicit not_found_error(const std::string& what) : error(what) {}
};

// An operation was attempted in a state that does not permit it
// (e.g. measuring from a VM that was never deployed).
class state_error : public error {
 public:
  explicit state_error(const std::string& what) : error(what) {}
};

// A configured budget (monetary, test-slot, capacity) was exhausted.
class budget_exceeded_error : public error {
 public:
  explicit budget_exceeded_error(const std::string& what) : error(what) {}
};

// The storage substrate failed underneath us (ENOSPC, short write, an
// unwritable directory). The operation was aborted without damaging
// previously durable state — e.g. a failed checkpoint publish leaves the
// old CURRENT checkpoint valid.
class storage_error : public error {
 public:
  explicit storage_error(const std::string& what) : error(what) {}
};

// Durable bytes failed an integrity check in a place crash-tearing cannot
// explain (a CRC mismatch in the interior of a WAL, a corrupt frame on a
// shard channel). Unlike a torn tail this is never silently dropped: the
// reader refuses the data and the caller decides (re-request, restore
// from a checkpoint, fail loudly).
class corruption_error : public error {
 public:
  explicit corruption_error(const std::string& what) : error(what) {}
};

}  // namespace clasp

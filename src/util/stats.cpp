#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "util/error.hpp"

namespace clasp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw invalid_argument_error("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw invalid_argument_error("percentile: p outside [0, 100]");
  }
  if (xs.size() == 1) return xs.front();
  // Exact extremes: interpolation would be a no-op in exact arithmetic,
  // but p/100*(n-1) can land on (n-1)-epsilon and drag the maximum down.
  if (p == 0.0) return *std::min_element(xs.begin(), xs.end());
  if (p == 100.0) return *std::max_element(xs.begin(), xs.end());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double percentile_or(std::span<const double> xs, double p, double fallback) {
  if (xs.empty()) return fallback;
  return percentile(xs, std::clamp(p, 0.0, 100.0));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

std::vector<cdf_point> empirical_cdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<cdf_point> cdf;
  cdf.reserve(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values into one step at the run's end.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double cdf_at(std::span<const double> sorted_xs, double x) {
  if (sorted_xs.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_xs.begin(), sorted_xs.end(), x);
  return static_cast<double>(it - sorted_xs.begin()) /
         static_cast<double>(sorted_xs.size());
}

double silverman_bandwidth(std::span<const double> xs) {
  const double sd = sample_stddev(xs);
  const double n = static_cast<double>(std::max<std::size_t>(xs.size(), 1));
  const double bw = 1.06 * sd * std::pow(n, -0.2);
  return bw > 0.0 ? bw : 1.0;
}

std::vector<kde_point> gaussian_kde(std::span<const double> xs, double lo,
                                    double hi, std::size_t grid_points) {
  if (xs.empty()) throw invalid_argument_error("gaussian_kde: empty input");
  if (grid_points < 2) {
    throw invalid_argument_error("gaussian_kde: grid_points < 2");
  }
  const double bw = silverman_bandwidth(xs);
  const double norm =
      1.0 / (static_cast<double>(xs.size()) * bw * std::sqrt(2.0 * std::numbers::pi));
  std::vector<kde_point> out(grid_points);
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double gx = lo + step * static_cast<double>(i);
    double density = 0.0;
    for (const double x : xs) {
      const double z = (gx - x) / bw;
      density += std::exp(-0.5 * z * z);
    }
    out[i] = {gx, density * norm};
  }
  return out;
}

std::size_t elbow_index(std::span<const double> xs,
                        std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw invalid_argument_error("elbow_index: size mismatch");
  }
  if (xs.size() < 3) throw invalid_argument_error("elbow_index: <3 points");
  // Normalize both axes so the chord distance is scale-free.
  const double x0 = xs.front(), x1 = xs.back();
  const double ymin = *std::min_element(ys.begin(), ys.end());
  const double ymax = *std::max_element(ys.begin(), ys.end());
  const double xspan = (x1 != x0) ? (x1 - x0) : 1.0;
  const double yspan = (ymax != ymin) ? (ymax - ymin) : 1.0;

  const double ax = 0.0, ay = (ys.front() - ymin) / yspan;
  const double bx = 1.0, by = (ys.back() - ymin) / yspan;
  const double chord_len = std::hypot(bx - ax, by - ay);

  std::size_t best = 1;
  double best_dist = -1.0;
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    const double px = (xs[i] - x0) / xspan;
    const double py = (ys[i] - ymin) / yspan;
    // Perpendicular distance from (px, py) to the chord A-B.
    const double cross =
        (bx - ax) * (ay - py) - (ax - px) * (by - ay);
    const double dist = std::abs(cross) / chord_len;
    if (dist > best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (xs.size() <= lag + 1) return 0.0;
  const double m = mean(xs);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - m) * (xs[i] - m);
  }
  if (den == 0.0) return 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  return num / den;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::size_t histogram::total() const {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

histogram make_histogram(std::span<const double> xs, double lo, double hi,
                         std::size_t bins) {
  if (bins == 0) throw invalid_argument_error("make_histogram: bins == 0");
  if (!(hi > lo)) throw invalid_argument_error("make_histogram: hi <= lo");
  histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double x : xs) {
    if (x < lo || x > hi) continue;
    std::size_t bin = static_cast<std::size_t>((x - lo) / width);
    if (bin >= bins) bin = bins - 1;  // x == hi lands in the last bin
    ++h.counts[bin];
  }
  return h;
}

}  // namespace clasp

#include "util/ini.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clasp {

ini_document ini_document::parse(const std::string& text) {
  ini_document doc;
  std::string section;
  std::size_t line_no = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw invalid_argument_error("ini line " + std::to_string(line_no) +
                                     ": bad section header");
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw invalid_argument_error("ini line " + std::to_string(line_no) +
                                   ": expected key = value");
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      throw invalid_argument_error("ini line " + std::to_string(line_no) +
                                   ": empty key");
    }
    doc.entries_[section.empty() ? key : section + "." + key] = value;
  }
  return doc;
}

bool ini_document::contains(const std::string& key) const {
  return entries_.contains(key);
}

const std::string& ini_document::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw not_found_error("ini: missing key " + key);
  }
  return it->second;
}

std::string ini_document::get_or(const std::string& key,
                                 std::string fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::move(fallback) : it->second;
}

std::int64_t ini_document::get_int(const std::string& key) const {
  const std::string& value = get(key);
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw invalid_argument_error("ini: key " + key +
                                 " is not an integer: " + value);
  }
}

double ini_document::get_double(const std::string& key) const {
  const std::string& value = get(key);
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw invalid_argument_error("ini: key " + key +
                                 " is not a number: " + value);
  }
}

bool ini_document::get_bool(const std::string& key) const {
  const std::string value = to_lower(get(key));
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw invalid_argument_error("ini: key " + key +
                               " is not a boolean: " + value);
}

}  // namespace clasp

// Plain-text table and CSV emitters used by benches to print the paper's
// tables/figures as aligned rows or machine-readable series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace clasp {

// A simple column-aligned text table. Columns are sized to the widest cell.
class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  // Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  // Render with column padding and a header underline.
  std::string render() const;
  void print(std::ostream& os) const;

  // Render as CSV (no quoting of commas; callers control cell content).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Write a named (x, y...) series block that plotting scripts can consume:
//   # series: <name>  [column headers]
//   x y1 y2 ...
class series_writer {
 public:
  series_writer(std::ostream& os, std::string name,
                std::vector<std::string> columns);
  void add(const std::vector<double>& values);
  ~series_writer();

  series_writer(const series_writer&) = delete;
  series_writer& operator=(const series_writer&) = delete;

 private:
  std::ostream& os_;
};

}  // namespace clasp

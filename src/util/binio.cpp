#include "util/binio.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace clasp {

namespace {

// Slicing-by-8 CRC32 (polynomial 0xEDB88320): table[s][b] advances a
// byte b through s+1 zero bytes, letting the hot loop fold eight input
// bytes per iteration. Checkpoint snapshots and WAL frames CRC every
// payload, so this sits on the durability fast path.
using crc_tables = std::array<std::array<std::uint32_t, 256>, 8>;

crc_tables make_crc_tables() {
  crc_tables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t s = 1; s < 8; ++s) {
      c = t[0][c & 0xFFu] ^ (c >> 8);
      t[s][i] = c;
    }
  }
  return t;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const crc_tables kT = make_crc_tables();
  std::uint32_t c = 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = kT[7][lo & 0xFFu] ^ kT[6][(lo >> 8) & 0xFFu] ^
          kT[5][(lo >> 16) & 0xFFu] ^ kT[4][lo >> 24] ^ kT[3][hi & 0xFFu] ^
          kT[2][(hi >> 8) & 0xFFu] ^ kT[1][(hi >> 16) & 0xFFu] ^
          kT[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  for (; n > 0; --n, ++p) {
    c = kT[0][(c ^ static_cast<std::uint8_t>(*p)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void binary_writer::u32(std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    char b[4];
    std::memcpy(b, &v, 4);
    buf_.append(b, 4);
  } else {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
}

void binary_writer::u64(std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    char b[8];
    std::memcpy(b, &v, 8);
    buf_.append(b, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
}

void binary_writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>(static_cast<std::uint8_t>(v) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void binary_writer::svarint(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void binary_writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void binary_writer::str(std::string_view s) {
  varint(s.size());
  buf_.append(s);
}

void binary_reader::throw_truncated() {
  throw invalid_argument_error("binio: truncated input");
}

std::uint8_t binary_reader::u8() {
  if (pos_ >= bytes_.size()) throw_truncated();
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t binary_reader::u32() {
  if constexpr (std::endian::native == std::endian::little) {
    if (bytes_.size() - pos_ < 4) throw_truncated();
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  } else {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    }
    return v;
  }
}

std::uint64_t binary_reader::u64() {
  if constexpr (std::endian::native == std::endian::little) {
    if (bytes_.size() - pos_ < 8) throw_truncated();
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    }
    return v;
  }
}

std::uint64_t binary_reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw invalid_argument_error("binio: varint overflow");
  }
}

std::int64_t binary_reader::svarint() {
  const std::uint64_t v = varint();
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

double binary_reader::f64() { return std::bit_cast<double>(u64()); }

std::string binary_reader::str() {
  const std::uint64_t n = varint();
  if (n > bytes_.size() - pos_) throw_truncated();
  std::string out(bytes_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

}  // namespace clasp

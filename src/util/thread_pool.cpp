#include "util/thread_pool.hpp"

#include <chrono>

#include "util/error.hpp"

namespace clasp {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

pool_stats thread_pool::stats() const {
  pool_stats s;
  s.batches = stat_batches_.load(std::memory_order_relaxed);
  s.tasks = stat_tasks_.load(std::memory_order_relaxed);
  s.busy_ns = stat_busy_ns_.load(std::memory_order_relaxed);
  s.wall_ns = stat_wall_ns_.load(std::memory_order_relaxed);
  s.last_batch_size = stat_last_batch_.load(std::memory_order_relaxed);
  s.workers = concurrency();
  return s;
}

unsigned thread_pool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_pool::thread_pool(unsigned concurrency) {
  if (concurrency == 0) concurrency = default_concurrency();
  threads_.reserve(concurrency - 1);
  for (unsigned i = 0; i + 1 < concurrency; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void thread_pool::drain(batch& b) {
  const std::uint64_t begin_ns = now_ns();
  std::uint64_t claimed = 0;
  for (;;) {
    const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.size) break;
    ++claimed;
    if (!b.failed.load(std::memory_order_relaxed)) {
      try {
        (*b.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(b.error_mu);
        if (!b.error) b.error = std::current_exception();
        b.failed.store(true, std::memory_order_relaxed);
      }
    }
    b.completed.fetch_add(1, std::memory_order_acq_rel);
  }
  // Two clock reads per participating thread per batch — cheap enough to
  // keep unconditional, which keeps pool timing obs-independent.
  stat_tasks_.fetch_add(claimed, std::memory_order_relaxed);
  stat_busy_ns_.fetch_add(now_ns() - begin_ns, std::memory_order_relaxed);
}

void thread_pool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<batch> b;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && generation_ != seen);
      });
      if (stop_) return;
      seen = generation_;
      b = batch_;
    }
    drain(*b);
    // Synchronize with the caller's predicate check before notifying,
    // otherwise the final completed-count increment can land between the
    // caller's check and its sleep (lost wakeup).
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_one();
  }
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  stat_batches_.fetch_add(1, std::memory_order_relaxed);
  stat_last_batch_.store(n, std::memory_order_relaxed);
  if (threads_.empty() || n == 1) {
    const std::uint64_t begin_ns = now_ns();
    for (std::size_t i = 0; i < n; ++i) fn(i);
    const std::uint64_t elapsed = now_ns() - begin_ns;
    stat_tasks_.fetch_add(n, std::memory_order_relaxed);
    stat_busy_ns_.fetch_add(elapsed, std::memory_order_relaxed);
    stat_wall_ns_.fetch_add(elapsed, std::memory_order_relaxed);
    return;
  }

  const std::uint64_t batch_begin_ns = now_ns();
  auto b = std::make_shared<batch>();
  b->size = n;
  b->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (batch_ != nullptr) {
      throw state_error("thread_pool: nested parallel_for");
    }
    batch_ = b;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is a worker too.
  drain(*b);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return b->completed.load(std::memory_order_acquire) == b->size;
    });
    batch_ = nullptr;
  }
  stat_wall_ns_.fetch_add(now_ns() - batch_begin_ns,
                          std::memory_order_relaxed);
  if (b->error) std::rethrow_exception(b->error);
}

}  // namespace clasp

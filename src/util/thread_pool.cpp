#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace clasp {

unsigned thread_pool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_pool::thread_pool(unsigned concurrency) {
  if (concurrency == 0) concurrency = default_concurrency();
  threads_.reserve(concurrency - 1);
  for (unsigned i = 0; i + 1 < concurrency; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void thread_pool::drain(batch& b) {
  for (;;) {
    const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.size) return;
    if (!b.failed.load(std::memory_order_relaxed)) {
      try {
        (*b.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(b.error_mu);
        if (!b.error) b.error = std::current_exception();
        b.failed.store(true, std::memory_order_relaxed);
      }
    }
    b.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void thread_pool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<batch> b;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && generation_ != seen);
      });
      if (stop_) return;
      seen = generation_;
      b = batch_;
    }
    drain(*b);
    // Synchronize with the caller's predicate check before notifying,
    // otherwise the final completed-count increment can land between the
    // caller's check and its sleep (lost wakeup).
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_one();
  }
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto b = std::make_shared<batch>();
  b->size = n;
  b->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (batch_ != nullptr) {
      throw state_error("thread_pool: nested parallel_for");
    }
    batch_ = b;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is a worker too.
  drain(*b);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return b->completed.load(std::memory_order_acquire) == b->size;
    });
    batch_ = nullptr;
  }
  if (b->error) std::rethrow_exception(b->error);
}

}  // namespace clasp

// Small string helpers shared by the data loaders and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace clasp {

// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

// Fixed-precision double formatting ("12.34"); strips a trailing ".0" when
// precision is 0.
std::string format_double(double value, int precision);

// True if text starts with prefix.
bool starts_with(std::string_view text, std::string_view prefix);

// Lowercase an ASCII string.
std::string to_lower(std::string_view text);

// Levenshtein edit distance (insertions, deletions, substitutions), used
// for did-you-mean suggestions on unknown config keys.
std::size_t edit_distance(std::string_view a, std::string_view b);

// Unicode block-character sparkline of a series, scaled to [min, max].
// Empty input renders as an empty string; constant input renders at the
// lowest level.
std::string sparkline(const std::vector<double>& values);

}  // namespace clasp

// Simulated campaign time.
//
// The measurement campaign runs on a simulated wall clock with hourly
// granularity (the paper's cron cadence). Time is carried as whole hours
// since 2020-01-01 00:00 UTC; civil-date conversions use the standard
// days-from-civil algorithm so day/month boundaries are exact.
//
// Local time matters because congestion is diurnal in the *server's*
// timezone (the paper converts to server-local time for Fig. 6). Zones are
// modeled as fixed UTC offsets — DST shifts every profile by one hour for
// part of the campaign and does not change any of the paper's conclusions,
// so we trade it for determinism and note the substitution in DESIGN.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace clasp {

// Civil date (proleptic Gregorian).
struct civil_date {
  int year{2020};
  unsigned month{1};  // 1..12
  unsigned day{1};    // 1..31

  auto operator<=>(const civil_date&) const = default;
};

// Days since 1970-01-01 for a civil date (negative before the epoch).
std::int64_t days_from_civil(civil_date d);
// Inverse of days_from_civil.
civil_date civil_from_days(std::int64_t days);

// A fixed UTC offset timezone.
struct timezone_offset {
  int hours_east_of_utc{0};
};

// Whole hours since 2020-01-01 00:00 UTC. The campaign's native tick.
class hour_stamp {
 public:
  constexpr hour_stamp() = default;
  constexpr explicit hour_stamp(std::int64_t hours) : hours_(hours) {}

  // Build from a civil date + UTC hour-of-day.
  static hour_stamp from_civil(civil_date date, unsigned utc_hour);

  constexpr std::int64_t hours_since_epoch() const { return hours_; }

  // Day index since 2020-01-01 (UTC calendar day).
  std::int64_t utc_day_index() const;
  // UTC hour of day, 0..23.
  unsigned utc_hour_of_day() const;
  // Hour of day in a fixed-offset local zone, 0..23.
  unsigned local_hour_of_day(timezone_offset tz) const;
  // Day index since 2020-01-01 in a fixed-offset local zone.
  std::int64_t local_day_index(timezone_offset tz) const;
  // Civil date of the UTC day containing this hour.
  civil_date utc_date() const;

  constexpr hour_stamp operator+(std::int64_t h) const {
    return hour_stamp{hours_ + h};
  }
  constexpr std::int64_t operator-(hour_stamp other) const {
    return hours_ - other.hours_;
  }
  constexpr hour_stamp& operator++() {
    ++hours_;
    return *this;
  }
  constexpr auto operator<=>(const hour_stamp&) const = default;

  // "2020-05-17 13:00Z" — used in logs and exported series.
  std::string to_string() const;
  // Same text written into `buf` (capacity `n`, NUL-terminated); returns
  // the length. Lets hot loops format timestamps without an allocation.
  std::size_t format_to(char* buf, std::size_t n) const;

 private:
  std::int64_t hours_{0};
};

// Inclusive-exclusive range of hours [begin, end), iterable hour by hour.
struct hour_range {
  hour_stamp begin_at;
  hour_stamp end_at;  // one past the last measured hour

  std::int64_t count() const { return end_at - begin_at; }
};

// The paper's campaign windows.
// Topology-based: May 1 - Sep 30, 2020 (5 months, 5 U.S. regions).
hour_range topology_campaign_window();
// Differential-based: Aug 1 - Sep 30, 2020 (2 months, 3 regions).
hour_range differential_campaign_window();

}  // namespace clasp

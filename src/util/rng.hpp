// Deterministic pseudo-random number generation for the simulation.
//
// Every stochastic component of the substrate draws from an explicitly
// seeded clasp::rng so a campaign is exactly reproducible from its seed.
// The generator is xoshiro256** seeded through splitmix64, which gives
// high-quality 64-bit streams without std::mt19937's 2.5 kB of state.
//
// rng::fork(tag) derives an independent child stream from a parent; the
// substrate forks one stream per subsystem (topology, load, measurement
// noise, ...) so adding draws to one subsystem never perturbs another.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace clasp {

// splitmix64 step; used for seeding and for hashing tags into seeds.
std::uint64_t splitmix64(std::uint64_t& state);

// Stateless 64-bit mix of a string tag into a seed (FNV-1a + splitmix
// finalizer). Used by rng::fork so child streams are decorrelated.
std::uint64_t hash_tag(std::uint64_t seed, std::string_view tag);

// xoshiro256** deterministic generator.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  // Raw 64-bit draw (UniformRandomBitGenerator interface).
  result_type operator()();

  // Derive an independent child generator. Children with distinct tags
  // (or distinct parent states) produce decorrelated streams.
  rng fork(std::string_view tag) const;

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);
  // Standard normal via Box-Muller (no cached spare: keeps fork cheap).
  double normal();
  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  // Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);
  // Exponential with the given rate (lambda > 0).
  double exponential(double rate);
  // Bounded Pareto on [lo, hi] with shape alpha > 0. Models heavy-tailed
  // quantities such as AS customer-cone sizes.
  double pareto(double lo, double hi, double alpha);
  // Zipf-distributed rank in [1, n] with exponent s (via rejection
  // sampling, suitable for the modest n used here).
  std::size_t zipf(std::size_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Pick one element uniformly. Requires a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t state_[4];
};

}  // namespace clasp

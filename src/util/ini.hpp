// Minimal INI-style configuration parser.
//
// Supports `[section]` headers, `key = value` pairs, `#`/`;` comments and
// blank lines. Values keep internal whitespace; keys are
// section-qualified as "section.key" (or bare when before any section).
// Strictness is the caller's job: parse() returns every pair, and typed
// getters throw on malformed numbers.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace clasp {

class ini_document {
 public:
  // Parse from text. Throws invalid_argument_error on malformed lines
  // (no '=', unterminated section header), with the line number.
  static ini_document parse(const std::string& text);

  bool contains(const std::string& key) const;
  // Raw string value; throws not_found_error when absent.
  const std::string& get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;

  // Typed accessors; throw invalid_argument_error on malformed values.
  std::int64_t get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;  // true/false/1/0/yes/no

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace clasp

// Bit-exact binary serialization primitives for durability code.
//
// The checkpoint/WAL layer must round-trip campaign state byte-for-byte:
// doubles are carried as their IEEE-754 bit patterns (never reformatted
// through text), integers as LEB128 varints, and strings length-prefixed
// so arbitrary bytes (non-ASCII server names, embedded separators) are
// safe. Every on-disk artifact frames its payload with the CRC32 below so
// torn or corrupted files are detected before any state is trusted.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace clasp {

// CRC-32 (IEEE 802.3 polynomial, reflected), the framing checksum used by
// the TSDB snapshot, the write-ahead log and the checkpoint files.
std::uint32_t crc32(std::string_view bytes);

// Append-only little-endian encoder over a growable byte buffer.
class binary_writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  // Unsigned LEB128.
  void varint(std::uint64_t v);
  // Zigzag-encoded signed varint.
  void svarint(std::int64_t v);
  // IEEE-754 bit pattern; round-trips every double (including -0.0, inf
  // and NaN payloads) exactly.
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  // Length-prefixed bytes; content is opaque (UTF-8, '\0', anything).
  void str(std::string_view s);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Decoder matching binary_writer. Throws invalid_argument_error on
// truncated input or varint overflow; the caller is expected to have
// CRC-validated the buffer first, so a throw here means a logic (format)
// error, not silent corruption.
class binary_reader {
 public:
  explicit binary_reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  std::int64_t svarint();
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();

  bool done() const { return pos_ == bytes_.size(); }
  std::size_t pos() const { return pos_; }

 private:
  [[noreturn]] static void throw_truncated();

  std::string_view bytes_;
  std::size_t pos_{0};
};

}  // namespace clasp

// Topology-based speed-test server selection (§3.1, method 1).
//
// From a VM in a region:
//  1. run a bdrmap pilot scan to discover the region's interdomain links,
//  2. traceroute to every U.S. speed-test server,
//  3. resolve hops with prefix-to-AS and match far-side interfaces (and
//     their aliases) against the bdrmap-discovered links,
//  4. group servers by the far-side interface their path crossed,
//  5. from each group pick the server with the shortest AS path (usually a
//     direct peer) and lowest traceroute RTT,
//  6. apply the deployment budget (the paper could not deploy every
//     selected server in every region).
//
// The result carries everything Table 1 reports: total links discovered,
// links traversed by U.S. servers, and servers measured by CLASP.
#pragma once

#include <vector>

#include "netsim/network.hpp"
#include "probes/bdrmap.hpp"
#include "probes/traceroute.hpp"
#include "speedtest/registry.hpp"

namespace clasp {

struct topology_selection_config {
  // Maximum servers to deploy in this region (budget); SIZE_MAX = all.
  std::size_t deployment_budget{SIZE_MAX};
  // Country whose servers are candidates (the paper studies the U.S.).
  std::string country{"US"};
  service_tier tier{service_tier::premium};
};

struct selected_server {
  std::size_t server_id{0};
  ipv4_addr far_side;       // interdomain link this server covers
  asn neighbor;
  std::size_t as_path_len{0};
  millis rtt{0.0};
};

struct topology_selection_result {
  bdrmap_result pilot;                        // Table 1 "Total"
  std::size_t servers_probed{0};
  std::size_t links_traversed_by_servers{0};  // Table 1 "U.S. test servers"
  std::vector<selected_server> selected;      // Table 1 "measured by CLASP"
  // Fraction of probed servers whose interconnect is shared with at least
  // one other server (§4's 75.5%-91.6%).
  double shared_interconnect_fraction{0.0};

  double coverage() const {
    return links_traversed_by_servers == 0
               ? 0.0
               : static_cast<double>(selected.size()) /
                     static_cast<double>(links_traversed_by_servers);
  }
};

class topology_selector {
 public:
  topology_selector(const route_planner* planner, const network_view* view,
                    const server_registry* registry);

  // Run the full pilot + selection from a VM endpoint. `at` is the pilot
  // scan time; `r` drives probe noise.
  topology_selection_result run(const endpoint& vm,
                                const topology_selection_config& config,
                                hour_stamp at, rng& r) const;

 private:
  const route_planner* planner_;
  const network_view* view_;
  const server_registry* registry_;
};

}  // namespace clasp

// Longitudinal measurement campaign orchestration (§3.2).
//
// A campaign binds a region, a network tier and a server list. Deployment
// sizes the VM fleet so every server gets one test per hour: a throughput
// test takes up to 120 s, plus a 20-minute traceroute budget and 5 minutes
// for the upload to the storage bucket, so one VM runs at most 17 tests
// per hour. Servers are assigned to VMs round-robin across availability
// zones; each hour every VM shuffles its server order (cron-interference
// mitigation), runs its tests, appends a paris-traceroute, compresses the
// raw artifacts into the region bucket, and the billing meter advances.
//
// Results land in the time-series store under metrics
//   download_mbps, upload_mbps, latency_ms, download_loss, upload_loss,
//   gt_episode (planted ground truth, for detector validation)
// tagged with {campaign, region, tier, server, network, city}.
#pragma once

#include <string>
#include <vector>

#include "cloud/gcp.hpp"
#include "cloud/someta.hpp"
#include "netsim/network.hpp"
#include "speedtest/registry.hpp"
#include "speedtest/webtest.hpp"
#include "tsdb/tsdb.hpp"

namespace clasp {

struct campaign_config {
  std::string region;
  service_tier tier{service_tier::premium};
  std::string label{"topology"};  // tsdb "campaign" tag
  hour_range window{topology_campaign_window()};
  unsigned tests_per_vm_hour{17};
  speed_test_config test{};
  // Fraction of a test's transferred volume persisted as compressed
  // artifacts (header-only pcap + someta metadata).
  double artifact_fraction{0.005};
};

class campaign_runner {
 public:
  campaign_runner(gcp_cloud* cloud, const network_view* view,
                  const server_registry* registry, tsdb* store);

  // Create the VM fleet and the per-server sessions. Must be called once.
  // Returns the number of VMs deployed.
  std::size_t deploy(const campaign_config& config,
                     const std::vector<std::size_t>& server_ids);

  // Run every hour in the window (calls run_hour repeatedly).
  void run();

  // Run one hour of the campaign (all VMs).
  void run_hour(hour_stamp at);

  // Failure injection: take one VM slot down for [begin, end). While down
  // the VM runs no tests (its servers simply have gaps, as with real
  // preemptions) and accrues no VM-hour charges. May be called multiple
  // times per slot.
  void inject_vm_outage(std::size_t vm_slot, hour_range outage);

  // Tests that were skipped because their VM was down.
  std::size_t tests_missed() const { return tests_missed_; }

  const campaign_config& config() const { return config_; }
  std::size_t session_count() const { return sessions_.size(); }
  std::size_t vm_count() const { return vms_.size(); }
  std::size_t tests_run() const { return tests_run_; }

  // someta-style resource metadata recorded on each VM (§3.2).
  const someta_recorder& metadata(std::size_t vm_slot) const {
    return someta_.at(vm_slot);
  }

 private:
  void record(const speed_test_report& report, const speed_server& server);

  gcp_cloud* cloud_;
  const network_view* view_;
  const server_registry* registry_;
  tsdb* store_;
  campaign_config config_;
  std::vector<gcp_cloud::vm_id> vms_;
  std::vector<someta_recorder> someta_;
  std::vector<speed_test_session> sessions_;
  // sessions_by_vm_[i] = indices into sessions_ assigned to vms_[i].
  std::vector<std::vector<std::size_t>> sessions_by_vm_;
  rng run_rng_{0};
  std::size_t tests_run_{0};
  std::size_t tests_missed_{0};
  // Outage windows per VM slot.
  std::vector<std::vector<hour_range>> outages_;
  bool deployed_{false};

  bool vm_down(std::size_t vm_slot, hour_stamp at) const;
};

}  // namespace clasp

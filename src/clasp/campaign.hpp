// Longitudinal measurement campaign orchestration (§3.2).
//
// A campaign binds a region, a network tier and a server list. Deployment
// sizes the VM fleet so every server gets one test per hour: a throughput
// test takes up to 120 s, plus a 20-minute traceroute budget and 5 minutes
// for the upload to the storage bucket, so one VM runs at most 17 tests
// per hour. Servers are assigned to VMs round-robin across availability
// zones; each hour every VM shuffles its server order (cron-interference
// mitigation), runs its tests, appends a paris-traceroute, compresses the
// raw artifacts into the region bucket, and the billing meter advances.
//
// Replay is parallel and deterministic: each simulated hour fans the
// per-VM test loops out across a worker pool. Every (VM slot, hour) owns
// a counter-based RNG stream derived from the campaign seed, so the draws
// a VM sees never depend on scheduling; workers accumulate their results
// (TSDB points, someta samples, billing charges, artifact uploads) into a
// thread-local staging buffer, and the coordinating thread merges the
// buffers in VM-slot order. Results are bit-identical for any worker
// count, including 1 (see DESIGN.md, "Concurrency model & determinism").
//
// Results land in the time-series store under metrics
//   download_mbps, upload_mbps, latency_ms, download_loss, upload_loss,
//   gt_episode (planted ground truth, for detector validation)
// tagged with {campaign, region, tier, server, network, city}. The six
// series of every session are interned once at deploy() time; the hot
// loop appends through integer series refs. With fault injection enabled
// (campaign_config::faults) a seventh series, test_status, records every
// session-hour's test_outcome, and campaign_runner::health() summarizes
// completeness, retries and downtime per server.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/gcp.hpp"
#include "cloud/someta.hpp"
#include "netsim/faults.hpp"
#include "netsim/network.hpp"
#include "obs/metrics.hpp"
#include "speedtest/registry.hpp"
#include "speedtest/webtest.hpp"
#include "tsdb/tsdb.hpp"
#include "tsdb/wal.hpp"
#include "util/thread_pool.hpp"

namespace clasp {

class vantage_swarm;

struct campaign_config {
  std::string region;
  service_tier tier{service_tier::premium};
  std::string label{"topology"};  // tsdb "campaign" tag
  hour_range window{topology_campaign_window()};
  unsigned tests_per_vm_hour{17};
  speed_test_config test{};
  // Fraction of a test's transferred volume persisted as compressed
  // artifacts (header-only pcap + someta metadata).
  double artifact_fraction{0.005};
  // Worker-pool concurrency for replay: 1 runs serially on the calling
  // thread, 0 means hardware_concurrency. Any value produces identical
  // results.
  unsigned workers{1};
  // Hour-epoch link-condition caching: deploy() registers the union of
  // the sessions' path links with the view's condition_cache and run_hour
  // prefills it before staging. Off means every evaluation recomputes the
  // load model directly; results are bit-identical either way (the cache
  // stores exactly what the model computes), so this knob trades memory
  // for speed and nothing else.
  bool link_cache{true};
  // Batched link-hour evaluation: evaluate_hour() sweeps every session's
  // two paths through one structure-of-arrays arena pass at the top of
  // the hour, and staging consumes the precomputed per-path metrics
  // instead of evaluating per session (and per retry attempt). Off falls
  // back to the per-session evaluate() path; results are bit-identical
  // either way (path conditions are a pure function of the hour, and the
  // batch sweep performs the same floating-point operations in the same
  // order), so this knob — like link_cache — trades memory for speed and
  // nothing else.
  bool batch_eval{true};
  // Deterministic fault injection (server churn, transient test
  // failures, VM preemption, upload failures). Disabled by default;
  // disabled output is byte-identical to a faults-free build, and
  // enabled output is byte-identical for any worker count (the schedule
  // comes from dedicated counter-based streams — see netsim/faults.hpp).
  fault_config faults{};
  // Durability (see DESIGN.md, "Durability & crash recovery"). When
  // checkpoint_dir is non-empty, run() write-ahead-logs every committed
  // (VM, hour) record to <dir>/wal.log and publishes a full checkpoint
  // (TSDB snapshot + campaign state) every checkpoint_every_hours
  // simulated hours. A killed campaign resumes via resume(dir) and
  // produces output byte-identical to an uninterrupted run. Empty
  // checkpoint_dir disables durability entirely (zero overhead).
  std::string checkpoint_dir;
  // Checkpoint cadence in simulated hours; must be >= 1 (the config
  // loader rejects 0). Hours between checkpoints are covered by the WAL.
  unsigned checkpoint_every_hours{24};
  // Observability heartbeat cadence in simulated hours; 0 disables the
  // line. With obs enabled and a cadence N, run_hour logs one INFO line
  // every N hours (cursor, tests done/failed/retried, cache hit ratio,
  // WAL bytes, checkpoint age) through util/log. Purely observational:
  // output stays byte-identical for any cadence.
  unsigned heartbeat_every_hours{0};
};

// Post-campaign operational report: how complete each server's series is
// and what the substrate's failures cost. Per-server completeness counts
// only completed tests, so it matches the injected outage/churn schedule
// exactly (completed + failed + down + withdrawn + skipped covers every
// scheduled hour).
struct campaign_health {
  struct server_entry {
    std::size_t server_id{0};
    std::size_t scheduled_hours{0};  // hours in the campaign window
    std::size_t completed{0};        // tests that produced metrics
    std::size_t failed{0};           // transient failures, retries exhausted
    std::size_t retries{0};          // extra attempts beyond each first
    std::size_t down_hours{0};       // hours the hosting VM was down
    std::size_t withdrawn_hours{0};  // hours after the server withdrew
    std::size_t skipped_hours{0};    // starved of a slot by retries

    double completeness() const {
      return scheduled_hours == 0
                 ? 0.0
                 : static_cast<double>(completed) /
                       static_cast<double>(scheduled_hours);
    }
  };

  std::vector<server_entry> servers;
  std::size_t window_hours{0};
  std::size_t total_retries{0};
  std::size_t failed_tests{0};
  std::size_t upload_failures{0};    // artifact hours lost
  std::size_t withdrawn_servers{0};  // servers churned out by the plan
  std::size_t vm_redeploys{0};       // preemption windows recovered from
  std::size_t vm_downtime_hours{0};  // summed across the fleet

  double mean_completeness() const;
  // Servers below the completeness floor (the analysis pipeline's
  // exclusion list); returns server ids.
  std::vector<std::size_t> low_completeness_servers(
      double min_completeness) const;
};

class campaign_runner {
 public:
  campaign_runner(gcp_cloud* cloud, const network_view* view,
                  const server_registry* registry, tsdb* store);

  // Create the VM fleet and the per-server sessions. Must be called once.
  // Returns the number of VMs deployed.
  std::size_t deploy(const campaign_config& config,
                     const std::vector<std::size_t>& server_ids);

  // Run every remaining hour in the window (from cursor(), which resume()
  // may have advanced), then bill the accumulated bucket volume (once —
  // a resumed-after-complete run never double-bills). With a
  // checkpoint_dir configured, checkpoints are published on the cadence
  // and a final one after billing. Returns false when request_interrupt()
  // stopped the run early (after checkpointing, if durable); true when
  // the window completed.
  bool run();

  // Run hours [cursor(), stop) with WAL logging and periodic checkpoints
  // when durable. Returns false when interrupted before reaching `stop`.
  bool run_until(hour_stamp stop);

  // Run one hour of the campaign: stage all VMs (in parallel when the
  // campaign was configured with workers != 1), then merge in slot order.
  void run_hour(hour_stamp at);

  // Coordinator-only fault-plan hour events, called by run_hour (and by
  // clasp_platform::run_campaigns) before any staging worker starts:
  // servers withdrawing at `at` are retired from the churn registry, VMs
  // whose maintenance window starts/ends at `at` are preempted/
  // redeployed. No-op when faults are disabled.
  void begin_hour(hour_stamp at);

  // Batched evaluation of the hour's path conditions (coordinator-only,
  // after the cache prefill and before any staging worker starts): one
  // linear sweep over the session-path arena computes every session's
  // download/upload path_metrics for `at`, fanned out in fixed-size
  // blocks across `pool` (or the campaign's own pool when null; serial
  // when neither exists — block boundaries cannot change values, the
  // outputs are per-path). stage_vm_hour_into then reads the precomputed
  // metrics instead of evaluating per session. No-op when
  // config().batch_eval is false or with no sessions; staging falls back
  // to per-session evaluation whenever the staged hour was not the last
  // evaluated one, so direct stage_vm_hour() callers stay correct.
  void evaluate_hour(hour_stamp at, thread_pool* pool = nullptr);

  // Registry to retire churned servers from (so withdrawn servers vanish
  // from later crawls and re-selections). Optional; staging never reads
  // it — the fault plan is the source of truth for the campaign itself.
  void set_churn_registry(server_registry* registry) {
    churn_registry_ = registry;
  }

  // Pre-test swarm whose ledgers (account month quota, per-probe credits)
  // ride along in this campaign's checkpoints, so a resumed campaign
  // cannot double-spend or silently reset its pre-test probe budget.
  // Optional; the campaign itself never probes through it.
  void set_pretest_swarm(vantage_swarm* swarm) { pretest_swarm_ = swarm; }

  // --- staged execution (the advanced API behind run_hour) ---
  // Everything one VM produces in one hour, accumulated off-thread and
  // merged by the coordinator. Also used by clasp_platform::run_campaigns
  // to fan several campaigns' fleets into one pool.
  struct staged_point {
    series_ref ref;
    double value{0.0};
  };
  // What happened to one session's test slot this hour (drives the
  // test_status series and the campaign_health tallies).
  struct staged_outcome {
    std::uint32_t session{0};  // index into sessions_
    test_outcome outcome{test_outcome::ok};
    std::uint8_t attempts{0};  // slots consumed (0 when none ran)
  };
  struct vm_hour_staging {
    hour_stamp at;                             // the staged hour
    std::vector<staged_point> points;          // six per completed test
    std::vector<vm_metadata_sample> someta;    // one per completed test
    std::vector<staged_outcome> outcomes;      // one per assigned session
    charge_sheet charges;                      // VM-hour + egress + upload
    std::size_t tests_run{0};
    std::size_t tests_missed{0};
    bool upload_failed{false};                 // artifact put injected away
  };
  // Stage one VM's hour. Const and thread-safe: touches only immutable
  // deployment state and a stream RNG derived from (label, region,
  // vm_slot, hour).
  vm_hour_staging stage_vm_hour(std::size_t vm_slot, hour_stamp at) const;
  // Allocation-free variant: stages into `out`, clearing it first but
  // keeping its buffers, so an hour-stepping driver can reuse one staging
  // slot per task across the whole window.
  void stage_vm_hour_into(std::size_t vm_slot, hour_stamp at,
                          vm_hour_staging& out) const;
  // Merge one staged VM-hour: TSDB appends, someta samples, billing.
  // Coordinator thread only; call in ascending vm_slot order.
  void commit_vm_hour(std::size_t vm_slot, vm_hour_staging&& staged);

  // --- distributed replay support (src/dist/) ---
  // Stage one hour of the VM slots [slot_begin, slot_end) into `out`
  // (resized to the slot count), entirely on the calling thread: serial
  // cache prefill, serial batched evaluation, serial staging. Never
  // touches the worker pool, so it is safe in a fork()ed worker process
  // whose pool threads did not survive the fork. Byte-identical to the
  // same slots staged by run_hour.
  void stage_shard_hour(hour_stamp at, std::size_t slot_begin,
                        std::size_t slot_end,
                        std::vector<vm_hour_staging>& out);
  // Commit one complete hour group staged elsewhere (shard workers):
  // coordinator hour events, then WAL-log + commit every slot in
  // ascending order, then advance the cursor — exactly the bytes
  // run_hour's commit phase produces. `group` must hold vm_count()
  // records, slot v at index v, all staged for `at` == cursor().
  void commit_hour_group(hour_stamp at, std::vector<vm_hour_staging>&& group);
  // WAL/shard record codec, also the dist wire format for one staged
  // (VM, hour): the coordinator decodes exactly what a worker encoded.
  // decode throws invalid_argument_error on a malformed payload and
  // returns the record's vm_slot.
  std::string encode_wal_record(std::size_t vm_slot,
                                const vm_hour_staging& staged) const;
  std::size_t decode_wal_record(std::string_view payload,
                                vm_hour_staging& out) const;
  // The campaign identity hash (seed, label, region, window, fleet
  // shape, fault schedule). Shard workers present it in their hello so a
  // coordinator never merges records from a differently-configured
  // world; also what checkpoint resume verifies.
  std::uint64_t fingerprint() const;

  // State peeks for the shard coordinator, which mirrors run_until's
  // durability cadence (first-hour WAL anchor, final storage bill)
  // without reaching into private members.
  bool wal_open() const { return wal_ != nullptr; }
  bool storage_billed() const { return storage_billed_; }
  bool interrupt_requested() const {
    return interrupt_.load(std::memory_order_relaxed);
  }
  void clear_interrupt() {
    interrupt_.store(false, std::memory_order_relaxed);
  }
  // Storage billed monthly on the accumulated bucket volume (run() calls
  // this after the window; hour-stepped drivers call it themselves).
  void charge_monthly_storage();

  // Failure injection: take one VM slot down for [begin, end). While down
  // the VM runs no tests (its servers simply have gaps, as with real
  // preemptions) and accrues no VM-hour charges. May be called multiple
  // times per slot.
  void inject_vm_outage(std::size_t vm_slot, hour_range outage);

  // Tests that were skipped because their VM was down.
  std::size_t tests_missed() const { return tests_missed_; }

  // The deterministic fault schedule (empty plan when faults are off).
  const fault_plan& faults() const { return plan_; }
  // Per-server completeness, retry counts and downtime accumulated so
  // far (callable mid-window; run() leaves the full-window report).
  campaign_health health() const;

  const campaign_config& config() const { return config_; }
  std::size_t session_count() const { return sessions_.size(); }
  std::size_t vm_count() const { return vms_.size(); }
  std::size_t tests_run() const { return tests_run_; }
  // Effective replay concurrency (1 when serial).
  unsigned workers() const { return pool_ ? pool_->concurrency() : 1; }

  // someta-style resource metadata recorded on each VM (§3.2).
  const someta_recorder& metadata(std::size_t vm_slot) const {
    return someta_.at(vm_slot);
  }

  // --- durability (implemented in checkpoint.cpp) ---
  // Publish a checkpoint of the campaign at cursor(): a versioned
  // directory <dir>/ckpt-<hour> holding the TSDB snapshot, the serialized
  // campaign/cloud state and a CRC-checked manifest, made visible by an
  // atomic rename and a CURRENT pointer update — a crash mid-checkpoint
  // leaves the previous checkpoint intact. When `dir` is the configured
  // checkpoint_dir the WAL is reset (its records are now covered by the
  // snapshot) and older checkpoints are garbage-collected.
  void checkpoint(const std::string& dir);
  // Restore from the latest checkpoint under `dir`, then replay every
  // complete (all-VM) hour group in the WAL, dropping a torn tail or a
  // partial hour (those hours re-run deterministically). Requires a
  // deployed runner whose fingerprint (seed, window, fleet shape, fault
  // config) matches the checkpoint; throws state_error on a mismatch and
  // invalid_argument_error on corruption. Returns false when `dir` holds
  // no checkpoint (caller starts fresh). On success `dir` becomes the
  // campaign's checkpoint_dir and cursor() points at the next hour to run.
  bool resume(const std::string& dir);
  // Ask a running run()/run_until() to stop at the next hour boundary
  // (safe from a signal handler; the runner checkpoints before
  // returning when durable).
  void request_interrupt() { interrupt_.store(true, std::memory_order_relaxed); }
  // The next hour run()/run_until() will execute (window begin after
  // deploy; advanced by run_hour and by resume).
  hour_stamp cursor() const { return cursor_; }
  // True when a checkpoint_dir is configured.
  bool durable() const { return !config_.checkpoint_dir.empty(); }

 private:
  // Interned TSDB handles for one session's six metrics.
  struct session_series {
    series_ref download;
    series_ref upload;
    series_ref latency;
    series_ref download_loss;
    series_ref upload_loss;
    series_ref gt_episode;
  };

  // Per-session health counters, merged by commit_vm_hour in slot order
  // (so they are deterministic for any worker count).
  struct session_tally {
    std::size_t completed{0};
    std::size_t failed{0};
    std::size_t retries{0};
    std::size_t down_hours{0};
    std::size_t withdrawn_hours{0};
    std::size_t skipped_hours{0};
  };

  // The (vm_slot, hour) RNG stream: independent of scheduling and of
  // every other stream.
  rng vm_stream(std::size_t vm_slot, hour_stamp at) const;
  bool vm_down(std::size_t vm_slot, hour_stamp at) const;

  // Registry handles (obs/families.hpp), resolved once at deploy so
  // instrumentation sites are a branch plus a sharded add. The cache
  // hit/miss handles are the same process-wide counters condition_cache
  // feeds; the heartbeat reads them for its hit-ratio column.
  struct metric_handles {
    obs::counter* hours{nullptr};
    obs::counter* tests{nullptr};
    obs::counter* tests_failed{nullptr};
    obs::counter* test_retries{nullptr};
    obs::counter* tests_missed{nullptr};
    obs::counter* points{nullptr};
    obs::counter* upload_failures{nullptr};
    obs::counter* fault_preempts{nullptr};
    obs::counter* fault_redeploys{nullptr};
    obs::counter* fault_withdrawals{nullptr};
    obs::counter* fault_vm_down_hours{nullptr};
    obs::counter* fault_skipped{nullptr};
    obs::counter* cache_hits{nullptr};
    obs::counter* cache_misses{nullptr};
    obs::gauge* cursor_hours{nullptr};
    obs::gauge* window_hours{nullptr};
    obs::gauge* sessions{nullptr};
    obs::gauge* fleet_servers{nullptr};
    obs::gauge* fleet_vms{nullptr};
    obs::gauge* sessions_total{nullptr};
    obs::gauge* batch_groups{nullptr};
    obs::gauge* pool_workers{nullptr};
    obs::gauge* pool_batches{nullptr};
    obs::gauge* pool_tasks{nullptr};
    obs::gauge* pool_busy_seconds{nullptr};
    obs::gauge* pool_last_batch{nullptr};
    obs::gauge* pool_utilization{nullptr};
    obs::gauge* swarm_active{nullptr};
    obs::gauge* swarm_coverage{nullptr};
    obs::gauge* swarm_stale{nullptr};
    obs::counter* swarm_credits{nullptr};
    obs::gauge* dist_workers{nullptr};
    obs::counter* dist_failovers{nullptr};
    obs::histogram* hour_seconds{nullptr};
  };
  void resolve_metrics();
  // Hour-close bookkeeping: counters/gauges, the hour-duration histogram
  // and (on the configured cadence) the heartbeat line. Only called when
  // obs is enabled.
  void publish_hour_metrics(double hour_seconds);
  void emit_heartbeat() const;

  // Durability internals (checkpoint.cpp).
  void save_state(binary_writer& out) const;
  void load_state(binary_reader& in);

  gcp_cloud* cloud_;
  const network_view* view_;
  const server_registry* registry_;
  tsdb* store_;
  campaign_config config_;
  std::vector<gcp_cloud::vm_id> vms_;
  std::vector<someta_recorder> someta_;
  std::vector<speed_test_session> sessions_;
  // CSR layout of the VM -> session assignment: vms_[v]'s sessions are
  // vm_session_index_[vm_session_offsets_[v] .. vm_session_offsets_[v+1])
  // in ascending session order. One offsets array plus one flat index
  // array replaces the old vector-of-vectors, so an hour sweep over the
  // fleet touches two contiguous allocations instead of one per VM.
  std::vector<std::uint32_t> vm_session_offsets_;  // size vms_.size() + 1
  std::vector<std::uint32_t> vm_session_index_;    // size sessions_.size()
  // SoA twin of the sessions' flattened paths: path 2*i is sessions_[i]'s
  // download path, 2*i + 1 its upload path. Built at deploy, resolved
  // against the view's condition cache on first use (see evaluate_hour).
  path_arena arena_;
  bool arena_resolved_{false};
  // Per-path metrics of the last evaluate_hour() sweep, indexed like the
  // arena. Valid only for hour_metrics_hour_ (staging checks before use).
  std::vector<path_metrics> hour_metrics_;
  std::int64_t hour_metrics_hour_{0};
  bool hour_metrics_valid_{false};
  std::size_t batch_groups_{0};  // blocks of the last sweep (heartbeat)
  // series_refs_[i] = interned store handles for sessions_[i].
  std::vector<session_series> series_refs_;
  // test_status series per session; empty unless faults are enabled (so
  // the faults-off store is byte-identical to pre-fault builds).
  std::vector<series_ref> status_refs_;
  // session_withdraw_[i] = the plan's withdraw hour for sessions_[i].
  std::vector<std::optional<hour_stamp>> session_withdraw_;
  fault_plan plan_;
  std::vector<session_tally> tallies_;
  std::size_t upload_failures_{0};
  server_registry* churn_registry_{nullptr};
  vantage_swarm* pretest_swarm_{nullptr};
  std::uint64_t stream_seed_{0};  // hash of (net seed, label, region)
  std::string artifact_prefix_;   // "raw/<label>/", built once at deploy
  std::unique_ptr<thread_pool> pool_;  // null when workers == 1
  // Reused hourly staging slots (capacity survives across hours; commit
  // moves only the someta samples out).
  std::vector<vm_hour_staging> staging_;
  std::size_t tests_run_{0};
  std::size_t tests_missed_{0};
  // Outage windows per VM slot, CSR like the session assignment: slot v's
  // windows are outage_windows_[outage_offsets_[v] .. outage_offsets_[v+1])
  // in insertion order (plan windows first, then manual injections).
  // Insertions shift the flat array — outages are rare, lookups hourly.
  std::vector<std::uint32_t> outage_offsets_;  // size vms_.size() + 1
  std::vector<hour_range> outage_windows_;
  bool deployed_{false};
  // --- durability state ---
  hour_stamp cursor_{hour_stamp{0}};  // next hour to run (set at deploy)
  bool storage_billed_{false};        // run() billed monthly storage
  std::atomic<bool> interrupt_{false};
  std::unique_ptr<wal_writer> wal_;  // open while a durable run is active
  // --- observability state ---
  metric_handles metrics_{};          // resolved at deploy
  std::int64_t last_checkpoint_hour_{-1};  // heartbeat ckpt age; -1 = none
};

}  // namespace clasp

// Congestion detection and performance analysis (§3.3, §4).
//
// The paper's detector works on throughput variability:
//   V(s,d)    = (Tmax(s,d) - Tmin(s,d)) / Tmax(s,d)   per server-day
//   V_H(s,t)  = (Tmax(s,d) - T(s,t)) / Tmax(s,d)      per server-hour
// A server-day is congested when V(s,d) > H; a server-hour when
// V_H(s,t) > H. H is chosen by the elbow method over the V(s,d) sweep
// (the paper lands on H = 0.5). Days are bounded in the *server's* local
// timezone, and Fig. 6's congestion probabilities are per local hour.
//
// Because the substrate plants ground-truth episodes, this module also
// provides the detector validation the paper could not do (precision /
// recall against gt_episode).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "data/geo.hpp"
#include "data/ipv4.hpp"
#include "data/prefix2as.hpp"
#include "tsdb/tsdb.hpp"
#include "util/sim_time.hpp"

namespace clasp {

// --- per-day variability ---------------------------------------------------

struct day_variability {
  std::int64_t local_day{0};
  double v{0.0};       // normalized peak-to-trough difference
  double t_max{0.0};
  double t_min{0.0};
  std::size_t samples{0};
};

// V(s,d) for every local day of a series with at least `min_samples`
// measurements (days with sparse data are unreliable and skipped).
std::vector<day_variability> daily_variability(const ts_series& series,
                                               timezone_offset tz,
                                               std::size_t min_samples = 12);

// --- per-hour labels ---------------------------------------------------------

struct hour_label {
  hour_stamp at;
  double v_h{0.0};
  bool congested{false};
};

// V_H(s,t) for every point, with congested = V_H > threshold.
std::vector<hour_label> intraday_labels(const ts_series& series,
                                        timezone_offset tz, double threshold,
                                        std::size_t min_samples = 12);

// --- threshold sweep (Fig. 2) -----------------------------------------------

struct threshold_sweep {
  std::vector<double> thresholds;
  std::vector<double> day_fraction;   // fraction of s-days with V > H
  std::vector<double> hour_fraction;  // fraction of s-hours with V_H > H
};

// Sweep H over [0, 1] for a set of series. `tz_of` yields each series'
// local timezone (index-aligned with `series`).
threshold_sweep sweep_thresholds(
    const std::vector<const ts_series*>& series,
    const std::vector<timezone_offset>& tz_of, std::size_t grid_points = 21);

// Elbow-method threshold from the day-fraction curve.
double choose_threshold_elbow(const threshold_sweep& sweep);

// --- per-server summaries (Fig. 6, Fig. 8) ----------------------------------

struct server_congestion_summary {
  std::size_t days_measured{0};
  std::size_t congested_days{0};      // days with >= 1 congested hour
  std::size_t hours_measured{0};
  std::size_t congested_hours{0};
  // The paper's Fig. 8 rule: congested server when >10% of days have an
  // event.
  bool congested_server{false};

  double congested_day_fraction() const {
    return days_measured == 0
               ? 0.0
               : static_cast<double>(congested_days) /
                     static_cast<double>(days_measured);
  }
};

server_congestion_summary summarize_server(
    const ts_series& series, timezone_offset tz, double threshold,
    double congested_server_day_fraction = 0.10);

// Congestion probability per local hour of day: events / measurements.
std::array<double, 24> hourly_congestion_probability(const ts_series& series,
                                                     timezone_offset tz,
                                                     double threshold);

// --- latency-based detection (the RIPE-Atlas-style alternative) --------------

// §2 argues that "latency measurements do not accurately reflect actual
// throughput between cloud platforms and ISPs under load". This detector
// exists to quantify that: it labels an hour congested when its latency
// is inflated relative to the local day's minimum,
//   L_H(s,t) = (L(s,t) - Lmin(s,d)) / Lmin(s,d) > threshold.
// bench_ablation_detector compares it against the throughput detector on
// planted ground truth: it only sees congestion that queues.
std::vector<hour_label> latency_inflation_labels(const ts_series& latency,
                                                 timezone_offset tz,
                                                 double threshold,
                                                 std::size_t min_samples = 12);

// --- weekday/weekend breakdown ------------------------------------------------

// Congested-hour fraction split by local day type (FCC peak hours are a
// weekday concept; weekend load shifts earlier and higher).
struct weekday_weekend_split {
  std::size_t weekday_hours{0};
  std::size_t weekday_congested{0};
  std::size_t weekend_hours{0};
  std::size_t weekend_congested{0};

  double weekday_fraction() const {
    return weekday_hours == 0
               ? 0.0
               : static_cast<double>(weekday_congested) / weekday_hours;
  }
  double weekend_fraction() const {
    return weekend_hours == 0
               ? 0.0
               : static_cast<double>(weekend_congested) / weekend_hours;
  }
};

weekday_weekend_split split_by_day_type(const ts_series& series,
                                        timezone_offset tz, double threshold);

// True when the local day index falls on a Saturday or Sunday (the
// campaign epoch 2020-01-01 was a Wednesday).
bool is_weekend_day(std::int64_t local_day_index);

// --- series downsampling --------------------------------------------------------

enum class downsample_op { mean, min, max };

// Re-bucket a series into `bucket_hours`-wide windows aligned to the
// epoch; each bucket emits one point at its first hour. Throws on
// bucket_hours == 0.
ts_series downsample(const ts_series& series, std::int64_t bucket_hours,
                     downsample_op op);

// --- detector validation against planted ground truth -----------------------

struct detector_validation {
  std::size_t true_positive{0};
  std::size_t false_positive{0};
  std::size_t false_negative{0};
  std::size_t true_negative{0};

  double precision() const {
    const auto d = true_positive + false_positive;
    return d == 0 ? 0.0 : static_cast<double>(true_positive) / d;
  }
  double recall() const {
    const auto d = true_positive + false_negative;
    return d == 0 ? 0.0 : static_cast<double>(true_positive) / d;
  }
};

// Compare hour labels from the V_H detector against the gt_episode series
// recorded during the campaign (1.0 = planted episode active).
detector_validation validate_detector(const ts_series& download,
                                      const ts_series& ground_truth,
                                      timezone_offset tz, double threshold);

// --- alternative detector (future-work §5: time-series analysis) ------------

// Autocorrelation-gated detector: flags a series as diurnally congested
// when its 24h-lag autocorrelation exceeds `acf_threshold` and labels
// hours with V_H above the (lower) `amplitude_threshold`. Reduces false
// positives on noisy-but-flat series.
std::vector<hour_label> acf_detector_labels(const ts_series& series,
                                            timezone_offset tz,
                                            double acf_threshold = 0.25,
                                            double amplitude_threshold = 0.4);

// --- congestion direction (§4.2: the Cox reverse-path diagnosis) -------------

// The download test's data flows ISP -> cloud ("reverse path" in the
// paper's traceroute-centric wording); the upload test's data flows
// cloud -> ISP (the forward path). Comparing the two tests' measured
// loss during congested hours localizes the congestion's direction:
// Cox's servers showed >3%..50% download loss with <1% upload loss,
// "indicating that congestion took place on the reverse path (from ISP
// to cloud)".
enum class congestion_direction {
  ingress,   // ISP -> cloud (the paper's reverse path)
  egress,    // cloud -> ISP
  both,
  unknown,   // congested but neither loss signal is conclusive
};

const char* to_string(congestion_direction d);

struct asymmetry_summary {
  std::size_t congested_hours{0};
  std::size_t ingress_hours{0};
  std::size_t egress_hours{0};
  std::size_t both_hours{0};
  std::size_t unknown_hours{0};

  congestion_direction dominant() const;
};

// Classify every congested hour (V_H(download) > threshold) by the loss
// observed in each direction. `high_loss` / `low_loss` bound the
// conclusive region (defaults: >3% is congested-level loss, <1% is
// clean, per the paper's Cox numbers).
asymmetry_summary classify_asymmetry(const ts_series& download,
                                     const ts_series& download_loss,
                                     const ts_series& upload_loss,
                                     timezone_offset tz, double threshold,
                                     double high_loss = 0.03,
                                     double low_loss = 0.01);

// --- per-interconnect aggregation ---------------------------------------------

// The topology-based design measures one server per interdomain link, so
// per-server summaries *are* per-interconnect summaries. This joins them
// back to the link metadata for reporting congestion by neighbor AS.
struct interconnect_report {
  ipv4_addr far_side;
  asn neighbor;
  std::size_t server_id{0};
  server_congestion_summary summary;
};

// --- campaign completeness & gap tolerance (fault injection) -----------------

// Fraction of the window's hours with a point in the series. Fault-
// injected campaigns leave gaps (VM outages, withdrawn servers, failed
// tests); the per-day entry points above already tolerate them — sparse
// days fall under min_samples and are skipped — and this measures how
// much of a server's window actually made it into the store.
double series_completeness(const ts_series& series, hour_range window);

// Indices of the series meeting the completeness floor: the exclusion
// rule for withdrawn or outage-heavy servers before fleet aggregation
// (pair with campaign_health::low_completeness_servers for the ids).
std::vector<std::size_t> filter_low_completeness(
    const std::vector<const ts_series*>& series, hour_range window,
    double min_completeness);

// --- tier comparison (Fig. 5) ------------------------------------------------

// Relative difference (premium - standard) / standard for hours present in
// both series.
std::vector<double> relative_differences(const ts_series& premium,
                                         const ts_series& standard);

// --- monthly best-performance aggregation (Fig. 4) ---------------------------

struct monthly_performance {
  int year{2020};
  unsigned month{1};
  double p95_download_mbps{0.0};
  double p5_latency_ms{0.0};
  std::size_t samples{0};
};

// 95th-percentile download and 5th-percentile latency per calendar month
// (UTC months, as the paper aggregates).
std::vector<monthly_performance> monthly_best_performance(
    const ts_series& download, const ts_series& latency);

}  // namespace clasp

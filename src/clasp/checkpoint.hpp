// Crash-consistent checkpoint/resume for campaign replay.
//
// A multi-month campaign replay can be killed — operator Ctrl-C, batch
// scheduler preemption, crash — at any point. The durability layer makes
// that recoverable with byte-identical output: because every (VM slot,
// hour) owns a counter-based RNG stream, the only state a resume needs is
// *where the campaign was* plus the accumulated results; re-running any
// hour reproduces it bit-for-bit.
//
// On-disk layout under a campaign's checkpoint directory:
//
//   <dir>/CURRENT            name of the published checkpoint ("ckpt-<h>")
//   <dir>/ckpt-<h>/MANIFEST  magic, version, fingerprint, cursor (+CRC32)
//   <dir>/ckpt-<h>/tsdb.snap full TSDB snapshot (tsdb::snapshot_to)
//   <dir>/ckpt-<h>/state.bin campaign + cloud state (+CRC32)
//   <dir>/wal.log            per-(VM, hour) records since the checkpoint
//
// Publish protocol (campaign_runner::checkpoint): write everything into
// ckpt-<h>.staging, fs::rename it to ckpt-<h> (atomic on POSIX), then
// update CURRENT via write-tmp + rename, then truncate the WAL and GC
// older checkpoints. A crash at any step leaves either the old or the
// new checkpoint fully intact — never a half-written one.
//
// Recovery (campaign_runner::resume): restore the snapshot and state of
// the CURRENT checkpoint, then replay WAL hour groups. An hour is
// durable only when all vm_count() slot records of that hour are present
// and CRC-valid; a torn tail or a partial group is truncated and the
// hour simply re-runs. Compatibility is versioned: kCheckpointVersion
// bumps on any format change, and resume rejects other versions rather
// than guessing (see DESIGN.md, "Durability & crash recovery").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace clasp {

// Bump on any change to the manifest, state.bin, WAL record or TSDB
// snapshot encoding. Old checkpoints are then rejected, not migrated: a
// campaign replay is cheap to restart relative to silent corruption.
// v2: state.bin carries the pre-test swarm ledgers (account month quota
// plus per-probe credits) after the cloud state.
inline constexpr std::uint32_t kCheckpointVersion = 2;

// Parsed MANIFEST of one checkpoint.
struct checkpoint_info {
  std::uint32_t version{0};
  std::uint64_t fingerprint{0};   // campaign identity hash
  std::int64_t cursor_hours{0};   // next hour to run, hours since epoch
};

// Path of the published checkpoint under `dir` (what CURRENT points at),
// or nullopt when no checkpoint has been published. Throws state_error
// when CURRENT names a directory that does not exist (torn GC — should
// be impossible under the publish protocol).
std::optional<std::string> current_checkpoint(const std::string& dir);

// Read and verify a checkpoint's MANIFEST. Throws invalid_argument_error
// on a corrupt or version-mismatched manifest.
checkpoint_info read_checkpoint_info(const std::string& checkpoint_path);

// Test hook: make the next `count` checkpoint file writes fail as if the
// disk were full (ENOSPC / short write). Lets tests drive the publish
// failure path — partial staging dir quarantined, storage_error thrown,
// old CURRENT left valid — without actually filling a filesystem.
void set_checkpoint_write_failures_for_testing(int count);

// Small-file CRC helpers shared with the service registry: payload plus
// a u32 crc32 trailer. write_crc_file is a plain write (callers get
// atomicity from a tmp + rename publish) and honors the write-failure
// test hook, throwing storage_error on failure. read_crc_file throws
// not_found_error when the file is missing and invalid_argument_error on
// truncation or a CRC mismatch.
void write_crc_file(const std::string& path, std::string_view payload);
std::string read_crc_file(const std::string& path);

}  // namespace clasp

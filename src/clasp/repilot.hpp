// Server-list refresh (§5 future work).
//
// The paper ran the pilot scans once, at campaign start, and notes that
// CLASP therefore "cannot adapt to changes in the use of interdomain
// links and any new deployment of speed test servers". This module
// implements the proposed fix: re-run the pilot + selection at any later
// time and diff the result against the previous selection — links gained
// and lost, servers to deploy and to retire — so a long campaign can
// roll its server lists forward without operator intervention.
#pragma once

#include <vector>

#include "clasp/selection.hpp"

namespace clasp {

// Difference between two topology selections of the same region.
struct selection_diff {
  // Interdomain links (far-side interfaces) seen only in the new pilot.
  std::vector<ipv4_addr> links_gained;
  // Links that disappeared from the pilot.
  std::vector<ipv4_addr> links_lost;
  // Servers to add to the measurement list.
  std::vector<std::size_t> servers_to_deploy;
  // Servers no longer covering a live link.
  std::vector<std::size_t> servers_to_retire;

  bool unchanged() const {
    return links_gained.empty() && links_lost.empty() &&
           servers_to_deploy.empty() && servers_to_retire.empty();
  }
};

// Compare a previous selection with a fresh one.
selection_diff diff_selections(const topology_selection_result& previous,
                               const topology_selection_result& fresh);

// Run a fresh pilot + selection and produce the rollover plan in one
// call. The caller supplies the same selector/vm/config used for the
// original selection (typically months earlier).
struct repilot_result {
  topology_selection_result fresh;
  selection_diff diff;
};

repilot_result refresh_selection(const topology_selector& selector,
                                 const endpoint& vm,
                                 const topology_selection_config& config,
                                 const topology_selection_result& previous,
                                 hour_stamp at, rng& r);

}  // namespace clasp

// Raw-measurement artifact serialization (the data pipeline of §3.2-3.3).
//
// The real platform stores compressed raw artifacts (speed-test results,
// tcpdump captures, someta metadata, scamper traceroutes) in a cloud
// bucket; an analysis VM in the same region parses them back into the
// time-series store. This module implements that interchange as a
// line-oriented text format ("warts-lite"):
//
//   R|<server_id>|<hour>|<tier>|<down_mbps>|<up_mbps>|<lat_ms>|<dloss>|<uloss>|<episode>
//   T|<src>|<dst>|<hour>|<hop ttl:addr:rtt>,...   (addr "*" = no response)
//
// Serialization and parsing round-trip exactly (doubles carried with
// enough digits), and the parser rejects malformed lines with
// invalid_argument_error — the analysis VM must not ingest garbage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "probes/traceroute.hpp"
#include "speedtest/webtest.hpp"

namespace clasp {

// One line per report.
std::string serialize_report(const speed_test_report& report);
speed_test_report parse_report(const std::string& line);

// One line per traceroute.
std::string serialize_traceroute(const traceroute_result& trace);
traceroute_result parse_traceroute(const std::string& line);

// A bundle of mixed artifact lines (what one VM uploads per hour).
struct artifact_bundle {
  std::vector<speed_test_report> reports;
  std::vector<traceroute_result> traces;
};

std::string serialize_bundle(const artifact_bundle& bundle);
// Parses a whole bundle; throws on any malformed line (with its number).
artifact_bundle parse_bundle(const std::string& text);

// --- binary encoding ("warts-lite", after scamper's warts format) ----------
//
// The real platform ships compressed binary captures; the binary codec
// packs a bundle into a compact byte stream: a 4-byte magic, varint
// record counts, varint-delta hour stamps, and fixed-point millis/mbps.
// Roughly 4-6x smaller than the text form for traceroute-heavy bundles.
// parse_bundle_binary validates the magic and every length field and
// throws invalid_argument_error on truncated or corrupt input.
std::vector<std::uint8_t> serialize_bundle_binary(
    const artifact_bundle& bundle);
artifact_bundle parse_bundle_binary(const std::vector<std::uint8_t>& bytes);

}  // namespace clasp

// Community vantage-point swarm — the churn-tolerant pre-test substrate.
//
// The paper's §3.1 differential pre-test leased a fixed Speedchecker
// panel. Community platforms in the Globalping mold run instead on a
// large pool of volunteer probes that join and leave constantly, meter
// every request against per-probe credit budgets and per-probe rate
// limits, and still have to keep ⟨city, AS⟩ coverage usable. This module
// models that substrate on top of speedchecker_service:
//
//  * membership — a netsim churn_plan gives every probe a deterministic
//    per-hour online/offline timeline keyed by (seed, probe index), so
//    the swarm's shape is a pure function of configuration (and swarm-off
//    behaves exactly like the fixed panel: everyone always online),
//  * credits — each probe carries its own monthly credit budget,
//    generalizing the account-level monthly-quota map the fixed panel
//    already enforced; an exhausted probe refuses instead of throwing,
//  * rate limits — at most rate_limit_per_hour requests per probe-hour,
//  * accounting — refusals are reported as typed `refusal` values so the
//    coverage scheduler in differential.cpp can substitute a same-tuple
//    probe or record a missed round, while account-level faults
//    (budget_exceeded_error, post-retirement state_error) still surface
//    to the caller, which degrades gracefully rather than aborting.
//
// Both ledgers (the account month map and the per-probe credit map)
// serialize through save_state/load_state; the campaign checkpoint layer
// carries them so a resumed campaign cannot double-spend its pre-test
// budget (see DESIGN.md, "Vantage swarm & coverage scheduling").
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "clasp/speedchecker.hpp"
#include "netsim/faults.hpp"

namespace clasp {

struct swarm_config {
  // Off by default: the pre-test then runs the legacy fixed panel and is
  // byte-identical to builds without this module.
  bool enabled{false};
  // Mixed into the platform's stream seed so two swarms over one world
  // can churn differently.
  std::uint64_t seed{0};
  // Per-hour membership rates (see churn_plan): an offline probe joins
  // with join_rate, an online probe leaves with leave_rate.
  double join_rate{0.0};
  double leave_rate{0.0};
  // Monthly credit budget per probe; 0 = unmetered.
  std::size_t credits_per_probe{0};
  // Requests per probe per hour; 0 = unlimited.
  unsigned rate_limit_per_hour{0};
  // The scheduler's coverage floor: rounds whose covered-tuple fraction
  // falls below this are counted (and reported) as below-target.
  double coverage_target{0.9};
  // Same-tuple stand-ins tried after the round's primary probe refuses.
  unsigned max_substitutes{3};
  // Hours before a missed tuple round is retried within the round gap.
  unsigned retry_backoff_hours{1};

  // Named presets: "off", "low" (background community churn) and "high"
  // (adversarial churn + tight budgets). Throws invalid_argument_error
  // on other names.
  static swarm_config preset(std::string_view level);
};

// Per-⟨city, AS⟩ pre-test coverage accounting. One scheduled round is one
// pre-test cadence slot (both tiers sampled = completed); region and tier
// are fixed by the differential run that owns the report.
struct tuple_coverage {
  city_id city{};
  asn network{};
  std::size_t probes{0};             // swarm members in the tuple
  std::size_t scheduled_rounds{0};
  std::size_t completed_rounds{0};
  std::size_t retried_rounds{0};     // completed only after backoff retry
  std::size_t substituted_rounds{0}; // completed by a non-primary probe
  std::size_t missed_rounds{0};      // no admissible probe in the tuple
  std::size_t max_stale_run{0};      // longest consecutive missed streak

  double coverage() const {
    return scheduled_rounds == 0
               ? 1.0
               : static_cast<double>(completed_rounds) /
                     static_cast<double>(scheduled_rounds);
  }
};

// Aggregate swarm statistics for one pre-test run.
struct swarm_report {
  std::size_t probe_population{0};
  std::size_t min_active{0};
  std::size_t max_active{0};
  double mean_active{0.0};
  std::size_t joins{0};
  std::size_t leaves{0};
  std::size_t credits_spent{0};
  std::size_t rate_limited{0};   // refusals, not probes
  std::size_t substitutions{0};
  std::size_t missed_rounds{0};  // summed over tuples
  std::size_t stale_tuples{0};   // tuples with >= 1 missed round
  std::size_t rounds_below_target{0};
  double mean_coverage{1.0};
};

class vantage_swarm {
 public:
  // `stream_seed` decorrelates swarms of different platforms (the
  // platform passes its internet seed); the churn streams hash it
  // together with config.seed.
  vantage_swarm(const route_planner* planner, const network_view* view,
                swarm_config config = {},
                speedchecker_config platform = {},
                std::uint64_t stream_seed = 0);

  bool enabled() const { return config_.enabled; }
  const swarm_config& config() const { return config_; }
  // The probe population (the platform's vantage points, in order; probe
  // indices below index into this).
  const std::vector<host_index>& probes() const;
  // The leased account underneath (quota + retirement still apply).
  speedchecker_service& platform() { return platform_; }
  const speedchecker_service& platform() const { return platform_; }

  // Build (or rebuild, for a different window) the membership timeline.
  // Idempotent per window; swarm-off plans are empty (always online).
  void plan(hour_range window);

  bool online(std::size_t probe_index, hour_stamp at) const;
  std::size_t active_probes(hour_stamp at) const;
  const churn_plan& churn() const { return churn_; }

  // Why try_probe refused without consuming anything.
  enum class refusal : std::uint8_t {
    none = 0,
    offline = 1,         // probe not in the swarm this hour
    out_of_credits = 2,  // probe's monthly credit budget exhausted
    rate_limited = 3,    // probe's hourly request cap reached
  };

  // Ping `target` from the probe, enforcing swarm membership, per-probe
  // credits and the hourly rate limit on top of the account's quota and
  // retirement. Swarm-level refusals return nullopt (reason in *why) and
  // consume nothing — account-level faults (budget_exceeded_error,
  // state_error) still throw, exactly as the fixed panel does. Draws from
  // `r` only on success, so refusal handling never perturbs the
  // measurement stream.
  std::optional<vp_probe_result> try_probe(std::size_t probe_index,
                                           const endpoint& target,
                                           service_tier tier, hour_stamp at,
                                           rng& r, refusal* why = nullptr);

  // True when the account itself would serve a probe at `at` (quota left,
  // before retirement) — the scheduler's cheap skip-ahead check.
  bool platform_admissible(hour_stamp at) const {
    return platform_.admissible(at);
  }

  // Credits spent across all probes since construction/load.
  std::size_t credits_spent() const { return credits_spent_; }
  std::size_t rate_limited_count() const { return rate_limited_; }
  // Credits the probe has left in the month containing `at`
  // (SIZE_MAX when unmetered).
  std::size_t credits_remaining(std::size_t probe_index, hour_stamp at) const;

  // Scheduler-side accounting hooks: keep the obs counters/gauges for
  // substitutions, missed rounds and coverage in one place (family names
  // in obs/families.hpp). No-ops without obs.
  void note_substitution();
  void note_missed_round();
  void publish_round(hour_stamp at, double mean_coverage,
                     std::size_t stale_tuples) const;

  // Serialize / restore both ledgers (account months + per-probe monthly
  // credits). Wire format is length-prefixed sorted maps; skip_state
  // consumes one serialized blob without applying it (resume with no
  // swarm wired).
  void save_state(binary_writer& out) const;
  void load_state(binary_reader& in);
  static void skip_state(binary_reader& in);

 private:
  swarm_config config_;
  speedchecker_service platform_;
  std::uint64_t churn_seed_{0};
  churn_plan churn_;
  bool planned_{false};
  // month_key -> per-probe credits used this month.
  std::map<int, std::vector<std::uint32_t>> credits_used_;
  // Hourly rate-limit window (transient; deliberately not serialized —
  // checkpoints happen on hour boundaries).
  std::int64_t rate_hour_{std::numeric_limits<std::int64_t>::min()};
  std::vector<std::uint32_t> rate_used_;
  std::size_t credits_spent_{0};
  std::size_t rate_limited_{0};
};

const char* to_string(vantage_swarm::refusal r);

}  // namespace clasp

// Two-state Gaussian hidden-Markov congestion detector.
//
// §5 of the paper lists hidden Markov models (Mouchet et al.) as future
// work for capturing congestion patterns in throughput series. This is a
// complete implementation: a two-state HMM (normal / congested) with
// Gaussian emissions over the normalized throughput deficit, fitted with
// Baum-Welch (EM) and decoded with Viterbi. Compared to the paper's
// fixed-threshold V_H rule it adapts per series and enforces temporal
// persistence (congestion episodes last hours, not isolated samples).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tsdb/tsdb.hpp"
#include "util/sim_time.hpp"

namespace clasp {

// Parameters of a fitted two-state Gaussian HMM. State 0 = normal,
// state 1 = congested (higher mean deficit).
struct hmm_model {
  double initial_congested{0.1};
  // Transition probabilities.
  double stay_normal{0.95};
  double stay_congested{0.80};
  // Gaussian emissions over the observation (throughput deficit).
  double mean[2] = {0.1, 0.6};
  double stddev[2] = {0.1, 0.2};
  // Fit diagnostics.
  double log_likelihood{0.0};
  std::size_t iterations{0};
  bool converged{false};
};

struct hmm_config {
  std::size_t max_iterations{60};
  double tolerance{1e-5};
  // Lower bound on emission standard deviations (keeps EM stable on
  // near-constant series).
  double min_stddev{0.02};
};

// Fit a two-state model to an observation sequence with Baum-Welch.
// Observations are arbitrary real values (the detector uses the V_H-style
// deficit in [0, 1]). Throws invalid_argument_error for fewer than 8
// observations.
hmm_model fit_hmm(std::span<const double> observations,
                  const hmm_config& config = {});

// Most-likely state sequence (Viterbi); true = congested.
std::vector<bool> viterbi_decode(const hmm_model& model,
                                 std::span<const double> observations);

// Full detector over a throughput series: computes the per-hour deficit
// V_H(s,t) (normalized against the local-day maximum, as §3.3), fits the
// HMM, and returns per-point congestion labels aligned with the series'
// points. The fit is only trusted ("usable") when the congested state is
// both well separated (mean gap >= `min_separation`) and genuinely deep
// (mean deficit >= `min_congested_mean`) — otherwise the second state is
// just the ordinary diurnal dip and the series is treated as uncongested.
struct hmm_detection {
  hmm_model model;
  std::vector<bool> congested;  // aligned with series.points()
  bool usable{false};           // states separated enough to trust
};

hmm_detection hmm_detector(const ts_series& series, timezone_offset tz,
                           double min_separation = 0.30,
                           double min_congested_mean = 0.45,
                           const hmm_config& config = {});

}  // namespace clasp

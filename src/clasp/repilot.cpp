#include "clasp/repilot.hpp"

#include <algorithm>
#include <unordered_set>

namespace clasp {

selection_diff diff_selections(const topology_selection_result& previous,
                               const topology_selection_result& fresh) {
  selection_diff diff;

  std::unordered_set<std::uint32_t> old_links, new_links;
  for (const border_observation& obs : previous.pilot.links) {
    old_links.insert(obs.far_side.value());
  }
  for (const border_observation& obs : fresh.pilot.links) {
    new_links.insert(obs.far_side.value());
  }
  for (const border_observation& obs : fresh.pilot.links) {
    if (!old_links.contains(obs.far_side.value())) {
      diff.links_gained.push_back(obs.far_side);
    }
  }
  for (const border_observation& obs : previous.pilot.links) {
    if (!new_links.contains(obs.far_side.value())) {
      diff.links_lost.push_back(obs.far_side);
    }
  }

  std::unordered_set<std::size_t> old_servers, new_servers;
  for (const selected_server& s : previous.selected) {
    old_servers.insert(s.server_id);
  }
  for (const selected_server& s : fresh.selected) {
    new_servers.insert(s.server_id);
  }
  for (const selected_server& s : fresh.selected) {
    if (!old_servers.contains(s.server_id)) {
      diff.servers_to_deploy.push_back(s.server_id);
    }
  }
  for (const selected_server& s : previous.selected) {
    if (!new_servers.contains(s.server_id)) {
      diff.servers_to_retire.push_back(s.server_id);
    }
  }

  const auto by_value = [](auto& v) { std::sort(v.begin(), v.end()); };
  by_value(diff.servers_to_deploy);
  by_value(diff.servers_to_retire);
  std::sort(diff.links_gained.begin(), diff.links_gained.end());
  std::sort(diff.links_lost.begin(), diff.links_lost.end());
  return diff;
}

repilot_result refresh_selection(const topology_selector& selector,
                                 const endpoint& vm,
                                 const topology_selection_config& config,
                                 const topology_selection_result& previous,
                                 hour_stamp at, rng& r) {
  repilot_result out;
  out.fresh = selector.run(vm, config, at, r);
  out.diff = diff_selections(previous, out.fresh);
  return out;
}

}  // namespace clasp

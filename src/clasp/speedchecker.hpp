// Speedchecker-style measurement platform facade (§3.1's pre-test source).
//
// The paper leased user-defined latency measurements from Speedchecker's
// >10k vantage points. Two properties of such platforms matter enough to
// model (§1: host-based platforms "do not support or heavily restrict
// throughput measurements using quota systems"; footnote 1: Speedchecker
// retired the user-defined measurement function in June 2021):
//
//  * quotas — every probe debits a monthly per-account quota; exceeding
//    it throws budget_exceeded_error,
//  * retirement — after a configurable date the API stops serving
//    user-defined measurements entirely (state_error).
//
// The differential pre-test runs through this facade, so campaign
// planning has to budget its pre-test probes like everything else.
#pragma once

#include <map>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/routing.hpp"
#include "probes/traceroute.hpp"
#include "util/binio.hpp"

namespace clasp {

struct speedchecker_config {
  // Monthly probe quota for the account (the paper needed >100 samples
  // per tuple across ~1k tuples, well within a commercial plan).
  std::size_t monthly_quota{1'000'000};
  // The service retirement date (footnote 1: June 2021).
  hour_stamp retirement{hour_stamp::from_civil({2021, 6, 1}, 0)};
};

// One latency sample from a vantage point toward a destination.
struct vp_probe_result {
  host_index vantage_point;
  millis rtt;
  hour_stamp at;
};

class speedchecker_service {
 public:
  speedchecker_service(const route_planner* planner,
                       const network_view* view,
                       speedchecker_config config = {});

  // All vantage points the platform offers.
  const std::vector<host_index>& vantage_points() const;

  // Ping from a VP toward a cloud endpoint over a tier. Debits one probe
  // from the current month's quota. Throws budget_exceeded_error when the
  // month's quota is exhausted and state_error after retirement.
  vp_probe_result probe(host_index vp, const endpoint& target,
                        service_tier tier, hour_stamp at, rng& r);

  // Probes already spent in the month containing `at`.
  std::size_t used_in_month(hour_stamp at) const;
  std::size_t quota() const { return config_.monthly_quota; }
  const speedchecker_config& config() const { return config_; }

  // True when probe(at) would be served: before retirement and with
  // monthly quota left. Lets a scheduler skip an exhausted span cheaply
  // instead of paying one thrown exception per refused probe.
  bool admissible(hour_stamp at) const;

  // Serialize / restore the month ledger (`used_`). The checkpoint layer
  // carries this so a resumed campaign's pre-test accounting cannot
  // double-spend or silently reset the account quota.
  void save_state(binary_writer& out) const;
  void load_state(binary_reader& in);

  // Calendar-month ledger key (year*12 + month). Shared with the swarm's
  // per-probe credit ledger so both accounts roll over together.
  static int month_key(hour_stamp at);

 private:
  const route_planner* planner_;
  const network_view* view_;
  speedchecker_config config_;
  prober prober_;
  // (year*12 + month) -> probes used.
  std::map<int, std::size_t> used_;
};

}  // namespace clasp

#include "clasp/platform.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp {

namespace {

// Mirror platform_config::fleet_scale into the internet config (which
// deploy_servers reads) before the substrate is generated. Member
// initializers run in declaration order, so this must happen inside
// config_'s initializer.
platform_config resolve_fleet_scale(platform_config config) {
  if (config.fleet_scale == 0) {
    throw invalid_argument_error(
        "platform: fleet_scale must be >= 1 (synthetic fleet multiplier; "
        "use 1 for the paper-scale fleet)");
  }
  if (config.fleet_scale != 1) {
    config.internet.fleet_scale = config.fleet_scale;
  }
  return config;
}

}  // namespace

clasp_platform::clasp_platform(platform_config config)
    : config_(resolve_fleet_scale(std::move(config))),
      net_(generate_internet(config_.internet)),
      rng_(hash_tag(config_.internet.seed, "platform")) {
  if (config_.obs_metrics) {
    obs::set_enabled(true);
    obs::register_core_families();
  }
  if (config_.obs_span_ring_capacity > 0) {
    obs::trace_ring::instance().set_capacity(config_.obs_span_ring_capacity);
  }
  planner_ = std::make_unique<route_planner>(&net_);
  view_ = std::make_unique<network_view>(&net_);
  registry_ = deploy_servers(net_, config_.servers);
  cloud_ = std::make_unique<gcp_cloud>(&net_, planner_.get());
  // The persistent pre-test swarm: its churn streams mix the internet
  // seed so two platforms over different worlds churn differently, and
  // its ledgers ride along in every campaign checkpoint (see
  // set_pretest_swarm below). Disabled swarms are inert — the pre-test
  // then leases a fresh fixed panel per region, the legacy behavior.
  swarm_ = std::make_unique<vantage_swarm>(
      planner_.get(), view_.get(), config_.differential.swarm,
      config_.differential.platform, config_.internet.seed);
}

const topology_selection_result& clasp_platform::select_topology(
    const std::string& region) {
  const auto it = topology_results_.find(region);
  if (it != topology_results_.end()) return it->second;

  // Pilot VM: created for the scan, terminated afterwards (the paper runs
  // the pilot once at campaign start).
  const gcp_cloud::vm_id pilot_vm =
      cloud_->create_vm(region, service_tier::premium);
  topology_selection_config sel_config;
  const auto budget = config_.topology_budgets.find(region);
  if (budget != config_.topology_budgets.end()) {
    sel_config.deployment_budget = budget->second;
  }
  topology_selector selector(planner_.get(), view_.get(), &registry_);
  rng r = rng_.fork("topo-select:" + region);
  auto result =
      selector.run(cloud_->vm_endpoint(pilot_vm), sel_config,
                   topology_campaign_window().begin_at + (-72), r);
  cloud_->terminate_vm(pilot_vm);
  return topology_results_.emplace(region, std::move(result)).first->second;
}

const differential_selection_result& clasp_platform::select_differential(
    const std::string& region) {
  const auto it = differential_results_.find(region);
  if (it != differential_results_.end()) return it->second;

  const gcp_cloud::vm_id probe_vm =
      cloud_->create_vm(region, service_tier::premium);
  differential_selector selector(planner_.get(), view_.get(), &registry_);
  rng r = rng_.fork("diff-select:" + region);
  auto result = selector.run(cloud_->vm_endpoint(probe_vm),
                             config_.differential, r, swarm_.get());
  cloud_->terminate_vm(probe_vm);
  return differential_results_.emplace(region, std::move(result))
      .first->second;
}

campaign_runner& clasp_platform::start_topology_campaign(
    const std::string& region, hour_range window) {
  const topology_selection_result& selection = select_topology(region);
  std::vector<std::size_t> servers;
  servers.reserve(selection.selected.size());
  for (const selected_server& s : selection.selected) {
    servers.push_back(s.server_id);
  }
  // Selection sees only the base fleet; the campaign measures every
  // replica of each selected server (identity at fleet_scale 1).
  servers = registry_.with_replicas(servers);
  campaign_config cfg;
  cfg.region = region;
  cfg.tier = service_tier::premium;
  cfg.label = "topology";
  cfg.window = window;
  cfg.workers = config_.campaign_workers;
  cfg.link_cache = config_.campaign_link_cache;
  cfg.batch_eval = config_.campaign_batch_eval;
  cfg.faults = config_.campaign_faults;
  cfg.heartbeat_every_hours = config_.obs_heartbeat_every_hours;
  if (!config_.campaign_checkpoint_dir.empty()) {
    cfg.checkpoint_dir = claim_checkpoint_subdir(cfg.label, region);
    cfg.checkpoint_every_hours = config_.campaign_checkpoint_every_hours;
  }
  auto runner = std::make_unique<campaign_runner>(cloud_.get(), view_.get(),
                                                  &registry_, &store_);
  runner->deploy(cfg, servers);
  if (cfg.faults.enabled) runner->set_churn_registry(&registry_);
  runner->set_pretest_swarm(swarm_.get());
  campaigns_.push_back(std::move(runner));
  return *campaigns_.back();
}

std::string clasp_platform::claim_checkpoint_subdir(const std::string& label,
                                                    const std::string& region) {
  std::string dir = config_.campaign_checkpoint_dir;
  if (!config_.campaign_namespace.empty()) {
    dir += "/" + config_.campaign_namespace;
  }
  dir += "/" + label + "-" + region;
  if (!claimed_checkpoint_dirs_.insert(dir).second) {
    throw state_error(
        "clasp_platform: checkpoint dir " + dir +
        " is already claimed by another campaign — two campaigns sharing a "
        "subdirectory would interleave WAL records; use a distinct "
        "campaign_namespace (or label/region) per campaign");
  }
  return dir;
}

std::pair<campaign_runner*, campaign_runner*>
clasp_platform::start_differential_campaign(const std::string& region,
                                            hour_range window) {
  const differential_selection_result& selection = select_differential(region);
  std::vector<std::size_t> servers;
  servers.reserve(selection.selected.size());
  for (const auto& s : selection.selected) servers.push_back(s.server_id);
  if (servers.empty()) {
    throw state_error("clasp_platform: differential selection for " + region +
                      " found no servers");
  }
  servers = registry_.with_replicas(servers);

  campaign_runner* runners[2] = {nullptr, nullptr};
  const service_tier tiers[2] = {service_tier::premium,
                                 service_tier::standard};
  const char* labels[2] = {"diff-premium", "diff-standard"};
  for (int i = 0; i < 2; ++i) {
    campaign_config cfg;
    cfg.region = region;
    cfg.tier = tiers[i];
    cfg.label = labels[i];
    cfg.window = window;
    cfg.workers = config_.campaign_workers;
    cfg.link_cache = config_.campaign_link_cache;
    cfg.batch_eval = config_.campaign_batch_eval;
    cfg.faults = config_.campaign_faults;
    cfg.heartbeat_every_hours = config_.obs_heartbeat_every_hours;
    if (!config_.campaign_checkpoint_dir.empty()) {
      cfg.checkpoint_dir = claim_checkpoint_subdir(cfg.label, region);
      cfg.checkpoint_every_hours = config_.campaign_checkpoint_every_hours;
    }
    auto runner = std::make_unique<campaign_runner>(cloud_.get(), view_.get(),
                                                    &registry_, &store_);
    runner->deploy(cfg, servers);
    if (cfg.faults.enabled) runner->set_churn_registry(&registry_);
    runner->set_pretest_swarm(swarm_.get());
    campaigns_.push_back(std::move(runner));
    runners[i] = campaigns_.back().get();
  }
  return {runners[0], runners[1]};
}

void clasp_platform::run_campaigns(
    const std::vector<campaign_runner*>& runners, unsigned workers) {
  if (runners.empty()) return;
  hour_stamp begin = runners.front()->config().window.begin_at;
  hour_stamp end = runners.front()->config().window.end_at;
  for (const campaign_runner* r : runners) {
    if (r == nullptr) {
      throw invalid_argument_error("run_campaigns: null runner");
    }
    begin = std::min(begin, r->config().window.begin_at);
    end = std::max(end, r->config().window.end_at);
  }

  thread_pool pool(workers);
  struct vm_task {
    campaign_runner* runner;
    std::size_t vm_slot;
  };
  std::vector<vm_task> tasks;
  // Reused across hours: commit moves only the someta samples out, so the
  // staging buffers keep their capacity for the next hour.
  std::vector<campaign_runner::vm_hour_staging> staged;
  for (hour_stamp at = begin; at < end; ++at) {
    tasks.clear();
    bool want_cache = false;
    for (campaign_runner* r : runners) {
      const hour_range& w = r->config().window;
      if (!(w.begin_at <= at && at < w.end_at)) continue;
      // Coordinator-side fault events (churn retirement, VM preemption/
      // redeploy) fire before any staging worker reads this hour.
      r->begin_hour(at);
      want_cache = want_cache || r->config().link_cache;
      for (std::size_t v = 0; v < r->vm_count(); ++v) {
        tasks.push_back({r, v});
      }
    }
    if (tasks.empty()) continue;
    // All runners share this platform's view, hence one condition cache
    // holding the union of their registered links: prefill it once per
    // hour before any staging worker reads.
    if (want_cache) view_->link_cache().prefill(at, &pool);
    // Batched fast path: each runner evaluates its whole session arena for
    // this hour before staging workers read per-session metrics from it.
    for (campaign_runner* r : runners) {
      const hour_range& w = r->config().window;
      if (w.begin_at <= at && at < w.end_at) r->evaluate_hour(at, &pool);
    }
    staged.resize(tasks.size());
    pool.parallel_for(tasks.size(), [&](std::size_t i) {
      tasks[i].runner->stage_vm_hour_into(tasks[i].vm_slot, at, staged[i]);
    });
    // Merge in (campaign creation, VM slot) order: identical to each
    // campaign replaying the hour on its own.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      tasks[i].runner->commit_vm_hour(tasks[i].vm_slot, std::move(staged[i]));
    }
  }
  for (campaign_runner* r : runners) r->charge_monthly_storage();
}

std::vector<interconnect_report> clasp_platform::interconnect_congestion(
    const std::string& region, double threshold) {
  const topology_selection_result& selection = select_topology(region);
  std::vector<interconnect_report> out;
  for (const selected_server& s : selection.selected) {
    const speed_server& server = registry_.server(s.server_id);
    const tag_set tags = {
        {"campaign", "topology"},
        {"region", region},
        {"tier", "premium"},
        {"server", std::to_string(server.id)},
        {"network", std::to_string(server.network.value)},
        {"city", net_.geo->city(server.city).name},
    };
    const ts_series* series = store_.find("download_mbps", tags);
    if (series == nullptr) continue;  // link not measured (budget/window)
    interconnect_report report;
    report.far_side = s.far_side;
    report.neighbor = s.neighbor;
    report.server_id = s.server_id;
    report.summary =
        summarize_server(*series, timezone_of_server(s.server_id), threshold);
    out.push_back(report);
  }
  return out;
}

timezone_offset clasp_platform::timezone_of_server(
    std::size_t server_id) const {
  const speed_server& s = registry_.server(server_id);
  return net_.geo->city(s.city).tz;
}

clasp_platform::labeled_series clasp_platform::download_series(
    const std::string& campaign_label, const std::string& region,
    const std::string& metric, const std::string& tier) const {
  labeled_series out;
  tag_filter filter;
  filter.required["campaign"] = campaign_label;
  filter.required["region"] = region;
  if (!tier.empty()) filter.required["tier"] = tier;
  for (const ts_series* s : store_.query(metric, filter)) {
    out.series.push_back(s);
    const auto server_tag = s->tag("server");
    if (!server_tag) {
      throw state_error("clasp_platform: series missing server tag");
    }
    out.tz.push_back(
        timezone_of_server(static_cast<std::size_t>(std::stoul(*server_tag))));
  }
  return out;
}

}  // namespace clasp

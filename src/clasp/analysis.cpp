#include "clasp/analysis.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace clasp {

namespace {

// Visit a series' points grouped by local day. The store enforces
// time-ordered appends, so local_day_index is non-decreasing over the
// point array and each day is one contiguous run — no map, no per-point
// allocation, same visit order as sorting by day. `fn` receives
// (local_day, begin, end) with [begin, end) the day's points.
template <typename Fn>
void for_each_local_day(const ts_series& series, timezone_offset tz,
                        Fn&& fn) {
  const auto& points = series.points();
  const ts_point* const first = points.data();
  const ts_point* const last = first + points.size();
  const ts_point* run = first;
  while (run != last) {
    const std::int64_t day = run->at.local_day_index(tz);
    const ts_point* next = run + 1;
    while (next != last && next->at.local_day_index(tz) == day) ++next;
    fn(day, run, next);
    run = next;
  }
}

}  // namespace

std::vector<day_variability> daily_variability(const ts_series& series,
                                               timezone_offset tz,
                                               std::size_t min_samples) {
  std::vector<day_variability> out;
  for_each_local_day(series, tz, [&](std::int64_t day, const ts_point* begin,
                                     const ts_point* end) {
    const std::size_t n = static_cast<std::size_t>(end - begin);
    if (n < min_samples) return;
    day_variability dv;
    dv.local_day = day;
    dv.samples = n;
    dv.t_max = begin->value;
    dv.t_min = begin->value;
    for (const ts_point* p = begin; p != end; ++p) {
      dv.t_max = std::max(dv.t_max, p->value);
      dv.t_min = std::min(dv.t_min, p->value);
    }
    dv.v = dv.t_max > 0.0 ? (dv.t_max - dv.t_min) / dv.t_max : 0.0;
    out.push_back(dv);
  });
  return out;
}

std::vector<hour_label> intraday_labels(const ts_series& series,
                                        timezone_offset tz, double threshold,
                                        std::size_t min_samples) {
  std::vector<hour_label> out;
  out.reserve(series.size());
  for_each_local_day(series, tz, [&](std::int64_t, const ts_point* begin,
                                     const ts_point* end) {
    if (static_cast<std::size_t>(end - begin) < min_samples) return;
    double t_max = begin->value;
    for (const ts_point* p = begin; p != end; ++p) {
      t_max = std::max(t_max, p->value);
    }
    for (const ts_point* p = begin; p != end; ++p) {
      hour_label label;
      label.at = p->at;
      label.v_h = t_max > 0.0 ? (t_max - p->value) / t_max : 0.0;
      label.congested = label.v_h > threshold;
      out.push_back(label);
    }
  });
  return out;
}

threshold_sweep sweep_thresholds(const std::vector<const ts_series*>& series,
                                 const std::vector<timezone_offset>& tz_of,
                                 std::size_t grid_points) {
  if (series.size() != tz_of.size()) {
    throw invalid_argument_error("sweep_thresholds: size mismatch");
  }
  if (grid_points < 3) {
    throw invalid_argument_error("sweep_thresholds: grid too small");
  }
  threshold_sweep sweep;
  sweep.thresholds.resize(grid_points);
  for (std::size_t i = 0; i < grid_points; ++i) {
    sweep.thresholds[i] =
        static_cast<double>(i) / static_cast<double>(grid_points - 1);
  }

  // Collect all V(s,d) and V_H(s,t) values once, then sweep. One pass
  // over each series yields both: a day's V is derived from the same
  // t_max/t_min scan its hours' V_H values need, so labeling twice (once
  // through daily_variability, once through intraday_labels) would redo
  // the grouping and the max scan for nothing.
  constexpr std::size_t kMinSamples = 12;  // the label functions' default
  std::vector<double> day_vs;
  std::vector<double> hour_vs;
  for (std::size_t si = 0; si < series.size(); ++si) {
    for_each_local_day(
        *series[si], tz_of[si],
        [&](std::int64_t, const ts_point* begin, const ts_point* end) {
          if (static_cast<std::size_t>(end - begin) < kMinSamples) return;
          double t_max = begin->value;
          double t_min = begin->value;
          for (const ts_point* p = begin; p != end; ++p) {
            t_max = std::max(t_max, p->value);
            t_min = std::min(t_min, p->value);
          }
          day_vs.push_back(t_max > 0.0 ? (t_max - t_min) / t_max : 0.0);
          for (const ts_point* p = begin; p != end; ++p) {
            hour_vs.push_back(t_max > 0.0 ? (t_max - p->value) / t_max : 0.0);
          }
        });
  }
  std::sort(day_vs.begin(), day_vs.end());
  std::sort(hour_vs.begin(), hour_vs.end());

  sweep.day_fraction.resize(grid_points);
  sweep.hour_fraction.resize(grid_points);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double h = sweep.thresholds[i];
    // Fraction strictly greater than h.
    sweep.day_fraction[i] =
        day_vs.empty() ? 0.0 : 1.0 - cdf_at(day_vs, h);
    sweep.hour_fraction[i] =
        hour_vs.empty() ? 0.0 : 1.0 - cdf_at(hour_vs, h);
  }
  return sweep;
}

double choose_threshold_elbow(const threshold_sweep& sweep) {
  const std::size_t idx =
      elbow_index(sweep.thresholds, sweep.day_fraction);
  return sweep.thresholds[idx];
}

server_congestion_summary summarize_server(
    const ts_series& series, timezone_offset tz, double threshold,
    double congested_server_day_fraction) {
  server_congestion_summary summary;
  std::unordered_map<std::int64_t, bool> day_congested;
  for (const hour_label& hl : intraday_labels(series, tz, threshold)) {
    ++summary.hours_measured;
    const std::int64_t day = hl.at.local_day_index(tz);
    day_congested.try_emplace(day, false);
    if (hl.congested) {
      ++summary.congested_hours;
      day_congested[day] = true;
    }
  }
  summary.days_measured = day_congested.size();
  for (const auto& [day, congested] : day_congested) {
    if (congested) ++summary.congested_days;
  }
  summary.congested_server =
      summary.congested_day_fraction() > congested_server_day_fraction;
  return summary;
}

std::array<double, 24> hourly_congestion_probability(const ts_series& series,
                                                     timezone_offset tz,
                                                     double threshold) {
  std::array<double, 24> events{};
  std::array<double, 24> measurements{};
  for (const hour_label& hl : intraday_labels(series, tz, threshold)) {
    const unsigned h = hl.at.local_hour_of_day(tz);
    measurements[h] += 1.0;
    if (hl.congested) events[h] += 1.0;
  }
  std::array<double, 24> prob{};
  for (unsigned h = 0; h < 24; ++h) {
    prob[h] = measurements[h] > 0.0 ? events[h] / measurements[h] : 0.0;
  }
  return prob;
}

std::vector<hour_label> latency_inflation_labels(const ts_series& latency,
                                                 timezone_offset tz,
                                                 double threshold,
                                                 std::size_t min_samples) {
  std::vector<hour_label> out;
  out.reserve(latency.size());
  for_each_local_day(latency, tz, [&](std::int64_t, const ts_point* begin,
                                      const ts_point* end) {
    if (static_cast<std::size_t>(end - begin) < min_samples) return;
    double l_min = begin->value;
    for (const ts_point* p = begin; p != end; ++p) {
      l_min = std::min(l_min, p->value);
    }
    if (l_min <= 0.0) return;
    for (const ts_point* p = begin; p != end; ++p) {
      hour_label label;
      label.at = p->at;
      label.v_h = (p->value - l_min) / l_min;  // latency inflation ratio
      label.congested = label.v_h > threshold;
      out.push_back(label);
    }
  });
  return out;
}

bool is_weekend_day(std::int64_t local_day_index) {
  // 2020-01-01 (day 0) was a Wednesday; Monday == 0 in this arithmetic.
  const std::int64_t dow = ((local_day_index % 7) + 7 + 2) % 7;
  return dow >= 5;
}

weekday_weekend_split split_by_day_type(const ts_series& series,
                                        timezone_offset tz,
                                        double threshold) {
  weekday_weekend_split out;
  for (const hour_label& l : intraday_labels(series, tz, threshold)) {
    const bool weekend = is_weekend_day(l.at.local_day_index(tz));
    if (weekend) {
      ++out.weekend_hours;
      out.weekend_congested += l.congested ? 1 : 0;
    } else {
      ++out.weekday_hours;
      out.weekday_congested += l.congested ? 1 : 0;
    }
  }
  return out;
}

ts_series downsample(const ts_series& series, std::int64_t bucket_hours,
                     downsample_op op) {
  if (bucket_hours <= 0) {
    throw invalid_argument_error("downsample: bucket_hours <= 0");
  }
  ts_series out(series.metric(), series.tags());
  std::int64_t bucket_start = 0;
  double acc = 0.0;
  std::size_t count = 0;
  const auto flush = [&]() {
    if (count == 0) return;
    const double value =
        op == downsample_op::mean ? acc / static_cast<double>(count) : acc;
    out.append(hour_stamp{bucket_start}, value);
    count = 0;
  };
  for (const ts_point& p : series.points()) {
    const std::int64_t start =
        p.at.hours_since_epoch() / bucket_hours * bucket_hours;
    if (count > 0 && start != bucket_start) flush();
    if (count == 0) {
      bucket_start = start;
      acc = p.value;
      count = 1;
      continue;
    }
    switch (op) {
      case downsample_op::mean: acc += p.value; break;
      case downsample_op::min: acc = std::min(acc, p.value); break;
      case downsample_op::max: acc = std::max(acc, p.value); break;
    }
    ++count;
  }
  flush();
  return out;
}

detector_validation validate_detector(const ts_series& download,
                                      const ts_series& ground_truth,
                                      timezone_offset tz, double threshold) {
  // Index ground truth by hour.
  std::unordered_map<std::int64_t, bool> gt;
  for (const ts_point& p : ground_truth.points()) {
    gt[p.at.hours_since_epoch()] = p.value > 0.5;
  }
  detector_validation v;
  for (const hour_label& hl : intraday_labels(download, tz, threshold)) {
    const auto it = gt.find(hl.at.hours_since_epoch());
    if (it == gt.end()) continue;
    const bool truth = it->second;
    if (hl.congested && truth) ++v.true_positive;
    else if (hl.congested && !truth) ++v.false_positive;
    else if (!hl.congested && truth) ++v.false_negative;
    else ++v.true_negative;
  }
  return v;
}

std::vector<hour_label> acf_detector_labels(const ts_series& series,
                                            timezone_offset tz,
                                            double acf_threshold,
                                            double amplitude_threshold) {
  // Gate on diurnal structure: strong 24h autocorrelation of the
  // throughput signal indicates a repeating daily pattern.
  std::vector<double> values;
  values.reserve(series.size());
  for (const ts_point& p : series.points()) values.push_back(p.value);
  const double acf24 = autocorrelation(values, 24);

  std::vector<hour_label> labels =
      intraday_labels(series, tz, amplitude_threshold);
  if (acf24 < acf_threshold) {
    // No diurnal structure: suppress all detections.
    for (hour_label& l : labels) l.congested = false;
  }
  return labels;
}

const char* to_string(congestion_direction d) {
  switch (d) {
    case congestion_direction::ingress: return "ingress";
    case congestion_direction::egress: return "egress";
    case congestion_direction::both: return "both";
    case congestion_direction::unknown: return "unknown";
  }
  return "?";
}

congestion_direction asymmetry_summary::dominant() const {
  const std::size_t conclusive = ingress_hours + egress_hours + both_hours;
  if (conclusive == 0) return congestion_direction::unknown;
  if (ingress_hours * 2 >= conclusive &&
      ingress_hours >= egress_hours && ingress_hours >= both_hours) {
    return congestion_direction::ingress;
  }
  if (egress_hours * 2 >= conclusive && egress_hours >= both_hours) {
    return congestion_direction::egress;
  }
  if (both_hours * 2 >= conclusive) return congestion_direction::both;
  return congestion_direction::unknown;
}

asymmetry_summary classify_asymmetry(const ts_series& download,
                                     const ts_series& download_loss,
                                     const ts_series& upload_loss,
                                     timezone_offset tz, double threshold,
                                     double high_loss, double low_loss) {
  if (high_loss <= low_loss) {
    throw invalid_argument_error("classify_asymmetry: high_loss <= low_loss");
  }
  std::unordered_map<std::int64_t, double> dl_loss, ul_loss;
  for (const ts_point& p : download_loss.points()) {
    dl_loss[p.at.hours_since_epoch()] = p.value;
  }
  for (const ts_point& p : upload_loss.points()) {
    ul_loss[p.at.hours_since_epoch()] = p.value;
  }

  asymmetry_summary out;
  for (const hour_label& l : intraday_labels(download, tz, threshold)) {
    if (!l.congested) continue;
    ++out.congested_hours;
    const auto dl = dl_loss.find(l.at.hours_since_epoch());
    const auto ul = ul_loss.find(l.at.hours_since_epoch());
    if (dl == dl_loss.end() || ul == ul_loss.end()) {
      ++out.unknown_hours;
      continue;
    }
    const bool dl_high = dl->second >= high_loss;
    const bool ul_high = ul->second >= high_loss;
    const bool ul_low = ul->second <= low_loss;
    const bool dl_low = dl->second <= low_loss;
    if (dl_high && ul_low) ++out.ingress_hours;
    else if (ul_high && dl_low) ++out.egress_hours;
    else if (dl_high && ul_high) ++out.both_hours;
    else ++out.unknown_hours;
  }
  return out;
}

double series_completeness(const ts_series& series, hour_range window) {
  if (!(window.begin_at < window.end_at)) return 0.0;
  std::size_t in_window = 0;
  for (const ts_point& p : series.points()) {
    if (window.begin_at <= p.at && p.at < window.end_at) ++in_window;
  }
  return static_cast<double>(in_window) /
         static_cast<double>(window.count());
}

std::vector<std::size_t> filter_low_completeness(
    const std::vector<const ts_series*>& series, hour_range window,
    double min_completeness) {
  std::vector<std::size_t> kept;
  kept.reserve(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] != nullptr &&
        series_completeness(*series[i], window) >= min_completeness) {
      kept.push_back(i);
    }
  }
  return kept;
}

std::vector<double> relative_differences(const ts_series& premium,
                                         const ts_series& standard) {
  std::unordered_map<std::int64_t, double> std_by_hour;
  for (const ts_point& p : standard.points()) {
    std_by_hour[p.at.hours_since_epoch()] = p.value;
  }
  std::vector<double> out;
  for (const ts_point& p : premium.points()) {
    const auto it = std_by_hour.find(p.at.hours_since_epoch());
    if (it == std_by_hour.end() || it->second == 0.0) continue;
    out.push_back((p.value - it->second) / it->second);
  }
  return out;
}

std::vector<monthly_performance> monthly_best_performance(
    const ts_series& download, const ts_series& latency) {
  // Bucket both series by UTC calendar month.
  struct bucket {
    std::vector<double> downloads;
    std::vector<double> latencies;
  };
  std::map<std::pair<int, unsigned>, bucket> months;
  for (const ts_point& p : download.points()) {
    const civil_date d = p.at.utc_date();
    months[{d.year, d.month}].downloads.push_back(p.value);
  }
  for (const ts_point& p : latency.points()) {
    const civil_date d = p.at.utc_date();
    months[{d.year, d.month}].latencies.push_back(p.value);
  }
  std::vector<monthly_performance> out;
  for (const auto& [ym, b] : months) {
    if (b.downloads.empty() || b.latencies.empty()) continue;
    monthly_performance m;
    m.year = ym.first;
    m.month = ym.second;
    m.p95_download_mbps = percentile(b.downloads, 95.0);
    m.p5_latency_ms = percentile(b.latencies, 5.0);
    m.samples = b.downloads.size();
    out.push_back(m);
  }
  return out;
}

}  // namespace clasp

#include "clasp/cli.hpp"

#include <exception>

#include "util/strings.hpp"

namespace clasp {

namespace {

// Every flag the CLI understands, for did-you-mean suggestions.
constexpr const char* kKnownFlags[] = {
    "--region",          "--days",
    "--tier",            "--csv",
    "--config",          "--seed",
    "--workers",         "--link-cache",
    "--faults",          "--checkpoint-dir",
    "--checkpoint-every", "--resume",
    "--metrics-out",     "--heartbeat-every",
    "--fleet-scale",     "--batch-eval",
    "--swarm",           "--shards",
    "--socket",          "--tenant",
    "--id",              "--durable",
};

std::string unknown_flag_error(const std::string& flag) {
  const char* best = nullptr;
  std::size_t best_distance = 0;
  for (const char* candidate : kKnownFlags) {
    const std::size_t d = edit_distance(flag, candidate);
    if (best == nullptr || d < best_distance) {
      best = candidate;
      best_distance = d;
    }
  }
  // Same near-miss rule as the config loader: an unrelated suggestion
  // would be noise.
  if (best != nullptr && best_distance <= flag.size() / 2) {
    return "unknown flag " + flag + " (did you mean " + best + "?)";
  }
  return "unknown flag " + flag;
}

bool parse_int(const std::string& value, int& out) {
  try {
    std::size_t consumed = 0;
    out = std::stoi(value, &consumed);
    return consumed == value.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

cli_parse_result parse_cli_args(int argc, const char* const* argv,
                                cli_options& opts) {
  if (argc < 2) return {false, ""};
  opts.command = argv[1];
  if (opts.command != "select" && opts.command != "pilot" &&
      opts.command != "run" && opts.command != "cost" &&
      opts.command != "report" && opts.command != "serve" &&
      opts.command != "submit" && opts.command != "status" &&
      opts.command != "pause" && opts.command != "resume" &&
      opts.command != "cancel" && opts.command != "shutdown") {
    return {false, "unknown command '" + opts.command + "'"};
  }
  for (int i = 2; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--resume") {  // the only valueless flag
      opts.resume = true;
      continue;
    }
    if (key.size() < 2 || key[0] != '-' || key[1] != '-') {
      return {false, "expected a --flag, got '" + key + "'"};
    }
    bool known = false;
    for (const char* candidate : kKnownFlags) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) return {false, unknown_flag_error(key)};
    if (i + 1 >= argc) return {false, "missing value for " + key};
    const std::string value = argv[++i];
    if (key == "--region") {
      opts.region = value;
    } else if (key == "--days") {
      if (!parse_int(value, opts.days) || opts.days <= 0 || opts.days > 153) {
        return {false, "--days must be an integer in [1, 153]"};
      }
    } else if (key == "--tier") {
      if (value != "premium" && value != "standard") {
        return {false, "--tier must be premium or standard"};
      }
      opts.tier = value;
    } else if (key == "--csv") {
      opts.csv_path = value;
    } else if (key == "--config") {
      opts.config_path = value;
    } else if (key == "--seed") {
      try {
        opts.seed = std::stoull(value);
      } catch (const std::exception&) {
        return {false, "--seed must be an unsigned integer"};
      }
    } else if (key == "--workers") {
      if (!parse_int(value, opts.workers) || opts.workers < 0) {
        return {false, "--workers must be an integer >= 0"};
      }
    } else if (key == "--link-cache") {
      if (value == "on" || value == "1" || value == "true") {
        opts.link_cache = 1;
      } else if (value == "off" || value == "0" || value == "false") {
        opts.link_cache = 0;
      } else {
        return {false, "--link-cache must be on or off"};
      }
    } else if (key == "--faults") {
      if (value != "off" && value != "low" && value != "high") {
        return {false, "--faults must be off, low or high"};
      }
      opts.faults = value;
    } else if (key == "--swarm") {
      if (value != "off" && value != "low" && value != "high") {
        return {false, "--swarm must be off, low or high"};
      }
      opts.swarm = value;
    } else if (key == "--checkpoint-dir") {
      opts.checkpoint_dir = value;
    } else if (key == "--checkpoint-every") {
      if (!parse_int(value, opts.checkpoint_every) ||
          opts.checkpoint_every <= 0) {
        return {false, "--checkpoint-every must be an integer >= 1"};
      }
    } else if (key == "--fleet-scale") {
      if (!parse_int(value, opts.fleet_scale) || opts.fleet_scale < 1) {
        return {false,
                "--fleet-scale must be an integer >= 1 (synthetic fleet "
                "multiplier; use --fleet-scale 1 for the paper-scale fleet)"};
      }
    } else if (key == "--batch-eval") {
      if (value == "on" || value == "1" || value == "true") {
        opts.batch_eval = 1;
      } else if (value == "off" || value == "0" || value == "false") {
        opts.batch_eval = 0;
      } else {
        return {false, "--batch-eval must be on or off"};
      }
    } else if (key == "--shards") {
      if (!parse_int(value, opts.shards) || opts.shards < 1) {
        return {false,
                "--shards must be an integer >= 1 (worker processes for "
                "distributed replay; use --shards 1 for in-process replay)"};
      }
    } else if (key == "--socket") {
      opts.socket = value;
    } else if (key == "--tenant") {
      if (value.empty()) return {false, "--tenant must not be empty"};
      opts.tenant = value;
    } else if (key == "--id") {
      try {
        std::size_t consumed = 0;
        opts.id = std::stoull(value, &consumed);
        if (consumed != value.size() || opts.id == 0) {
          return {false, "--id must be a campaign id >= 1"};
        }
      } catch (const std::exception&) {
        return {false, "--id must be a campaign id >= 1"};
      }
    } else if (key == "--durable") {
      if (value == "on" || value == "1" || value == "true") {
        opts.durable = 1;
      } else if (value == "off" || value == "0" || value == "false") {
        opts.durable = 0;
      } else {
        return {false, "--durable must be on or off"};
      }
    } else if (key == "--metrics-out") {
      opts.metrics_out = value;
    } else if (key == "--heartbeat-every") {
      if (!parse_int(value, opts.heartbeat_every) ||
          opts.heartbeat_every <= 0) {
        return {false, "--heartbeat-every must be an integer >= 1"};
      }
    }
  }
  if (opts.resume && opts.checkpoint_dir.empty()) {
    return {false, "--resume requires --checkpoint-dir"};
  }
  if (opts.command == "submit" && opts.tenant.empty()) {
    return {false, "submit requires --tenant"};
  }
  if ((opts.command == "pause" || opts.command == "resume" ||
       opts.command == "cancel") &&
      opts.id == 0) {
    return {false, opts.command + " requires --id"};
  }
  return {true, ""};
}

}  // namespace clasp

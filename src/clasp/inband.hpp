// In-band available-bandwidth probing (§5 future work).
//
// The paper's speed tests are bandwidth-intensive (>100 MB per test) and
// egress charges dominated the budget. §5 proposes in-band approaches
// (FlowTrace, ELF) that infer available bandwidth and the bottleneck
// link from short packet trains injected into existing flows. This module
// implements that probe against the substrate: a train of `train_length`
// MTU packets observes the bottleneck's available bandwidth through
// inter-packet dispersion, with estimation noise that shrinks as trains
// get longer, at ~0.1% of a full test's traffic volume.
//
// bench_ablation_inband compares congestion-detection quality of hourly
// in-band probes against full speed tests at equal budget.
#pragma once

#include "netsim/network.hpp"
#include "util/rng.hpp"

namespace clasp {

struct inband_config {
  unsigned train_length{64};     // packets per train
  unsigned trains{3};            // trains per probe (median taken)
  unsigned packet_bytes{1500};
  // Dispersion measurement jitter per train (relative sigma for a
  // 32-packet train; scales with 1/sqrt(train_length)).
  double base_noise_sigma{0.18};
};

struct inband_result {
  mbps available_estimate;   // bottleneck available bandwidth estimate
  millis rtt;                // train round-trip latency
  double loss{0.0};          // observed train loss fraction
  megabytes volume;          // traffic cost of the probe
  link_index bottleneck;     // inferred tight link (ground-truth assisted)
};

// Probe a path at an hour. `r` drives per-train noise.
inband_result run_inband_probe(const network_view& view,
                               const route_path& path, hour_stamp at,
                               const inband_config& config, rng& r);

// Traffic volume of one probe (for budget planning).
megabytes inband_probe_volume(const inband_config& config);

}  // namespace clasp

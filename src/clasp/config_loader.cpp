#include "clasp/config_loader.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/ini.hpp"
#include "util/strings.hpp"

namespace clasp {

namespace {

std::size_t as_count(const ini_document& doc, const std::string& key) {
  const std::int64_t v = doc.get_int(key);
  if (v < 0) {
    throw invalid_argument_error("config: " + key + " must be >= 0");
  }
  return static_cast<std::size_t>(v);
}

double as_fraction(const ini_document& doc, const std::string& key) {
  const double v = doc.get_double(key);
  if (v < 0.0 || v > 1.0) {
    throw invalid_argument_error("config: " + key + " must be in [0, 1]");
  }
  return v;
}

}  // namespace

platform_config load_platform_config(const std::string& ini_text) {
  const ini_document doc = ini_document::parse(ini_text);
  platform_config cfg;
  cfg.topology_budgets.clear();  // budgets come from the file when present
  bool budgets_given = false;

  for (const auto& [key, value] : doc.entries()) {
    if (key == "internet.seed") {
      cfg.internet.seed = static_cast<std::uint64_t>(doc.get_int(key));
    } else if (key == "internet.tier1_count") {
      cfg.internet.tier1_count = as_count(doc, key);
    } else if (key == "internet.transit_count") {
      cfg.internet.transit_count = as_count(doc, key);
    } else if (key == "internet.large_isp_count") {
      cfg.internet.large_isp_count = as_count(doc, key);
    } else if (key == "internet.regional_isp_count") {
      cfg.internet.regional_isp_count = as_count(doc, key);
    } else if (key == "internet.hosting_count") {
      cfg.internet.hosting_count = as_count(doc, key);
    } else if (key == "internet.education_count") {
      cfg.internet.education_count = as_count(doc, key);
    } else if (key == "internet.business_count") {
      cfg.internet.business_count = as_count(doc, key);
    } else if (key == "internet.international_fraction") {
      cfg.internet.international_fraction = as_fraction(doc, key);
    } else if (key == "internet.congestion_prone_fraction") {
      cfg.internet.congestion_prone_fraction = as_fraction(doc, key);
    } else if (key == "internet.vantage_point_count") {
      cfg.internet.vantage_point_count = as_count(doc, key);
    } else if (key == "servers.us_server_target") {
      cfg.servers.us_server_target = as_count(doc, key);
    } else if (key == "servers.global_server_target") {
      cfg.servers.global_server_target = as_count(doc, key);
    } else if (key == "servers.ookla_fraction") {
      cfg.servers.ookla_fraction = as_fraction(doc, key);
    } else if (key == "servers.mlab_fraction") {
      cfg.servers.mlab_fraction = as_fraction(doc, key);
    } else if (key == "differential.target_servers") {
      cfg.differential.target_servers = as_count(doc, key);
    } else if (key == "differential.min_measurements") {
      cfg.differential.min_measurements = as_count(doc, key);
    } else if (key == "differential.big_delta_ms") {
      cfg.differential.big_delta_ms = doc.get_double(key);
    } else if (key == "differential.small_delta_ms") {
      cfg.differential.small_delta_ms = doc.get_double(key);
    } else if (key == "campaign.workers") {
      cfg.campaign_workers =
          static_cast<unsigned>(as_count(doc, key));  // 0 = hw concurrency
    } else if (key == "campaign.link_cache") {
      cfg.campaign_link_cache = doc.get_bool(key);
    } else if (starts_with(key, "budgets.")) {
      const std::string region = key.substr(std::string("budgets.").size());
      region_by_name(region);  // validates the region name
      cfg.topology_budgets[region] = as_count(doc, key);
      budgets_given = true;
    } else {
      throw invalid_argument_error("config: unknown key " + key);
    }
  }

  if (!budgets_given) {
    cfg.topology_budgets = platform_config{}.topology_budgets;
  }
  if (cfg.servers.global_server_target < cfg.servers.us_server_target) {
    throw invalid_argument_error(
        "config: global_server_target < us_server_target");
  }
  return cfg;
}

platform_config load_platform_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw not_found_error("config: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_platform_config(buffer.str());
}

}  // namespace clasp

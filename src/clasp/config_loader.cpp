#include "clasp/config_loader.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/ini.hpp"
#include "util/strings.hpp"

namespace clasp {

namespace {

std::size_t as_count(const ini_document& doc, const std::string& key) {
  const std::int64_t v = doc.get_int(key);
  if (v < 0) {
    throw invalid_argument_error("config: " + key + " must be >= 0");
  }
  return static_cast<std::size_t>(v);
}

double as_fraction(const ini_document& doc, const std::string& key) {
  const double v = doc.get_double(key);
  if (v < 0.0 || v > 1.0) {
    throw invalid_argument_error("config: " + key + " must be in [0, 1]");
  }
  return v;
}

// Every fixed key the loader understands, for did-you-mean suggestions
// on unknown keys (budgets.<region> keys are matched by prefix instead).
constexpr const char* kKnownKeys[] = {
    "internet.seed",
    "internet.tier1_count",
    "internet.transit_count",
    "internet.large_isp_count",
    "internet.regional_isp_count",
    "internet.hosting_count",
    "internet.education_count",
    "internet.business_count",
    "internet.international_fraction",
    "internet.congestion_prone_fraction",
    "internet.vantage_point_count",
    "servers.us_server_target",
    "servers.global_server_target",
    "servers.ookla_fraction",
    "servers.mlab_fraction",
    "differential.target_servers",
    "differential.min_measurements",
    "differential.big_delta_ms",
    "differential.small_delta_ms",
    "swarm.preset",
    "swarm.enabled",
    "swarm.seed",
    "swarm.join_rate",
    "swarm.leave_rate",
    "swarm.credits_per_probe",
    "swarm.rate_limit_per_hour",
    "swarm.coverage_target",
    "swarm.max_substitutes",
    "swarm.retry_backoff_hours",
    "campaign.workers",
    "campaign.link_cache",
    "campaign.batch_eval",
    "campaign.fleet_scale",
    "campaign.checkpoint_dir",
    "campaign.checkpoint_every_hours",
    "campaign.shards",
    "faults.enabled",
    "faults.preset",
    "faults.seed",
    "faults.server_churn_rate",
    "faults.test_failure_rate",
    "faults.max_retries",
    "faults.vm_preemption_rate",
    "faults.vm_outage_hours_min",
    "faults.vm_outage_hours_max",
    "faults.upload_failure_rate",
    "faults.strict_hour_budget",
    "obs.metrics",
    "obs.heartbeat_every_hours",
    "obs.span_ring_capacity",
    "service.socket",
    "service.state_dir",
    "service.results_dir",
    "service.quantum_hours",
    "service.worker_budget",
    "service.max_admitted",
    "service.tenant_max_admitted",
    "service.tenant_max_active",
    "service.max_resident",
    "service.heartbeat_every_quanta",
};

[[noreturn]] void throw_unknown_key(const std::string& key) {
  const char* best = nullptr;
  std::size_t best_distance = 0;
  for (const char* candidate : kKnownKeys) {
    const std::size_t d = edit_distance(key, candidate);
    if (best == nullptr || d < best_distance) {
      best = candidate;
      best_distance = d;
    }
  }
  // Only suggest a near miss; an unrelated key would make the hint noise.
  if (best != nullptr && best_distance <= key.size() / 2) {
    throw invalid_argument_error("config: unknown key " + key +
                                 " (did you mean " + best + "?)");
  }
  throw invalid_argument_error("config: unknown key " + key);
}

}  // namespace

platform_config load_platform_config(const std::string& ini_text) {
  const ini_document doc = ini_document::parse(ini_text);
  platform_config cfg;
  cfg.topology_budgets.clear();  // budgets come from the file when present
  bool budgets_given = false;

  // The preset seeds the whole fault config before any faults.* key is
  // read, so individual rates in the file always override it.
  if (doc.contains("faults.preset")) {
    cfg.campaign_faults = fault_config::preset(doc.get("faults.preset"));
  }
  // Same pattern for the pre-test swarm: preset first, keys override.
  if (doc.contains("swarm.preset")) {
    cfg.differential.swarm = swarm_config::preset(doc.get("swarm.preset"));
  }

  for (const auto& [key, value] : doc.entries()) {
    if (key == "internet.seed") {
      cfg.internet.seed = static_cast<std::uint64_t>(doc.get_int(key));
    } else if (key == "internet.tier1_count") {
      cfg.internet.tier1_count = as_count(doc, key);
    } else if (key == "internet.transit_count") {
      cfg.internet.transit_count = as_count(doc, key);
    } else if (key == "internet.large_isp_count") {
      cfg.internet.large_isp_count = as_count(doc, key);
    } else if (key == "internet.regional_isp_count") {
      cfg.internet.regional_isp_count = as_count(doc, key);
    } else if (key == "internet.hosting_count") {
      cfg.internet.hosting_count = as_count(doc, key);
    } else if (key == "internet.education_count") {
      cfg.internet.education_count = as_count(doc, key);
    } else if (key == "internet.business_count") {
      cfg.internet.business_count = as_count(doc, key);
    } else if (key == "internet.international_fraction") {
      cfg.internet.international_fraction = as_fraction(doc, key);
    } else if (key == "internet.congestion_prone_fraction") {
      cfg.internet.congestion_prone_fraction = as_fraction(doc, key);
    } else if (key == "internet.vantage_point_count") {
      cfg.internet.vantage_point_count = as_count(doc, key);
    } else if (key == "servers.us_server_target") {
      cfg.servers.us_server_target = as_count(doc, key);
    } else if (key == "servers.global_server_target") {
      cfg.servers.global_server_target = as_count(doc, key);
    } else if (key == "servers.ookla_fraction") {
      cfg.servers.ookla_fraction = as_fraction(doc, key);
    } else if (key == "servers.mlab_fraction") {
      cfg.servers.mlab_fraction = as_fraction(doc, key);
    } else if (key == "differential.target_servers") {
      cfg.differential.target_servers = as_count(doc, key);
    } else if (key == "differential.min_measurements") {
      cfg.differential.min_measurements = as_count(doc, key);
    } else if (key == "differential.big_delta_ms") {
      cfg.differential.big_delta_ms = doc.get_double(key);
    } else if (key == "differential.small_delta_ms") {
      cfg.differential.small_delta_ms = doc.get_double(key);
    } else if (key == "campaign.workers") {
      cfg.campaign_workers =
          static_cast<unsigned>(as_count(doc, key));  // 0 = hw concurrency
    } else if (key == "campaign.link_cache") {
      cfg.campaign_link_cache = doc.get_bool(key);
    } else if (key == "campaign.batch_eval") {
      cfg.campaign_batch_eval = doc.get_bool(key);
    } else if (key == "campaign.fleet_scale") {
      const std::size_t scale = as_count(doc, key);
      if (scale == 0) {
        throw invalid_argument_error(
            "config: campaign.fleet_scale must be >= 1 (synthetic fleet "
            "multiplier; use campaign.fleet_scale = 1 for the paper-scale "
            "fleet)");
      }
      cfg.fleet_scale = scale;
    } else if (key == "campaign.checkpoint_dir") {
      cfg.campaign_checkpoint_dir = doc.get(key);
    } else if (key == "campaign.checkpoint_every_hours") {
      const std::size_t every = as_count(doc, key);
      if (every == 0) {
        throw invalid_argument_error(
            "config: campaign.checkpoint_every_hours must be >= 1 (hours "
            "between checkpoints; use campaign.checkpoint_dir = <empty> to "
            "disable durability)");
      }
      cfg.campaign_checkpoint_every_hours = static_cast<unsigned>(every);
    } else if (key == "campaign.shards") {
      const std::size_t shards = as_count(doc, key);
      if (shards == 0) {
        throw invalid_argument_error(
            "config: campaign.shards must be >= 1 (worker processes for "
            "distributed replay; use campaign.shards = 1 for in-process "
            "replay)");
      }
      cfg.campaign_shards = shards;
    } else if (key == "swarm.preset") {
      // Already applied, before the key loop.
    } else if (key == "swarm.enabled") {
      cfg.differential.swarm.enabled = doc.get_bool(key);
    } else if (key == "swarm.seed") {
      cfg.differential.swarm.seed =
          static_cast<std::uint64_t>(doc.get_int(key));
    } else if (key == "swarm.join_rate") {
      cfg.differential.swarm.join_rate = as_fraction(doc, key);
    } else if (key == "swarm.leave_rate") {
      cfg.differential.swarm.leave_rate = as_fraction(doc, key);
    } else if (key == "swarm.credits_per_probe") {
      cfg.differential.swarm.credits_per_probe = as_count(doc, key);
    } else if (key == "swarm.rate_limit_per_hour") {
      cfg.differential.swarm.rate_limit_per_hour =
          static_cast<unsigned>(as_count(doc, key));
    } else if (key == "swarm.coverage_target") {
      cfg.differential.swarm.coverage_target = as_fraction(doc, key);
    } else if (key == "swarm.max_substitutes") {
      cfg.differential.swarm.max_substitutes =
          static_cast<unsigned>(as_count(doc, key));
    } else if (key == "swarm.retry_backoff_hours") {
      cfg.differential.swarm.retry_backoff_hours =
          static_cast<unsigned>(as_count(doc, key));
    } else if (key == "faults.preset") {
      // Already applied, before the key loop.
    } else if (key == "faults.enabled") {
      cfg.campaign_faults.enabled = doc.get_bool(key);
    } else if (key == "faults.seed") {
      cfg.campaign_faults.seed = static_cast<std::uint64_t>(doc.get_int(key));
    } else if (key == "faults.server_churn_rate") {
      cfg.campaign_faults.server_churn_rate = as_fraction(doc, key);
    } else if (key == "faults.test_failure_rate") {
      cfg.campaign_faults.test_failure_rate = as_fraction(doc, key);
    } else if (key == "faults.max_retries") {
      cfg.campaign_faults.max_retries =
          static_cast<unsigned>(as_count(doc, key));
    } else if (key == "faults.vm_preemption_rate") {
      cfg.campaign_faults.vm_preemption_rate = as_fraction(doc, key);
    } else if (key == "faults.vm_outage_hours_min") {
      cfg.campaign_faults.vm_outage_hours_min =
          static_cast<unsigned>(as_count(doc, key));
    } else if (key == "faults.vm_outage_hours_max") {
      cfg.campaign_faults.vm_outage_hours_max =
          static_cast<unsigned>(as_count(doc, key));
    } else if (key == "faults.upload_failure_rate") {
      cfg.campaign_faults.upload_failure_rate = as_fraction(doc, key);
    } else if (key == "faults.strict_hour_budget") {
      cfg.campaign_faults.strict_hour_budget = doc.get_bool(key);
    } else if (key == "obs.metrics") {
      cfg.obs_metrics = doc.get_bool(key);
    } else if (key == "obs.heartbeat_every_hours") {
      cfg.obs_heartbeat_every_hours =
          static_cast<unsigned>(as_count(doc, key));
    } else if (key == "obs.span_ring_capacity") {
      cfg.obs_span_ring_capacity = as_count(doc, key);
    } else if (key == "service.socket") {
      cfg.service.socket = doc.get(key);
    } else if (key == "service.state_dir") {
      cfg.service.state_dir = doc.get(key);
    } else if (key == "service.results_dir") {
      cfg.service.results_dir = doc.get(key);
    } else if (key == "service.quantum_hours") {
      const std::size_t quantum = as_count(doc, key);
      if (quantum == 0) {
        throw invalid_argument_error(
            "config: service.quantum_hours must be >= 1 (scheduler time "
            "slice in simulated hours)");
      }
      cfg.service.quantum_hours = static_cast<unsigned>(quantum);
    } else if (key == "service.worker_budget") {
      const std::size_t budget = as_count(doc, key);
      if (budget == 0) {
        throw invalid_argument_error(
            "config: service.worker_budget must be >= 1 (shared worker "
            "units across admitted campaigns)");
      }
      cfg.service.worker_budget = static_cast<unsigned>(budget);
    } else if (key == "service.max_admitted") {
      const std::size_t cap = as_count(doc, key);
      if (cap == 0) {
        throw invalid_argument_error(
            "config: service.max_admitted must be >= 1");
      }
      cfg.service.max_admitted = cap;
    } else if (key == "service.tenant_max_admitted") {
      const std::size_t cap = as_count(doc, key);
      if (cap == 0) {
        throw invalid_argument_error(
            "config: service.tenant_max_admitted must be >= 1");
      }
      cfg.service.tenant_max_admitted = cap;
    } else if (key == "service.tenant_max_active") {
      const std::size_t cap = as_count(doc, key);
      if (cap == 0) {
        throw invalid_argument_error(
            "config: service.tenant_max_active must be >= 1");
      }
      cfg.service.tenant_max_active = cap;
    } else if (key == "service.max_resident") {
      const std::size_t cap = as_count(doc, key);
      if (cap == 0) {
        throw invalid_argument_error(
            "config: service.max_resident must be >= 1 (sessions kept in "
            "memory; durable ones are evicted beyond this)");
      }
      cfg.service.max_resident = cap;
    } else if (key == "service.heartbeat_every_quanta") {
      cfg.service.heartbeat_every_quanta =
          static_cast<unsigned>(as_count(doc, key));
    } else if (starts_with(key, "budgets.")) {
      const std::string region = key.substr(std::string("budgets.").size());
      region_by_name(region);  // validates the region name
      cfg.topology_budgets[region] = as_count(doc, key);
      budgets_given = true;
    } else {
      throw_unknown_key(key);
    }
  }

  if (!budgets_given) {
    cfg.topology_budgets = platform_config{}.topology_budgets;
  }
  if (cfg.servers.global_server_target < cfg.servers.us_server_target) {
    throw invalid_argument_error(
        "config: global_server_target < us_server_target");
  }
  return cfg;
}

platform_config load_platform_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw not_found_error("config: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_platform_config(buffer.str());
}

}  // namespace clasp

#include "clasp/swarm.hpp"

#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace clasp {

const char* to_string(vantage_swarm::refusal r) {
  switch (r) {
    case vantage_swarm::refusal::none: return "none";
    case vantage_swarm::refusal::offline: return "offline";
    case vantage_swarm::refusal::out_of_credits: return "out_of_credits";
    case vantage_swarm::refusal::rate_limited: return "rate_limited";
  }
  return "?";
}

swarm_config swarm_config::preset(std::string_view level) {
  swarm_config cfg;
  if (level == "off") return cfg;
  if (level == "low") {
    // Background community churn: ~86% of probes online at any hour
    // (join/(join+leave)), budgets roomy enough that a single-probe tuple
    // can still cover every round of the 18-day pre-test window.
    cfg.enabled = true;
    cfg.join_rate = 0.12;
    cfg.leave_rate = 0.02;
    cfg.credits_per_probe = 400;
    cfg.rate_limit_per_hour = 6;
    cfg.coverage_target = 0.9;
    cfg.max_substitutes = 3;
    cfg.retry_backoff_hours = 1;
    return cfg;
  }
  if (level == "high") {
    // Adversarial churn: only ~one third of probes online, tight credit
    // budgets that starve sole-member tuples mid-window, sharp rate caps.
    cfg.enabled = true;
    cfg.join_rate = 0.05;
    cfg.leave_rate = 0.10;
    cfg.credits_per_probe = 150;
    cfg.rate_limit_per_hour = 2;
    cfg.coverage_target = 0.75;
    cfg.max_substitutes = 2;
    cfg.retry_backoff_hours = 1;
    return cfg;
  }
  throw invalid_argument_error("swarm_config: unknown preset '" +
                               std::string(level) + "' (off|low|high)");
}

vantage_swarm::vantage_swarm(const route_planner* planner,
                             const network_view* view, swarm_config config,
                             speedchecker_config platform,
                             std::uint64_t stream_seed)
    : config_(config),
      platform_(planner, view, platform),
      churn_seed_(stream_seed ^ config.seed) {
  if (config_.join_rate < 0.0 || config_.join_rate > 1.0 ||
      config_.leave_rate < 0.0 || config_.leave_rate > 1.0) {
    throw invalid_argument_error("vantage_swarm: rates must be in [0, 1]");
  }
  if (config_.coverage_target < 0.0 || config_.coverage_target > 1.0) {
    throw invalid_argument_error(
        "vantage_swarm: coverage_target must be in [0, 1]");
  }
}

const std::vector<host_index>& vantage_swarm::probes() const {
  return platform_.vantage_points();
}

void vantage_swarm::plan(hour_range window) {
  if (!config_.enabled) {
    planned_ = true;
    return;
  }
  if (planned_ && churn_.enabled() && churn_.window().begin_at == window.begin_at &&
      churn_.window().end_at == window.end_at) {
    return;
  }
  churn_ = churn_plan::build(churn_seed_, "swarm", probes().size(), window,
                             config_.join_rate, config_.leave_rate);
  planned_ = true;
  if (obs::enabled()) {
    obs::metrics_registry::instance()
        .get_gauge(obs::family::kSwarmProbes)
        .set(static_cast<double>(probes().size()));
  }
}

bool vantage_swarm::online(std::size_t probe_index, hour_stamp at) const {
  if (!config_.enabled || !churn_.enabled()) return true;
  return churn_.online(probe_index, at);
}

std::size_t vantage_swarm::active_probes(hour_stamp at) const {
  if (!config_.enabled || !churn_.enabled()) return probes().size();
  return churn_.online_count(at);
}

std::size_t vantage_swarm::credits_remaining(std::size_t probe_index,
                                             hour_stamp at) const {
  if (config_.credits_per_probe == 0) {
    return std::numeric_limits<std::size_t>::max();
  }
  const auto it = credits_used_.find(speedchecker_service::month_key(at));
  const std::size_t used =
      it == credits_used_.end() ? 0 : it->second.at(probe_index);
  return used >= config_.credits_per_probe
             ? 0
             : config_.credits_per_probe - used;
}

std::optional<vp_probe_result> vantage_swarm::try_probe(
    std::size_t probe_index, const endpoint& target, service_tier tier,
    hour_stamp at, rng& r, refusal* why) {
  if (probe_index >= probes().size()) {
    throw invalid_argument_error("vantage_swarm: probe index out of range");
  }
  const auto refuse = [&](refusal reason) -> std::optional<vp_probe_result> {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  if (why != nullptr) *why = refusal::none;
  if (!online(probe_index, at)) return refuse(refusal::offline);

  if (config_.rate_limit_per_hour > 0) {
    const std::int64_t hour = at.hours_since_epoch();
    if (hour != rate_hour_) {
      rate_hour_ = hour;
      rate_used_.assign(probes().size(), 0);
    }
    if (rate_used_[probe_index] >= config_.rate_limit_per_hour) {
      ++rate_limited_;
      if (obs::enabled()) {
        obs::metrics_registry::instance()
            .get_counter(obs::family::kSwarmRateLimited)
            .add(1);
      }
      return refuse(refusal::rate_limited);
    }
  }

  std::uint32_t* credit_slot = nullptr;
  if (config_.credits_per_probe > 0) {
    auto& month = credits_used_[speedchecker_service::month_key(at)];
    if (month.empty()) month.assign(probes().size(), 0);
    credit_slot = &month[probe_index];
    if (*credit_slot >= config_.credits_per_probe) {
      return refuse(refusal::out_of_credits);
    }
  }

  // Account-level faults (monthly quota, retirement) throw through to the
  // caller — only a served probe consumes swarm-side budget or RNG draws.
  vp_probe_result result =
      platform_.probe(probes()[probe_index], target, tier, at, r);
  if (config_.rate_limit_per_hour > 0) ++rate_used_[probe_index];
  if (credit_slot != nullptr) ++*credit_slot;
  ++credits_spent_;
  if (obs::enabled()) {
    obs::metrics_registry::instance()
        .get_counter(obs::family::kSwarmCreditsSpent)
        .add(1);
  }
  return result;
}

void vantage_swarm::note_substitution() {
  if (!obs::enabled()) return;
  obs::metrics_registry::instance()
      .get_counter(obs::family::kSwarmSubstitutions)
      .add(1);
}

void vantage_swarm::note_missed_round() {
  if (!obs::enabled()) return;
  obs::metrics_registry::instance()
      .get_counter(obs::family::kSwarmMissedRounds)
      .add(1);
}

void vantage_swarm::publish_round(hour_stamp at, double mean_coverage,
                                  std::size_t stale_tuples) const {
  if (!obs::enabled()) return;
  obs::metrics_registry& reg = obs::metrics_registry::instance();
  reg.get_gauge(obs::family::kSwarmActiveProbes)
      .set(static_cast<double>(active_probes(at)));
  reg.get_gauge(obs::family::kSwarmCoverageRatio).set(mean_coverage);
  reg.get_gauge(obs::family::kSwarmStaleTuples)
      .set(static_cast<double>(stale_tuples));
}

void vantage_swarm::save_state(binary_writer& out) const {
  platform_.save_state(out);
  out.varint(credits_spent_);
  out.varint(credits_used_.size());
  for (const auto& [month, used] : credits_used_) {
    out.svarint(month);
    out.varint(used.size());
    for (const std::uint32_t u : used) out.varint(u);
  }
}

void vantage_swarm::load_state(binary_reader& in) {
  platform_.load_state(in);
  credits_spent_ = static_cast<std::size_t>(in.varint());
  credits_used_.clear();
  const std::size_t months = static_cast<std::size_t>(in.varint());
  for (std::size_t i = 0; i < months; ++i) {
    const int month = static_cast<int>(in.svarint());
    std::vector<std::uint32_t> used(static_cast<std::size_t>(in.varint()));
    for (std::uint32_t& u : used) u = static_cast<std::uint32_t>(in.varint());
    if (used.size() != probes().size()) {
      throw state_error("vantage_swarm: probe count mismatch in ledger");
    }
    credits_used_[month] = std::move(used);
  }
}

void vantage_swarm::skip_state(binary_reader& in) {
  // Mirror of save_state's wire layout, values discarded.
  const std::size_t account_months = static_cast<std::size_t>(in.varint());
  for (std::size_t i = 0; i < account_months; ++i) {
    in.svarint();
    in.varint();
  }
  in.varint();  // credits_spent
  const std::size_t months = static_cast<std::size_t>(in.varint());
  for (std::size_t i = 0; i < months; ++i) {
    in.svarint();
    const std::size_t probes = static_cast<std::size_t>(in.varint());
    for (std::size_t p = 0; p < probes; ++p) in.varint();
  }
}

}  // namespace clasp

// Checkpoint/resume implementation: the on-disk format helpers plus the
// campaign_runner durability members declared in campaign.hpp. Kept out
// of campaign.cpp so the replay hot path and the recovery machinery stay
// separately readable. Format documentation lives in checkpoint.hpp.
#include "clasp/checkpoint.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <utility>
#include <vector>

#include "clasp/campaign.hpp"
#include "clasp/swarm.hpp"
#include "obs/families.hpp"
#include "obs/trace.hpp"
#include "util/binio.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace clasp {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kManifestMagic = 0x4B434C43u;  // "CLCK" little-endian
constexpr std::uint8_t kVmHourTag = 'V';

std::string checkpoint_name(hour_stamp cursor) {
  return "ckpt-" + std::to_string(cursor.hours_since_epoch());
}

// Countdown armed by set_checkpoint_write_failures_for_testing. The
// container runs tests as root, so chmod-based fault injection cannot
// make a write fail; this hook simulates ENOSPC at the write site.
int g_write_failures_for_testing = 0;

bool inject_write_failure() {
  if (g_write_failures_for_testing <= 0) return false;
  --g_write_failures_for_testing;
  return true;
}

void put_sample(binary_writer& out, const vm_metadata_sample& s) {
  out.svarint(s.at.hours_since_epoch());
  out.f64(s.cpu_utilization);
  out.f64(s.memory_gb);
  out.f64(s.io_wait);
  out.boolean(s.cpu_saturated);
}

vm_metadata_sample get_sample(binary_reader& in) {
  vm_metadata_sample s;
  s.at = hour_stamp{in.svarint()};
  s.cpu_utilization = in.f64();
  s.memory_gb = in.f64();
  s.io_wait = in.f64();
  s.cpu_saturated = in.boolean();
  return s;
}

}  // namespace

void set_checkpoint_write_failures_for_testing(int count) {
  g_write_failures_for_testing = count;
}

// payload + u32 crc32 trailer. A plain write: atomicity comes from the
// directory rename that publishes the whole checkpoint at once. Failures
// here (ENOSPC, short write, unwritable staging dir) are storage_error:
// the caller aborts the publish and the old checkpoint stays CURRENT.
void write_crc_file(const std::string& path, std::string_view payload) {
  if (inject_write_failure()) {
    throw storage_error("checkpoint: injected write failure on " + path);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw storage_error("checkpoint: cannot write " + path);
  }
  binary_writer trailer;
  trailer.u32(crc32(payload));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(trailer.bytes().data(),
            static_cast<std::streamsize>(trailer.bytes().size()));
  out.flush();
  if (!out) {
    throw storage_error("checkpoint: short write on " + path);
  }
}

std::string read_crc_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw not_found_error("checkpoint: cannot read " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (content.size() < 4) {
    throw invalid_argument_error("checkpoint: truncated " + path);
  }
  const std::string_view payload =
      std::string_view(content).substr(0, content.size() - 4);
  binary_reader trailer(std::string_view(content).substr(content.size() - 4));
  if (trailer.u32() != crc32(payload)) {
    throw invalid_argument_error("checkpoint: CRC mismatch in " + path);
  }
  content.resize(content.size() - 4);
  return content;
}

std::optional<std::string> current_checkpoint(const std::string& dir) {
  std::ifstream in(fs::path(dir) / "CURRENT");
  if (!in) return std::nullopt;
  std::string name;
  std::getline(in, name);
  while (!name.empty() &&
         (name.back() == '\r' || name.back() == ' ')) {
    name.pop_back();
  }
  if (name.empty() || !starts_with(name, "ckpt-") ||
      name.find('/') != std::string::npos) {
    throw invalid_argument_error("checkpoint: corrupt CURRENT in " + dir);
  }
  const fs::path target = fs::path(dir) / name;
  if (!fs::exists(target)) {
    throw state_error("checkpoint: CURRENT points at missing " +
                      target.string());
  }
  return target.string();
}

checkpoint_info read_checkpoint_info(const std::string& checkpoint_path) {
  const std::string payload =
      read_crc_file(fs::path(checkpoint_path) / "MANIFEST");
  binary_reader in(payload);
  if (in.u32() != kManifestMagic) {
    throw invalid_argument_error("checkpoint: bad manifest magic");
  }
  checkpoint_info info;
  info.version = in.u32();
  if (info.version != kCheckpointVersion) {
    throw invalid_argument_error("checkpoint: unsupported version " +
                                 std::to_string(info.version));
  }
  info.fingerprint = in.u64();
  info.cursor_hours = in.svarint();
  if (!in.done()) {
    throw invalid_argument_error("checkpoint: trailing bytes in manifest");
  }
  return info;
}

std::uint64_t campaign_runner::fingerprint() const {
  // Everything that determines the replay's output: the stream seed
  // already hashes (net seed, label, region); the rest pins the window,
  // the fleet shape and the fault schedule inputs. Serialized through
  // binio so the hash input is unambiguous, then folded with hash_tag.
  binary_writer id;
  id.u64(stream_seed_);
  id.str(config_.label);
  id.str(config_.region);
  id.svarint(config_.window.begin_at.hours_since_epoch());
  id.svarint(config_.window.end_at.hours_since_epoch());
  id.varint(vms_.size());
  id.varint(sessions_.size());
  id.varint(config_.tests_per_vm_hour);
  const fault_config& f = config_.faults;
  id.boolean(f.enabled);
  id.u64(f.seed);
  id.f64(f.server_churn_rate);
  id.f64(f.test_failure_rate);
  id.varint(f.max_retries);
  id.f64(f.vm_preemption_rate);
  id.varint(f.vm_outage_hours_min);
  id.varint(f.vm_outage_hours_max);
  id.f64(f.upload_failure_rate);
  return hash_tag(kCheckpointVersion, id.bytes());
}

void campaign_runner::save_state(binary_writer& out) const {
  out.varint(tests_run_);
  out.varint(tests_missed_);
  out.varint(upload_failures_);
  out.boolean(storage_billed_);
  out.varint(tallies_.size());
  for (const session_tally& t : tallies_) {
    out.varint(t.completed);
    out.varint(t.failed);
    out.varint(t.retries);
    out.varint(t.down_hours);
    out.varint(t.withdrawn_hours);
    out.varint(t.skipped_hours);
  }
  out.varint(someta_.size());
  for (const someta_recorder& rec : someta_) {
    out.varint(rec.samples().size());
    for (const vm_metadata_sample& s : rec.samples()) put_sample(out, s);
  }
  // Full outage windows (plan + manual injections): vm_down must answer
  // identically in the resumed process. Serialized per VM slice of the
  // CSR arrays — the same wire bytes the old per-VM vectors produced.
  out.varint(vms_.size());
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    out.varint(outage_offsets_[v + 1] - outage_offsets_[v]);
    for (std::uint32_t i = outage_offsets_[v]; i < outage_offsets_[v + 1];
         ++i) {
      out.svarint(outage_windows_[i].begin_at.hours_since_epoch());
      out.svarint(outage_windows_[i].end_at.hours_since_epoch());
    }
  }
  cloud_->save_state(out);
  // Pre-test swarm ledgers (v2): presence flag + both ledgers, so a
  // resumed campaign's pre-test accounting cannot double-spend or reset.
  out.boolean(pretest_swarm_ != nullptr);
  if (pretest_swarm_ != nullptr) pretest_swarm_->save_state(out);
}

void campaign_runner::load_state(binary_reader& in) {
  tests_run_ = static_cast<std::size_t>(in.varint());
  tests_missed_ = static_cast<std::size_t>(in.varint());
  upload_failures_ = static_cast<std::size_t>(in.varint());
  storage_billed_ = in.boolean();
  if (in.varint() != tallies_.size()) {
    throw state_error("checkpoint: session count mismatch");
  }
  for (session_tally& t : tallies_) {
    t.completed = static_cast<std::size_t>(in.varint());
    t.failed = static_cast<std::size_t>(in.varint());
    t.retries = static_cast<std::size_t>(in.varint());
    t.down_hours = static_cast<std::size_t>(in.varint());
    t.withdrawn_hours = static_cast<std::size_t>(in.varint());
    t.skipped_hours = static_cast<std::size_t>(in.varint());
  }
  if (in.varint() != someta_.size()) {
    throw state_error("checkpoint: VM count mismatch (someta)");
  }
  for (someta_recorder& rec : someta_) {
    std::vector<vm_metadata_sample> samples(
        static_cast<std::size_t>(in.varint()));
    for (vm_metadata_sample& s : samples) s = get_sample(in);
    rec.restore_samples(std::move(samples));
  }
  if (in.varint() != vms_.size()) {
    throw state_error("checkpoint: VM count mismatch (outages)");
  }
  outage_offsets_.assign(vms_.size() + 1, 0);
  outage_windows_.clear();
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    const std::size_t count = static_cast<std::size_t>(in.varint());
    for (std::size_t i = 0; i < count; ++i) {
      hour_range w;
      w.begin_at = hour_stamp{in.svarint()};
      w.end_at = hour_stamp{in.svarint()};
      outage_windows_.push_back(w);
    }
    outage_offsets_[v + 1] =
        static_cast<std::uint32_t>(outage_windows_.size());
  }
  cloud_->load_state(in);
  if (in.boolean()) {
    // Restore into the wired swarm, or parse-and-discard when this
    // process resumes without one (the ledgers then start fresh).
    if (pretest_swarm_ != nullptr) {
      pretest_swarm_->load_state(in);
    } else {
      vantage_swarm::skip_state(in);
    }
  }
}

std::string campaign_runner::encode_wal_record(
    std::size_t vm_slot, const vm_hour_staging& staged) const {
  binary_writer out;
  out.u8(kVmHourTag);
  out.varint(vm_slot);
  out.svarint(staged.at.hours_since_epoch());
  out.varint(staged.points.size());
  for (const staged_point& p : staged.points) {
    out.varint(p.ref);
    out.f64(p.value);
  }
  out.varint(staged.someta.size());
  for (const vm_metadata_sample& s : staged.someta) put_sample(out, s);
  out.varint(staged.outcomes.size());
  for (const staged_outcome& o : staged.outcomes) {
    out.varint(o.session);
    out.u8(static_cast<std::uint8_t>(o.outcome));
    out.u8(o.attempts);
  }
  const charge_sheet& c = staged.charges;
  out.varint(c.vm_hours.size());
  for (const std::size_t id : c.vm_hours) out.varint(id);
  out.f64(c.egress_premium.value);
  out.f64(c.egress_standard.value);
  out.varint(c.puts.size());
  for (const charge_sheet::object_put& p : c.puts) {
    out.str(p.bucket_region);
    out.str(p.object_name);
    out.f64(p.megabytes_stored);
  }
  out.varint(staged.tests_run);
  out.varint(staged.tests_missed);
  out.boolean(staged.upload_failed);
  return out.take();
}

std::size_t campaign_runner::decode_wal_record(std::string_view payload,
                                               vm_hour_staging& out) const {
  binary_reader in(payload);
  if (in.u8() != kVmHourTag) {
    throw invalid_argument_error("checkpoint: not a VM-hour WAL record");
  }
  const std::size_t vm_slot = static_cast<std::size_t>(in.varint());
  out.at = hour_stamp{in.svarint()};
  out.points.clear();
  out.someta.clear();
  out.outcomes.clear();
  out.charges.reset();
  const std::uint64_t n_points = in.varint();
  out.points.reserve(static_cast<std::size_t>(n_points));
  for (std::uint64_t i = 0; i < n_points; ++i) {
    const series_ref ref = static_cast<series_ref>(in.varint());
    out.points.push_back({ref, in.f64()});
  }
  const std::uint64_t n_someta = in.varint();
  out.someta.reserve(static_cast<std::size_t>(n_someta));
  for (std::uint64_t i = 0; i < n_someta; ++i) {
    out.someta.push_back(get_sample(in));
  }
  const std::uint64_t n_outcomes = in.varint();
  out.outcomes.reserve(static_cast<std::size_t>(n_outcomes));
  for (std::uint64_t i = 0; i < n_outcomes; ++i) {
    staged_outcome o;
    o.session = static_cast<std::uint32_t>(in.varint());
    o.outcome = static_cast<test_outcome>(in.u8());
    o.attempts = in.u8();
    out.outcomes.push_back(o);
  }
  const std::uint64_t n_vm_hours = in.varint();
  out.charges.vm_hours.reserve(static_cast<std::size_t>(n_vm_hours));
  for (std::uint64_t i = 0; i < n_vm_hours; ++i) {
    out.charges.vm_hours.push_back(static_cast<std::size_t>(in.varint()));
  }
  out.charges.egress_premium = megabytes{in.f64()};
  out.charges.egress_standard = megabytes{in.f64()};
  const std::uint64_t n_puts = in.varint();
  for (std::uint64_t i = 0; i < n_puts; ++i) {
    std::string region = in.str();
    std::string name = in.str();
    out.charges.add_put(std::move(region), std::move(name), in.f64());
  }
  out.tests_run = static_cast<std::size_t>(in.varint());
  out.tests_missed = static_cast<std::size_t>(in.varint());
  out.upload_failed = in.boolean();
  if (!in.done()) {
    throw invalid_argument_error("checkpoint: trailing bytes in WAL record");
  }
  return vm_slot;
}

void campaign_runner::checkpoint(const std::string& dir) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  if (dir.empty()) {
    throw invalid_argument_error("campaign_runner: empty checkpoint dir");
  }
  const obs::trace_span ckpt_span(obs::phase::checkpoint,
                                  cursor_.hours_since_epoch());
  const bool obs_on = obs::enabled();
  const auto publish_begin =
      obs_on ? std::chrono::steady_clock::now()
             : std::chrono::steady_clock::time_point{};
  std::size_t gc_removed = 0;
  const fs::path root(dir);
  fs::create_directories(root);
  const std::string name = checkpoint_name(cursor_);
  const fs::path staging = root / (name + ".staging");
  std::error_code ec;
  fs::remove_all(staging, ec);
  try {
    fs::create_directories(staging);
    store_->snapshot_to((staging / "tsdb.snap").string());
    binary_writer state;
    save_state(state);
    write_crc_file(staging / "state.bin", state.bytes());
    binary_writer manifest;
    manifest.u32(kManifestMagic);
    manifest.u32(kCheckpointVersion);
    manifest.u64(fingerprint());
    manifest.svarint(cursor_.hours_since_epoch());
    write_crc_file(staging / "MANIFEST", manifest.bytes());
    // Publish: the staged directory becomes visible in one rename, then
    // the CURRENT pointer flips in another. Re-checkpointing at the same
    // hour (resume after replay) replaces the directory.
    const fs::path published = root / name;
    fs::remove_all(published, ec);
    fs::rename(staging, published);
    {
      std::ofstream cur(root / "CURRENT.tmp", std::ios::trunc);
      cur << name << '\n';
      cur.flush();
      if (!cur) {
        throw storage_error("checkpoint: cannot write CURRENT in " + dir);
      }
    }
    fs::rename(root / "CURRENT.tmp", root / "CURRENT");
  } catch (const std::exception& e) {
    // Storage failed underneath the publish (ENOSPC, short write, a
    // rename the filesystem refused). Nothing durable changed: CURRENT
    // still names the previous checkpoint and in-memory replay state is
    // untouched. The partial staging directory is quarantined — not
    // deleted — so the operator can inspect what the disk accepted, and
    // its name can never be mistaken for a published checkpoint.
    if (fs::exists(staging)) {
      const fs::path quarantine = root / (name + ".quarantine");
      fs::remove_all(quarantine, ec);
      fs::rename(staging, quarantine, ec);
      if (ec) fs::remove_all(staging, ec);
    }
    fs::remove(root / "CURRENT.tmp", ec);
    CLASP_LOG(warn, "campaign")
        << config_.label << "/" << config_.region << ": checkpoint " << name
        << " aborted, previous checkpoint remains CURRENT: " << e.what();
    throw storage_error("checkpoint: publish of " + name +
                        " failed, previous checkpoint left valid: " +
                        e.what());
  }
  // GC: older checkpoints and stale staging dirs. CURRENT already points
  // at the new one, so a crash mid-GC costs only disk space. Quarantined
  // publish failures are evidence, not garbage — they survive GC until
  // an operator removes them.
  for (const fs::directory_entry& entry : fs::directory_iterator(root)) {
    const std::string base = entry.path().filename().string();
    if (base == name || !starts_with(base, "ckpt-")) continue;
    if (base.ends_with(".quarantine")) continue;
    fs::remove_all(entry.path(), ec);
    ++gc_removed;
  }
  // Reset the campaign WAL: its records are covered by this snapshot.
  if (dir == config_.checkpoint_dir) {
    wal_ = std::make_unique<wal_writer>((root / "wal.log").string(),
                                        /*truncate=*/true);
  }
  last_checkpoint_hour_ = cursor_.hours_since_epoch();
  if (obs_on) {
    obs::metrics_registry& reg = obs::metrics_registry::instance();
    reg.get_counter(obs::family::kCheckpointPublishes).add(1);
    if (gc_removed != 0) {
      reg.get_counter(obs::family::kCheckpointGcRemoved).add(gc_removed);
    }
    reg.get_gauge(obs::family::kCheckpointLastHour)
        .set(static_cast<double>(cursor_.hours_since_epoch()));
    reg.get_histogram(obs::family::kCheckpointPublishSeconds,
                      obs::duration_buckets())
        .observe(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - publish_begin)
                     .count());
  }
  CLASP_LOG(info, "campaign")
      << config_.label << "/" << config_.region << ": checkpoint " << name;
}

bool campaign_runner::resume(const std::string& dir) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  const std::optional<std::string> current = current_checkpoint(dir);
  if (!current) return false;
  const obs::trace_span resume_span(obs::phase::resume,
                                    cursor_.hours_since_epoch());
  obs::metrics_registry::instance()
      .get_counter(obs::family::kCheckpointResumes)
      .add(1);
  const checkpoint_info info = read_checkpoint_info(*current);
  if (info.fingerprint != fingerprint()) {
    throw state_error(
        "campaign_runner: checkpoint fingerprint mismatch (different "
        "campaign, seed, window or fault config)");
  }
  store_->restore_from((fs::path(*current) / "tsdb.snap").string());
  const std::string state = read_crc_file(fs::path(*current) / "state.bin");
  binary_reader in(state);
  load_state(in);
  if (!in.done()) {
    throw invalid_argument_error("checkpoint: trailing bytes in state");
  }
  cursor_ = hour_stamp{info.cursor_hours};
  config_.checkpoint_dir = dir;
  // Registry catch-up: withdrawals before the cursor were retired hour by
  // hour in the interrupted process; this process's registry is fresh.
  if (churn_registry_ != nullptr && plan_.enabled()) {
    for (const auto& [server_id, hour] : plan_.withdrawals()) {
      if (hour < cursor_ && !churn_registry_->retired(server_id)) {
        churn_registry_->retire_server(server_id);
      }
    }
  }
  // WAL replay: an hour is durable only as a complete group — slot
  // records 0..vm_count-1, all at the cursor hour. Stale records (hour
  // before the cursor: crash between publish and WAL reset) are skipped;
  // a partial group or torn tail is dropped and that hour re-runs.
  const wal_scan_result scan =
      scan_wal((fs::path(dir) / "wal.log").string());
  if (scan.corrupt) {
    // A fully-present frame failed its CRC (or carried an absurd length).
    // Crash-tearing cannot produce that — something rewrote durable
    // bytes — so silently truncating and re-running would mask real
    // damage. Refuse the log; the operator decides (restore, discard).
    throw corruption_error(
        "campaign_runner: WAL interior corruption in " +
        (fs::path(dir) / "wal.log").string() +
        " (CRC mismatch on a complete frame); refusing to resume");
  }
  std::size_t i = 0;
  std::size_t replayed = 0;
  vm_hour_staging peek;
  std::vector<vm_hour_staging> group(vms_.size());
  while (i < scan.records.size()) {
    const std::size_t slot = decode_wal_record(scan.records[i], peek);
    if (peek.at < cursor_) {
      ++i;
      continue;
    }
    if (peek.at != cursor_ || slot != 0 ||
        i + vms_.size() > scan.records.size()) {
      break;
    }
    bool complete = true;
    for (std::size_t v = 0; v < vms_.size(); ++v) {
      if (decode_wal_record(scan.records[i + v], group[v]) != v ||
          group[v].at != cursor_) {
        complete = false;
        break;
      }
    }
    if (!complete) break;
    begin_hour(cursor_);
    for (std::size_t v = 0; v < vms_.size(); ++v) {
      commit_vm_hour(v, std::move(group[v]));
    }
    i += vms_.size();
    cursor_ = cursor_ + 1;
    ++replayed;
  }
  CLASP_LOG(info, "campaign")
      << config_.label << "/" << config_.region << ": resumed at "
      << cursor_.to_string() << " (" << replayed << " WAL hours replayed, "
      << (scan.records.size() - i) << " records dropped"
      << (scan.torn_tail ? ", torn tail" : "") << ")";
  // Re-anchor: a fresh checkpoint at the replayed cursor resets the WAL
  // (dropping stale records and any torn tail) and opens it for the run.
  checkpoint(dir);
  return true;
}

}  // namespace clasp

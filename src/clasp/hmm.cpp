#include "clasp/hmm.hpp"

#include <algorithm>
#include <cmath>

#include "clasp/analysis.hpp"
#include "util/error.hpp"

namespace clasp {

namespace {

constexpr double kTiny = 1e-300;

double gaussian_pdf(double x, double mean, double stddev) {
  const double z = (x - mean) / stddev;
  return std::exp(-0.5 * z * z) / (stddev * 2.5066282746310002);
}

}  // namespace

hmm_model fit_hmm(std::span<const double> observations,
                  const hmm_config& config) {
  const std::size_t n = observations.size();
  if (n < 8) {
    throw invalid_argument_error("fit_hmm: need at least 8 observations");
  }

  hmm_model m;
  // Data-driven initialization: split around the 80th percentile so the
  // congested state starts on the upper tail.
  {
    std::vector<double> sorted(observations.begin(), observations.end());
    std::sort(sorted.begin(), sorted.end());
    const double split = sorted[static_cast<std::size_t>(0.8 * (n - 1))];
    double lo_sum = 0, hi_sum = 0;
    std::size_t lo_n = 0, hi_n = 0;
    for (const double x : observations) {
      if (x <= split) {
        lo_sum += x;
        ++lo_n;
      } else {
        hi_sum += x;
        ++hi_n;
      }
    }
    m.mean[0] = lo_n ? lo_sum / lo_n : 0.1;
    m.mean[1] = hi_n ? hi_sum / hi_n : m.mean[0] + 0.3;
    if (m.mean[1] <= m.mean[0]) m.mean[1] = m.mean[0] + 0.1;
    m.stddev[0] = m.stddev[1] = std::max(
        config.min_stddev, (sorted.back() - sorted.front()) / 6.0);
  }

  // Scaled forward-backward (Baum-Welch).
  std::vector<double> alpha(2 * n), beta(2 * n), scale(n);
  std::vector<double> gamma(2 * n), xi(4);
  double prev_ll = -1e18;

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    const double trans[2][2] = {{m.stay_normal, 1.0 - m.stay_normal},
                                {1.0 - m.stay_congested, m.stay_congested}};
    const double init[2] = {1.0 - m.initial_congested, m.initial_congested};

    // Forward pass with per-step scaling.
    for (int s = 0; s < 2; ++s) {
      alpha[s] = init[s] *
                 gaussian_pdf(observations[0], m.mean[s], m.stddev[s]);
    }
    scale[0] = std::max(alpha[0] + alpha[1], kTiny);
    alpha[0] /= scale[0];
    alpha[1] /= scale[0];
    for (std::size_t t = 1; t < n; ++t) {
      for (int s = 0; s < 2; ++s) {
        const double in = alpha[2 * (t - 1)] * trans[0][s] +
                          alpha[2 * (t - 1) + 1] * trans[1][s];
        alpha[2 * t + s] =
            in * gaussian_pdf(observations[t], m.mean[s], m.stddev[s]);
      }
      scale[t] = std::max(alpha[2 * t] + alpha[2 * t + 1], kTiny);
      alpha[2 * t] /= scale[t];
      alpha[2 * t + 1] /= scale[t];
    }

    // Backward pass using the same scales.
    beta[2 * (n - 1)] = beta[2 * (n - 1) + 1] = 1.0;
    for (std::size_t t = n - 1; t-- > 0;) {
      for (int s = 0; s < 2; ++s) {
        double sum = 0.0;
        for (int s2 = 0; s2 < 2; ++s2) {
          sum += trans[s][s2] *
                 gaussian_pdf(observations[t + 1], m.mean[s2], m.stddev[s2]) *
                 beta[2 * (t + 1) + s2];
        }
        beta[2 * t + s] = sum / scale[t + 1];
      }
    }

    // Posteriors.
    for (std::size_t t = 0; t < n; ++t) {
      const double g0 = alpha[2 * t] * beta[2 * t];
      const double g1 = alpha[2 * t + 1] * beta[2 * t + 1];
      const double z = std::max(g0 + g1, kTiny);
      gamma[2 * t] = g0 / z;
      gamma[2 * t + 1] = g1 / z;
    }

    // Expected transitions.
    std::fill(xi.begin(), xi.end(), 0.0);
    for (std::size_t t = 0; t + 1 < n; ++t) {
      double denom = 0.0;
      double local[4];
      for (int s = 0; s < 2; ++s) {
        for (int s2 = 0; s2 < 2; ++s2) {
          local[2 * s + s2] =
              alpha[2 * t + s] * trans[s][s2] *
              gaussian_pdf(observations[t + 1], m.mean[s2], m.stddev[s2]) *
              beta[2 * (t + 1) + s2];
          denom += local[2 * s + s2];
        }
      }
      denom = std::max(denom, kTiny);
      for (int k = 0; k < 4; ++k) xi[k] += local[k] / denom;
    }

    // M-step.
    const double occ0 = std::max(xi[0] + xi[1], kTiny);
    const double occ1 = std::max(xi[2] + xi[3], kTiny);
    m.stay_normal = std::clamp(xi[0] / occ0, 0.5, 0.999);
    m.stay_congested = std::clamp(xi[3] / occ1, 0.3, 0.999);
    m.initial_congested = std::clamp(gamma[1], 0.001, 0.999);

    for (int s = 0; s < 2; ++s) {
      double wsum = 0.0, xsum = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        wsum += gamma[2 * t + s];
        xsum += gamma[2 * t + s] * observations[t];
      }
      wsum = std::max(wsum, kTiny);
      m.mean[s] = xsum / wsum;
      double vsum = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        const double d = observations[t] - m.mean[s];
        vsum += gamma[2 * t + s] * d * d;
      }
      m.stddev[s] = std::max(std::sqrt(vsum / wsum), config.min_stddev);
    }
    // Keep state 1 the high-deficit state.
    if (m.mean[1] < m.mean[0]) {
      std::swap(m.mean[0], m.mean[1]);
      std::swap(m.stddev[0], m.stddev[1]);
      std::swap(m.stay_normal, m.stay_congested);
      m.initial_congested = 1.0 - m.initial_congested;
    }

    double ll = 0.0;
    for (std::size_t t = 0; t < n; ++t) ll += std::log(scale[t]);
    m.log_likelihood = ll;
    m.iterations = iter + 1;
    if (std::abs(ll - prev_ll) < config.tolerance * std::abs(prev_ll)) {
      m.converged = true;
      break;
    }
    prev_ll = ll;
  }
  return m;
}

std::vector<bool> viterbi_decode(const hmm_model& m,
                                 std::span<const double> observations) {
  const std::size_t n = observations.size();
  std::vector<bool> path(n, false);
  if (n == 0) return path;

  const double trans[2][2] = {{m.stay_normal, 1.0 - m.stay_normal},
                              {1.0 - m.stay_congested, m.stay_congested}};
  const double init[2] = {1.0 - m.initial_congested, m.initial_congested};

  const auto log_safe = [](double x) { return std::log(std::max(x, kTiny)); };

  std::vector<double> delta(2 * n);
  std::vector<unsigned char> back(2 * n);
  for (int s = 0; s < 2; ++s) {
    delta[s] = log_safe(init[s]) +
               log_safe(gaussian_pdf(observations[0], m.mean[s], m.stddev[s]));
  }
  for (std::size_t t = 1; t < n; ++t) {
    for (int s = 0; s < 2; ++s) {
      const double from0 = delta[2 * (t - 1)] + log_safe(trans[0][s]);
      const double from1 = delta[2 * (t - 1) + 1] + log_safe(trans[1][s]);
      const bool pick1 = from1 > from0;
      back[2 * t + s] = pick1 ? 1 : 0;
      delta[2 * t + s] =
          (pick1 ? from1 : from0) +
          log_safe(gaussian_pdf(observations[t], m.mean[s], m.stddev[s]));
    }
  }
  int state = delta[2 * (n - 1) + 1] > delta[2 * (n - 1)] ? 1 : 0;
  for (std::size_t t = n; t-- > 0;) {
    path[t] = state == 1;
    if (t > 0) state = back[2 * t + state];
  }
  return path;
}

hmm_detection hmm_detector(const ts_series& series, timezone_offset tz,
                           double min_separation, double min_congested_mean,
                           const hmm_config& config) {
  hmm_detection out;
  // Observations: the §3.3 intra-day deficit, aligned with the points.
  const auto labels = intraday_labels(series, tz, /*threshold=*/2.0,
                                      /*min_samples=*/4);
  if (labels.size() < 8 || labels.size() != series.size()) {
    out.congested.assign(series.size(), false);
    return out;
  }
  std::vector<double> deficits;
  deficits.reserve(labels.size());
  for (const hour_label& l : labels) deficits.push_back(l.v_h);

  out.model = fit_hmm(deficits, config);
  out.usable =
      (out.model.mean[1] - out.model.mean[0]) >= min_separation &&
      out.model.mean[1] >= min_congested_mean;
  if (!out.usable) {
    out.congested.assign(series.size(), false);
    return out;
  }
  out.congested = viterbi_decode(out.model, deficits);
  return out;
}

}  // namespace clasp

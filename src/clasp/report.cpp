#include "clasp/report.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace clasp {

std::string render_campaign_report(clasp_platform& platform,
                                   const std::string& region,
                                   const report_options& options) {
  const obs::trace_span span(obs::phase::analysis);
  const auto data = platform.download_series("topology", region);
  if (data.series.empty()) {
    throw state_error("report: no topology campaign data for " + region);
  }

  std::ostringstream out;
  out << "CLASP campaign report — " << region << "\n";
  out << std::string(60, '=') << "\n\n";

  // Window and fleet.
  const ts_series* first = data.series.front();
  out << "window: " << first->points().front().at.to_string() << " .. "
      << first->points().back().at.to_string() << "\n";
  out << "servers measured: " << data.series.size() << "\n";

  const auto& selection = platform.select_topology(region);
  out << "interdomain links: " << selection.pilot.links.size()
      << " discovered, " << selection.links_traversed_by_servers
      << " traversed by U.S. servers, coverage "
      << format_double(100.0 * selection.coverage(), 1) << "%\n";

  const cost_report& costs = platform.cloud().costs();
  out << "spend to date: $" << format_double(costs.total(), 2) << " (VMs $"
      << format_double(costs.vm_usd, 2) << ", egress $"
      << format_double(costs.egress_usd, 2) << ", storage $"
      << format_double(costs.storage_usd, 2) << ")\n";

  // Campaign health (only under fault injection; a fault-free campaign
  // is 100% complete by construction).
  for (const auto& runner : platform.campaigns()) {
    if (runner->config().label != "topology" ||
        runner->config().region != region || !runner->faults().enabled()) {
      continue;
    }
    const campaign_health health = runner->health();
    out << "campaign health: "
        << format_double(100.0 * health.mean_completeness(), 1)
        << "% mean completeness, " << health.total_retries << " retries, "
        << health.failed_tests << " failed tests, "
        << health.withdrawn_servers << " servers withdrawn, "
        << health.vm_redeploys << " VM redeploys ("
        << health.vm_downtime_hours << " downtime hours), "
        << health.upload_failures << " uploads lost\n";
    const auto excluded = health.low_completeness_servers(0.8);
    if (!excluded.empty()) {
      out << "excluded (<80% complete):";
      for (const std::size_t sid : excluded) {
        out << " " << platform.registry().server(sid).name;
      }
      out << "\n";
    }
    break;
  }
  out << "\n";

  // Congestion ranking.
  struct row {
    std::string name;
    server_congestion_summary summary;
    weekday_weekend_split split;
    asymmetry_summary asym;
    std::string diurnal;
  };
  std::vector<row> rows;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const std::size_t sid = static_cast<std::size_t>(
        std::stoul(data.series[i]->tag("server").value_or("0")));
    row r;
    r.name = platform.registry().server(sid).name;
    r.summary =
        summarize_server(*data.series[i], data.tz[i], options.threshold);
    r.split =
        split_by_day_type(*data.series[i], data.tz[i], options.threshold);
    // Diurnal congestion-probability sparkline, local midnight..23h.
    const auto prob = hourly_congestion_probability(*data.series[i],
                                                    data.tz[i],
                                                    options.threshold);
    r.diurnal = sparkline({prob.begin(), prob.end()});
    const ts_series* dl =
        platform.store().find("download_loss", data.series[i]->tags());
    const ts_series* ul =
        platform.store().find("upload_loss", data.series[i]->tags());
    if (dl != nullptr && ul != nullptr) {
      r.asym = classify_asymmetry(*data.series[i], *dl, *ul, data.tz[i],
                                  options.threshold);
    }
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(), [](const row& a, const row& b) {
    return a.summary.congested_hours > b.summary.congested_hours;
  });

  std::size_t congested_servers = 0;
  for (const row& r : rows) {
    congested_servers += r.summary.congested_server ? 1 : 0;
  }
  out << "congested servers (>10% of days with events): "
      << congested_servers << "/" << rows.size() << "\n\n";

  text_table table({"network", "cong.days", "cong.hours", "wd%", "we%",
                    "direction", "diurnal (00-23h)"});
  for (std::size_t i = 0;
       i < std::min<std::size_t>(rows.size(), options.top_servers); ++i) {
    const row& r = rows[i];
    table.add_row(
        {r.name,
         std::to_string(r.summary.congested_days) + "/" +
             std::to_string(r.summary.days_measured),
         std::to_string(r.summary.congested_hours) + "/" +
             std::to_string(r.summary.hours_measured),
         format_double(100.0 * r.split.weekday_fraction(), 1),
         format_double(100.0 * r.split.weekend_fraction(), 1),
         to_string(r.asym.dominant()), r.diurnal});
  }
  out << table.render() << "\n";

  // Interconnect view.
  auto links = platform.interconnect_congestion(region, options.threshold);
  std::sort(links.begin(), links.end(),
            [](const interconnect_report& a, const interconnect_report& b) {
              return a.summary.congested_hours > b.summary.congested_hours;
            });
  out << "most congested interconnects:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(links.size(), 5); ++i) {
    out << "  " << links[i].far_side.to_string() << "  AS"
        << links[i].neighbor.value << "  "
        << links[i].summary.congested_hours << "/"
        << links[i].summary.hours_measured << " hours\n";
  }
  return out.str();
}

}  // namespace clasp

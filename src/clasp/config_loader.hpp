// platform_config from INI text.
//
// Lets deployments (and the CLI's --config flag) describe a whole run
// declaratively:
//
//   [internet]
//   seed = 7
//   regional_isp_count = 1500
//   congestion_prone_fraction = 0.6
//
//   [servers]
//   us_server_target = 1000
//
//   [differential]
//   target_servers = 17
//
//   [campaign]
//   workers = 4          ; replay concurrency (0 = hardware concurrency)
//   link_cache = true    ; hour-epoch link-condition cache (speed only;
//                        ; results are bit-identical on or off)
//   checkpoint_dir = /var/lib/clasp/ckpt   ; durability root ("" = off)
//   checkpoint_every_hours = 24            ; cadence, must be >= 1
//
//   [budgets]            ; per-region topology deployment budgets
//   us-west1 = 106
//   us-east1 = 184
//
// Parsing is strict: unknown keys throw invalid_argument_error, so typos
// fail loudly instead of silently running a default campaign.
#pragma once

#include <string>

#include "clasp/platform.hpp"

namespace clasp {

// Apply INI text on top of the defaults. Throws on malformed syntax,
// malformed values, or unknown keys.
platform_config load_platform_config(const std::string& ini_text);

// Convenience: read the file, then parse. Throws not_found_error when
// the file cannot be read.
platform_config load_platform_config_file(const std::string& path);

}  // namespace clasp

#include "clasp/differential.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace clasp {

const char* to_string(latency_class c) {
  switch (c) {
    case latency_class::premium_lower: return "premium_lower";
    case latency_class::comparable: return "comparable";
    case latency_class::standard_lower: return "standard_lower";
  }
  return "?";
}

differential_selector::differential_selector(const route_planner* planner,
                                             const network_view* view,
                                             const server_registry* registry)
    : planner_(planner), view_(view), registry_(registry) {
  if (planner == nullptr || view == nullptr || registry == nullptr) {
    throw invalid_argument_error("differential_selector: null dependency");
  }
}

differential_selection_result differential_selector::run(
    const endpoint& region_vm, const differential_config& config,
    rng& r) const {
  differential_selection_result result;
  const internet& net = planner_->net();
  speedchecker_service platform(planner_, view_, config.platform);

  // Group vantage points by <city, AS>.
  struct tuple_state {
    city_id city;
    asn network;
    std::vector<double> premium_ms;
    std::vector<double> standard_ms;
  };
  std::unordered_map<std::uint64_t, tuple_state> tuples;
  const auto key_of = [](city_id c, asn a) {
    return (static_cast<std::uint64_t>(c.value) << 32) | a.value;
  };

  for (const host_index vp : net.vantage_points) {
    const endpoint src = planner_->endpoint_of_host(vp);
    const asn network = net.topo->as_at(src.owner).number;
    auto& tuple = tuples
                      .try_emplace(key_of(src.city, network),
                                   tuple_state{src.city, network, {}, {}})
                      .first->second;

    for (hour_stamp t = config.pretest_window.begin_at;
         t < config.pretest_window.end_at;
         t = t + config.probe_every_hours) {
      tuple.premium_ms.push_back(
          platform.probe(vp, region_vm, service_tier::premium, t, r)
              .rtt.value);
      tuple.standard_ms.push_back(
          platform.probe(vp, region_vm, service_tier::standard, t, r)
              .rtt.value);
    }
  }

  // Classify tuples with enough samples.
  for (auto& [key, tuple] : tuples) {
    const std::size_t samples =
        std::min(tuple.premium_ms.size(), tuple.standard_ms.size());
    if (samples < config.min_measurements) continue;
    ++result.tuples_measured;
    const double med_p = median(tuple.premium_ms);
    const double med_s = median(tuple.standard_ms);
    const double delta = med_s - med_p;
    diff_candidate cand;
    cand.city = tuple.city;
    cand.network = tuple.network;
    cand.median_premium_ms = med_p;
    cand.median_standard_ms = med_s;
    cand.samples = samples;
    if (std::abs(delta) >= config.big_delta_ms) {
      cand.cls = delta > 0 ? latency_class::premium_lower
                           : latency_class::standard_lower;
    } else if (std::abs(delta) <= config.small_delta_ms) {
      cand.cls = latency_class::comparable;
    } else {
      continue;  // neither clearly different nor clearly comparable
    }
    result.candidates.push_back(cand);
  }

  // Choose servers in candidate <city, AS> tuples, maximizing coverage:
  // spread across classes first, then countries, then cities.
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const diff_candidate& a, const diff_candidate& b) {
                     return std::abs(a.delta_ms()) > std::abs(b.delta_ms());
                   });

  std::unordered_set<std::uint32_t> used_cities;
  std::unordered_set<std::uint32_t> used_networks;
  const auto pick_pass = [&](bool allow_repeats) {
    for (const diff_candidate& cand : result.candidates) {
      if (result.selected.size() >= config.target_servers) return;
      if (!allow_repeats && (used_cities.contains(cand.city.value) ||
                             used_networks.contains(cand.network.value))) {
        continue;
      }
      const auto servers = registry_->in_city_as(cand.city, cand.network);
      if (servers.empty()) continue;
      const std::size_t sid = servers.front();
      const bool already = std::any_of(
          result.selected.begin(), result.selected.end(),
          [&](const auto& s) { return s.server_id == sid; });
      if (already) continue;
      result.selected.push_back({sid, cand.cls});
      used_cities.insert(cand.city.value);
      used_networks.insert(cand.network.value);
    }
  };
  pick_pass(/*allow_repeats=*/false);
  pick_pass(/*allow_repeats=*/true);

  CLASP_LOG(info, "selection")
      << "differential selection: " << result.tuples_measured
      << " tuples measured, " << result.candidates.size() << " candidates, "
      << result.selected.size() << " servers chosen";
  return result;
}

}  // namespace clasp

#include "clasp/differential.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace clasp {

namespace {

// Shared pre-test bookkeeping for one ⟨city, AS⟩ tuple.
struct tuple_state {
  city_id city;
  asn network;
  std::vector<std::size_t> members;  // probe indices, panel order
  std::vector<double> premium_ms;
  std::vector<double> standard_ms;
  std::vector<std::uint8_t> round_done;  // per cadence round
  tuple_coverage cov;
};

std::uint64_t key_of(city_id c, asn a) {
  return (static_cast<std::uint64_t>(c.value) << 32) | a.value;
}

std::size_t round_count(const differential_config& config) {
  std::size_t rounds = 0;
  for (hour_stamp t = config.pretest_window.begin_at;
       t < config.pretest_window.end_at; t = t + config.probe_every_hours) {
    ++rounds;
  }
  return rounds;
}

// Fold one tuple's per-round completion bitmap into its coverage record.
void finish_coverage(tuple_state& tuple) {
  tuple.cov.probes = tuple.members.size();
  tuple.cov.scheduled_rounds = tuple.round_done.size();
  std::size_t stale_run = 0;
  for (const std::uint8_t done : tuple.round_done) {
    if (done != 0) {
      ++tuple.cov.completed_rounds;
      stale_run = 0;
    } else {
      ++tuple.cov.missed_rounds;
      ++stale_run;
      tuple.cov.max_stale_run = std::max(tuple.cov.max_stale_run, stale_run);
    }
  }
}

}  // namespace

const char* to_string(latency_class c) {
  switch (c) {
    case latency_class::premium_lower: return "premium_lower";
    case latency_class::comparable: return "comparable";
    case latency_class::standard_lower: return "standard_lower";
  }
  return "?";
}

differential_selector::differential_selector(const route_planner* planner,
                                             const network_view* view,
                                             const server_registry* registry)
    : planner_(planner), view_(view), registry_(registry) {
  if (planner == nullptr || view == nullptr || registry == nullptr) {
    throw invalid_argument_error("differential_selector: null dependency");
  }
}

differential_selection_result differential_selector::run(
    const endpoint& region_vm, const differential_config& config,
    rng& r) const {
  vantage_swarm local(planner_, view_, config.swarm, config.platform);
  return run(region_vm, config, r, &local);
}

differential_selection_result differential_selector::run(
    const endpoint& region_vm, const differential_config& config, rng& r,
    vantage_swarm* swarm) const {
  differential_selection_result result;
  const internet& net = planner_->net();
  const bool swarm_on = swarm != nullptr && swarm->enabled();
  const std::size_t rounds = round_count(config);

  // Group vantage points by <city, AS> in panel order (the grouping is a
  // property of the population, not of the schedule, so both substrates
  // see identical tuples).
  std::unordered_map<std::uint64_t, tuple_state> tuples;
  for (std::size_t i = 0; i < net.vantage_points.size(); ++i) {
    const endpoint src = planner_->endpoint_of_host(net.vantage_points[i]);
    const asn network = net.topo->as_at(src.owner).number;
    auto& tuple =
        tuples
            .try_emplace(key_of(src.city, network),
                         tuple_state{src.city, network, {}, {}, {}, {}, {}})
            .first->second;
    if (tuple.members.empty()) tuple.round_done.assign(rounds, 0);
    tuple.members.push_back(i);
  }

  if (!swarm_on) {
    // --- fixed panel (the paper's leased Speedchecker plan) ---
    // A fresh account lease per pre-test, every vantage point probing
    // every cadence slot, VP-major: byte-identical to pre-swarm builds
    // whenever the account serves every probe. admissible() skips an
    // exhausted account span without consuming draws, and a quota or
    // retirement fault mid-pair drops the half-sample — either way the
    // refusal is recorded as missed coverage instead of escaping run().
    speedchecker_service platform(planner_, view_, config.platform);
    for (const host_index vp : net.vantage_points) {
      const endpoint src = planner_->endpoint_of_host(vp);
      const asn network = net.topo->as_at(src.owner).number;
      tuple_state& tuple = tuples.at(key_of(src.city, network));
      std::size_t round = 0;
      for (hour_stamp t = config.pretest_window.begin_at;
           t < config.pretest_window.end_at;
           t = t + config.probe_every_hours, ++round) {
        if (!platform.admissible(t)) {
          result.platform_exhausted = true;
          continue;
        }
        try {
          const vp_probe_result premium =
              platform.probe(vp, region_vm, service_tier::premium, t, r);
          const vp_probe_result standard =
              platform.probe(vp, region_vm, service_tier::standard, t, r);
          tuple.premium_ms.push_back(premium.rtt.value);
          tuple.standard_ms.push_back(standard.rtt.value);
          tuple.round_done[round] = 1;
        } catch (const budget_exceeded_error&) {
          result.platform_exhausted = true;
        } catch (const state_error&) {
          result.platform_exhausted = true;
        }
      }
    }
    result.swarm.probe_population = net.vantage_points.size();
    result.swarm.min_active = net.vantage_points.size();
    result.swarm.max_active = net.vantage_points.size();
    result.swarm.mean_active = static_cast<double>(net.vantage_points.size());
  } else {
    // --- vantage swarm: coverage-aware round scheduling ---
    // Hour-major: each cadence round samples every tuple once through a
    // rotating primary probe (rotation by round index — deterministic, no
    // extra RNG draws), falling back to up to max_substitutes same-tuple
    // stand-ins when a probe is offline, rate-limited or out of credits,
    // and retrying missed tuples once after retry_backoff_hours.
    swarm->plan(config.pretest_window);
    std::vector<std::uint64_t> keys;
    keys.reserve(tuples.size());
    for (const auto& [key, tuple] : tuples) keys.push_back(key);
    std::sort(keys.begin(), keys.end());

    const std::size_t spent_before = swarm->credits_spent();
    const std::size_t limited_before = swarm->rate_limited_count();
    std::size_t active_sum = 0;
    std::size_t scheduled_total = 0;
    std::size_t completed_total = 0;

    // One tuple attempt at hour `t`. Returns true when both tiers were
    // sampled (pushing the samples); `substituted` reports a stand-in.
    const auto attempt = [&](tuple_state& tuple, hour_stamp t,
                             std::size_t round, bool& substituted) {
      substituted = false;
      if (!swarm->platform_admissible(t)) {
        result.platform_exhausted = true;
        return false;
      }
      const std::size_t n = tuple.members.size();
      const std::size_t tries = std::min<std::size_t>(
          n, static_cast<std::size_t>(swarm->config().max_substitutes) + 1);
      for (std::size_t k = 0; k < tries; ++k) {
        const std::size_t probe = tuple.members[(round + k) % n];
        try {
          const auto premium = swarm->try_probe(
              probe, region_vm, service_tier::premium, t, r);
          if (!premium) continue;
          const auto standard = swarm->try_probe(
              probe, region_vm, service_tier::standard, t, r);
          // A half-pair (standard refused after premium served) is
          // dropped to keep the tier sample counts aligned; the probe
          // still paid for the served request, as real platforms charge.
          if (!standard) continue;
          tuple.premium_ms.push_back(premium->rtt.value);
          tuple.standard_ms.push_back(standard->rtt.value);
          substituted = k > 0;
          return true;
        } catch (const budget_exceeded_error&) {
          result.platform_exhausted = true;
          return false;
        } catch (const state_error&) {
          result.platform_exhausted = true;
          return false;
        }
      }
      return false;
    };

    std::vector<std::uint64_t> retry_keys;
    std::size_t round = 0;
    for (hour_stamp t = config.pretest_window.begin_at;
         t < config.pretest_window.end_at;
         t = t + config.probe_every_hours, ++round) {
      active_sum += swarm->active_probes(t);
      if (round == 0) {
        result.swarm.min_active = swarm->active_probes(t);
        result.swarm.max_active = result.swarm.min_active;
      } else {
        result.swarm.min_active =
            std::min(result.swarm.min_active, swarm->active_probes(t));
        result.swarm.max_active =
            std::max(result.swarm.max_active, swarm->active_probes(t));
      }

      retry_keys.clear();
      std::size_t completed_this_round = 0;
      for (const std::uint64_t key : keys) {
        tuple_state& tuple = tuples.at(key);
        bool substituted = false;
        if (attempt(tuple, t, round, substituted)) {
          tuple.round_done[round] = 1;
          ++completed_this_round;
          if (substituted) {
            ++tuple.cov.substituted_rounds;
            swarm->note_substitution();
          }
        } else {
          retry_keys.push_back(key);
        }
      }

      // Backoff retry inside the round gap: churned probes may be back,
      // rate-limit windows have rolled over.
      const unsigned backoff = swarm->config().retry_backoff_hours;
      const hour_stamp retry_at = t + backoff;
      if (backoff > 0 && backoff < config.probe_every_hours &&
          retry_at < config.pretest_window.end_at) {
        for (const std::uint64_t key : retry_keys) {
          tuple_state& tuple = tuples.at(key);
          bool substituted = false;
          if (!attempt(tuple, retry_at, round, substituted)) continue;
          tuple.round_done[round] = 1;
          ++completed_this_round;
          ++tuple.cov.retried_rounds;
          if (substituted) {
            ++tuple.cov.substituted_rounds;
            swarm->note_substitution();
          }
        }
      }
      for (const std::uint64_t key : keys) {
        if (tuples.at(key).round_done[round] == 0) {
          swarm->note_missed_round();
        }
      }

      scheduled_total += keys.size();
      completed_total += completed_this_round;
      const double round_coverage =
          keys.empty() ? 1.0
                       : static_cast<double>(completed_this_round) /
                             static_cast<double>(keys.size());
      if (round_coverage < swarm->config().coverage_target) {
        ++result.swarm.rounds_below_target;
      }
      std::size_t stale = 0;
      for (const std::uint64_t key : keys) {
        const auto& done = tuples.at(key).round_done;
        bool missed = false;
        for (std::size_t ri = 0; ri <= round; ++ri) {
          if (done[ri] == 0) {
            missed = true;
            break;
          }
        }
        if (missed) ++stale;
      }
      swarm->publish_round(
          t,
          scheduled_total == 0 ? 1.0
                               : static_cast<double>(completed_total) /
                                     static_cast<double>(scheduled_total),
          stale);
    }
    result.swarm.probe_population = swarm->probes().size();
    result.swarm.mean_active =
        rounds == 0 ? 0.0
                    : static_cast<double>(active_sum) /
                          static_cast<double>(rounds);
    result.swarm.joins = swarm->churn().join_count();
    result.swarm.leaves = swarm->churn().leave_count();
    result.swarm.credits_spent = swarm->credits_spent() - spent_before;
    result.swarm.rate_limited = swarm->rate_limited_count() - limited_before;
  }

  // Fold per-round bitmaps into coverage records and aggregates.
  std::map<std::uint64_t, const tuple_state*> ordered;
  double coverage_sum = 0.0;
  for (auto& [key, tuple] : tuples) {
    finish_coverage(tuple);
    ordered.emplace(key, &tuple);
  }
  result.coverage.reserve(tuples.size());
  for (const auto& [key, tuple] : ordered) {
    result.coverage.push_back(tuple->cov);
    coverage_sum += tuple->cov.coverage();
    if (tuple->cov.missed_rounds > 0) {
      ++result.swarm.stale_tuples;
      result.swarm.missed_rounds += tuple->cov.missed_rounds;
      if (std::min(tuple->premium_ms.size(), tuple->standard_ms.size()) <
          config.min_measurements) {
        ++result.tuples_incomplete;
      }
    }
    result.swarm.substitutions += tuple->cov.substituted_rounds;
  }
  result.swarm.mean_coverage =
      tuples.empty() ? 1.0 : coverage_sum / static_cast<double>(tuples.size());

  // Classify tuples with enough samples.
  for (auto& [key, tuple] : tuples) {
    const std::size_t samples =
        std::min(tuple.premium_ms.size(), tuple.standard_ms.size());
    if (samples < config.min_measurements) continue;
    ++result.tuples_measured;
    const double med_p = median(tuple.premium_ms);
    const double med_s = median(tuple.standard_ms);
    const double delta = med_s - med_p;
    diff_candidate cand;
    cand.city = tuple.city;
    cand.network = tuple.network;
    cand.median_premium_ms = med_p;
    cand.median_standard_ms = med_s;
    cand.samples = samples;
    if (std::abs(delta) >= config.big_delta_ms) {
      cand.cls = delta > 0 ? latency_class::premium_lower
                           : latency_class::standard_lower;
    } else if (std::abs(delta) <= config.small_delta_ms) {
      cand.cls = latency_class::comparable;
    } else {
      continue;  // neither clearly different nor clearly comparable
    }
    result.candidates.push_back(cand);
  }

  // Choose servers in candidate <city, AS> tuples, maximizing coverage:
  // spread across classes first, then countries, then cities.
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const diff_candidate& a, const diff_candidate& b) {
                     return std::abs(a.delta_ms()) > std::abs(b.delta_ms());
                   });

  std::unordered_set<std::uint32_t> used_cities;
  std::unordered_set<std::uint32_t> used_networks;
  const auto pick_pass = [&](bool allow_repeats) {
    for (const diff_candidate& cand : result.candidates) {
      if (result.selected.size() >= config.target_servers) return;
      if (!allow_repeats && (used_cities.contains(cand.city.value) ||
                             used_networks.contains(cand.network.value))) {
        continue;
      }
      const auto servers = registry_->in_city_as(cand.city, cand.network);
      if (servers.empty()) continue;
      const std::size_t sid = servers.front();
      const bool already = std::any_of(
          result.selected.begin(), result.selected.end(),
          [&](const auto& s) { return s.server_id == sid; });
      if (already) continue;
      result.selected.push_back({sid, cand.cls});
      used_cities.insert(cand.city.value);
      used_networks.insert(cand.network.value);
    }
  };
  pick_pass(/*allow_repeats=*/false);
  pick_pass(/*allow_repeats=*/true);

  CLASP_LOG(info, "selection")
      << "differential selection: " << result.tuples_measured
      << " tuples measured, " << result.candidates.size() << " candidates, "
      << result.selected.size() << " servers chosen"
      << (swarm_on ? " (swarm)" : "")
      << (result.platform_exhausted ? " [platform exhausted: "
                                      "incomplete tuples recorded]"
                                    : "");
  return result;
}

}  // namespace clasp

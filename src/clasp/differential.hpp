// Differential-based server selection (§3.1, method 2).
//
// A Speedchecker-style pre-test measures latency from eyeball vantage
// points to a region's VMs over both network tiers. Measurements are
// grouped by ⟨city, AS, region, tier⟩; tuples with more than a minimum
// number of samples get a median latency per tier. Candidate tuples are
// those where |median_standard - median_premium| >= 50 ms (one tier
// clearly better) or <= 10 ms (comparable). Speed-test servers in the
// candidates' ⟨city, AS⟩ are then chosen, heuristically maximizing
// geographic and network coverage, ~15-17 per region.
//
// Two pre-test substrates are supported:
//
//  * fixed panel (config.swarm.enabled == false) — every vantage point
//    probes every cadence slot, exactly the paper's leased panel. This
//    path is byte-identical to pre-swarm builds.
//  * vantage swarm (enabled) — a churn-driven community swarm
//    (clasp/swarm.hpp). A coverage-aware scheduler samples each
//    ⟨city, AS⟩ tuple once per cadence round through a rotating primary
//    probe, substituting same-tuple stand-ins when the primary is
//    offline, rate-limited or out of credits, retrying missed rounds
//    after a backoff, and recording per-tuple coverage/staleness.
//
// Either way the pre-test degrades gracefully when the leased account
// runs dry (monthly quota) or past its retirement date: affected tuples
// are marked incomplete in the report — mirroring the analysis layer's
// filter_low_completeness — instead of a throw escaping run().
#pragma once

#include <vector>

#include "clasp/speedchecker.hpp"
#include "clasp/swarm.hpp"
#include "netsim/network.hpp"
#include "speedtest/registry.hpp"

namespace clasp {

// How the pre-test classified a tuple's premium-vs-standard latency.
enum class latency_class { premium_lower, comparable, standard_lower };

const char* to_string(latency_class c);

struct differential_config {
  std::size_t min_measurements{100};
  double big_delta_ms{50.0};
  double small_delta_ms{10.0};
  std::size_t target_servers{16};
  // Pre-test probing window and cadence.
  hour_range pretest_window{hour_stamp::from_civil({2020, 7, 10}, 0),
                            hour_stamp::from_civil({2020, 7, 28}, 0)};
  unsigned probe_every_hours{3};
  // The leased measurement platform's terms (quota, retirement date).
  speedchecker_config platform{};
  // The community-swarm substrate (off = the paper's fixed panel).
  swarm_config swarm{};
};

struct diff_candidate {
  city_id city;
  asn network;
  latency_class cls{latency_class::comparable};
  double median_premium_ms{0.0};
  double median_standard_ms{0.0};
  std::size_t samples{0};

  double delta_ms() const { return median_standard_ms - median_premium_ms; }
};

struct differential_selection_result {
  std::vector<diff_candidate> candidates;  // tuples passing the thresholds
  struct chosen_server {
    std::size_t server_id;
    latency_class cls;
  };
  std::vector<chosen_server> selected;
  std::size_t tuples_measured{0};  // tuples with enough samples

  // Per-⟨city, AS⟩ coverage/staleness, sorted by (city, AS). A tuple's
  // round is completed when some probe sampled both tiers that cadence
  // slot; missed rounds come from churn, credit/rate refusals or the
  // account running dry.
  std::vector<tuple_coverage> coverage;
  // Tuples that missed rounds and ended below min_measurements — data the
  // pre-test wanted but could not get (the selection simply proceeds
  // without them, like filter_low_completeness drops sparse servers).
  std::size_t tuples_incomplete{0};
  // True when the account refused probes (quota exhausted or retired)
  // during the window; the result is then a best-effort selection.
  bool platform_exhausted{false};
  // Swarm-side aggregates (membership, credits, substitutions); the
  // coverage aggregates are filled for the fixed panel too.
  swarm_report swarm;
};

class differential_selector {
 public:
  differential_selector(const route_planner* planner,
                        const network_view* view,
                        const server_registry* registry);

  // Run the pre-test toward a region endpoint (a VM or the region PoP)
  // from every vantage point in the generated internet. Builds a private
  // swarm from config.swarm (fixed panel when disabled).
  differential_selection_result run(const endpoint& region_vm,
                                    const differential_config& config,
                                    rng& r) const;

  // Same, but probing through a caller-owned swarm whose ledgers persist
  // across pre-tests (the platform passes its checkpoint-backed swarm).
  // When `swarm` is null or disabled the pre-test runs the fixed panel
  // on a fresh account lease — byte-identical to pre-swarm builds.
  differential_selection_result run(const endpoint& region_vm,
                                    const differential_config& config,
                                    rng& r, vantage_swarm* swarm) const;

 private:
  const route_planner* planner_;
  const network_view* view_;
  const server_registry* registry_;
};

}  // namespace clasp

#include "clasp/inband.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace clasp {

megabytes inband_probe_volume(const inband_config& config) {
  return megabytes{static_cast<double>(config.train_length) *
                   static_cast<double>(config.trains) *
                   static_cast<double>(config.packet_bytes) / 1e6};
}

inband_result run_inband_probe(const network_view& view,
                               const route_path& path, hour_stamp at,
                               const inband_config& config, rng& r) {
  if (config.train_length < 2 || config.trains == 0) {
    throw invalid_argument_error("run_inband_probe: degenerate train");
  }
  const path_metrics m = view.evaluate(path, at);

  // Each train yields a dispersion-based estimate of the bottleneck's
  // available bandwidth. Short trains are noisy: sigma scales with
  // 1/sqrt(train_length); cross-traffic burstiness adds a small bias
  // toward underestimation on hot links (higher utilization -> burstier).
  const double sigma = config.base_noise_sigma *
                       std::sqrt(32.0 / static_cast<double>(config.train_length));
  const double burst_bias = 1.0 - 0.08 * std::min(m.bottleneck_util, 1.5);
  std::vector<double> estimates;
  estimates.reserve(config.trains);
  for (unsigned i = 0; i < config.trains; ++i) {
    const double noise = std::exp(r.normal(0.0, sigma));
    estimates.push_back(m.bottleneck.value * burst_bias * noise);
  }
  inband_result out;
  out.available_estimate = mbps{median(estimates)};
  out.rtt = millis{m.rtt.value + r.exponential(2.0)};
  // Train loss: Bernoulli thinning of the train by the path loss rate.
  const unsigned total_packets = config.train_length * config.trains;
  unsigned lost = 0;
  for (unsigned i = 0; i < total_packets; ++i) {
    if (r.bernoulli(m.loss)) ++lost;
  }
  out.loss = static_cast<double>(lost) / static_cast<double>(total_packets);
  out.volume = inband_probe_volume(config);
  out.bottleneck = m.bottleneck_link;
  return out;
}

}  // namespace clasp

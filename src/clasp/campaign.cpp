#include "clasp/campaign.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp {

campaign_runner::campaign_runner(gcp_cloud* cloud, const network_view* view,
                                 const server_registry* registry,
                                 tsdb* store)
    : cloud_(cloud), view_(view), registry_(registry), store_(store) {
  if (cloud == nullptr || view == nullptr || registry == nullptr ||
      store == nullptr) {
    throw invalid_argument_error("campaign_runner: null dependency");
  }
}

std::size_t campaign_runner::deploy(const campaign_config& config,
                                    const std::vector<std::size_t>& server_ids) {
  if (deployed_) throw state_error("campaign_runner: already deployed");
  if (server_ids.empty()) {
    throw invalid_argument_error("campaign_runner: empty server list");
  }
  if (config.tests_per_vm_hour == 0) {
    throw invalid_argument_error("campaign_runner: tests_per_vm_hour == 0");
  }
  config_ = config;
  run_rng_ = rng(hash_tag(cloud_->net().config.seed,
                          "campaign:" + config.label + ":" + config.region));

  const std::size_t vm_needed =
      (server_ids.size() + config.tests_per_vm_hour - 1) /
      config.tests_per_vm_hour;
  for (std::size_t i = 0; i < vm_needed; ++i) {
    vms_.push_back(cloud_->create_vm(config.region, config.tier));
    someta_.emplace_back(cloud_->vm(vms_.back()).type);
  }
  sessions_by_vm_.resize(vms_.size());
  outages_.resize(vms_.size());

  for (std::size_t i = 0; i < server_ids.size(); ++i) {
    const speed_server& server = registry_->server(server_ids[i]);
    const std::size_t vm_slot = i % vms_.size();
    sessions_.emplace_back(cloud_, view_, vms_[vm_slot], server,
                           config.test);
    sessions_by_vm_[vm_slot].push_back(sessions_.size() - 1);
  }
  deployed_ = true;
  CLASP_LOG(info, "campaign")
      << config.label << "/" << config.region << ": " << vms_.size()
      << " VMs for " << sessions_.size() << " servers";
  return vms_.size();
}

void campaign_runner::run() {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  for (hour_stamp t = config_.window.begin_at; t < config_.window.end_at;
       ++t) {
    run_hour(t);
  }
  // Storage billed monthly on the accumulated bucket volume.
  const double months =
      static_cast<double>(config_.window.count()) / (30.0 * 24.0);
  const double gb = cloud_->bucket(config_.region).total_megabytes() / 1024.0;
  cloud_->charge_storage_month(gb * months / 2.0);  // average occupancy
}

void campaign_runner::inject_vm_outage(std::size_t vm_slot,
                                       hour_range outage) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  if (vm_slot >= vms_.size()) {
    throw invalid_argument_error("campaign_runner: bad vm slot");
  }
  if (!(outage.begin_at < outage.end_at)) {
    throw invalid_argument_error("campaign_runner: empty outage window");
  }
  outages_[vm_slot].push_back(outage);
}

bool campaign_runner::vm_down(std::size_t vm_slot, hour_stamp at) const {
  for (const hour_range& o : outages_[vm_slot]) {
    if (o.begin_at <= at && at < o.end_at) return true;
  }
  return false;
}

void campaign_runner::run_hour(hour_stamp at) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  storage_bucket& bucket = cloud_->bucket(config_.region);

  for (std::size_t v = 0; v < vms_.size(); ++v) {
    if (vm_down(v, at)) {
      tests_missed_ += std::min<std::size_t>(sessions_by_vm_[v].size(),
                                             config_.tests_per_vm_hour);
      continue;
    }
    cloud_->charge_vm_hour(vms_[v]);
    // Randomize the test order each hour (cron-artifact mitigation).
    std::vector<std::size_t> order = sessions_by_vm_[v];
    run_rng_.shuffle(order);
    std::size_t run_count = 0;
    double artifact_mb = 0.2;  // someta metadata baseline
    for (const std::size_t si : order) {
      if (run_count >= config_.tests_per_vm_hour) break;
      const speed_test_session& session = sessions_[si];
      const speed_test_report report = session.run(at, run_rng_);
      someta_[v].record(report.download, at, run_rng_);
      record(report, registry_->server(session.server_id()));
      // Egress billing: only the cloud->Internet direction is charged.
      cloud_->charge_egress(config_.tier, report.volume_up);
      artifact_mb += (report.volume_down.value + report.volume_up.value) *
                     config_.artifact_fraction;
      ++run_count;
      ++tests_run_;
    }
    bucket.put("raw/" + config_.label + "/" + at.to_string() + "/vm" +
                   std::to_string(v) + ".tar.gz",
               artifact_mb);
  }
}

void campaign_runner::record(const speed_test_report& report,
                             const speed_server& server) {
  const tag_set tags = {
      {"campaign", config_.label},
      {"region", config_.region},
      {"tier", to_string(report.tier)},
      {"server", std::to_string(server.id)},
      {"network", std::to_string(server.network.value)},
      {"city", cloud_->net().geo->city(server.city).name},
  };
  store_->write("download_mbps", tags, report.at, report.download.value);
  store_->write("upload_mbps", tags, report.at, report.upload.value);
  store_->write("latency_ms", tags, report.at, report.latency.value);
  store_->write("download_loss", tags, report.at, report.download_loss);
  store_->write("upload_loss", tags, report.at, report.upload_loss);
  store_->write("gt_episode", tags, report.at,
                report.ground_truth_episode ? 1.0 : 0.0);
}

}  // namespace clasp

#include "clasp/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <string_view>

#include "obs/families.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp {

campaign_runner::campaign_runner(gcp_cloud* cloud, const network_view* view,
                                 const server_registry* registry,
                                 tsdb* store)
    : cloud_(cloud), view_(view), registry_(registry), store_(store) {
  if (cloud == nullptr || view == nullptr || registry == nullptr ||
      store == nullptr) {
    throw invalid_argument_error("campaign_runner: null dependency");
  }
}

void campaign_runner::resolve_metrics() {
  obs::metrics_registry& reg = obs::metrics_registry::instance();
  namespace fam = obs::family;
  metrics_.hours = &reg.get_counter(fam::kCampaignHours);
  metrics_.tests = &reg.get_counter(fam::kCampaignTests);
  metrics_.tests_failed = &reg.get_counter(fam::kCampaignTestsFailed);
  metrics_.test_retries = &reg.get_counter(fam::kCampaignTestRetries);
  metrics_.tests_missed = &reg.get_counter(fam::kCampaignTestsMissed);
  metrics_.points = &reg.get_counter(fam::kCampaignPoints);
  metrics_.upload_failures = &reg.get_counter(fam::kCampaignUploadFailures);
  metrics_.fault_preempts = &reg.get_counter(fam::kFaultsPreempts);
  metrics_.fault_redeploys = &reg.get_counter(fam::kFaultsRedeploys);
  metrics_.fault_withdrawals = &reg.get_counter(fam::kFaultsWithdrawals);
  metrics_.fault_vm_down_hours = &reg.get_counter(fam::kFaultsVmDownHours);
  metrics_.fault_skipped = &reg.get_counter(fam::kFaultsSkippedTests);
  metrics_.cache_hits = &reg.get_counter(fam::kCacheHits);
  metrics_.cache_misses = &reg.get_counter(fam::kCacheMisses);
  metrics_.cursor_hours = &reg.get_gauge(fam::kCampaignCursorHours);
  metrics_.window_hours = &reg.get_gauge(fam::kCampaignWindowHours);
  metrics_.sessions = &reg.get_gauge(fam::kCampaignSessions);
  metrics_.fleet_servers = &reg.get_gauge(fam::kFleetServers);
  metrics_.fleet_vms = &reg.get_gauge(fam::kFleetVms);
  metrics_.sessions_total = &reg.get_gauge(fam::kSessionsTotal);
  metrics_.batch_groups = &reg.get_gauge(fam::kBatchGroupsPerHour);
  metrics_.pool_workers = &reg.get_gauge(fam::kPoolWorkers);
  metrics_.pool_batches = &reg.get_gauge(fam::kPoolBatches);
  metrics_.pool_tasks = &reg.get_gauge(fam::kPoolTasks);
  metrics_.pool_busy_seconds = &reg.get_gauge(fam::kPoolBusySeconds);
  metrics_.pool_last_batch = &reg.get_gauge(fam::kPoolLastBatchSize);
  metrics_.pool_utilization = &reg.get_gauge(fam::kPoolUtilization);
  metrics_.swarm_active = &reg.get_gauge(fam::kSwarmActiveProbes);
  metrics_.swarm_coverage = &reg.get_gauge(fam::kSwarmCoverageRatio);
  metrics_.swarm_stale = &reg.get_gauge(fam::kSwarmStaleTuples);
  metrics_.swarm_credits = &reg.get_counter(fam::kSwarmCreditsSpent);
  metrics_.dist_workers = &reg.get_gauge(fam::kDistWorkers);
  metrics_.dist_failovers = &reg.get_counter(fam::kDistFailovers);
  metrics_.hour_seconds =
      &reg.get_histogram(fam::kCampaignHourSeconds, obs::duration_buckets());
}

std::size_t campaign_runner::deploy(const campaign_config& config,
                                    const std::vector<std::size_t>& server_ids) {
  if (deployed_) throw state_error("campaign_runner: already deployed");
  if (server_ids.empty()) {
    throw invalid_argument_error("campaign_runner: empty server list");
  }
  if (config.tests_per_vm_hour == 0) {
    throw invalid_argument_error("campaign_runner: tests_per_vm_hour == 0");
  }
  if (!config.checkpoint_dir.empty() && config.checkpoint_every_hours == 0) {
    throw invalid_argument_error(
        "campaign_runner: checkpoint_every_hours == 0");
  }
  const obs::trace_span deploy_span(obs::phase::deploy);
  resolve_metrics();
  config_ = config;
  stream_seed_ = hash_tag(cloud_->net().config.seed,
                          "campaign:" + config.label + ":" + config.region);
  artifact_prefix_ = "raw/" + config.label + "/";

  const std::size_t vm_needed =
      (server_ids.size() + config.tests_per_vm_hour - 1) /
      config.tests_per_vm_hour;
  for (std::size_t i = 0; i < vm_needed; ++i) {
    vms_.push_back(cloud_->create_vm(config.region, config.tier));
    someta_.emplace_back(cloud_->vm(vms_.back()).type);
  }
  // Draw the fault schedule once, on the coordinator: workers only read
  // the plan (and derive per-(VM, hour) streams from it), so the
  // schedule can never depend on replay scheduling. Planned maintenance
  // windows reuse the manual-injection machinery. Plan windows land in
  // the CSR outage arrays grouped by slot, preserving plan order within
  // each slot (counting sort with a per-slot cursor).
  plan_ = fault_plan::build(config_.faults, stream_seed_, vms_.size(),
                            server_ids, config_.window);
  outage_offsets_.assign(vms_.size() + 1, 0);
  for (const vm_outage& outage : plan_.outages()) {
    ++outage_offsets_[outage.vm_slot + 1];
  }
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    outage_offsets_[v + 1] += outage_offsets_[v];
  }
  outage_windows_.resize(plan_.outages().size());
  {
    std::vector<std::uint32_t> cursor(outage_offsets_.begin(),
                                      outage_offsets_.end() - 1);
    for (const vm_outage& outage : plan_.outages()) {
      outage_windows_[cursor[outage.vm_slot]++] = outage.window;
    }
  }

  for (std::size_t i = 0; i < server_ids.size(); ++i) {
    const speed_server& server = registry_->server(server_ids[i]);
    const std::size_t vm_slot = i % vms_.size();
    sessions_.emplace_back(cloud_, view_, vms_[vm_slot], server,
                           config.test);
    // Mirror the session's two flattened paths into the shared arena
    // (download first — evaluate_hour and staging index paths 2i, 2i+1).
    arena_.add(sessions_.back().flat_download_path());
    arena_.add(sessions_.back().flat_upload_path());
    if (config_.link_cache) {
      // Register the union of this campaign's path links so run_hour's
      // prefill turns the hot-loop evaluations into table lookups.
      view_->link_cache().register_path(sessions_.back().download_path());
      view_->link_cache().register_path(sessions_.back().upload_path());
    }

    // Intern the session's series once; the hourly loop appends through
    // integer refs with no string formatting or map lookups.
    const tag_set tags = {
        {"campaign", config_.label},
        {"region", config_.region},
        {"tier", to_string(config_.tier)},
        {"server", std::to_string(server.id)},
        {"network", std::to_string(server.network.value)},
        {"city", cloud_->net().geo->city(server.city).name},
    };
    series_refs_.push_back({
        store_->open_series("download_mbps", tags),
        store_->open_series("upload_mbps", tags),
        store_->open_series("latency_ms", tags),
        store_->open_series("download_loss", tags),
        store_->open_series("upload_loss", tags),
        store_->open_series("gt_episode", tags),
    });
    session_withdraw_.push_back(plan_.withdraw_hour(server.id));
    if (plan_.enabled()) {
      // Per-test outcomes only exist as a series under fault injection;
      // without it the store stays byte-identical to pre-fault builds.
      status_refs_.push_back(store_->open_series("test_status", tags));
    }
  }
  // Round-robin assignment in ascending session order makes the CSR
  // build a closed form: vms_[v]'s k-th session is v + k * vm_count.
  const std::size_t vm_count = vms_.size();
  vm_session_offsets_.assign(vm_count + 1, 0);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    ++vm_session_offsets_[i % vm_count + 1];
  }
  for (std::size_t v = 0; v < vm_count; ++v) {
    vm_session_offsets_[v + 1] += vm_session_offsets_[v];
  }
  vm_session_index_.resize(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    vm_session_index_[vm_session_offsets_[i % vm_count] + i / vm_count] =
        static_cast<std::uint32_t>(i);
  }
  tallies_.resize(sessions_.size());
  if (config_.workers != 1) {
    pool_ = std::make_unique<thread_pool>(config_.workers);
  }
  cursor_ = config_.window.begin_at;
  deployed_ = true;
  if (obs::enabled()) {
    metrics_.sessions->set(static_cast<double>(sessions_.size()));
    metrics_.window_hours->set(static_cast<double>(config_.window.count()));
    metrics_.cursor_hours->set(0.0);
    metrics_.pool_workers->set(static_cast<double>(workers()));
    metrics_.fleet_servers->set(static_cast<double>(registry_->size()));
    metrics_.fleet_vms->set(static_cast<double>(vms_.size()));
    metrics_.sessions_total->set(static_cast<double>(sessions_.size()));
  }
  CLASP_LOG(info, "campaign")
      << config.label << "/" << config.region << ": " << vms_.size()
      << " VMs for " << sessions_.size() << " servers (" << workers()
      << " replay workers)";
  return vms_.size();
}

bool campaign_runner::run() {
  if (!run_until(config_.window.end_at)) return false;
  // Bill monthly storage exactly once per campaign: a resume after the
  // window completed (storage_billed_ restored from the checkpoint) must
  // not double-charge.
  if (!storage_billed_) charge_monthly_storage();
  // Final checkpoint captures the storage bill, so resuming a finished
  // campaign is a no-op.
  if (durable()) checkpoint(config_.checkpoint_dir);
  return true;
}

bool campaign_runner::run_until(hour_stamp stop) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  // First durable hour: anchor the log with a checkpoint (possibly the
  // window-begin one) so WAL replay always has a base snapshot. resume()
  // already wrote one and opened the WAL.
  if (durable() && wal_ == nullptr) checkpoint(config_.checkpoint_dir);
  const std::int64_t begin = config_.window.begin_at.hours_since_epoch();
  while (cursor_ < stop) {
    if (interrupt_.load(std::memory_order_relaxed)) {
      interrupt_.store(false, std::memory_order_relaxed);
      if (durable()) checkpoint(config_.checkpoint_dir);
      CLASP_LOG(info, "campaign")
          << config_.label << "/" << config_.region << ": interrupted at "
          << cursor_.to_string();
      return false;
    }
    run_hour(cursor_);  // advances cursor_
    if (durable() &&
        (cursor_.hours_since_epoch() - begin) %
                static_cast<std::int64_t>(config_.checkpoint_every_hours) ==
            0) {
      checkpoint(config_.checkpoint_dir);
    }
  }
  return true;
}

void campaign_runner::charge_monthly_storage() {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  const double months =
      static_cast<double>(config_.window.count()) / (30.0 * 24.0);
  const double gb = cloud_->bucket(config_.region).total_megabytes() / 1024.0;
  cloud_->charge_storage_month(gb * months / 2.0);  // average occupancy
  storage_billed_ = true;
}

void campaign_runner::inject_vm_outage(std::size_t vm_slot,
                                       hour_range outage) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  if (vm_slot >= vms_.size()) {
    throw invalid_argument_error("campaign_runner: bad vm slot");
  }
  if (!(outage.begin_at < outage.end_at)) {
    throw invalid_argument_error("campaign_runner: empty outage window");
  }
  // Append at the end of the slot's CSR slice (the flat-array shift is
  // fine: injections are rare and coordinator-only).
  outage_windows_.insert(
      outage_windows_.begin() + outage_offsets_[vm_slot + 1], outage);
  for (std::size_t v = vm_slot + 1; v < outage_offsets_.size(); ++v) {
    ++outage_offsets_[v];
  }
}

bool campaign_runner::vm_down(std::size_t vm_slot, hour_stamp at) const {
  const std::uint32_t end = outage_offsets_[vm_slot + 1];
  for (std::uint32_t i = outage_offsets_[vm_slot]; i < end; ++i) {
    const hour_range& o = outage_windows_[i];
    if (o.begin_at <= at && at < o.end_at) return true;
  }
  return false;
}

rng campaign_runner::vm_stream(std::size_t vm_slot, hour_stamp at) const {
  // Stack-formatted stream tag: same bytes as the string concatenation
  // ("vm:<slot>:hour:<hours>"), so the derived stream is unchanged, but
  // staging a VM-hour no longer allocates to seed its RNG.
  char tag[64];
  const int len =
      std::snprintf(tag, sizeof(tag), "vm:%zu:hour:%lld", vm_slot,
                    static_cast<long long>(at.hours_since_epoch()));
  return rng(hash_tag(stream_seed_,
                      std::string_view(tag, static_cast<std::size_t>(len))));
}

void campaign_runner::begin_hour(hour_stamp at) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  if (!plan_.enabled()) return;
  // Server churn: the plan is authoritative for this campaign's staging;
  // retiring from the registry makes the withdrawal visible to later
  // crawls and selections (speed_server::withdrawn).
  if (churn_registry_ != nullptr) {
    for (const auto& [server_id, hour] : plan_.withdrawals()) {
      if (hour == at && !churn_registry_->retired(server_id)) {
        churn_registry_->retire_server(server_id);
        metrics_.fault_withdrawals->add(1);
        CLASP_LOG(info, "campaign")
            << config_.label << ": server " << server_id << " withdrew at "
            << at.to_string();
      }
    }
  }
  // VM lifecycle: preempt on a down-transition, redeploy on recovery.
  // Derived from the merged windows (manual + plan) so overlapping
  // windows produce one preempt/redeploy pair.
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    const bool down = vm_down(v, at);
    const bool was_down =
        at > config_.window.begin_at && vm_down(v, at + (-1));
    if (down && !was_down) {
      cloud_->preempt_vm(vms_[v]);
      metrics_.fault_preempts->add(1);
    } else if (!down && was_down) {
      cloud_->redeploy_vm(vms_[v]);
      metrics_.fault_redeploys->add(1);
    }
  }
}

void campaign_runner::run_hour(hour_stamp at) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  const bool obs_on = obs::enabled();
  const auto hour_begin =
      obs_on ? std::chrono::steady_clock::now()
             : std::chrono::steady_clock::time_point{};
  const std::int64_t h = at.hours_since_epoch();
  {
    const obs::trace_span span(obs::phase::begin_hour, h);
    begin_hour(at);
  }
  // Prefill the shared hour-epoch cache before any worker starts reading;
  // the pool's batch join publishes the writes (see condition_cache.hpp).
  if (config_.link_cache) {
    const obs::trace_span span(obs::phase::prefill, h);
    view_->link_cache().prefill(at, pool_.get());
  }
  // Batched arena sweep: every session path's metrics for this hour,
  // computed once on the coordinator (attributed to the prefill phase —
  // both are hour-top precomputation no worker overlaps with).
  if (config_.batch_eval) {
    const obs::trace_span span(obs::phase::prefill, h);
    evaluate_hour(at, pool_.get());
  }
  staging_.resize(vms_.size());
  // Durable runs log each staged record before committing it; the flush
  // below is the hour's durability point. Workers never touch the log —
  // the coordinator appends in slot order at the hour barrier, so the
  // WAL's (hour asc, slot asc) order is a structural invariant replay
  // can rely on.
  if (pool_) {
    {
      const obs::trace_span span(obs::phase::stage, h);
      pool_->parallel_for(vms_.size(), [&](std::size_t v) {
        stage_vm_hour_into(v, at, staging_[v]);
      });
    }
    const obs::trace_span span(obs::phase::commit, h);
    for (std::size_t v = 0; v < vms_.size(); ++v) {
      if (wal_) wal_->append(encode_wal_record(v, staging_[v]));
      commit_vm_hour(v, std::move(staging_[v]));
    }
  } else {
    // Serial replay commits each VM right after staging it: identical
    // order (staging reads only immutable state, commits stay in slot
    // order) but the staged points are still cache-hot when merged. The
    // fused loop is attributed to the `stage` phase.
    const obs::trace_span span(obs::phase::stage, h);
    for (std::size_t v = 0; v < vms_.size(); ++v) {
      stage_vm_hour_into(v, at, staging_[v]);
      if (wal_) wal_->append(encode_wal_record(v, staging_[v]));
      commit_vm_hour(v, std::move(staging_[v]));
    }
  }
  if (wal_) wal_->flush();
  cursor_ = at + 1;
  if (obs_on) {
    publish_hour_metrics(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - hour_begin)
                             .count());
  }
}

void campaign_runner::evaluate_hour(hour_stamp at, thread_pool* pool) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  if (!config_.batch_eval || sessions_.empty()) return;
  if (!arena_resolved_) {
    // Condition-cache slots are stable once assigned (registration only
    // appends), so one resolution after deploy's register_path calls
    // serves the whole window.
    arena_.resolve(view_->link_cache());
    arena_resolved_ = true;
  }
  const std::size_t paths = arena_.size();
  hour_metrics_.resize(paths);
  if (pool == nullptr) pool = pool_.get();
  // Fixed-size blocks: large enough to amortize pool dispatch, small
  // enough to load-balance. Each block writes a disjoint output range and
  // path metrics are independent, so block boundaries and scheduling
  // cannot change any value.
  constexpr std::size_t kBlockPaths = 256;
  const std::size_t blocks = (paths + kBlockPaths - 1) / kBlockPaths;
  if (pool != nullptr && blocks > 1) {
    pool->parallel_for(blocks, [&](std::size_t b) {
      const std::size_t begin = b * kBlockPaths;
      view_->evaluate_batch(arena_, at, begin,
                            std::min(paths, begin + kBlockPaths),
                            hour_metrics_.data());
    });
  } else {
    view_->evaluate_batch(arena_, at, 0, paths, hour_metrics_.data());
  }
  hour_metrics_hour_ = at.hours_since_epoch();
  hour_metrics_valid_ = true;
  batch_groups_ = blocks;
  if (obs::enabled()) {
    metrics_.batch_groups->set(static_cast<double>(blocks));
  }
}

void campaign_runner::stage_shard_hour(hour_stamp at, std::size_t slot_begin,
                                       std::size_t slot_end,
                                       std::vector<vm_hour_staging>& out) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  if (slot_begin >= slot_end || slot_end > vms_.size()) {
    throw invalid_argument_error("campaign_runner: bad shard slot range");
  }
  const std::int64_t h = at.hours_since_epoch();
  // Everything below runs on the calling thread. A dist worker is
  // typically a fork() of a process whose pool threads did not survive,
  // so this path must never dispatch to pool_ (prefill and the batch
  // sweep take an explicit null pool; block count 1 keeps the sweep one
  // serial pass, which cannot change any value — see evaluate_hour).
  if (config_.link_cache) {
    const obs::trace_span span(obs::phase::prefill, h);
    view_->link_cache().prefill(at, nullptr);
  }
  if (config_.batch_eval && !sessions_.empty()) {
    const obs::trace_span span(obs::phase::prefill, h);
    if (!arena_resolved_) {
      arena_.resolve(view_->link_cache());
      arena_resolved_ = true;
    }
    hour_metrics_.resize(arena_.size());
    view_->evaluate_batch(arena_, at, 0, arena_.size(),
                          hour_metrics_.data());
    hour_metrics_hour_ = h;
    hour_metrics_valid_ = true;
    batch_groups_ = 1;
  }
  out.resize(slot_end - slot_begin);
  const obs::trace_span span(obs::phase::stage, h);
  for (std::size_t v = slot_begin; v < slot_end; ++v) {
    stage_vm_hour_into(v, at, out[v - slot_begin]);
  }
}

void campaign_runner::commit_hour_group(hour_stamp at,
                                        std::vector<vm_hour_staging>&& group) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  if (at != cursor_) {
    throw state_error("campaign_runner: hour group does not match cursor");
  }
  if (group.size() != vms_.size()) {
    throw invalid_argument_error(
        "campaign_runner: hour group must hold one record per VM slot");
  }
  for (const vm_hour_staging& staged : group) {
    if (staged.at != at) {
      throw invalid_argument_error(
          "campaign_runner: hour group record staged for a different hour");
    }
  }
  const bool obs_on = obs::enabled();
  const auto hour_begin =
      obs_on ? std::chrono::steady_clock::now()
             : std::chrono::steady_clock::time_point{};
  const std::int64_t h = at.hours_since_epoch();
  {
    const obs::trace_span span(obs::phase::begin_hour, h);
    begin_hour(at);
  }
  // Same commit phase as run_hour: WAL in slot order at the barrier, then
  // slot-order merges — the durable bytes and the store bytes cannot
  // depend on which process staged the records.
  const obs::trace_span span(obs::phase::commit, h);
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    if (wal_) wal_->append(encode_wal_record(v, group[v]));
    commit_vm_hour(v, std::move(group[v]));
  }
  if (wal_) wal_->flush();
  cursor_ = at + 1;
  if (obs_on) {
    publish_hour_metrics(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - hour_begin)
                             .count());
  }
}

void campaign_runner::publish_hour_metrics(double hour_seconds) {
  metrics_.hours->add(1);
  metrics_.hour_seconds->observe(hour_seconds);
  const std::int64_t done =
      cursor_.hours_since_epoch() - config_.window.begin_at.hours_since_epoch();
  metrics_.cursor_hours->set(static_cast<double>(done));
  if (pool_) {
    const pool_stats ps = pool_->stats();
    metrics_.pool_workers->set(static_cast<double>(ps.workers));
    metrics_.pool_batches->set(static_cast<double>(ps.batches));
    metrics_.pool_tasks->set(static_cast<double>(ps.tasks));
    metrics_.pool_busy_seconds->set(static_cast<double>(ps.busy_ns) / 1e9);
    metrics_.pool_last_batch->set(static_cast<double>(ps.last_batch_size));
    metrics_.pool_utilization->set(ps.utilization());
  }
  if (config_.heartbeat_every_hours > 0 &&
      done % static_cast<std::int64_t>(config_.heartbeat_every_hours) == 0) {
    emit_heartbeat();
  }
}

void campaign_runner::emit_heartbeat() const {
  // One grep-able INFO line per cadence tick. The hit ratio and the
  // failure counters read the process-wide registry, so with several
  // concurrent campaigns the line reports fleet-wide totals.
  const std::uint64_t hits = metrics_.cache_hits->value();
  const std::uint64_t misses = metrics_.cache_misses->value();
  const double hit_ratio =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  const std::int64_t done =
      cursor_.hours_since_epoch() - config_.window.begin_at.hours_since_epoch();
  char line[448];
  int len = std::snprintf(
      line, sizeof(line),
      "%s/%s hour=%lld/%lld tests=%zu failed=%llu retried=%llu missed=%zu "
      "cache_hit=%.1f%% fleet=%zu/%zu sessions=%zu batch_groups=%zu",
      config_.label.c_str(), config_.region.c_str(),
      static_cast<long long>(done),
      static_cast<long long>(config_.window.count()), tests_run_,
      static_cast<unsigned long long>(metrics_.tests_failed->value()),
      static_cast<unsigned long long>(metrics_.test_retries->value()),
      tests_missed_, 100.0 * hit_ratio, registry_->size(), vms_.size(),
      sessions_.size(), batch_groups_);
  if (wal_ != nullptr && len > 0 &&
      static_cast<std::size_t>(len) < sizeof(line)) {
    len += std::snprintf(
        line + len, sizeof(line) - static_cast<std::size_t>(len),
        " wal_mb=%.2f",
        static_cast<double>(wal_->bytes_written()) / (1024.0 * 1024.0));
  }
  if (durable() && last_checkpoint_hour_ >= 0 && len > 0 &&
      static_cast<std::size_t>(len) < sizeof(line)) {
    len += std::snprintf(
        line + len, sizeof(line) - static_cast<std::size_t>(len),
        " ckpt_age_h=%lld",
        static_cast<long long>(cursor_.hours_since_epoch() -
                               last_checkpoint_hour_));
  }
  if (pool_ && len > 0 && static_cast<std::size_t>(len) < sizeof(line)) {
    len += std::snprintf(
        line + len, sizeof(line) - static_cast<std::size_t>(len),
        " pool_util=%.2f", pool_->stats().utilization());
  }
  // Distributed replay: the coordinator keeps the worker gauge current,
  // so a sharded run's heartbeat shows the shard fleet and its failovers.
  if (metrics_.dist_workers->value() > 0 && len > 0 &&
      static_cast<std::size_t>(len) < sizeof(line)) {
    len += std::snprintf(
        line + len, sizeof(line) - static_cast<std::size_t>(len),
        " dist_workers=%.0f dist_failovers=%llu",
        metrics_.dist_workers->value(),
        static_cast<unsigned long long>(metrics_.dist_failovers->value()));
  }
  // Swarm pre-test gauges, when a swarm ran before this campaign (the
  // gauges hold the last pre-test round's view; credits accumulate).
  if (metrics_.swarm_credits->value() > 0 && len > 0 &&
      static_cast<std::size_t>(len) < sizeof(line)) {
    std::snprintf(
        line + len, sizeof(line) - static_cast<std::size_t>(len),
        " swarm_active=%.0f swarm_cov=%.2f swarm_stale=%.0f "
        "swarm_credits=%llu",
        metrics_.swarm_active->value(), metrics_.swarm_coverage->value(),
        metrics_.swarm_stale->value(),
        static_cast<unsigned long long>(metrics_.swarm_credits->value()));
  }
  log_message(log_level::info, "heartbeat", line);
}

campaign_runner::vm_hour_staging campaign_runner::stage_vm_hour(
    std::size_t vm_slot, hour_stamp at) const {
  vm_hour_staging out;
  stage_vm_hour_into(vm_slot, at, out);
  return out;
}

void campaign_runner::stage_vm_hour_into(std::size_t vm_slot, hour_stamp at,
                                         vm_hour_staging& out) const {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  if (vm_slot >= vms_.size()) {
    throw invalid_argument_error("campaign_runner: bad vm slot");
  }
  out.at = at;
  out.points.clear();
  out.someta.clear();
  out.outcomes.clear();
  out.charges.reset();
  out.tests_run = 0;
  out.tests_missed = 0;
  out.upload_failed = false;
  const bool faults_on = plan_.enabled();
  const std::uint32_t s_begin = vm_session_offsets_[vm_slot];
  const std::uint32_t s_end = vm_session_offsets_[vm_slot + 1];
  if (vm_down(vm_slot, at)) {
    out.tests_missed = std::min<std::size_t>(s_end - s_begin,
                                             config_.tests_per_vm_hour);
    for (std::uint32_t i = s_begin; i < s_end; ++i) {
      const std::uint32_t si = vm_session_index_[i];
      // A withdrawn server's gap is the server's, not the VM's.
      const bool withdrawn = faults_on && session_withdraw_[si].has_value() &&
                             *session_withdraw_[si] <= at;
      out.outcomes.push_back({si,
                              withdrawn ? test_outcome::server_withdrawn
                                        : test_outcome::vm_down,
                              0});
    }
    return;
  }
  out.charges.add_vm_hour(vms_[vm_slot]);
  rng r = vm_stream(vm_slot, at);
  // The fault stream is separate from the measurement stream: with faults
  // off it is never drawn from (short-circuited below), so measurement
  // draws — and therefore every metric — are byte-identical to a
  // faults-free build.
  rng fr = faults_on ? plan_.vm_fault_stream(vm_slot, at) : rng(0);
  const double fail_rate = config_.faults.test_failure_rate;
  // Randomize the test order each hour (cron-artifact mitigation). The
  // shuffle buffer is thread-local so the per-(VM, hour) copy reuses its
  // allocation; the contents are fully overwritten before use, so worker
  // scheduling cannot leak state between stages.
  static thread_local std::vector<std::uint32_t> order;
  order.assign(vm_session_index_.begin() + s_begin,
               vm_session_index_.begin() + s_end);
  r.shuffle(order);
  // Consume the hour's batched path metrics when evaluate_hour() computed
  // them for exactly this hour; otherwise (batch disabled, or a direct
  // stage_vm_hour caller) evaluate per session — bit-identical either way.
  const bool batched = config_.batch_eval && hour_metrics_valid_ &&
                       hour_metrics_hour_ == at.hours_since_epoch();
  const machine_type& machine = cloud_->vm(vms_[vm_slot]).type;
  double artifact_mb = 0.2;  // someta metadata baseline
  // Each attempt — including a retry of an aborted transfer — consumes
  // one test slot of the hour's budget (a slot is ~3.5 simulated minutes,
  // which is the capped backoff). Deployment sizes fleets so every
  // session fits without faults; only retries can starve a later session
  // of its slot.
  std::size_t slots = 0;
  bool starved = false;
  for (std::size_t oi = 0; oi < order.size(); ++oi) {
    // The shuffle makes these accesses random; warming the next
    // session's metrics and state two iterations out overlaps the misses
    // with this iteration's noise-model math (advisory, value-neutral).
    if (oi + 2 < order.size()) {
      const std::uint32_t ahead = order[oi + 2];
      if (batched) __builtin_prefetch(&hour_metrics_[2 * ahead]);
      __builtin_prefetch(&sessions_[ahead]);
      __builtin_prefetch(&series_refs_[ahead]);
    }
    const std::uint32_t si = order[oi];
    const speed_test_session& session = sessions_[si];
    if (faults_on && session_withdraw_[si].has_value() &&
        *session_withdraw_[si] <= at) {
      out.outcomes.push_back({si, test_outcome::server_withdrawn, 0});
      continue;
    }
    if (slots >= config_.tests_per_vm_hour) {
      out.outcomes.push_back({si, test_outcome::skipped_budget, 0});
      starved = true;
      continue;
    }
    std::uint8_t attempts = 0;
    test_outcome outcome = test_outcome::failed;
    while (slots < config_.tests_per_vm_hour) {
      ++slots;
      ++attempts;
      const bool aborted = faults_on && fr.bernoulli(fail_rate);
      // Path conditions are a pure function of (session, hour), so a
      // retry re-measures the same conditions with fresh client noise —
      // the batched metrics serve every attempt of the hour.
      const speed_test_report report =
          batched ? session.run_with_metrics(hour_metrics_[2 * si],
                                             hour_metrics_[2 * si + 1], at, r)
                  : session.run(at, r);
      if (aborted) {
        // Truncated transfer: the test produced no metrics, but the bytes
        // sent before the abort are still billed egress and a partial
        // artifact still lands in the hour's tarball.
        const double fraction = fr.uniform();
        out.charges.add_egress(config_.tier,
                               megabytes{report.volume_up.value * fraction});
        artifact_mb += (report.volume_down.value + report.volume_up.value) *
                       fraction * config_.artifact_fraction;
        if (attempts > config_.faults.max_retries) break;  // give up
        continue;
      }
      out.someta.push_back(
          record_test_metadata(machine, report.download, at, r));
      const session_series& refs = series_refs_[si];
      out.points.push_back({refs.download, report.download.value});
      out.points.push_back({refs.upload, report.upload.value});
      out.points.push_back({refs.latency, report.latency.value});
      out.points.push_back({refs.download_loss, report.download_loss});
      out.points.push_back({refs.upload_loss, report.upload_loss});
      out.points.push_back(
          {refs.gt_episode, report.ground_truth_episode ? 1.0 : 0.0});
      // Egress billing: only the cloud->Internet direction is charged.
      out.charges.add_egress(config_.tier, report.volume_up);
      artifact_mb += (report.volume_down.value + report.volume_up.value) *
                     config_.artifact_fraction;
      ++out.tests_run;
      outcome = attempts > 1 ? test_outcome::ok_after_retry : test_outcome::ok;
      break;
    }
    out.outcomes.push_back({si, outcome, attempts});
  }
  if (starved && config_.faults.strict_hour_budget) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "campaign: retries exhausted vm %zu's %u-test hour budget",
                  vm_slot, config_.tests_per_vm_hour);
    throw budget_exceeded_error(msg);
  }
  // Artifact object name (same bytes as the old "raw/" + label + "/" +
  // at.to_string() + ... concatenation), assembled in a thread-local
  // buffer whose capacity survives across hours and handed to the
  // charge sheet's recycling put — zero allocations in steady state.
  char tail[64];
  std::size_t tail_len = at.format_to(tail, sizeof(tail));
  tail_len += static_cast<std::size_t>(
      std::snprintf(tail + tail_len, sizeof(tail) - tail_len, "/vm%zu.tar.gz",
                    vm_slot));
  static thread_local std::string object_name;
  object_name.clear();
  object_name.append(artifact_prefix_).append(tail, tail_len);
  // Upload failure is the last draw of the hour's fault stream: the
  // compressed artifacts never reach the bucket (no put, no storage
  // charge), but the hour's metrics already streamed out.
  if (faults_on && fr.bernoulli(config_.faults.upload_failure_rate)) {
    out.upload_failed = true;
    return;
  }
  out.charges.add_put_reusing(config_.region, object_name, artifact_mb);
}

void campaign_runner::commit_vm_hour(std::size_t vm_slot,
                                     vm_hour_staging&& staged) {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  // Each staged point lands on a different series' tail — thousands of
  // cold cache lines per hour. Prefetching a few refs ahead overlaps the
  // misses; the distance is small enough that the lines survive in L1/L2
  // until their write. Values and order are untouched (advisory only).
  constexpr std::size_t kPrefetchAhead = 6;
  const std::size_t n_points = staged.points.size();
  for (std::size_t i = 0; i < n_points; ++i) {
    if (i + kPrefetchAhead < n_points) {
      store_->prefetch(staged.points[i + kPrefetchAhead].ref);
    }
    const staged_point& p = staged.points[i];
    store_->write(p.ref, staged.at, p.value);
  }
  // Health tallies merge here, in slot order on the coordinator, so they
  // are deterministic for any worker count — same contract as the points.
  const std::size_t n_outcomes = staged.outcomes.size();
  for (std::size_t i = 0; i < n_outcomes; ++i) {
    if (i + kPrefetchAhead < n_outcomes) {
      const staged_outcome& ahead = staged.outcomes[i + kPrefetchAhead];
      __builtin_prefetch(&tallies_[ahead.session], 1);
      if (!status_refs_.empty()) store_->prefetch(status_refs_[ahead.session]);
    }
    const staged_outcome& o = staged.outcomes[i];
    session_tally& tally = tallies_[o.session];
    switch (o.outcome) {
      case test_outcome::ok:
        ++tally.completed;
        break;
      case test_outcome::ok_after_retry:
        ++tally.completed;
        tally.retries += o.attempts - 1u;
        break;
      case test_outcome::failed:
        ++tally.failed;
        tally.retries += o.attempts - 1u;
        break;
      case test_outcome::server_withdrawn:
        ++tally.withdrawn_hours;
        break;
      case test_outcome::vm_down:
        ++tally.down_hours;
        break;
      case test_outcome::skipped_budget:
        ++tally.skipped_hours;
        break;
    }
    if (!status_refs_.empty()) {
      store_->write(status_refs_[o.session], staged.at,
                    static_cast<double>(o.outcome));
    }
  }
  if (staged.upload_failed) ++upload_failures_;
  if (obs::enabled()) {
    // Bulk adds at the hour barrier (coordinator thread): one pass over
    // the outcome list, a handful of sharded adds per VM-hour. The hot
    // staging loop stays untouched.
    std::uint64_t failed = 0, retries = 0, skipped = 0, down = 0;
    for (const staged_outcome& o : staged.outcomes) {
      switch (o.outcome) {
        case test_outcome::ok:
          break;
        case test_outcome::ok_after_retry:
        case test_outcome::failed:
          retries += o.attempts > 0 ? o.attempts - 1u : 0u;
          if (o.outcome == test_outcome::failed) ++failed;
          break;
        case test_outcome::server_withdrawn:
          break;
        case test_outcome::vm_down:
          ++down;
          break;
        case test_outcome::skipped_budget:
          ++skipped;
          break;
      }
    }
    metrics_.tests->add(staged.tests_run);
    metrics_.tests_missed->add(staged.tests_missed);
    metrics_.points->add(staged.points.size());
    if (failed != 0) metrics_.tests_failed->add(failed);
    if (retries != 0) metrics_.test_retries->add(retries);
    if (skipped != 0) metrics_.fault_skipped->add(skipped);
    if (down != 0) metrics_.fault_vm_down_hours->add(down);
    if (staged.upload_failed) metrics_.upload_failures->add(1);
  }
  someta_.at(vm_slot).absorb(std::move(staged.someta));
  cloud_->apply(staged.charges);
  tests_run_ += staged.tests_run;
  tests_missed_ += staged.tests_missed;
}

campaign_health campaign_runner::health() const {
  if (!deployed_) throw state_error("campaign_runner: not deployed");
  campaign_health h;
  h.window_hours = static_cast<std::size_t>(config_.window.count());
  h.upload_failures = upload_failures_;
  h.servers.reserve(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const session_tally& tally = tallies_[i];
    campaign_health::server_entry entry;
    entry.server_id = sessions_[i].server_id();
    entry.completed = tally.completed;
    entry.failed = tally.failed;
    entry.retries = tally.retries;
    entry.down_hours = tally.down_hours;
    entry.withdrawn_hours = tally.withdrawn_hours;
    entry.skipped_hours = tally.skipped_hours;
    // Every processed hour yields exactly one outcome per session, so the
    // tally sum is the hours scheduled so far (== window_hours after a
    // full run()) and completeness matches the injected schedule exactly.
    entry.scheduled_hours = tally.completed + tally.failed +
                            tally.down_hours + tally.withdrawn_hours +
                            tally.skipped_hours;
    h.total_retries += tally.retries;
    h.failed_tests += tally.failed;
    if (session_withdraw_[i].has_value()) ++h.withdrawn_servers;
    h.servers.push_back(entry);
  }
  for (std::size_t v = 0; v < vms_.size(); ++v) {
    bool was_down = false;
    for (hour_stamp at = config_.window.begin_at; at < config_.window.end_at;
         ++at) {
      const bool down = vm_down(v, at);
      if (down) ++h.vm_downtime_hours;
      if (was_down && !down) ++h.vm_redeploys;
      was_down = down;
    }
  }
  return h;
}

double campaign_health::mean_completeness() const {
  if (servers.empty()) return 0.0;
  double sum = 0.0;
  for (const server_entry& entry : servers) sum += entry.completeness();
  return sum / static_cast<double>(servers.size());
}

std::vector<std::size_t> campaign_health::low_completeness_servers(
    double min_completeness) const {
  std::vector<std::size_t> ids;
  for (const server_entry& entry : servers) {
    if (entry.completeness() < min_completeness) {
      ids.push_back(entry.server_id);
    }
  }
  return ids;
}

}  // namespace clasp

// Text campaign reports (the Grafana-dashboard hand-off, §3.3).
//
// Renders everything an operator reads after a campaign into one plain
// text document: fleet and selection summary, spend, the congestion
// ranking, weekday/weekend split, direction classification and the
// per-interconnect view. Used by the CLI's `report` command and by
// examples; every section pulls from the public analysis API, so the
// report doubles as living documentation of it.
#pragma once

#include <string>

#include "clasp/platform.hpp"

namespace clasp {

struct report_options {
  double threshold{0.5};       // V_H congestion threshold
  std::size_t top_servers{10}; // rows in the congestion ranking
};

// Render the report for a region whose topology campaign has data in the
// store. Throws state_error when there is no data.
std::string render_campaign_report(clasp_platform& platform,
                                   const std::string& region,
                                   const report_options& options = {});

}  // namespace clasp

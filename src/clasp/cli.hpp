// clasp_cli argument parsing, as a library so tests can exercise it
// without spawning the binary. The parser is strict: an unknown flag is
// an error (with a did-you-mean suggestion when a known flag is close),
// and a flag that needs a value but sits at the end of the line names
// itself in the error instead of falling through to the generic usage.
#pragma once

#include <cstdint>
#include <string>

namespace clasp {

struct cli_options {
  std::string command;
  std::string region{"us-west1"};
  std::string tier{"premium"};
  std::string csv_path;
  std::string config_path;
  int days{7};
  int workers{-1};     // -1 = config default; 0 = hardware concurrency
  int link_cache{-1};  // -1 = config default; 0 = off; 1 = on
  int batch_eval{-1};  // -1 = config default; 0 = off; 1 = on
  // Synthetic fleet multiplier; -1 = config default. Rejects values < 1.
  int fleet_scale{-1};
  std::string faults;  // empty = config default; else off|low|high
  // Pre-test vantage swarm preset; empty = config default.
  std::string swarm;   // off|low|high
  std::uint64_t seed{42};
  std::string checkpoint_dir;  // empty = durability off
  int checkpoint_every{-1};    // -1 = config default (hours)
  bool resume{false};
  // Worker processes for distributed replay; -1 = config default,
  // 1 = in-process. Output is byte-identical at any value.
  int shards{-1};
  // Observability: write Prometheus text to FILE (and JSON to FILE.json)
  // after the command finishes. Implies obs metrics on.
  std::string metrics_out;
  // Heartbeat cadence in simulated hours; -1 = off. Implies obs on.
  int heartbeat_every{-1};
  // --- campaign service verbs (serve/submit/status/pause/resume/cancel/
  // shutdown) ---
  // Control socket; empty = the config's service.socket.
  std::string socket;
  // Tenant name for submit (required there).
  std::string tenant;
  // Campaign id for status/pause/resume/cancel; 0 = all (status only).
  std::uint64_t id{0};
  // Durability of a submitted campaign; -1 = default (on), 0 = off, 1 = on.
  int durable{-1};
};

struct cli_parse_result {
  bool ok{false};
  // Human-readable reason when !ok; empty when the caller should print
  // plain usage (no arguments / unknown command).
  std::string error;
};

// Parse argv (argv[0] is the program name). On failure, `error` explains
// which flag was wrong — including "unknown flag --foo (did you mean
// --for?)" suggestions via util::edit_distance.
cli_parse_result parse_cli_args(int argc, const char* const* argv,
                                cli_options& opts);

}  // namespace clasp

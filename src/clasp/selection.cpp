#include "clasp/selection.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp {

topology_selector::topology_selector(const route_planner* planner,
                                     const network_view* view,
                                     const server_registry* registry)
    : planner_(planner), view_(view), registry_(registry) {
  if (planner == nullptr || view == nullptr || registry == nullptr) {
    throw invalid_argument_error("topology_selector: null dependency");
  }
}

topology_selection_result topology_selector::run(
    const endpoint& vm, const topology_selection_config& config,
    hour_stamp at, rng& r) const {
  topology_selection_result result;
  const prober probe(planner_, view_);
  const prefix2as_table prefix2as = planner_->net().topo->build_prefix2as();
  const bdrmap border_mapper(planner_, &probe, &prefix2as);

  // 1. Pilot scan: discover the region's interdomain links.
  result.pilot = border_mapper.run_pilot(vm, config.tier, at, r);

  // 2-3. Traceroute to every candidate server; extract the border crossing.
  struct server_obs {
    std::size_t server_id;
    ipv4_addr far_side;
    asn neighbor;
    std::size_t as_path_len;
    millis rtt;
  };
  std::vector<server_obs> observations;
  const std::vector<std::size_t> candidates = registry_->crawl(config.country);
  result.servers_probed = candidates.size();

  for (const std::size_t sid : candidates) {
    const speed_server& server = registry_->server(sid);
    const endpoint dst = planner_->endpoint_of_host(server.host);
    const route_path forward = planner_->from_cloud(vm, dst, config.tier);
    // Retry when a non-responding hop hides the border crossing.
    traceroute_result trace = probe.traceroute(forward, at, r);
    auto border = border_mapper.find_border(trace);
    for (int attempt = 1; attempt < 3 && !border; ++attempt) {
      trace = probe.traceroute(forward, at, r);
      border = border_mapper.find_border(trace);
    }
    if (!border) continue;
    const auto [far, neighbor] = *border;
    // Only links confirmed by the pilot count (alias matching in the real
    // pipeline; exact far-side interfaces here).
    if (!result.pilot.contains(far)) continue;
    observations.push_back(
        {sid, far, neighbor, planner_->as_hops_to_destination(forward),
         trace.hops.empty() ? millis{0.0} : trace.hops.back().rtt});
  }

  // 4. Group by far-side interface.
  std::unordered_map<std::uint32_t, std::vector<const server_obs*>> groups;
  for (const server_obs& obs : observations) {
    groups[obs.far_side.value()].push_back(&obs);
  }
  result.links_traversed_by_servers = groups.size();

  std::size_t sharing_servers = 0;
  for (const auto& [far, members] : groups) {
    if (members.size() > 1) sharing_servers += members.size();
  }
  result.shared_interconnect_fraction =
      observations.empty()
          ? 0.0
          : static_cast<double>(sharing_servers) /
                static_cast<double>(observations.size());

  // 5. Best server per link: shortest AS path, then lowest RTT.
  std::vector<selected_server> per_link;
  for (const auto& [far, members] : groups) {
    const server_obs* best = members.front();
    for (const server_obs* m : members) {
      if (m->as_path_len < best->as_path_len ||
          (m->as_path_len == best->as_path_len && m->rtt < best->rtt)) {
        best = m;
      }
    }
    per_link.push_back({best->server_id, best->far_side, best->neighbor,
                        best->as_path_len, best->rtt});
  }

  // Deterministic order: prefer direct peerings and nearby servers, which
  // is also the order the deployment budget truncates in.
  std::sort(per_link.begin(), per_link.end(),
            [](const selected_server& a, const selected_server& b) {
              if (a.as_path_len != b.as_path_len) {
                return a.as_path_len < b.as_path_len;
              }
              if (a.rtt != b.rtt) return a.rtt < b.rtt;
              return a.far_side < b.far_side;
            });

  // 6. Budget.
  if (per_link.size() > config.deployment_budget) {
    per_link.resize(config.deployment_budget);
  }
  result.selected = std::move(per_link);

  CLASP_LOG(info, "selection")
      << "topology selection: " << result.pilot.links.size()
      << " pilot links, " << result.links_traversed_by_servers
      << " traversed by servers, " << result.selected.size() << " selected";
  return result;
}

}  // namespace clasp

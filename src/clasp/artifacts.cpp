#include "clasp/artifacts.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clasp {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

double parse_num(const std::string& field, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(field, &used);
    if (used != field.size()) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    throw invalid_argument_error(std::string("artifact: bad ") + what + ": " +
                                 field);
  }
}

long long parse_int(const std::string& field, const char* what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(field, &used);
    if (used != field.size()) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    throw invalid_argument_error(std::string("artifact: bad ") + what + ": " +
                                 field);
  }
}

}  // namespace

std::string serialize_report(const speed_test_report& report) {
  std::ostringstream out;
  out << "R|" << report.server_id << '|' << report.at.hours_since_epoch()
      << '|' << to_string(report.tier) << '|' << fmt(report.download.value)
      << '|' << fmt(report.upload.value) << '|' << fmt(report.latency.value)
      << '|' << fmt(report.download_loss) << '|' << fmt(report.upload_loss)
      << '|' << (report.ground_truth_episode ? 1 : 0);
  return out.str();
}

speed_test_report parse_report(const std::string& line) {
  const auto fields = split(line, '|');
  if (fields.size() != 10 || fields[0] != "R") {
    throw invalid_argument_error("artifact: not a report line: " + line);
  }
  speed_test_report report;
  report.server_id = static_cast<std::size_t>(parse_int(fields[1], "server"));
  report.at = hour_stamp{parse_int(fields[2], "hour")};
  if (fields[3] == "premium") {
    report.tier = service_tier::premium;
  } else if (fields[3] == "standard") {
    report.tier = service_tier::standard;
  } else {
    throw invalid_argument_error("artifact: bad tier: " + fields[3]);
  }
  report.download = mbps{parse_num(fields[4], "download")};
  report.upload = mbps{parse_num(fields[5], "upload")};
  report.latency = millis{parse_num(fields[6], "latency")};
  report.download_loss = parse_num(fields[7], "download_loss");
  report.upload_loss = parse_num(fields[8], "upload_loss");
  report.ground_truth_episode = parse_int(fields[9], "episode") != 0;
  return report;
}

std::string serialize_traceroute(const traceroute_result& trace) {
  std::ostringstream out;
  out << "T|" << trace.src.to_string() << '|' << trace.dst.to_string() << '|'
      << trace.at.hours_since_epoch() << '|' << (trace.reached ? 1 : 0) << '|';
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    if (i > 0) out << ',';
    const traceroute_hop& hop = trace.hops[i];
    out << hop.ttl << ':'
        << (hop.address ? hop.address->to_string() : std::string("*")) << ':'
        << fmt(hop.rtt.value);
  }
  return out.str();
}

traceroute_result parse_traceroute(const std::string& line) {
  const auto fields = split(line, '|');
  if (fields.size() != 6 || fields[0] != "T") {
    throw invalid_argument_error("artifact: not a traceroute line: " + line);
  }
  traceroute_result trace;
  trace.src = ipv4_addr::parse(fields[1]);
  trace.dst = ipv4_addr::parse(fields[2]);
  trace.at = hour_stamp{parse_int(fields[3], "hour")};
  trace.reached = parse_int(fields[4], "reached") != 0;
  if (!fields[5].empty()) {
    for (const std::string& hop_text : split(fields[5], ',')) {
      const auto parts = split(hop_text, ':');
      if (parts.size() != 3) {
        throw invalid_argument_error("artifact: bad hop: " + hop_text);
      }
      traceroute_hop hop;
      hop.ttl = static_cast<unsigned>(parse_int(parts[0], "ttl"));
      if (parts[1] != "*") hop.address = ipv4_addr::parse(parts[1]);
      hop.rtt = millis{parse_num(parts[2], "rtt")};
      trace.hops.push_back(hop);
    }
  }
  return trace;
}

std::string serialize_bundle(const artifact_bundle& bundle) {
  std::ostringstream out;
  for (const speed_test_report& r : bundle.reports) {
    out << serialize_report(r) << '\n';
  }
  for (const traceroute_result& t : bundle.traces) {
    out << serialize_traceroute(t) << '\n';
  }
  return out.str();
}

// --- binary codec ------------------------------------------------------------

namespace {

constexpr std::uint8_t kMagic[4] = {'C', 'L', 'W', '1'};

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Zigzag for signed deltas.
std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

// Fixed-point: value * 1000 rounded, as a varint (losses scale by 1e6).
void put_milli(std::vector<std::uint8_t>& out, double v) {
  put_varint(out, static_cast<std::uint64_t>(v * 1000.0 + 0.5));
}
void put_micro(std::vector<std::uint8_t>& out, double v) {
  put_varint(out, static_cast<std::uint64_t>(v * 1e6 + 0.5));
}

class byte_reader {
 public:
  explicit byte_reader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::uint8_t u8() {
    if (pos_ >= bytes_.size()) {
      throw invalid_argument_error("warts-lite: truncated input");
    }
    return bytes_[pos_++];
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
      if (shift > 63) {
        throw invalid_argument_error("warts-lite: varint overflow");
      }
    }
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | u8();
    return v;
  }
  double milli() { return static_cast<double>(varint()) / 1000.0; }
  double micro() { return static_cast<double>(varint()) / 1e6; }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_{0};
};

}  // namespace

std::vector<std::uint8_t> serialize_bundle_binary(
    const artifact_bundle& bundle) {
  std::vector<std::uint8_t> out;
  // ~26 bytes per report, ~10 per traceroute hop; one up-front growth
  // instead of doubling through the encode loops.
  out.reserve(sizeof(kMagic) + 20 + bundle.reports.size() * 32 +
              bundle.traces.size() * 16);
  for (const std::uint8_t m : kMagic) out.push_back(m);
  put_varint(out, bundle.reports.size());
  put_varint(out, bundle.traces.size());

  std::int64_t prev_hour = 0;
  for (const speed_test_report& r : bundle.reports) {
    put_varint(out, r.server_id);
    put_varint(out, zigzag(r.at.hours_since_epoch() - prev_hour));
    prev_hour = r.at.hours_since_epoch();
    out.push_back(r.tier == service_tier::premium ? 0 : 1);
    put_milli(out, r.download.value);
    put_milli(out, r.upload.value);
    put_milli(out, r.latency.value);
    put_micro(out, r.download_loss);
    put_micro(out, r.upload_loss);
    out.push_back(r.ground_truth_episode ? 1 : 0);
  }

  prev_hour = 0;
  for (const traceroute_result& t : bundle.traces) {
    // Mirror the parser's sanity cap: a bundle that serializes must parse.
    if (t.hops.size() > 255) {
      throw invalid_argument_error("warts-lite: traceroute exceeds 255 hops");
    }
    put_u32(out, t.src.value());
    put_u32(out, t.dst.value());
    put_varint(out, zigzag(t.at.hours_since_epoch() - prev_hour));
    prev_hour = t.at.hours_since_epoch();
    out.push_back(t.reached ? 1 : 0);
    put_varint(out, t.hops.size());
    for (const traceroute_hop& hop : t.hops) {
      put_varint(out, hop.ttl);
      out.push_back(hop.address ? 1 : 0);
      if (hop.address) put_u32(out, hop.address->value());
      put_milli(out, hop.rtt.value);
    }
  }
  return out;
}

artifact_bundle parse_bundle_binary(const std::vector<std::uint8_t>& bytes) {
  byte_reader in(bytes);
  for (const std::uint8_t m : kMagic) {
    if (in.u8() != m) {
      throw invalid_argument_error("warts-lite: bad magic");
    }
  }
  artifact_bundle bundle;
  const std::uint64_t n_reports = in.varint();
  const std::uint64_t n_traces = in.varint();
  if (n_reports > 10'000'000 || n_traces > 10'000'000) {
    throw invalid_argument_error("warts-lite: implausible record count");
  }

  std::int64_t prev_hour = 0;
  for (std::uint64_t i = 0; i < n_reports; ++i) {
    speed_test_report r;
    r.server_id = static_cast<std::size_t>(in.varint());
    prev_hour += unzigzag(in.varint());
    r.at = hour_stamp{prev_hour};
    r.tier = in.u8() == 0 ? service_tier::premium : service_tier::standard;
    r.download = mbps{in.milli()};
    r.upload = mbps{in.milli()};
    r.latency = millis{in.milli()};
    r.download_loss = in.micro();
    r.upload_loss = in.micro();
    r.ground_truth_episode = in.u8() != 0;
    bundle.reports.push_back(r);
  }

  prev_hour = 0;
  for (std::uint64_t i = 0; i < n_traces; ++i) {
    traceroute_result t;
    t.src = ipv4_addr{in.u32()};
    t.dst = ipv4_addr{in.u32()};
    prev_hour += unzigzag(in.varint());
    t.at = hour_stamp{prev_hour};
    t.reached = in.u8() != 0;
    const std::uint64_t n_hops = in.varint();
    if (n_hops > 255) {
      throw invalid_argument_error("warts-lite: implausible hop count");
    }
    for (std::uint64_t h = 0; h < n_hops; ++h) {
      traceroute_hop hop;
      hop.ttl = static_cast<unsigned>(in.varint());
      if (in.u8() != 0) hop.address = ipv4_addr{in.u32()};
      hop.rtt = millis{in.milli()};
      t.hops.push_back(hop);
    }
    bundle.traces.push_back(t);
  }
  if (!in.done()) {
    throw invalid_argument_error("warts-lite: trailing bytes");
  }
  return bundle;
}

artifact_bundle parse_bundle(const std::string& text) {
  artifact_bundle bundle;
  std::size_t line_no = 0;
  for (const std::string& line : split(text, '\n')) {
    ++line_no;
    if (line.empty()) continue;
    try {
      if (starts_with(line, "R|")) {
        bundle.reports.push_back(parse_report(line));
      } else if (starts_with(line, "T|")) {
        bundle.traces.push_back(parse_traceroute(line));
      } else {
        throw invalid_argument_error("unknown record type");
      }
    } catch (const invalid_argument_error& e) {
      throw invalid_argument_error("artifact bundle line " +
                                   std::to_string(line_no) + ": " + e.what());
    }
  }
  return bundle;
}

}  // namespace clasp

// CLASP platform facade — the top-level public API.
//
// Wires the whole stack together in the order the paper describes:
// generate the Internet substrate, deploy the speed-test fleets, stand up
// the cloud control plane, run the two server-selection methods, then run
// longitudinal measurement campaigns whose results land in the embedded
// time-series store for analysis.
//
// Typical use (see examples/quickstart.cpp):
//
//   clasp_platform platform;                        // default config
//   platform.select_topology("us-west1");           // pilot + selection
//   auto& c = platform.start_topology_campaign("us-west1");
//   c.run();                                        // five months, hourly
//   // analyze platform.store() with clasp/analysis.hpp
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clasp/analysis.hpp"
#include "clasp/campaign.hpp"
#include "clasp/differential.hpp"
#include "clasp/selection.hpp"
#include "cloud/gcp.hpp"
#include "netsim/generator.hpp"
#include "netsim/network.hpp"
#include "netsim/routing.hpp"
#include "speedtest/registry.hpp"
#include "tsdb/tsdb.hpp"

namespace clasp {

// Campaign service daemon settings (src/svc/, `clasp_cli serve`). Lives
// on platform_config so the INI loader and CLI overlay reach it through
// the one config object the whole stack shares; a batch run ignores it.
struct service_settings {
  // Control socket the daemon listens on and the CLI verbs dial.
  std::string socket{"clasp-svc.sock"};
  // Daemon state root: <state_dir>/registry.bin (durable queue) and
  // <state_dir>/ckpt/<tenant>-<id>/ (per-campaign checkpoints).
  std::string state_dir{"clasp-svc"};
  // Where finished campaigns' CSVs land (<tenant>-<id>.csv); empty
  // keeps results only in each session's store (tests read them there).
  std::string results_dir;
  // Scheduler time slice in simulated hours; must be >= 1.
  unsigned quantum_hours{6};
  // Admission: shared worker-unit budget and campaign-count quotas.
  unsigned worker_budget{8};
  std::size_t max_admitted{4};
  std::size_t tenant_max_admitted{2};
  std::size_t tenant_max_active{16};
  // Sessions kept in memory; beyond this the least-recently-run durable
  // session is checkpointed and evicted.
  std::size_t max_resident{4};
  // Heartbeat cadence in scheduler quanta (obs line + gauges); 0 = off.
  unsigned heartbeat_every_quanta{0};
};

struct platform_config {
  internet_config internet{};
  server_deploy_config servers{};
  // Deployment budget (max measured servers) per region for the
  // topology-based campaign. Regions absent from the map get no cap.
  // Defaults reproduce the paper's budget-limited fleet (Table 1).
  std::map<std::string, std::size_t> topology_budgets{
      {"us-west1", 106}, {"us-west2", 25},  {"us-west4", 48},
      {"us-east1", 184}, {"us-east4", 40},  {"us-central1", 56},
  };
  differential_config differential{};
  // Replay concurrency handed to every campaign this platform deploys:
  // 1 = serial, 0 = hardware_concurrency. Any value yields bit-identical
  // campaign results (see DESIGN.md, "Concurrency model & determinism").
  unsigned campaign_workers{1};
  // Hour-epoch link-condition caching for every campaign this platform
  // deploys (campaign_config::link_cache). Off only costs speed: results
  // are bit-identical either way.
  bool campaign_link_cache{true};
  // Batched link-hour evaluation for every campaign this platform deploys
  // (campaign_config::batch_eval). Off only costs speed: results are
  // bit-identical either way.
  bool campaign_batch_eval{true};
  // Synthetic fleet multiplier (internet_config::fleet_scale, mirrored
  // here so the config loader and CLI have one campaign-facing knob):
  // every campaign measures fleet_scale x the selected servers, the extra
  // replicas sharing their base servers' host attachments. 1 is the
  // paper-scale fleet; the platform constructor rejects 0 with guidance.
  // Selection and the generated world are unchanged at any scale.
  std::size_t fleet_scale{1};
  // Fault injection for every campaign this platform deploys
  // (campaign_config::faults). When enabled, churned servers are also
  // retired from the platform registry so later crawls and selections no
  // longer see them.
  fault_config campaign_faults{};
  // Durability for every campaign this platform deploys. When non-empty,
  // each campaign checkpoints under <dir>[/<namespace>]/<label>-<region>
  // (so several campaigns can share one root) every
  // campaign_checkpoint_every_hours simulated hours, and a killed run
  // resumes via campaign_runner::resume. Empty disables durability (see
  // campaign_config). The platform refuses to hand the same subdirectory
  // to two campaigns (state_error): two writers would silently
  // interleave WAL records and corrupt both.
  std::string campaign_checkpoint_dir;
  // Extra path segment between the root and <label>-<region>. The
  // campaign service sets it per (tenant, campaign id) so tenants
  // submitting the same region never share checkpoint state; batch runs
  // leave it empty and get the historical layout.
  std::string campaign_namespace;
  unsigned campaign_checkpoint_every_hours{24};
  // Distributed replay (src/dist/): shard every campaign this platform
  // runs across this many worker processes. 1 = in-process replay (the
  // default); N > 1 forks N workers under a shard coordinator. Output
  // is byte-identical at any shard count — sharding only buys wall
  // clock and failure isolation.
  std::size_t campaign_shards{1};
  // Observability (src/obs/). When obs_metrics is true the platform
  // enables the process-wide registry and pre-creates every core metric
  // family, so an exposition after any run covers the full taxonomy.
  // Metrics never alter campaign output — byte-identical on or off.
  bool obs_metrics{false};
  // Heartbeat cadence handed to every campaign this platform deploys
  // (campaign_config::heartbeat_every_hours); 0 disables the line.
  unsigned obs_heartbeat_every_hours{0};
  // Trace-span ring capacity; 0 keeps the default (256 spans).
  std::size_t obs_span_ring_capacity{0};
  // Campaign service daemon knobs ([service] in the INI); ignored by
  // batch runs.
  service_settings service{};
};

class clasp_platform {
 public:
  explicit clasp_platform(platform_config config = {});

  // --- substrate access ---
  const internet& net() const { return net_; }
  internet& net() { return net_; }
  const network_view& view() const { return *view_; }
  route_planner& planner() { return *planner_; }
  gcp_cloud& cloud() { return *cloud_; }
  const server_registry& registry() const { return registry_; }
  tsdb& store() { return store_; }
  const tsdb& store() const { return store_; }
  const platform_config& config() const { return config_; }

  // --- selection (§3.1) ---
  // Runs the pilot scan + topology-based selection for a region (cached).
  const topology_selection_result& select_topology(const std::string& region);
  // Runs the latency pre-test + differential selection (cached). With
  // config.differential.swarm enabled the pre-test probes through this
  // platform's persistent vantage swarm (its credit ledgers accumulate
  // across regions and ride along in campaign checkpoints); disabled, it
  // leases a fresh fixed panel per pre-test, exactly the legacy behavior.
  const differential_selection_result& select_differential(
      const std::string& region);

  // The platform's pre-test swarm (always constructed; disabled unless
  // config.differential.swarm.enabled).
  vantage_swarm& pretest_swarm() { return *swarm_; }
  const vantage_swarm& pretest_swarm() const { return *swarm_; }

  // --- campaigns (§3.2) ---
  // Deploy and return the topology campaign for a region (servers come
  // from select_topology). The caller runs it (run() or run_hour()).
  campaign_runner& start_topology_campaign(
      const std::string& region, hour_range window = topology_campaign_window());
  // Deploy the premium+standard VM pair measuring the differential
  // server list. Returns {premium runner, standard runner}.
  std::pair<campaign_runner*, campaign_runner*> start_differential_campaign(
      const std::string& region,
      hour_range window = differential_campaign_window());

  // All campaign runners created so far.
  const std::vector<std::unique_ptr<campaign_runner>>& campaigns() const {
    return campaigns_;
  }

  // Cross-region fan-out: drive several deployed campaigns hour-by-hour
  // with one shared worker pool. Each hour, every (campaign, VM) pair in
  // the union of the campaigns' windows is staged in parallel, then
  // committed in (campaign order, VM-slot order) — so each campaign's
  // results are bit-identical to running it alone with any worker count.
  // `workers` = 0 means hardware_concurrency. Storage is billed per
  // campaign at the end, as campaign_runner::run does.
  void run_campaigns(const std::vector<campaign_runner*>& runners,
                     unsigned workers = 0);

  // --- helpers ---
  timezone_offset timezone_of_server(std::size_t server_id) const;
  // Query download series + matching timezones for a campaign label+region.
  struct labeled_series {
    std::vector<const ts_series*> series;
    std::vector<timezone_offset> tz;
  };
  labeled_series download_series(const std::string& campaign_label,
                                 const std::string& region,
                                 const std::string& metric = "download_mbps",
                                 const std::string& tier = "") const;

  // Per-interconnect congestion report for a region's topology campaign:
  // each measured server covers one interdomain link, so its congestion
  // summary is that link's. Requires select_topology(region) to have run
  // and the campaign data to be in the store; links without data are
  // skipped. `threshold` is the V_H congestion threshold.
  std::vector<interconnect_report> interconnect_congestion(
      const std::string& region, double threshold = 0.5);

 private:
  // The checkpoint subdirectory for a campaign, claimed exactly once:
  // a second campaign resolving to the same path is a state_error, not
  // a silent interleave. Empty when durability is off.
  std::string claim_checkpoint_subdir(const std::string& label,
                                      const std::string& region);

  platform_config config_;
  std::set<std::string> claimed_checkpoint_dirs_;
  internet net_;
  std::unique_ptr<route_planner> planner_;
  std::unique_ptr<network_view> view_;
  std::unique_ptr<gcp_cloud> cloud_;
  std::unique_ptr<vantage_swarm> swarm_;
  server_registry registry_;
  tsdb store_;
  rng rng_;
  std::map<std::string, topology_selection_result> topology_results_;
  std::map<std::string, differential_selection_result> differential_results_;
  std::vector<std::unique_ptr<campaign_runner>> campaigns_;
};

}  // namespace clasp

#include "clasp/speedchecker.hpp"

#include "util/error.hpp"

namespace clasp {

speedchecker_service::speedchecker_service(const route_planner* planner,
                                           const network_view* view,
                                           speedchecker_config config)
    : planner_(planner),
      view_(view),
      config_(config),
      prober_(planner, view) {
  if (planner == nullptr || view == nullptr) {
    throw invalid_argument_error("speedchecker_service: null dependency");
  }
}

const std::vector<host_index>& speedchecker_service::vantage_points() const {
  return planner_->net().vantage_points;
}

int speedchecker_service::month_key(hour_stamp at) {
  const civil_date d = at.utc_date();
  return d.year * 12 + static_cast<int>(d.month);
}

std::size_t speedchecker_service::used_in_month(hour_stamp at) const {
  const auto it = used_.find(month_key(at));
  return it == used_.end() ? 0 : it->second;
}

bool speedchecker_service::admissible(hour_stamp at) const {
  return at < config_.retirement && used_in_month(at) < config_.monthly_quota;
}

void speedchecker_service::save_state(binary_writer& out) const {
  out.varint(used_.size());
  for (const auto& [month, used] : used_) {  // std::map: sorted, canonical
    out.svarint(month);
    out.varint(used);
  }
}

void speedchecker_service::load_state(binary_reader& in) {
  used_.clear();
  const std::size_t months = static_cast<std::size_t>(in.varint());
  for (std::size_t i = 0; i < months; ++i) {
    const int month = static_cast<int>(in.svarint());
    used_[month] = static_cast<std::size_t>(in.varint());
  }
}

vp_probe_result speedchecker_service::probe(host_index vp,
                                            const endpoint& target,
                                            service_tier tier, hour_stamp at,
                                            rng& r) {
  if (at >= config_.retirement) {
    throw state_error(
        "speedchecker: user-defined measurements were retired on " +
        config_.retirement.to_string());
  }
  std::size_t& used = used_[month_key(at)];
  if (used >= config_.monthly_quota) {
    throw budget_exceeded_error("speedchecker: monthly quota of " +
                                std::to_string(config_.monthly_quota) +
                                " probes exhausted");
  }
  ++used;

  const endpoint src = planner_->endpoint_of_host(vp);
  const route_path path = planner_->to_cloud(src, target, tier);
  return vp_probe_result{vp, prober_.ping(path, at, r), at};
}

}  // namespace clasp

#include "tcp/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace clasp {

namespace {

// Delayed-ACK factor in the PFTK/Mathis derivations.
constexpr double kAckedPerWindow = 1.0;

void check_args(millis rtt, double loss) {
  if (rtt.value <= 0.0) {
    throw invalid_argument_error("tcp model: rtt <= 0");
  }
  if (loss <= 0.0 || loss >= 1.0) {
    throw invalid_argument_error("tcp model: loss outside (0, 1)");
  }
}

}  // namespace

mbps mathis_throughput(millis rtt, double loss, unsigned mss_bytes) {
  check_args(rtt, loss);
  const double bits_per_segment = 8.0 * static_cast<double>(mss_bytes);
  const double rate_bps = bits_per_segment /
                          (rtt.seconds() * std::sqrt(2.0 * kAckedPerWindow *
                                                     loss / 3.0));
  return mbps{rate_bps / 1e6};
}

mbps pftk_throughput(millis rtt, double loss, unsigned mss_bytes,
                     double rto_seconds) {
  check_args(rtt, loss);
  const double p = loss;
  const double b = kAckedPerWindow;
  const double term_ca = rtt.seconds() * std::sqrt(2.0 * b * p / 3.0);
  const double term_to = rto_seconds *
                         std::min(1.0, 3.0 * std::sqrt(3.0 * b * p / 8.0)) *
                         p * (1.0 + 32.0 * p * p);
  const double bits_per_segment = 8.0 * static_cast<double>(mss_bytes);
  const double rate_bps = bits_per_segment / (term_ca + term_to);
  return mbps{rate_bps / 1e6};
}

flow_result run_speedtest_flow(const path_metrics& path,
                               const tcp_config& config, mbps rate_cap,
                               rng& noise) {
  if (config.connections == 0) {
    throw invalid_argument_error("run_speedtest_flow: zero connections");
  }
  if (rate_cap.value <= 0.0) {
    throw invalid_argument_error("run_speedtest_flow: non-positive cap");
  }
  flow_result out;
  out.rtt = path.rtt;

  // Loss floor: even clean paths see rare transient loss.
  const double p = std::clamp(path.loss, 1e-7, 0.6);
  const mbps per_conn =
      pftk_throughput(path.rtt, p, config.mss_bytes, config.rto_seconds);
  const mbps loss_bound = per_conn * static_cast<double>(config.connections);

  const mbps raw = std::min({path.bottleneck, loss_bound, rate_cap});
  out.loss_limited = loss_bound < path.bottleneck && loss_bound < rate_cap;

  const double jitter =
      std::exp(noise.normal(0.0, config.report_noise_sigma));
  out.goodput = raw * (config.efficiency * jitter);
  if (out.goodput.value < 0.05) out.goodput = mbps{0.05};  // test never reports 0

  out.volume = transfer_volume(out.goodput, config.duration_seconds);

  // Reported loss: path loss + self-induced loss.
  const double total_packets = std::max(
      out.volume.value * 1e6 / static_cast<double>(config.mss_bytes), 1.0);
  // Congestion-avoidance probing: a couple of drops per epoch per
  // connection; epochs shrink with the per-connection window.
  const double bdp_packets = std::max(
      out.goodput.bits_per_second() * path.rtt.seconds() /
          (8.0 * static_cast<double>(config.mss_bytes) *
           static_cast<double>(config.connections)),
      2.0);
  const double probing_loss = std::min(0.25 / bdp_packets, 0.02);
  // Slow-start overshoot: one early burst, a fraction of a BDP per
  // connection (pacing and HyStart keep it well under the full window).
  const double burst_packets =
      0.15 * bdp_packets * static_cast<double>(config.connections);
  const double burst_loss = burst_packets / total_packets;
  out.reported_loss = std::min(p + probing_loss + burst_loss, 0.95);
  return out;
}

millis run_latency_probe(const path_metrics& path, unsigned probes,
                         rng& noise) {
  if (probes == 0) {
    throw invalid_argument_error("run_latency_probe: zero probes");
  }
  double best = 1e18;
  for (unsigned i = 0; i < probes; ++i) {
    const double think_ms = 0.3 + noise.exponential(2.0);  // server overhead
    const double jitter_ms = noise.exponential(1.0);       // queue jitter
    best = std::min(best, path.rtt.value + think_ms + jitter_ms);
  }
  return millis{best};
}

}  // namespace clasp

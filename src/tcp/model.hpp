// Flow-level TCP throughput model for speed-test sessions.
//
// The substrate does not simulate packets; a speed-test transfer is
// evaluated analytically from the path's instantaneous condition:
//
//  * steady-state per-connection throughput follows the PFTK model
//    (Padhye et al.) with the Mathis formula as its no-timeout limit,
//  * a web speed test runs several parallel connections, so the
//    loss-bounded aggregate is connections x PFTK,
//  * the final goodput is the minimum of available bandwidth, the
//    loss/RTT bound, the configured rate caps (tc shaping on the VM,
//    server NIC), times a measured-efficiency factor,
//  * the *reported* loss rate combines path loss with self-induced loss
//    (slow-start overshoot burst + congestion-avoidance probing), which
//    is how a test can report >10% loss while still moving data — the
//    paper's premium-tier observation (§4.1).
#pragma once

#include "netsim/network.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace clasp {

struct tcp_config {
  unsigned mss_bytes{1460};
  unsigned connections{6};       // parallel streams of a web speed test
  double duration_seconds{15.0}; // measurement phase length
  double rto_seconds{0.3};       // retransmission timeout estimate
  double efficiency{0.93};       // protocol + ramp-up overhead factor
  double report_noise_sigma{0.025};  // client-side reporting noise
};

// Mathis et al. steady-state bound: MSS / (RTT * sqrt(2p/3)).
mbps mathis_throughput(millis rtt, double loss, unsigned mss_bytes);

// PFTK full model including the timeout term; reduces to Mathis for
// small p. Throws invalid_argument_error for rtt <= 0 or loss outside
// (0, 1).
mbps pftk_throughput(millis rtt, double loss, unsigned mss_bytes,
                     double rto_seconds);

// Result of one emulated speed-test transfer.
struct flow_result {
  mbps goodput;              // what the web UI reports
  double reported_loss{0.0}; // tcpdump-style loss over the whole flow
  millis rtt;                // mean RTT during the transfer
  megabytes volume;          // bytes moved (drives egress billing)
  bool loss_limited{false};  // the PFTK bound was the binding constraint
};

// Evaluate one transfer over a path condition. `rate_cap` is the minimum
// of all shaping caps that apply to this direction (VM tc limit, server
// NIC provisioning). `noise` supplies client-side measurement noise.
flow_result run_speedtest_flow(const path_metrics& path,
                               const tcp_config& config, mbps rate_cap,
                               rng& noise);

// Latency as reported by a web speed test's ping phase: the minimum of
// `probes` HTTP round trips, each the path RTT plus server think time.
millis run_latency_probe(const path_metrics& path, unsigned probes,
                         rng& noise);

}  // namespace clasp

// Framed byte channels between the shard coordinator and its workers.
//
// Every message travels as one frame with the WAL's framing discipline —
//
//   [u32 payload length][u32 crc32(payload)][payload bytes]
//
// (little-endian via binio) — so the stream shares the durability layer's
// corruption taxonomy. Because the length prefix arrives intact even when
// the payload is damaged, a CRC-failed frame can be skipped without
// losing stream sync: the receiver reports it and keeps reading, and the
// coordinator re-requests just the damaged group instead of tearing the
// worker down. Only a truncated stream (peer death mid-frame) or an
// absurd length is unrecoverable.
//
// Two implementations: fd_channel wraps one end of a stream socketpair
// and is what fork()ed workers use; file_channel replays frames through
// ordinary files so protocol tests can exercise framing, corruption and
// torn tails without processes. unix_listener/connect_unix put the same
// framing on a named unix-domain socket — the campaign service's control
// plane rides on it, so control messages inherit the CRC discipline and
// corruption taxonomy for free.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace clasp::dist {

// Why recv returned without (or with) a payload.
enum class recv_status {
  ok,       // one complete, CRC-valid frame delivered
  timeout,  // deadline expired before a complete frame arrived
  corrupt,  // a complete frame failed its CRC; the frame was consumed and
            // the stream is still in sync — re-request, don't tear down
  closed,   // peer gone (EOF, EPIPE) or the stream is unrecoverable
            // (length field larger than any legal frame)
};

class byte_channel {
 public:
  virtual ~byte_channel() = default;

  // Send one framed payload. Throws state_error when the peer is gone.
  virtual void send(std::string_view payload) = 0;

  // Receive the next frame. timeout_ms < 0 blocks until a frame, EOF or
  // an error; 0 polls. On `ok` the payload is in `out`; otherwise `out`
  // is unspecified.
  virtual recv_status recv(std::string& out, int timeout_ms) = 0;

  // Chaos injection for the kill-point sweep: send a complete frame
  // whose CRC is wrong (receiver must report `corrupt` and resync), or
  // the first half of a frame (receiver must see a torn stream).
  virtual void send_bad_crc(std::string_view payload) = 0;
  virtual void send_torn(std::string_view payload) = 0;
};

// Channel over a stream-socket file descriptor (one end of a
// socketpair). Owns the fd. Partial reads are reassembled internally;
// sends loop over partial writes and never raise SIGPIPE.
class fd_channel final : public byte_channel {
 public:
  explicit fd_channel(int fd);
  ~fd_channel() override;
  fd_channel(const fd_channel&) = delete;
  fd_channel& operator=(const fd_channel&) = delete;

  void send(std::string_view payload) override;
  recv_status recv(std::string& out, int timeout_ms) override;
  void send_bad_crc(std::string_view payload) override;
  void send_torn(std::string_view payload) override;

  int fd() const { return fd_; }
  void close();

 private:
  void send_raw(std::string_view bytes);
  // Try to cut one frame out of buf_. Returns ok/corrupt/closed when the
  // buffered bytes decide, timeout when more bytes are needed.
  recv_status parse_frame(std::string& out);

  int fd_;
  std::string buf_;  // received, not yet parsed
};

// Listening unix-domain stream socket. The constructor unlinks any stale
// socket file, binds and listens; the destructor closes and unlinks.
// accept() hands each connection back as an fd_channel sharing the frame
// discipline above.
class unix_listener {
 public:
  // Throws state_error when the path cannot be bound (too long, no
  // directory, permissions).
  explicit unix_listener(std::string path, int backlog = 8);
  ~unix_listener();
  unix_listener(const unix_listener&) = delete;
  unix_listener& operator=(const unix_listener&) = delete;

  // Wait up to timeout_ms (0 polls, < 0 blocks) for a connection;
  // nullptr on timeout. Throws state_error when the listener is broken.
  std::unique_ptr<fd_channel> accept(int timeout_ms);

  const std::string& path() const { return path_; }
  int fd() const { return fd_; }

 private:
  std::string path_;
  int fd_{-1};
};

// Client side: connect to a unix_listener's socket. Throws state_error
// when nothing listens at `path`.
std::unique_ptr<fd_channel> connect_unix(const std::string& path);

// File-backed half-duplex pair for tests: send appends frames to one
// file, recv reads them from another (wire two of these back to back to
// emulate a full channel). recv reports `timeout` while the next frame
// is incomplete — a file cannot distinguish "more bytes coming" from a
// torn tail, which is exactly the ambiguity a real torn stream has.
class file_channel final : public byte_channel {
 public:
  file_channel(std::string recv_path, std::string send_path);

  void send(std::string_view payload) override;
  recv_status recv(std::string& out, int timeout_ms) override;
  void send_bad_crc(std::string_view payload) override;
  void send_torn(std::string_view payload) override;

 private:
  void append(std::string_view bytes);

  std::string recv_path_;
  std::string send_path_;
  std::uint64_t cursor_{0};  // read offset into recv_path_
};

}  // namespace clasp::dist

// Shard coordinator: fault-tolerant distributed campaign replay.
//
// One campaign, N worker processes. The coordinator partitions the VM
// fleet into contiguous slot ranges, forks one worker per shard, and
// advances the campaign one hour barrier at a time: every shard ships
// its hour's WAL-record group over a framed channel, the coordinator
// assembles the full fleet group in slot order and commits it through
// campaign_runner::commit_hour_group — the same bytes, in the same
// order, as a single-process run_hour. Output is therefore
// byte-identical for any worker count, which is the contract every
// robustness decision below leans on.
//
// Failure handling, from least to most severe:
//   * damaged frame or record (CRC reject)  → re-request just that
//     group; deterministic staging makes the retry byte-identical.
//     Bounded by max_group_retries, then treated as a worker failure.
//   * silence past the heartbeat deadline   → bounded retries with
//     exponential backoff on the deadline, then failover.
//   * dead or wedged worker                 → failover: SIGKILL + reap +
//     respawn a replacement starting at the current barrier hour. The
//     replacement re-stages that hour bit-exact, so nothing committed is
//     ever redone and nothing pending is ever lost.
//
// The coordinator mirrors run_until's durability cadence (first-hour
// WAL anchor, checkpoint_every_hours, final storage bill + checkpoint),
// so `clasp_cli --shards N` runs are resumable exactly like
// single-process ones. Everything is observable as clasp_dist_* metric
// families plus a dist segment in the campaign heartbeat line.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "clasp/campaign.hpp"
#include "dist/worker.hpp"

namespace clasp::dist {

struct dist_config {
  std::size_t shards{2};
  // A worker must show life (heartbeat, group, hello) at least this
  // often during a barrier, or it earns a timeout strike.
  int heartbeat_timeout_ms{2000};
  // After a strike, the deadline is extended by a backoff that doubles
  // per strike (initial_backoff_ms * backoff_multiplier^strike), up to
  // max_deadline_retries strikes; then the shard fails over.
  int initial_backoff_ms{50};
  double backoff_multiplier{2.0};
  int max_deadline_retries{3};
  // Damaged groups re-requested at most this many times per barrier
  // before the shard is treated as failed.
  int max_group_retries{3};
  // Respawns allowed per shard before the run aborts (a shard that
  // cannot stay up is a bug, not weather).
  int max_failovers_per_shard{4};
  // Chaos by shard index, applied to generation-0 workers only (a
  // failover replacement always behaves). Empty = no chaos.
  std::vector<worker_chaos> chaos;
  // Test hook: runs at the top of every hour barrier, before
  // collection. kill_worker from here exercises real SIGKILL failover.
  std::function<void(class shard_coordinator&, hour_stamp)>
      on_barrier_for_testing;
};

// What a distributed run did, for reports and bench assertions.
struct dist_report {
  std::size_t shards{0};
  std::size_t hours{0};           // hour barriers committed
  std::size_t groups_merged{0};   // shard groups folded into barriers
  std::size_t records_merged{0};  // per-(VM, hour) records committed
  std::size_t heartbeats{0};
  std::size_t timeouts{0};      // deadline strikes
  std::size_t resends{0};       // re-requests sent
  std::size_t crc_rejects{0};   // damaged frames/records refused
  std::size_t failovers{0};     // shards declared failed
  std::size_t respawns{0};      // replacement workers forked
  std::size_t recovery_hours{1};  // hours re-staged per failover (always
                                  // the in-flight barrier, never more)
};

class shard_coordinator {
 public:
  // Shard count is clamped to [1, campaign.vm_count()]: a shard must
  // own at least one VM slot. The campaign must be deployed.
  shard_coordinator(campaign_runner& campaign, dist_config config);
  ~shard_coordinator();
  shard_coordinator(const shard_coordinator&) = delete;
  shard_coordinator& operator=(const shard_coordinator&) = delete;

  // Distributed equivalents of campaign_runner::run / run_until. Return
  // false when interrupted (request_interrupt on the campaign), true on
  // completion. Workers live for the duration of one call.
  bool run();
  bool run_until(hour_stamp stop);

  const dist_report& report() const { return report_; }
  std::size_t shards() const { return config_.shards; }

  // Test/demo hooks: the worker process behind a shard, and a real
  // SIGKILL to it (the next barrier detects the death and fails over).
  pid_t worker_pid(std::uint32_t shard) const;
  void kill_worker(std::uint32_t shard);

 private:
  struct worker_slot {
    pid_t pid{-1};
    std::unique_ptr<fd_channel> channel;
    std::size_t slot_begin{0};
    std::size_t slot_end{0};
    int generation{0};  // respawns of this shard so far
    std::chrono::steady_clock::time_point deadline;
    int strikes{0};
    double backoff_ms{0};
    int resends{0};
    bool have_group{false};
    std::vector<std::string> records;
  };

  void spawn_shard(std::uint32_t shard, hour_stamp start, hour_stamp stop);
  void failover(std::uint32_t shard, hour_stamp at, hour_stamp stop);
  void collect_hour(hour_stamp at, hour_stamp stop);
  void arm_deadline(worker_slot& w);
  void reject_group(std::uint32_t shard, hour_stamp at, hour_stamp stop);
  void stop_all();

  campaign_runner& campaign_;
  dist_config config_;
  std::vector<worker_slot> workers_;
  dist_report report_;
};

}  // namespace clasp::dist

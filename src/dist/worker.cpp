#include "dist/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "dist/protocol.hpp"
#include "util/error.hpp"

namespace clasp::dist {

int worker_serve(campaign_runner& campaign, byte_channel& ch,
                 const shard_assignment& assignment,
                 const worker_chaos& chaos) {
  const std::uint32_t shard = assignment.shard;
  dist_message hello;
  hello.type = msg_type::hello;
  hello.shard = shard;
  hello.hour = assignment.start.hours_since_epoch();
  hello.fingerprint = campaign.fingerprint();
  hello.slot_begin = static_cast<std::uint32_t>(assignment.slot_begin);
  hello.slot_end = static_cast<std::uint32_t>(assignment.slot_end);
  try {
    ch.send(encode_message(hello));
  } catch (const error&) {
    return 1;
  }

  // Frame-level chaos fires once: the resend the coordinator asks for
  // must then go through clean, proving single-group recovery.
  bool bad_crc_pending = chaos.bad_crc_frame >= 0;
  bool corrupt_pending = chaos.corrupt_group >= 0;

  std::vector<campaign_runner::vm_hour_staging> staged;
  for (hour_stamp at = assignment.start; at < assignment.stop; at = at + 1) {
    const std::int64_t h = at.hours_since_epoch();
    if (chaos.hang_at_hour == h) {
      // A wedged worker: alive, silent. The coordinator's heartbeat
      // deadline — not any message — must catch this.
      for (;;) ::pause();
    }
    campaign.stage_shard_hour(at, assignment.slot_begin, assignment.slot_end,
                              staged);
    dist_message group;
    group.type = msg_type::hour_group;
    group.shard = shard;
    group.hour = h;
    group.records.reserve(staged.size());
    for (std::size_t i = 0; i < staged.size(); ++i) {
      group.records.push_back(
          campaign.encode_wal_record(assignment.slot_begin + i, staged[i]));
    }
    if (chaos.exit_at_barrier == h) ::_exit(2);

    dist_message beat;
    beat.type = msg_type::heartbeat;
    beat.shard = shard;
    beat.hour = h;

    bool committed = false;
    while (!committed) {
      try {
        ch.send(encode_message(beat));
        const std::string payload = encode_message(group);
        if (chaos.exit_mid_group == h) {
          ch.send_torn(payload);
          ::_exit(3);
        }
        if (bad_crc_pending && chaos.bad_crc_frame == h) {
          bad_crc_pending = false;
          ch.send_bad_crc(payload);
        } else if (corrupt_pending && chaos.corrupt_group == h) {
          corrupt_pending = false;
          // Flip the last payload byte: inside the last record's bytes,
          // after its CRC was computed. The frame CRC (computed at send,
          // over the damaged bytes) passes; only the per-record CRC in
          // the protocol layer can catch this.
          std::string damaged = payload;
          damaged.back() = static_cast<char>(damaged.back() ^ 0x20);
          ch.send(damaged);
        } else {
          ch.send(payload);
        }
        // Hour barrier: block until the coordinator commits (ack),
        // rejects (resend) or winds down (stop / channel close).
        std::string reply;
        const recv_status rs = ch.recv(reply, -1);
        if (rs == recv_status::closed) return 1;
        if (rs != recv_status::ok) continue;  // damaged reply: resend all
        const dist_message m = decode_message(reply);
        if (m.type == msg_type::ack && m.hour == h) {
          committed = true;
        } else if (m.type == msg_type::stop) {
          return 0;
        }
        // resend (or a stale ack): loop and send the group again.
      } catch (const error&) {
        return 1;
      }
    }
  }
  dist_message bye;
  bye.type = msg_type::bye;
  bye.shard = shard;
  try {
    ch.send(encode_message(bye));
  } catch (const error&) {
    return 1;
  }
  return 0;
}

spawned_worker spawn_worker(campaign_runner& campaign,
                            const shard_assignment& assignment,
                            const worker_chaos& chaos) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw state_error("dist: socketpair failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw state_error("dist: fork failed");
  }
  if (pid == 0) {
    // Child. The campaign is here by copy-on-write; only the serial,
    // immutable-read staging path may run. _exit on every path out —
    // running destructors or atexit handlers would flush parent-owned
    // stream buffers into parent-owned files.
    ::close(sv[0]);
    int code = 1;
    try {
      fd_channel ch(sv[1]);
      code = worker_serve(campaign, ch, assignment, chaos);
    } catch (...) {
      code = 1;
    }
    ::_exit(code);
  }
  ::close(sv[1]);
  spawned_worker w;
  w.pid = pid;
  w.channel = std::make_unique<fd_channel>(sv[0]);
  return w;
}

}  // namespace clasp::dist

// Shard worker for distributed campaign replay.
//
// A worker owns a contiguous range of VM slots and stages their hours
// with campaign_runner::stage_shard_hour — a pure function of the
// deploy-time immutable state plus the hour, which is what makes workers
// interchangeable: a respawned replacement stages byte-identical records
// for any hour, so failover never shows in the output.
//
// Workers are fork()ed, not exec()ed: the deployed campaign (topology,
// sessions, fault plan) arrives by copy-on-write instead of being
// re-deployed per process. Two fork rules shape this code:
//   * pool threads do not survive fork, so the worker path is strictly
//     serial (stage_shard_hour never touches the pool);
//   * the child must leave via _exit — flushing streams inherited from
//     the parent (the campaign WAL, log sinks) would interleave parent
//     buffers into parent files.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>

#include "clasp/campaign.hpp"
#include "dist/channel.hpp"

namespace clasp::dist {

// The slice of the campaign one worker serves: VM slots
// [slot_begin, slot_end) for every hour in [start, stop).
struct shard_assignment {
  std::uint32_t shard{0};
  std::size_t slot_begin{0};
  std::size_t slot_end{0};
  hour_stamp start{hour_stamp{0}};
  hour_stamp stop{hour_stamp{0}};
};

// Deterministic fault injection for the kill-point sweep. Each knob
// names the hour (hours since epoch) at which the fault fires; -1
// disables it. Frame-level knobs fire once, then the worker behaves —
// the retry after a resend request must succeed.
struct worker_chaos {
  std::int64_t exit_at_barrier{-1};  // die right before sending the group
  std::int64_t exit_mid_group{-1};   // send half a frame, then die
  std::int64_t bad_crc_frame{-1};    // frame CRC wrong once (channel damage)
  std::int64_t corrupt_group{-1};    // record bytes damaged once, frame
                                     // CRC valid (payload damage)
  std::int64_t hang_at_hour{-1};     // stop responding without exiting
};

// Serve one shard over `ch` until the range is done, the coordinator
// says stop, or the channel dies. Returns a process exit code: 0 for a
// clean finish or stop, nonzero when the channel failed.
int worker_serve(campaign_runner& campaign, byte_channel& ch,
                 const shard_assignment& assignment,
                 const worker_chaos& chaos = {});

// One fork()ed worker process as the coordinator sees it.
struct spawned_worker {
  pid_t pid{-1};
  std::unique_ptr<fd_channel> channel;  // coordinator's end
};

// fork() a worker serving `assignment` over a fresh socketpair. The
// child runs worker_serve and _exits; the parent gets the pid and its
// channel end. Throws state_error when the socketpair or fork fails.
spawned_worker spawn_worker(campaign_runner& campaign,
                            const shard_assignment& assignment,
                            const worker_chaos& chaos = {});

}  // namespace clasp::dist

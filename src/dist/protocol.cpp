#include "dist/protocol.hpp"

#include "util/binio.hpp"
#include "util/error.hpp"

namespace clasp::dist {

std::string encode_message(const dist_message& m) {
  binary_writer out;
  out.u8(static_cast<std::uint8_t>(m.type));
  out.varint(m.shard);
  out.svarint(m.hour);
  switch (m.type) {
    case msg_type::hello:
      out.u64(m.fingerprint);
      out.varint(m.slot_begin);
      out.varint(m.slot_end);
      break;
    case msg_type::hour_group:
      out.varint(m.records.size());
      for (const std::string& record : m.records) {
        out.u32(crc32(record));
        out.str(record);
      }
      break;
    case msg_type::heartbeat:
    case msg_type::ack:
    case msg_type::resend:
    case msg_type::stop:
    case msg_type::bye:
      break;
  }
  return out.take();
}

dist_message decode_message(std::string_view payload) {
  binary_reader in(payload);
  dist_message m;
  const std::uint8_t tag = in.u8();
  switch (tag) {
    case 'H':
    case 'B':
    case 'G':
    case 'A':
    case 'R':
    case 'S':
    case 'Y':
      m.type = static_cast<msg_type>(tag);
      break;
    default:
      throw invalid_argument_error("dist protocol: unknown message tag");
  }
  m.shard = static_cast<std::uint32_t>(in.varint());
  m.hour = in.svarint();
  if (m.type == msg_type::hello) {
    m.fingerprint = in.u64();
    m.slot_begin = static_cast<std::uint32_t>(in.varint());
    m.slot_end = static_cast<std::uint32_t>(in.varint());
  } else if (m.type == msg_type::hour_group) {
    const std::uint64_t count = in.varint();
    m.records.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint32_t expect_crc = in.u32();
      std::string record = in.str();
      if (crc32(record) != expect_crc) {
        throw corruption_error(
            "dist protocol: group record failed its CRC (record " +
            std::to_string(i) + " of hour " + std::to_string(m.hour) + ")");
      }
      m.records.push_back(std::move(record));
    }
  }
  if (!in.done()) {
    throw invalid_argument_error("dist protocol: trailing bytes in message");
  }
  return m;
}

}  // namespace clasp::dist

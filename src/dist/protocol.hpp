// Wire protocol for distributed campaign replay.
//
// One message type covers the whole conversation; the tag decides which
// fields are meaningful. The flow per worker:
//
//   worker → coordinator   hello      shard, slot range, start hour,
//                                     campaign fingerprint
//   worker → coordinator   heartbeat  shard, hour being staged
//   worker → coordinator   hour_group shard, hour, encoded WAL records
//                                     for every slot in the shard
//   coordinator → worker   ack        hour committed — advance
//   coordinator → worker   resend     hour's group was damaged — send it
//                                     again (the deterministic streams
//                                     make the retry byte-identical)
//   coordinator → worker   stop       wind down now
//   worker → coordinator   bye        shard finished its range
//
// Group records carry their own CRC32 inside the message payload, on top
// of the channel's frame CRC: a frame can be reframed byte-perfect while
// a record inside it was damaged before framing (the corrupt_group chaos
// knob does exactly that), and the per-record CRC catches it as a typed
// corruption_error instead of letting a damaged record decode.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace clasp::dist {

enum class msg_type : std::uint8_t {
  hello = 'H',
  heartbeat = 'B',
  hour_group = 'G',
  ack = 'A',
  resend = 'R',
  stop = 'S',
  bye = 'Y',
};

struct dist_message {
  msg_type type{msg_type::heartbeat};
  std::uint32_t shard{0};
  std::int64_t hour{0};
  // hello only: identity + assignment echo.
  std::uint64_t fingerprint{0};
  std::uint32_t slot_begin{0};
  std::uint32_t slot_end{0};
  // hour_group only: one encoded WAL record per slot, ascending.
  std::vector<std::string> records;
};

std::string encode_message(const dist_message& m);

// Throws corruption_error when a group record fails its per-record CRC,
// invalid_argument_error on a malformed message (unknown tag, truncated
// fields, trailing bytes).
dist_message decode_message(std::string_view payload);

}  // namespace clasp::dist

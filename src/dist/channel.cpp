#include "dist/channel.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <iterator>

#include "util/binio.hpp"
#include "util/error.hpp"

namespace clasp::dist {

namespace {

// A group frame carries one hour of one shard's WAL records — a few
// kilobytes per VM. Anything near this bound is a corrupted length
// field, not a real message.
constexpr std::uint32_t kMaxFrameBytes = 1u << 26;

std::string frame_header(std::string_view payload, std::uint32_t crc) {
  binary_writer header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(crc);
  return header.take();
}

}  // namespace

fd_channel::fd_channel(int fd) : fd_(fd) {}

fd_channel::~fd_channel() { close(); }

void fd_channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void fd_channel::send_raw(std::string_view bytes) {
  if (fd_ < 0) throw state_error("dist channel: send on closed channel");
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE here (the
    // coordinator's failover trigger), never as a process-killing
    // SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw state_error("dist channel: peer gone during send");
    }
    off += static_cast<std::size_t>(n);
  }
}

void fd_channel::send(std::string_view payload) {
  send_raw(frame_header(payload, crc32(payload)) + std::string(payload));
}

void fd_channel::send_bad_crc(std::string_view payload) {
  send_raw(frame_header(payload, crc32(payload) ^ 0xDEADBEEFu) +
           std::string(payload));
}

void fd_channel::send_torn(std::string_view payload) {
  const std::string full =
      frame_header(payload, crc32(payload)) + std::string(payload);
  send_raw(std::string_view(full).substr(0, full.size() / 2 + 4));
}

recv_status fd_channel::parse_frame(std::string& out) {
  if (buf_.size() < 8) return recv_status::timeout;
  binary_reader header(std::string_view(buf_).substr(0, 8));
  const std::uint32_t len = header.u32();
  const std::uint32_t expect_crc = header.u32();
  if (len > kMaxFrameBytes) return recv_status::closed;
  if (buf_.size() < 8 + static_cast<std::size_t>(len)) {
    return recv_status::timeout;
  }
  const std::string_view payload = std::string_view(buf_).substr(8, len);
  const bool ok = crc32(payload) == expect_crc;
  if (ok) out.assign(payload);
  buf_.erase(0, 8 + static_cast<std::size_t>(len));
  return ok ? recv_status::ok : recv_status::corrupt;
}

recv_status fd_channel::recv(std::string& out, int timeout_ms) {
  if (fd_ < 0) return recv_status::closed;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const recv_status parsed = parse_frame(out);
    if (parsed != recv_status::timeout) return parsed;
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(0, left.count()));
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return recv_status::closed;
    }
    if (ready == 0) return recv_status::timeout;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return recv_status::closed;
    }
    if (n == 0) {
      // EOF: the peer died. Buffered bytes that never completed a frame
      // are a torn stream — indistinguishable from a crash mid-write.
      return recv_status::closed;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

namespace {

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw state_error("dist channel: socket path too long: " + path);
  }
  path.copy(addr.sun_path, path.size());
  return addr;
}

}  // namespace

unix_listener::unix_listener(std::string path, int backlog)
    : path_(std::move(path)) {
  const sockaddr_un addr = unix_address(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw state_error("dist channel: cannot create unix socket");
  ::unlink(path_.c_str());  // a stale file from a dead daemon blocks bind
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd_, backlog) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw state_error("dist channel: cannot listen on " + path_);
  }
}

unix_listener::~unix_listener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<fd_channel> unix_listener::accept(int timeout_ms) {
  if (fd_ < 0) throw state_error("dist channel: listener is closed");
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw state_error("dist channel: poll failed on " + path_);
    }
    if (ready == 0) return nullptr;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      throw state_error("dist channel: accept failed on " + path_);
    }
    return std::make_unique<fd_channel>(client);
  }
}

std::unique_ptr<fd_channel> connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw state_error("dist channel: cannot create unix socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw state_error("dist channel: no service listening at " + path);
  }
  return std::make_unique<fd_channel>(fd);
}

file_channel::file_channel(std::string recv_path, std::string send_path)
    : recv_path_(std::move(recv_path)), send_path_(std::move(send_path)) {}

void file_channel::append(std::string_view bytes) {
  std::ofstream out(send_path_, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw state_error("dist channel: cannot append " + send_path_);
}

void file_channel::send(std::string_view payload) {
  append(frame_header(payload, crc32(payload)) + std::string(payload));
}

void file_channel::send_bad_crc(std::string_view payload) {
  append(frame_header(payload, crc32(payload) ^ 0xDEADBEEFu) +
         std::string(payload));
}

void file_channel::send_torn(std::string_view payload) {
  const std::string full =
      frame_header(payload, crc32(payload)) + std::string(payload);
  append(std::string_view(full).substr(0, full.size() / 2 + 4));
}

recv_status file_channel::recv(std::string& out, int /*timeout_ms*/) {
  std::ifstream in(recv_path_, std::ios::binary);
  if (!in) return recv_status::timeout;  // nothing written yet
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (content.size() < cursor_ + 8) return recv_status::timeout;
  binary_reader header(std::string_view(content).substr(cursor_, 8));
  const std::uint32_t len = header.u32();
  const std::uint32_t expect_crc = header.u32();
  if (len > kMaxFrameBytes) return recv_status::closed;
  if (content.size() < cursor_ + 8 + len) return recv_status::timeout;
  const std::string_view payload =
      std::string_view(content).substr(cursor_ + 8, len);
  cursor_ += 8 + len;
  if (crc32(payload) != expect_crc) return recv_status::corrupt;
  out.assign(payload);
  return recv_status::ok;
}

}  // namespace clasp::dist

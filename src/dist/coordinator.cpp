#include "dist/coordinator.hpp"

#include <signal.h>
#include <sys/wait.h>

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "dist/protocol.hpp"
#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp::dist {

namespace {

// How long one recv waits before the coordinator looks at another
// shard's channel. Small enough that one slow worker cannot starve
// another's deadline bookkeeping.
constexpr int kRecvSliceMs = 10;

struct dist_metrics {
  obs::gauge* workers;
  obs::gauge* barrier_hour;
  obs::counter* groups;
  obs::counter* records;
  obs::counter* heartbeats;
  obs::counter* timeouts;
  obs::counter* resends;
  obs::counter* crc_rejects;
  obs::counter* failovers;
  obs::counter* respawns;
  obs::histogram* barrier_seconds;
};

dist_metrics& metrics() {
  namespace fam = obs::family;
  obs::metrics_registry& reg = obs::metrics_registry::instance();
  static dist_metrics m{
      &reg.get_gauge(fam::kDistWorkers),
      &reg.get_gauge(fam::kDistBarrierHour),
      &reg.get_counter(fam::kDistGroupsMerged),
      &reg.get_counter(fam::kDistRecords),
      &reg.get_counter(fam::kDistHeartbeats),
      &reg.get_counter(fam::kDistTimeouts),
      &reg.get_counter(fam::kDistResends),
      &reg.get_counter(fam::kDistCrcRejects),
      &reg.get_counter(fam::kDistFailovers),
      &reg.get_counter(fam::kDistRespawns),
      &reg.get_histogram(fam::kDistBarrierSeconds,
                         obs::duration_buckets())};
  return m;
}

}  // namespace

shard_coordinator::shard_coordinator(campaign_runner& campaign,
                                     dist_config config)
    : campaign_(campaign), config_(std::move(config)) {
  // Every shard needs at least one VM slot; a lone VM is a lone shard.
  const std::size_t vms = std::max<std::size_t>(1, campaign_.vm_count());
  config_.shards = std::clamp<std::size_t>(config_.shards, 1, vms);
  report_.shards = config_.shards;
  // Contiguous slot partition, remainder spread over the low shards so
  // sizes differ by at most one.
  const std::size_t vm_count = campaign_.vm_count();
  const std::size_t base = vm_count / config_.shards;
  const std::size_t rem = vm_count % config_.shards;
  workers_.resize(config_.shards);
  std::size_t next = 0;
  for (std::size_t s = 0; s < config_.shards; ++s) {
    workers_[s].slot_begin = next;
    next += base + (s < rem ? 1 : 0);
    workers_[s].slot_end = next;
  }
}

shard_coordinator::~shard_coordinator() { stop_all(); }

pid_t shard_coordinator::worker_pid(std::uint32_t shard) const {
  return shard < workers_.size() ? workers_[shard].pid : -1;
}

void shard_coordinator::kill_worker(std::uint32_t shard) {
  if (shard < workers_.size() && workers_[shard].pid > 0) {
    ::kill(workers_[shard].pid, SIGKILL);
  }
}

void shard_coordinator::arm_deadline(worker_slot& w) {
  w.deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(config_.heartbeat_timeout_ms);
}

void shard_coordinator::spawn_shard(std::uint32_t shard, hour_stamp start,
                                    hour_stamp stop) {
  worker_slot& w = workers_[shard];
  shard_assignment a;
  a.shard = shard;
  a.slot_begin = w.slot_begin;
  a.slot_end = w.slot_end;
  a.start = start;
  a.stop = stop;
  // Chaos is a property of the original cast: a failover replacement
  // always behaves, so every injected fault is recovered from exactly
  // once and the sweep stays deterministic.
  worker_chaos chaos;
  if (w.generation == 0 && shard < config_.chaos.size()) {
    chaos = config_.chaos[shard];
  }
  spawned_worker spawned = spawn_worker(campaign_, a, chaos);
  w.pid = spawned.pid;
  w.channel = std::move(spawned.channel);
  CLASP_LOG(info, "dist") << "shard " << shard << " worker pid " << w.pid
                          << " slots [" << w.slot_begin << ", " << w.slot_end
                          << ") from hour " << start.hours_since_epoch();
  w.strikes = 0;
  w.backoff_ms = config_.initial_backoff_ms;
  w.resends = 0;
  w.have_group = false;
  w.records.clear();
  arm_deadline(w);
}

void shard_coordinator::failover(std::uint32_t shard, hour_stamp at,
                                 hour_stamp stop) {
  worker_slot& w = workers_[shard];
  report_.failovers += 1;
  metrics().failovers->add(1);
  if (w.generation >= config_.max_failovers_per_shard) {
    throw state_error("dist: shard " + std::to_string(shard) +
                      " exceeded its failover budget at hour " +
                      std::to_string(at.hours_since_epoch()));
  }
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.pid = -1;
  }
  w.channel.reset();
  w.generation += 1;
  CLASP_LOG(warn, "dist") << "shard " << shard << " failed at hour "
                          << at.hours_since_epoch()
                          << "; respawning (generation " << w.generation
                          << ")";
  // The replacement starts at the in-flight barrier: everything before
  // it is already committed, and deterministic staging reproduces the
  // barrier hour bit-exact. Recovery cost is always exactly one hour of
  // one shard's staging.
  spawn_shard(shard, at, stop);
  report_.respawns += 1;
  metrics().respawns->add(1);
}

void shard_coordinator::reject_group(std::uint32_t shard, hour_stamp at,
                                     hour_stamp stop) {
  worker_slot& w = workers_[shard];
  report_.crc_rejects += 1;
  metrics().crc_rejects->add(1);
  if (w.resends >= config_.max_group_retries) {
    failover(shard, at, stop);
    return;
  }
  w.resends += 1;
  report_.resends += 1;
  metrics().resends->add(1);
  dist_message m;
  m.type = msg_type::resend;
  m.shard = shard;
  m.hour = at.hours_since_epoch();
  try {
    w.channel->send(encode_message(m));
  } catch (const error&) {
    failover(shard, at, stop);
    return;
  }
  arm_deadline(w);
}

void shard_coordinator::collect_hour(hour_stamp at, hour_stamp stop) {
  const std::int64_t h = at.hours_since_epoch();
  for (worker_slot& w : workers_) {
    w.have_group = false;
    w.records.clear();
    w.strikes = 0;
    w.backoff_ms = config_.initial_backoff_ms;
    w.resends = 0;
    arm_deadline(w);
  }
  std::size_t pending = workers_.size();
  std::string payload;
  while (pending > 0) {
    for (std::uint32_t s = 0; s < workers_.size(); ++s) {
      worker_slot& w = workers_[s];
      if (w.have_group) continue;
      const recv_status rs = w.channel->recv(payload, kRecvSliceMs);
      if (rs == recv_status::ok) {
        dist_message m;
        try {
          m = decode_message(payload);
        } catch (const error&) {
          // Frame CRC passed but the content is damaged (per-record CRC
          // or structure): same remedy as a damaged frame.
          reject_group(s, at, stop);
          continue;
        }
        // Any decodable message is proof of life.
        w.strikes = 0;
        w.backoff_ms = config_.initial_backoff_ms;
        arm_deadline(w);
        switch (m.type) {
          case msg_type::hello:
            if (m.fingerprint != campaign_.fingerprint()) {
              throw state_error(
                  "dist: worker fingerprint mismatch (different campaign "
                  "deployed in shard " +
                  std::to_string(s) + ")");
            }
            break;
          case msg_type::heartbeat:
            report_.heartbeats += 1;
            metrics().heartbeats->add(1);
            break;
          case msg_type::hour_group:
            if (m.hour == h &&
                m.records.size() == w.slot_end - w.slot_begin) {
              w.records = std::move(m.records);
              w.have_group = true;
            } else if (m.hour < h) {
              // Duplicate of an already-committed hour (a resend raced
              // our ack). Ack again so the worker advances.
              dist_message ack;
              ack.type = msg_type::ack;
              ack.shard = s;
              ack.hour = m.hour;
              try {
                w.channel->send(encode_message(ack));
              } catch (const error&) {
                failover(s, at, stop);
              }
            } else {
              // Wrong record count or a future hour: protocol breach.
              reject_group(s, at, stop);
            }
            break;
          case msg_type::bye:
          default:
            break;
        }
      } else if (rs == recv_status::corrupt) {
        reject_group(s, at, stop);
      } else if (rs == recv_status::closed) {
        failover(s, at, stop);
      } else {
        // Slice elapsed with nothing from this shard. Deadline expiry
        // earns a strike and a backoff-extended deadline; the strike
        // budget exhausted means the worker is gone or wedged.
        if (std::chrono::steady_clock::now() >= w.deadline) {
          report_.timeouts += 1;
          metrics().timeouts->add(1);
          if (w.strikes >= config_.max_deadline_retries) {
            failover(s, at, stop);
          } else {
            w.strikes += 1;
            w.deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(
                             static_cast<std::int64_t>(w.backoff_ms));
            w.backoff_ms *= config_.backoff_multiplier;
          }
        }
      }
    }
    pending = static_cast<std::size_t>(
        std::count_if(workers_.begin(), workers_.end(),
                      [](const worker_slot& w) { return !w.have_group; }));
  }
  // Every shard delivered: assemble the fleet group in slot order and
  // commit through the exact code path a single process uses.
  std::vector<campaign_runner::vm_hour_staging> group(campaign_.vm_count());
  for (const worker_slot& w : workers_) {
    for (std::size_t i = 0; i < w.records.size(); ++i) {
      const std::size_t slot =
          campaign_.decode_wal_record(w.records[i], group[w.slot_begin + i]);
      if (slot != w.slot_begin + i) {
        throw state_error("dist: shard delivered records out of slot order");
      }
    }
    report_.groups_merged += 1;
    report_.records_merged += w.records.size();
    metrics().groups->add(1);
    metrics().records->add(w.records.size());
  }
  campaign_.commit_hour_group(at, std::move(group));
  dist_message ack;
  ack.type = msg_type::ack;
  ack.hour = h;
  for (std::uint32_t s = 0; s < workers_.size(); ++s) {
    ack.shard = s;
    try {
      workers_[s].channel->send(encode_message(ack));
    } catch (const error&) {
      // Dead between delivery and ack: the next barrier's recv will see
      // the closed channel and fail over; nothing to do now.
    }
  }
}

void shard_coordinator::stop_all() {
  dist_message stop_msg;
  stop_msg.type = msg_type::stop;
  for (worker_slot& w : workers_) {
    if (w.channel != nullptr) {
      try {
        w.channel->send(encode_message(stop_msg));
      } catch (const error&) {
      }
      // Closing unblocks a worker waiting in recv even if the stop
      // frame never made it.
      w.channel.reset();
    }
  }
  for (worker_slot& w : workers_) {
    if (w.pid <= 0) continue;
    int status = 0;
    bool reaped = false;
    for (int i = 0; i < 200 && !reaped; ++i) {
      if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!reaped) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, &status, 0);
    }
    w.pid = -1;
  }
  metrics().workers->set(0.0);
}

bool shard_coordinator::run_until(hour_stamp stop) {
  const campaign_config& cfg = campaign_.config();
  // Mirror run_until's durability anchor: the WAL needs a base
  // checkpoint before the first distributed hour commits into it.
  if (campaign_.durable() && !campaign_.wal_open()) {
    campaign_.checkpoint(cfg.checkpoint_dir);
  }
  if (!(campaign_.cursor() < stop)) return true;
  const std::int64_t begin = cfg.window.begin_at.hours_since_epoch();
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    spawn_shard(s, campaign_.cursor(), stop);
  }
  metrics().workers->set(static_cast<double>(config_.shards));
  bool completed = true;
  try {
    while (campaign_.cursor() < stop) {
      if (campaign_.interrupt_requested()) {
        campaign_.clear_interrupt();
        if (campaign_.durable()) campaign_.checkpoint(cfg.checkpoint_dir);
        CLASP_LOG(info, "dist")
            << cfg.label << "/" << cfg.region << ": interrupted at "
            << campaign_.cursor().to_string();
        completed = false;
        break;
      }
      const hour_stamp at = campaign_.cursor();
      if (config_.on_barrier_for_testing) {
        config_.on_barrier_for_testing(*this, at);
      }
      metrics().barrier_hour->set(
          static_cast<double>(at.hours_since_epoch()));
      const auto barrier_begin = std::chrono::steady_clock::now();
      collect_hour(at, stop);
      metrics().barrier_seconds->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        barrier_begin)
              .count());
      report_.hours += 1;
      if (campaign_.durable() &&
          (campaign_.cursor().hours_since_epoch() - begin) %
                  static_cast<std::int64_t>(cfg.checkpoint_every_hours) ==
              0) {
        campaign_.checkpoint(cfg.checkpoint_dir);
      }
    }
  } catch (...) {
    stop_all();
    throw;
  }
  stop_all();
  return completed;
}

bool shard_coordinator::run() {
  if (!run_until(campaign_.config().window.end_at)) return false;
  // Same epilogue as campaign_runner::run: the storage bill and the
  // final checkpoint are coordinator-side work, never sharded.
  if (!campaign_.storage_billed()) campaign_.charge_monthly_storage();
  if (campaign_.durable()) {
    campaign_.checkpoint(campaign_.config().checkpoint_dir);
  }
  return true;
}

}  // namespace clasp::dist

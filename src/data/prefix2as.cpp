#include "data/prefix2as.hpp"

namespace clasp {

void prefix2as_table::add(ipv4_prefix prefix, asn origin) {
  by_length_[prefix.length()][prefix.base().value()] = origin;
}

std::optional<asn> prefix2as_table::lookup(ipv4_addr addr) const {
  for (int len = 32; len >= 0; --len) {
    const auto& table = by_length_[len];
    if (table.empty()) continue;
    const std::uint32_t mask =
        (len == 0) ? 0 : (~std::uint32_t{0} << (32 - len));
    const auto it = table.find(addr.value() & mask);
    if (it != table.end()) return it->second;
  }
  return std::nullopt;
}

std::vector<std::pair<ipv4_prefix, asn>> prefix2as_table::entries() const {
  std::vector<std::pair<ipv4_prefix, asn>> out;
  for (unsigned len = 0; len <= 32; ++len) {
    for (const auto& [base, origin] : by_length_[len]) {
      out.emplace_back(ipv4_prefix(ipv4_addr{base}, len), origin);
    }
  }
  return out;
}

std::size_t prefix2as_table::size() const {
  std::size_t n = 0;
  for (const auto& table : by_length_) n += table.size();
  return n;
}

}  // namespace clasp

#include "data/ipv4.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace clasp {

ipv4_addr ipv4_addr::parse(const std::string& text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) {
    throw invalid_argument_error("ipv4_addr: expected a.b.c.d, got " + text);
  }
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) {
      throw invalid_argument_error("ipv4_addr: bad octet in " + text);
    }
    unsigned octet = 0;
    for (const char c : part) {
      if (c < '0' || c > '9') {
        throw invalid_argument_error("ipv4_addr: bad octet in " + text);
      }
      octet = octet * 10 + static_cast<unsigned>(c - '0');
    }
    if (octet > 255) {
      throw invalid_argument_error("ipv4_addr: octet > 255 in " + text);
    }
    value = (value << 8) | octet;
  }
  return ipv4_addr{value};
}

std::string ipv4_addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return std::string(buf);
}

ipv4_prefix::ipv4_prefix(ipv4_addr base, unsigned length)
    : base_(base), length_(length) {
  if (length > 32) {
    throw invalid_argument_error("ipv4_prefix: length > 32");
  }
  if ((base.value() & ~netmask()) != 0) {
    throw invalid_argument_error("ipv4_prefix: host bits set in " +
                                 base.to_string());
  }
}

ipv4_prefix ipv4_prefix::parse(const std::string& text) {
  const auto parts = split(text, '/');
  if (parts.size() != 2) {
    throw invalid_argument_error("ipv4_prefix: expected addr/len: " + text);
  }
  const ipv4_addr base = ipv4_addr::parse(parts[0]);
  unsigned length = 0;
  for (const char c : parts[1]) {
    if (c < '0' || c > '9') {
      throw invalid_argument_error("ipv4_prefix: bad length: " + text);
    }
    length = length * 10 + static_cast<unsigned>(c - '0');
  }
  return ipv4_prefix(base, length);
}

std::uint32_t ipv4_prefix::netmask() const {
  if (length_ == 0) return 0;
  return ~std::uint32_t{0} << (32 - length_);
}

std::uint64_t ipv4_prefix::size() const {
  return std::uint64_t{1} << (32 - length_);
}

bool ipv4_prefix::contains(ipv4_addr addr) const {
  return (addr.value() & netmask()) == base_.value();
}

ipv4_addr ipv4_prefix::address_at(std::uint64_t i) const {
  if (i >= size()) {
    throw invalid_argument_error("ipv4_prefix: address index out of range");
  }
  return ipv4_addr{base_.value() + static_cast<std::uint32_t>(i)};
}

std::string ipv4_prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

prefix_allocator::prefix_allocator(ipv4_prefix pool) : pool_(pool) {}

ipv4_prefix prefix_allocator::allocate(unsigned length) {
  if (length < pool_.length() || length > 32) {
    throw invalid_argument_error("prefix_allocator: bad sub-prefix length");
  }
  const std::uint64_t block = std::uint64_t{1} << (32 - length);
  // Align the offset up to the block size so the sub-prefix is valid.
  std::uint64_t offset = (next_offset_ + block - 1) / block * block;
  if (offset + block > pool_.size()) {
    throw state_error("prefix_allocator: pool " + pool_.to_string() +
                      " exhausted");
  }
  next_offset_ = offset + block;
  return ipv4_prefix(ipv4_addr{pool_.base().value() +
                               static_cast<std::uint32_t>(offset)},
                     length);
}

std::uint64_t prefix_allocator::remaining() const {
  return pool_.size() - next_offset_;
}

}  // namespace clasp

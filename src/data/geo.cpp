#include "data/geo.hpp"

#include <cmath>
#include <numbers>
#include <unordered_map>

#include "util/error.hpp"

namespace clasp {

namespace {

struct raw_city {
  const char* name;
  const char* country;
  double lat;
  double lon;
  int utc_offset;
  double weight;
};

// Fixed (standard-time) UTC offsets; see sim_time.hpp for the DST note.
// Weights approximate metro size for server/eyeball placement.
constexpr raw_city kCities[] = {
    // --- GCP region host cities ---
    {"The Dalles, OR", "US", 45.60, -121.18, -8, 0.2},
    {"Los Angeles, CA", "US", 34.05, -118.24, -8, 9.0},
    {"Las Vegas, NV", "US", 36.17, -115.14, -8, 2.2},
    {"Moncks Corner, SC", "US", 33.20, -80.01, -5, 0.2},
    {"Ashburn, VA", "US", 39.04, -77.49, -5, 1.5},
    {"Council Bluffs, IA", "US", 41.26, -95.86, -6, 0.3},
    {"St. Ghislain", "BE", 50.45, 3.82, 1, 0.2},
    // --- U.S. metros (speed-test server and eyeball placement) ---
    {"Seattle, WA", "US", 47.61, -122.33, -8, 4.0},
    {"Portland, OR", "US", 45.52, -122.68, -8, 2.5},
    {"San Francisco, CA", "US", 37.77, -122.42, -8, 4.7},
    {"San Jose, CA", "US", 37.34, -121.89, -8, 2.0},
    {"Sacramento, CA", "US", 38.58, -121.49, -8, 2.3},
    {"Fresno, CA", "US", 36.74, -119.78, -8, 1.0},
    {"San Diego, CA", "US", 32.72, -117.16, -8, 3.3},
    {"Phoenix, AZ", "US", 33.45, -112.07, -7, 4.9},
    {"Tucson, AZ", "US", 32.22, -110.97, -7, 1.0},
    {"Salt Lake City, UT", "US", 40.76, -111.89, -7, 1.2},
    {"Denver, CO", "US", 39.74, -104.99, -7, 2.9},
    {"Albuquerque, NM", "US", 35.08, -106.65, -7, 0.9},
    {"Boise, ID", "US", 43.62, -116.20, -7, 0.7},
    {"Reno, NV", "US", 39.53, -119.81, -8, 0.5},
    {"El Paso, TX", "US", 31.76, -106.49, -7, 0.8},
    {"Dallas, TX", "US", 32.78, -96.80, -6, 7.6},
    {"Houston, TX", "US", 29.76, -95.37, -6, 7.1},
    {"Austin, TX", "US", 30.27, -97.74, -6, 2.3},
    {"San Antonio, TX", "US", 29.42, -98.49, -6, 2.6},
    {"Oklahoma City, OK", "US", 35.47, -97.52, -6, 1.4},
    {"Kansas City, MO", "US", 39.10, -94.58, -6, 2.2},
    {"Omaha, NE", "US", 41.26, -95.93, -6, 0.9},
    {"Minneapolis, MN", "US", 44.98, -93.27, -6, 3.7},
    {"St. Louis, MO", "US", 38.63, -90.20, -6, 2.8},
    {"Chicago, IL", "US", 41.88, -87.63, -6, 9.5},
    {"Milwaukee, WI", "US", 43.04, -87.91, -6, 1.6},
    {"Des Moines, IA", "US", 41.59, -93.62, -6, 0.7},
    {"Memphis, TN", "US", 35.15, -90.05, -6, 1.3},
    {"New Orleans, LA", "US", 29.95, -90.07, -6, 1.3},
    {"Nashville, TN", "US", 36.16, -86.78, -6, 1.9},
    {"Indianapolis, IN", "US", 39.77, -86.16, -5, 2.1},
    {"Detroit, MI", "US", 42.33, -83.05, -5, 4.3},
    {"Columbus, OH", "US", 39.96, -83.00, -5, 2.1},
    {"Cleveland, OH", "US", 41.50, -81.69, -5, 2.1},
    {"Cincinnati, OH", "US", 39.10, -84.51, -5, 2.2},
    {"Louisville, KY", "US", 38.25, -85.76, -5, 1.3},
    {"Atlanta, GA", "US", 33.75, -84.39, -5, 6.0},
    {"Charlotte, NC", "US", 35.23, -80.84, -5, 2.6},
    {"Raleigh, NC", "US", 35.78, -78.64, -5, 1.4},
    {"Charleston, SC", "US", 32.78, -79.93, -5, 0.8},
    {"Jacksonville, FL", "US", 30.33, -81.66, -5, 1.6},
    {"Orlando, FL", "US", 28.54, -81.38, -5, 2.6},
    {"Tampa, FL", "US", 27.95, -82.46, -5, 3.2},
    {"Miami, FL", "US", 25.76, -80.19, -5, 6.1},
    {"Washington, DC", "US", 38.91, -77.04, -5, 6.3},
    {"Baltimore, MD", "US", 39.29, -76.61, -5, 2.8},
    {"Richmond, VA", "US", 37.54, -77.44, -5, 1.3},
    {"Philadelphia, PA", "US", 39.95, -75.17, -5, 6.1},
    {"Pittsburgh, PA", "US", 40.44, -79.99, -5, 2.3},
    {"New York, NY", "US", 40.71, -74.01, -5, 19.2},
    {"Newark, NJ", "US", 40.74, -74.17, -5, 2.0},
    {"Boston, MA", "US", 42.36, -71.06, -5, 4.9},
    {"Hartford, CT", "US", 41.76, -72.67, -5, 1.2},
    {"Providence, RI", "US", 41.82, -71.41, -5, 1.6},
    {"Buffalo, NY", "US", 42.89, -78.88, -5, 1.1},
    {"Albany, NY", "US", 42.65, -73.75, -5, 0.9},
    {"Honolulu, HI", "US", 21.31, -157.86, -10, 1.0},
    {"Anchorage, AK", "US", 61.22, -149.90, -9, 0.4},
    {"Billings, MT", "US", 45.78, -108.50, -7, 0.2},
    {"Fargo, ND", "US", 46.88, -96.79, -6, 0.2},
    {"Sioux Falls, SD", "US", 43.55, -96.73, -6, 0.3},
    {"Little Rock, AR", "US", 34.75, -92.29, -6, 0.7},
    {"Birmingham, AL", "US", 33.52, -86.80, -6, 1.1},
    {"Jackson, MS", "US", 32.30, -90.18, -6, 0.6},
    {"Tulsa, OK", "US", 36.15, -95.99, -6, 1.0},
    {"Wichita, KS", "US", 37.69, -97.34, -6, 0.6},
    {"Spokane, WA", "US", 47.66, -117.43, -8, 0.6},
    {"Eugene, OR", "US", 44.05, -123.09, -8, 0.4},
    {"Bakersfield, CA", "US", 35.37, -119.02, -8, 0.9},
    {"Grass Valley, CA", "US", 39.22, -121.06, -8, 0.2},
    {"Santa Barbara, CA", "US", 34.42, -119.70, -8, 0.5},
    {"Colorado Springs, CO", "US", 38.83, -104.82, -7, 0.7},
    {"Savannah, GA", "US", 32.08, -81.09, -5, 0.4},
    {"Knoxville, TN", "US", 35.96, -83.92, -5, 0.9},
    {"Grand Rapids, MI", "US", 42.96, -85.66, -5, 1.1},
    {"Madison, WI", "US", 43.07, -89.40, -6, 0.7},
    {"Rochester, NY", "US", 43.16, -77.61, -5, 1.1},
    {"Syracuse, NY", "US", 43.05, -76.15, -5, 0.7},
    {"Norfolk, VA", "US", 36.85, -76.29, -5, 1.2},
    {"Greensboro, NC", "US", 36.07, -79.79, -5, 0.8},
    {"Columbia, SC", "US", 34.00, -81.03, -5, 0.8},
    {"Tallahassee, FL", "US", 30.44, -84.28, -5, 0.4},
    {"Mobile, AL", "US", 30.69, -88.04, -6, 0.4},
    {"Shreveport, LA", "US", 32.53, -93.75, -6, 0.4},
    {"Lubbock, TX", "US", 33.58, -101.86, -6, 0.3},
    {"Corpus Christi, TX", "US", 27.80, -97.40, -6, 0.4},
    {"McAllen, TX", "US", 26.20, -98.23, -6, 0.9},
    {"Fort Wayne, IN", "US", 41.08, -85.14, -5, 0.4},
    {"Toledo, OH", "US", 41.65, -83.54, -5, 0.6},
    {"Dayton, OH", "US", 39.76, -84.19, -5, 0.8},
    {"Lexington, KY", "US", 38.04, -84.50, -5, 0.5},
    {"Chattanooga, TN", "US", 35.05, -85.31, -5, 0.5},
    {"Augusta, GA", "US", 33.47, -81.97, -5, 0.6},
    {"Fayetteville, AR", "US", 36.06, -94.16, -6, 0.5},
    {"Springfield, MO", "US", 37.21, -93.29, -6, 0.5},
    {"Cedar Rapids, IA", "US", 41.98, -91.67, -6, 0.3},
    {"Green Bay, WI", "US", 44.51, -88.01, -6, 0.3},
    {"Duluth, MN", "US", 46.79, -92.10, -6, 0.3},
    {"Boulder, CO", "US", 40.01, -105.27, -7, 0.3},
    {"Provo, UT", "US", 40.23, -111.66, -7, 0.6},
    {"Missoula, MT", "US", 46.87, -113.99, -7, 0.2},
    {"Bend, OR", "US", 44.06, -121.31, -8, 0.2},
    {"Santa Rosa, CA", "US", 38.44, -122.71, -8, 0.5},
    {"Stockton, CA", "US", 37.96, -121.29, -8, 0.8},
    {"Riverside, CA", "US", 33.95, -117.40, -8, 4.6},
    {"Irvine, CA", "US", 33.68, -117.83, -8, 3.2},
    // --- European metros (europe-west1 coverage) ---
    {"London", "GB", 51.51, -0.13, 0, 14.0},
    {"Paris", "FR", 48.86, 2.35, 1, 12.0},
    {"Amsterdam", "NL", 52.37, 4.90, 1, 2.5},
    {"Brussels", "BE", 50.85, 4.35, 1, 2.1},
    {"Frankfurt", "DE", 50.11, 8.68, 1, 2.3},
    {"Berlin", "DE", 52.52, 13.41, 1, 3.6},
    {"Munich", "DE", 48.14, 11.58, 1, 1.5},
    {"Madrid", "ES", 40.42, -3.70, 1, 6.6},
    {"Barcelona", "ES", 41.39, 2.17, 1, 5.6},
    {"Milan", "IT", 45.46, 9.19, 1, 3.2},
    {"Rome", "IT", 41.90, 12.50, 1, 4.3},
    {"Zurich", "CH", 47.38, 8.54, 1, 1.4},
    {"Vienna", "AT", 48.21, 16.37, 1, 1.9},
    {"Warsaw", "PL", 52.23, 21.01, 1, 1.8},
    {"Prague", "CZ", 50.08, 14.44, 1, 1.3},
    {"Stockholm", "SE", 59.33, 18.07, 1, 1.6},
    {"Copenhagen", "DK", 55.68, 12.57, 1, 1.3},
    {"Oslo", "NO", 59.91, 10.75, 1, 1.0},
    {"Helsinki", "FI", 60.17, 24.94, 2, 1.2},
    {"Dublin", "IE", 53.35, -6.26, 0, 1.2},
    {"Lisbon", "PT", 38.72, -9.14, 0, 2.9},
    {"Athens", "GR", 37.98, 23.73, 2, 3.2},
    {"Bucharest", "RO", 44.43, 26.10, 2, 1.8},
    {"Budapest", "HU", 47.50, 19.04, 1, 1.8},
    {"Kyiv", "UA", 50.45, 30.52, 2, 3.0},
    {"Istanbul", "TR", 41.01, 28.98, 3, 15.5},
    {"Moscow", "RU", 55.76, 37.62, 3, 12.5},
    // --- Differential-experiment destinations (India / Australia / etc.) ---
    {"Mumbai", "IN", 19.08, 72.88, 5, 20.4},
    {"Delhi", "IN", 28.70, 77.10, 5, 31.0},
    {"Bangalore", "IN", 12.97, 77.59, 5, 12.3},
    {"Chennai", "IN", 13.08, 80.27, 5, 10.9},
    {"Hyderabad", "IN", 17.39, 78.49, 5, 9.7},
    {"Sydney", "AU", -33.87, 151.21, 10, 5.3},
    {"Melbourne", "AU", -37.81, 144.96, 10, 5.1},
    {"Brisbane", "AU", -27.47, 153.03, 10, 2.5},
    {"Perth", "AU", -31.95, 115.86, 8, 2.1},
    {"Auckland", "NZ", -36.85, 174.76, 12, 1.7},
    {"Singapore", "SG", 1.35, 103.82, 8, 5.7},
    {"Tokyo", "JP", 35.68, 139.69, 9, 37.4},
    {"Seoul", "KR", 37.57, 126.98, 9, 9.8},
    {"Hong Kong", "HK", 22.32, 114.17, 8, 7.5},
    {"Sao Paulo", "BR", -23.55, -46.63, -3, 22.0},
    {"Buenos Aires", "AR", -34.60, -58.38, -3, 15.2},
    {"Mexico City", "MX", 19.43, -99.13, -6, 21.8},
    {"Toronto", "CA", 43.65, -79.38, -5, 6.3},
    {"Vancouver", "CA", 49.28, -123.12, -8, 2.6},
    {"Montreal", "CA", 45.50, -73.57, -5, 4.3},
    {"Johannesburg", "ZA", -26.20, 28.05, 2, 5.9},
};

}  // namespace

geo_database geo_database::builtin() {
  geo_database db;
  db.cities_.reserve(std::size(kCities));
  std::uint32_t next_id = 0;
  for (const auto& raw : kCities) {
    city_info info;
    info.id = city_id{next_id++};
    info.name = raw.name;
    info.country = raw.country;
    info.latitude = raw.lat;
    info.longitude = raw.lon;
    info.tz = timezone_offset{raw.utc_offset};
    info.population_weight = raw.weight;
    db.cities_.push_back(std::move(info));
  }
  return db;
}

const city_info& geo_database::city(city_id id) const {
  if (id.value >= cities_.size()) {
    throw not_found_error("geo_database: unknown city id " +
                          std::to_string(id.value));
  }
  return cities_[id.value];
}

const city_info& geo_database::city_by_name(const std::string& name) const {
  for (const auto& c : cities_) {
    if (c.name == name) return c;
  }
  throw not_found_error("geo_database: unknown city " + name);
}

bool geo_database::has_city(const std::string& name) const {
  for (const auto& c : cities_) {
    if (c.name == name) return true;
  }
  return false;
}

std::vector<city_id> geo_database::cities_in_country(
    const std::string& country) const {
  std::vector<city_id> out;
  for (const auto& c : cities_) {
    if (c.country == country) out.push_back(c.id);
  }
  return out;
}

double haversine_km(const city_info& a, const city_info& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  const double to_rad = std::numbers::pi / 180.0;
  const double dlat = (b.latitude - a.latitude) * to_rad;
  const double dlon = (b.longitude - a.longitude) * to_rad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(a.latitude * to_rad) * std::cos(b.latitude * to_rad) *
                       std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(s));
}

millis propagation_delay(const city_info& a, const city_info& b) {
  // Light in fiber: ~200 km/ms; stretch 1.3 for real fiber routes.
  const double km = haversine_km(a, b) * 1.3;
  return millis{km / 200.0};
}

}  // namespace clasp

#include "data/ipinfo.hpp"

namespace clasp {

std::string to_string(business_type type) {
  switch (type) {
    case business_type::isp: return "ISP";
    case business_type::hosting: return "Hosting";
    case business_type::business: return "Business";
    case business_type::education: return "Education";
    case business_type::unknown: return "Unknown";
  }
  return "Unknown";
}

void ipinfo_database::add(asn network, business_type type,
                          std::string company_name) {
  records_[network] = record{type, std::move(company_name)};
}

business_type ipinfo_database::type_of(asn network) const {
  const auto it = records_.find(network);
  return it == records_.end() ? business_type::unknown : it->second.type;
}

std::optional<std::string> ipinfo_database::company_of(asn network) const {
  const auto it = records_.find(network);
  if (it == records_.end()) return std::nullopt;
  return it->second.company;
}

}  // namespace clasp

// IPv4 addressing for the simulated Internet.
//
// Every router interface, VM NIC and speed-test server in the substrate has
// a real (synthetic) IPv4 address drawn from per-AS prefixes handed out by
// an address allocator, so the measurement tools (traceroute, prefix-to-AS
// mapping, bdrmap) operate on the same observables as their real
// counterparts.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace clasp {

// A single IPv4 address.
class ipv4_addr {
 public:
  constexpr ipv4_addr() = default;
  constexpr explicit ipv4_addr(std::uint32_t value) : value_(value) {}

  // Parse dotted-quad "a.b.c.d". Throws invalid_argument_error on
  // malformed input.
  static ipv4_addr parse(const std::string& text);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  constexpr auto operator<=>(const ipv4_addr&) const = default;

 private:
  std::uint32_t value_{0};
};

// A CIDR prefix (address + length).
class ipv4_prefix {
 public:
  constexpr ipv4_prefix() = default;
  // Throws invalid_argument_error when length > 32 or when base has bits
  // set below the prefix length (i.e. is not the network address).
  ipv4_prefix(ipv4_addr base, unsigned length);

  // Parse "a.b.c.d/len".
  static ipv4_prefix parse(const std::string& text);

  ipv4_addr base() const { return base_; }
  unsigned length() const { return length_; }
  std::uint32_t netmask() const;
  // Number of addresses covered (2^(32-length)).
  std::uint64_t size() const;
  bool contains(ipv4_addr addr) const;
  // The i-th address inside the prefix. Throws when i >= size().
  ipv4_addr address_at(std::uint64_t i) const;

  std::string to_string() const;

  auto operator<=>(const ipv4_prefix&) const = default;

 private:
  ipv4_addr base_{};
  unsigned length_{32};
};

// Sequentially carves non-overlapping prefixes out of a parent block.
// Used to give each AS its own address space and each AS its own
// sub-prefixes for router interfaces vs. end hosts.
class prefix_allocator {
 public:
  explicit prefix_allocator(ipv4_prefix pool);

  // Allocate the next /length prefix from the pool. Throws
  // invalid_argument_error if length is shorter than the pool's length and
  // state_error when the pool is exhausted.
  ipv4_prefix allocate(unsigned length);

  // Addresses remaining in the pool.
  std::uint64_t remaining() const;

 private:
  ipv4_prefix pool_;
  std::uint64_t next_offset_{0};
};

}  // namespace clasp

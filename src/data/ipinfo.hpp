// Business-type database (analogue of ipinfo.io company data).
//
// Appendix B of the paper classifies test servers into ISP / Hosting /
// Business / Education / Unknown by resolving their IPs against ipinfo.io.
// Here the classification is registered when the synthetic topology is
// generated (the AS builder knows each network's role) and queried through
// the same lookup interface the paper uses, including the "Unknown" bucket
// for ASes the database has no record for.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "data/prefix2as.hpp"

namespace clasp {

enum class business_type { isp, hosting, business, education, unknown };

// Human-readable label ("ISP", "Hosting", ...).
std::string to_string(business_type type);

// AS-keyed company/business-type registry.
class ipinfo_database {
 public:
  // Register an AS. A fraction of registrations can be intentionally
  // dropped by the topology builder to mimic ipinfo.io's incomplete
  // coverage (those lookups return business_type::unknown).
  void add(asn network, business_type type, std::string company_name);

  // Business type for an AS; unknown when not registered.
  business_type type_of(asn network) const;

  // Company name, if registered.
  std::optional<std::string> company_of(asn network) const;

  std::size_t size() const { return records_.size(); }

 private:
  struct record {
    business_type type;
    std::string company;
  };
  std::unordered_map<asn, record> records_;
};

}  // namespace clasp

// Prefix-to-AS dataset (analogue of CAIDA's Routeviews prefix2as).
//
// The selection pipeline and bdrmap resolve every traceroute hop to an AS
// number through longest-prefix matching, exactly as the paper does with
// the CAIDA dataset.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/ipv4.hpp"

namespace clasp {

// Autonomous-system number.
struct asn {
  std::uint32_t value{0};

  constexpr auto operator<=>(const asn&) const = default;
};

}  // namespace clasp

template <>
struct std::hash<clasp::asn> {
  std::size_t operator()(const clasp::asn& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

namespace clasp {

// Longest-prefix-match table from IPv4 prefixes to origin ASes.
class prefix2as_table {
 public:
  // Register a mapping. Later insertions of the same prefix overwrite
  // earlier ones (mirrors dataset regeneration).
  void add(ipv4_prefix prefix, asn origin);

  // Longest-prefix match; nullopt for unrouted space.
  std::optional<asn> lookup(ipv4_addr addr) const;

  // All (prefix, origin) pairs, unordered. Used to enumerate routed space
  // for bdrmap-style full-table probing.
  std::vector<std::pair<ipv4_prefix, asn>> entries() const;

  std::size_t size() const;

 private:
  // One exact-match map per prefix length; lookup walks lengths 32..0.
  std::unordered_map<std::uint32_t, asn> by_length_[33];
};

}  // namespace clasp

// Geolocation database for the simulated Internet.
//
// Cities anchor everything geographic: router placement, propagation
// delay (haversine distance at ~2/3 c), server locations (Fig. 7 maps) and
// the per-city timezones used to convert congestion events to local time
// (Fig. 6). The built-in catalog covers the U.S. metros where the three
// speed-test fleets deploy, the GCP region cities, European metros for
// europe-west1, and the Indian/Australian metros that appear in the
// paper's differential experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace clasp {

// Stable identifier into the geo database.
struct city_id {
  std::uint32_t value{0};

  constexpr auto operator<=>(const city_id&) const = default;
};

struct city_info {
  city_id id;
  std::string name;
  std::string country;  // ISO alpha-2
  double latitude{0.0};
  double longitude{0.0};
  timezone_offset tz{};
  // Relative metro weight used when spreading servers/eyeballs (larger
  // metros host more test servers).
  double population_weight{1.0};
};

// Immutable city catalog. Built once from the built-in list.
class geo_database {
 public:
  // The standard catalog used by the substrate.
  static geo_database builtin();

  const city_info& city(city_id id) const;
  // Lookup by name; throws not_found_error when absent.
  const city_info& city_by_name(const std::string& name) const;
  bool has_city(const std::string& name) const;

  const std::vector<city_info>& cities() const { return cities_; }
  // All cities in a country.
  std::vector<city_id> cities_in_country(const std::string& country) const;

  std::size_t size() const { return cities_.size(); }

 private:
  std::vector<city_info> cities_;
};

// Great-circle distance in kilometers.
double haversine_km(const city_info& a, const city_info& b);

// One-way propagation delay between two cities in milliseconds, assuming
// fiber at ~2/3 the speed of light plus a path-stretch factor of 1.3 for
// non-great-circle fiber routes.
millis propagation_delay(const city_info& a, const city_info& b);

}  // namespace clasp

template <>
struct std::hash<clasp::city_id> {
  std::size_t operator()(const clasp::city_id& c) const noexcept {
    return std::hash<std::uint32_t>{}(c.value);
  }
};

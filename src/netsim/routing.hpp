// Tier-aware path construction over the generated topology.
//
// GCP's two network service tiers differ in where traffic crosses the
// boundary between the public Internet and the cloud WAN (§1 of the
// paper):
//
//  * premium  — cold potato. Egress rides the private WAN to the PoP
//    nearest the destination and exits there; ingress enters the WAN at
//    the interconnect nearest the *source* and rides the WAN to the
//    region.
//  * standard — hot potato. Egress exits at the origin region's PoP and
//    crosses the public Internet; ingress stays on the public Internet
//    and enters the cloud at the region's PoP.
//
// The planner also models two per-region BGP-policy effects that make
// Table 1 region-dependent in the real measurement:
//  * concentration — the probability that an AS's traffic to/from a region
//    is steered through the interconnect nearest the region rather than
//    nearest the edge endpoint (deterministic per ⟨region, AS⟩);
//  * visibility — the fraction of interconnects whose routes a region's
//    VMs actually see (deterministic per ⟨region, link⟩).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "netsim/generator.hpp"
#include "netsim/topology.hpp"

namespace clasp {

enum class service_tier { premium, standard };

const char* to_string(service_tier tier);

// One link crossing with its traversal direction.
struct path_hop {
  link_index link;
  link_dir dir;
};

// A unidirectional data path. Access hops are present only when the
// corresponding endpoint is an attached host (bdrmap probes target bare
// prefix addresses, which have no host access link).
struct route_path {
  ipv4_addr src_addr;
  ipv4_addr dst_addr;
  std::optional<path_hop> src_access;
  std::vector<router_index> routers;
  // transit_hops[i] crosses from routers[i] to routers[i+1].
  std::vector<path_hop> transit_hops;
  std::optional<path_hop> dst_access;
  // The cloud interdomain link crossed, when the path enters/leaves the
  // cloud AS (the link bdrmap would attribute this path to).
  std::optional<link_index> cloud_edge;

  std::size_t hop_count() const { return routers.size(); }
};

// One end of a path.
struct endpoint {
  as_index owner;
  city_id city;
  ipv4_addr addr;
  std::optional<host_index> host;
};

// Per-region routing-policy knobs (see file comment).
struct egress_policy {
  double concentration{0.2};
  double visibility{0.90};
};

class route_planner {
 public:
  explicit route_planner(const internet* net);

  // Install the policy for a region's home PoP city.
  void set_region_policy(city_id region_city, egress_policy policy);
  egress_policy region_policy(city_id region_city) const;

  // Build endpoints.
  endpoint endpoint_of_host(host_index h) const;
  // Endpoint for an arbitrary routed address (e.g. a bdrmap probe target):
  // resolves owner and anchor city through the announced prefixes. Throws
  // not_found_error for unrouted space.
  endpoint endpoint_of_address(ipv4_addr addr) const;

  // Data path from an edge endpoint into a cloud endpoint (a VM or PoP).
  // `region_city` is the VM's region home city.
  route_path to_cloud(const endpoint& src, const endpoint& vm,
                      service_tier tier) const;
  // Data path from a cloud endpoint out to an edge endpoint.
  route_path from_cloud(const endpoint& vm, const endpoint& dst,
                        service_tier tier) const;

  // AS-level view of a path (consecutive duplicates removed).
  std::vector<asn> as_path(const route_path& path) const;
  // Number of AS-level hops from the cloud to the destination network
  // (1 = direct peering).
  std::size_t as_hops_to_destination(const route_path& path) const;

  const internet& net() const { return *net_; }

 private:
  struct cloud_link_ref {
    link_index link;
    city_id pop_city;   // cloud-side city
  };

  // Candidate cloud links for reaching AS `a` (its own, else its
  // transit's). Returns the AS whose links were used via `via`.
  const std::vector<cloud_link_ref>& cloud_links_for(as_index a,
                                                     as_index& via) const;

  // Choose the interconnect for a premium-tier path between edge city
  // `edge_city` and region `region_city` for AS `a`. `flow_addr` is the
  // edge endpoint's address: different prefixes of a multi-homed AS are
  // deterministically steered to different (nearby) interconnects, as BGP
  // per-prefix announcements do in the real Internet.
  // `sticky` marks host-to-host flows: their AS-level routing policy
  // (concentration) applies. Probes to bare prefix addresses observe the
  // full per-/24 path diversity instead, as real bdrmap probing does.
  cloud_link_ref pick_premium_edge(as_index a, city_id edge_city,
                                   city_id region_city, ipv4_addr flow_addr,
                                   bool sticky, as_index& via) const;
  // Choose the interconnect for a standard-tier path (at the region).
  cloud_link_ref pick_standard_edge(as_index a, city_id region_city,
                                    as_index& via) const;

  bool link_visible(city_id region_city, link_index l) const;
  bool concentrated(city_id region_city, as_index a) const;

  // Append the chain of routers/links inside one AS between two of its
  // routers (direct backbone hop; they are fully meshed).
  void append_intra(route_path& path, router_index from,
                    router_index to) const;
  // Append crossing `l` from router `from`.
  void append_link(route_path& path, link_index l, router_index from) const;

  link_index intra_link(router_index a, router_index b) const;
  link_index transit_link_of(as_index a) const;

  const internet* net_;
  std::unordered_map<std::uint32_t, egress_policy> policies_;
  // Cloud links indexed by non-cloud neighbor (built in the constructor).
  std::unordered_map<std::uint32_t, std::vector<cloud_link_ref>>
      cloud_links_cache_;
  // Prefix lookup for endpoint_of_address.
  prefix2as_table prefix2as_;
  std::unordered_map<std::uint32_t, as_index> asn_to_index_;
};

}  // namespace clasp

#include "netsim/faults.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace clasp {

const char* to_string(test_outcome o) {
  switch (o) {
    case test_outcome::ok: return "ok";
    case test_outcome::ok_after_retry: return "ok_after_retry";
    case test_outcome::failed: return "failed";
    case test_outcome::server_withdrawn: return "server_withdrawn";
    case test_outcome::vm_down: return "vm_down";
    case test_outcome::skipped_budget: return "skipped_budget";
  }
  return "?";
}

fault_config fault_config::preset(std::string_view level) {
  fault_config cfg;
  if (level == "off") return cfg;
  if (level == "low") {
    // A well-run campaign's background failure rate: a couple of percent
    // of servers churn over the window, ~2% of attempts abort, a VM sees
    // roughly one short maintenance window per six weeks.
    cfg.enabled = true;
    cfg.server_churn_rate = 0.02;
    cfg.test_failure_rate = 0.02;
    cfg.vm_preemption_rate = 0.001;
    cfg.vm_outage_hours_min = 1;
    cfg.vm_outage_hours_max = 4;
    cfg.upload_failure_rate = 0.01;
    return cfg;
  }
  if (level == "high") {
    // Stress scenario: heavy churn, one attempt in ten aborts, frequent
    // long preemptions, flaky uploads.
    cfg.enabled = true;
    cfg.server_churn_rate = 0.10;
    cfg.test_failure_rate = 0.10;
    cfg.vm_preemption_rate = 0.01;
    cfg.vm_outage_hours_min = 2;
    cfg.vm_outage_hours_max = 8;
    cfg.upload_failure_rate = 0.05;
    return cfg;
  }
  throw invalid_argument_error("fault_config: unknown preset '" +
                               std::string(level) + "' (off|low|high)");
}

fault_plan fault_plan::build(const fault_config& config,
                             std::uint64_t stream_seed, std::size_t vm_count,
                             const std::vector<std::size_t>& server_ids,
                             hour_range window) {
  if (config.vm_outage_hours_min == 0 ||
      config.vm_outage_hours_max < config.vm_outage_hours_min) {
    throw invalid_argument_error(
        "fault_plan: vm_outage_hours must satisfy 1 <= min <= max");
  }
  fault_plan plan;
  plan.config_ = config;
  plan.fault_seed_ = hash_tag(stream_seed ^ config.seed, "faults");
  if (!config.enabled) return plan;

  // Server churn: one dedicated stream per server id, so adding or
  // removing servers never perturbs another server's draw. A withdrawal
  // hour is uniform over the window's interior (never the first hour, so
  // every server contributes at least one measurable hour).
  if (config.server_churn_rate > 0.0 && window.count() > 1) {
    char tag[32];
    for (const std::size_t sid : server_ids) {
      const int len = std::snprintf(tag, sizeof(tag), "server:%zu", sid);
      rng r(hash_tag(plan.fault_seed_,
                     std::string_view(tag, static_cast<std::size_t>(len))));
      if (!r.bernoulli(config.server_churn_rate)) continue;
      const hour_stamp at =
          window.begin_at + 1 + r.uniform_int(0, window.count() - 2);
      plan.withdrawals_.emplace_back(sid, at);
    }
    std::sort(plan.withdrawals_.begin(), plan.withdrawals_.end());
  }

  // VM maintenance/preemption: one stream per (VM slot, hour) decides
  // whether a window *starts* there and how long it lasts. Windows are
  // clipped to the campaign window; overlaps are harmless (an hour is
  // down when any window covers it).
  if (config.vm_preemption_rate > 0.0) {
    char tag[48];
    for (std::size_t v = 0; v < vm_count; ++v) {
      for (hour_stamp at = window.begin_at; at < window.end_at; ++at) {
        const int len = std::snprintf(
            tag, sizeof(tag), "preempt:%zu:%lld", v,
            static_cast<long long>(at.hours_since_epoch()));
        rng r(hash_tag(plan.fault_seed_,
                       std::string_view(tag, static_cast<std::size_t>(len))));
        if (!r.bernoulli(config.vm_preemption_rate)) continue;
        const std::int64_t hours =
            r.uniform_int(config.vm_outage_hours_min,
                          config.vm_outage_hours_max);
        plan.outages_.push_back(
            {v, {at, std::min(at + hours, window.end_at)}});
      }
    }
  }
  if (obs::enabled()) {
    // Planned-fault gauges let operators compare the deterministic
    // schedule against the observed *_total counters at a glance.
    obs::metrics_registry& reg = obs::metrics_registry::instance();
    reg.get_gauge(obs::family::kFaultsPlannedWithdrawals)
        .set(static_cast<double>(plan.withdrawals_.size()));
    reg.get_gauge(obs::family::kFaultsPlannedOutages)
        .set(static_cast<double>(plan.outages_.size()));
    std::int64_t outage_hours = 0;
    for (const vm_outage& o : plan.outages_) {
      outage_hours += o.window.count();
    }
    reg.get_gauge(obs::family::kFaultsPlannedOutageHours)
        .set(static_cast<double>(outage_hours));
  }
  return plan;
}

std::optional<hour_stamp> fault_plan::withdraw_hour(
    std::size_t server_id) const {
  const auto it = std::lower_bound(
      withdrawals_.begin(), withdrawals_.end(), server_id,
      [](const auto& entry, std::size_t id) { return entry.first < id; });
  if (it == withdrawals_.end() || it->first != server_id) return std::nullopt;
  return it->second;
}

bool fault_plan::withdrawn_by(std::size_t server_id, hour_stamp at) const {
  const auto hour = withdraw_hour(server_id);
  return hour.has_value() && *hour <= at;
}

churn_plan churn_plan::build(std::uint64_t seed, std::string_view kind,
                             std::size_t entity_count, hour_range window,
                             double join_rate, double leave_rate) {
  if (join_rate < 0.0 || join_rate > 1.0 || leave_rate < 0.0 ||
      leave_rate > 1.0) {
    throw invalid_argument_error("churn_plan: rates must be in [0, 1]");
  }
  if (window.count() <= 0) {
    throw invalid_argument_error("churn_plan: empty window");
  }
  churn_plan plan;
  plan.enabled_ = true;
  plan.entities_ = entity_count;
  plan.window_ = window;
  plan.offsets_.assign(1, 0);
  plan.offsets_.reserve(entity_count + 1);
  const std::uint64_t kind_seed = hash_tag(seed, kind);
  // Stationary online probability of the two-state hourly chain; with no
  // leaving, everyone is online from the start.
  const double stationary =
      (join_rate + leave_rate) > 0.0
          ? join_rate / (join_rate + leave_rate)
          : 1.0;
  char tag[32];
  for (std::size_t e = 0; e < entity_count; ++e) {
    const int len = std::snprintf(tag, sizeof(tag), "entity:%zu", e);
    rng r(hash_tag(kind_seed,
                   std::string_view(tag, static_cast<std::size_t>(len))));
    bool on = r.bernoulli(stationary);
    hour_stamp open = window.begin_at;  // start of the current online span
    for (hour_stamp at = window.begin_at + 1; at < window.end_at; ++at) {
      const double flip = on ? leave_rate : join_rate;
      if (!r.bernoulli(flip)) continue;
      if (on) {
        plan.intervals_.push_back({open, at});
        ++plan.leaves_;
      } else {
        open = at;
        ++plan.joins_;
      }
      on = !on;
    }
    if (on) plan.intervals_.push_back({open, window.end_at});
    plan.offsets_.push_back(static_cast<std::uint32_t>(plan.intervals_.size()));
  }
  return plan;
}

bool churn_plan::online(std::size_t entity, hour_stamp at) const {
  if (!enabled_) return true;
  if (entity >= entities_) {
    throw invalid_argument_error("churn_plan: entity out of range");
  }
  const std::uint32_t lo = offsets_[entity];
  const std::uint32_t hi = offsets_[entity + 1];
  // Last interval whose begin is <= at; intervals are disjoint ascending.
  const auto first = intervals_.begin() + lo;
  const auto last = intervals_.begin() + hi;
  const auto it = std::upper_bound(
      first, last, at,
      [](hour_stamp t, const hour_range& iv) { return t < iv.begin_at; });
  if (it == first) return false;
  return at < std::prev(it)->end_at;
}

std::size_t churn_plan::online_count(hour_stamp at) const {
  if (!enabled_) return entities_;
  std::size_t n = 0;
  for (std::size_t e = 0; e < entities_; ++e) {
    if (online(e, at)) ++n;
  }
  return n;
}

rng fault_plan::vm_fault_stream(std::size_t vm_slot, hour_stamp at) const {
  char tag[48];
  const int len =
      std::snprintf(tag, sizeof(tag), "vm:%zu:%lld", vm_slot,
                    static_cast<long long>(at.hours_since_epoch()));
  return rng(hash_tag(fault_seed_,
                      std::string_view(tag, static_cast<std::size_t>(len))));
}

}  // namespace clasp

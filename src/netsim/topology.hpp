// Router-level topology of the simulated Internet.
//
// The topology stores ASes, routers (one per AS-city of presence), links
// (with two addressed interfaces each) and attached hosts. It is built by
// netsim::generate_internet and then extended at run time by the cloud
// layer (VM hosts). All measurement tools operate purely on observables
// exposed here: interface addresses, prefix announcements and path hops.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/geo.hpp"
#include "data/ipv4.hpp"
#include "data/prefix2as.hpp"
#include "netsim/types.hpp"
#include "util/units.hpp"

namespace clasp {

// A prefix announced by an AS, anchored to the city where its hosts live
// (drives nearest-egress routing and bdrmap target placement).
struct announced_prefix {
  ipv4_prefix prefix;
  city_id anchor;
};

// An autonomous system.
struct as_info {
  as_index index;
  asn number;
  std::string name;
  as_role role{as_role::regional_isp};
  // Cities where this AS has a router, in insertion order.
  std::vector<city_id> presence;
  // Prefixes announced by this AS, with their anchor cities.
  std::vector<announced_prefix> prefixes;
  // Primary upstream transit (empty for cloud/tier1 and for ASes that only
  // peer). Used by the deterministic route construction.
  std::optional<as_index> primary_transit;
  // True when this AS has at least one direct interdomain link to the
  // cloud AS.
  bool peers_with_cloud{false};
};

// A router: one per (AS, city) pair.
struct router_info {
  router_index index;
  as_index owner;
  city_id city;
  // Loopback/representative address used for alias resolution ground truth.
  ipv4_addr loopback;
  // Links incident to this router.
  std::vector<link_index> links;
};

// One directed view of a link's two interfaces.
struct link_info {
  link_index index;
  link_kind kind{link_kind::backbone};
  router_index a;
  router_index b;
  // Interface addresses: addr_a sits on router a, addr_b on router b.
  ipv4_addr addr_a;
  ipv4_addr addr_b;
  mbps capacity{mbps::from_gbps(10.0)};
  // One-way propagation delay.
  millis propagation{millis{0.1}};
  // Identifier of the load profile driving this link's utilization
  // (index into link_load_model's profile table; set by the generator).
  std::uint32_t load_profile{0};
};

// An attached end host (speed-test server, measurement VM or eyeball VP).
struct host_info {
  host_index index;
  as_index owner;
  city_id city;
  ipv4_addr addr;
  // First-hop link from the host NIC into the topology.
  link_index access;
  // The router the access link attaches to.
  router_index attach;
};

class topology {
 public:
  explicit topology(const geo_database* geo);

  // --- construction (used by the generator and the cloud layer) ---
  as_index add_as(asn number, std::string name, as_role role);
  router_index add_router(as_index owner, city_id city, ipv4_addr loopback);
  link_index add_link(link_kind kind, router_index a, router_index b,
                      ipv4_addr addr_a, ipv4_addr addr_b, mbps capacity,
                      millis propagation);
  host_index add_host(as_index owner, city_id city, ipv4_addr addr,
                      router_index attach, mbps nic_capacity);
  void announce_prefix(as_index owner, ipv4_prefix prefix, city_id anchor);
  void set_primary_transit(as_index customer, as_index transit);

  // --- lookups ---
  const geo_database& geo() const { return *geo_; }
  const as_info& as_at(as_index i) const;
  as_info& as_at(as_index i);
  const router_info& router_at(router_index i) const;
  const link_info& link_at(link_index i) const;
  link_info& link_at(link_index i);
  const host_info& host_at(host_index i) const;

  std::size_t as_count() const { return ases_.size(); }
  std::size_t router_count() const { return routers_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::size_t host_count() const { return hosts_.size(); }

  const std::vector<as_info>& ases() const { return ases_; }
  const std::vector<link_info>& links() const { return links_; }
  const std::vector<host_info>& hosts() const { return hosts_; }

  // Router of an AS in a city; nullopt when the AS has no presence there.
  std::optional<router_index> router_of(as_index owner, city_id city) const;
  // All routers of an AS.
  std::vector<router_index> routers_of(as_index owner) const;
  // The AS owning a router.
  as_index owner_of(router_index r) const;

  // Find an AS by its public number.
  std::optional<as_index> find_as(asn number) const;

  // The interdomain links between two ASes (in either orientation).
  std::vector<link_index> interdomain_links_between(as_index x,
                                                    as_index y) const;
  // All interdomain links incident to an AS.
  std::vector<link_index> interdomain_links_of(as_index x) const;

  // Interface-level observables -------------------------------------------
  // The router owning an interface address; nullopt for host addresses.
  std::optional<router_index> router_of_interface(ipv4_addr addr) const;
  // All interface addresses of a router (alias-resolution ground truth).
  std::vector<ipv4_addr> interfaces_of(router_index r) const;
  // The link an interface address belongs to.
  std::optional<link_index> link_of_interface(ipv4_addr addr) const;

  // The prefix-to-AS view of this topology (prefix announcements only;
  // interconnect interface space is announced by its owner, which is what
  // makes border inference non-trivial). Rebuilt on demand.
  prefix2as_table build_prefix2as() const;

  // Convenience: interface address of router `r` on link `l`. Throws when
  // `r` is not an endpoint of `l`.
  ipv4_addr interface_on(router_index r, link_index l) const;
  // The other endpoint of `l` relative to `r`.
  router_index neighbor_on(router_index r, link_index l) const;

 private:
  const geo_database* geo_;
  std::vector<as_info> ases_;
  std::vector<router_info> routers_;
  std::vector<link_info> links_;
  std::vector<host_info> hosts_;
  std::unordered_map<std::uint32_t, router_index> iface_to_router_;
  std::unordered_map<std::uint32_t, link_index> iface_to_link_;
  std::unordered_map<std::uint64_t, router_index> as_city_router_;
  std::unordered_map<std::uint32_t, as_index> asn_to_index_;
};

}  // namespace clasp

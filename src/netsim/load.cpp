#include "netsim/load.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {

namespace {

// Classic eyeball diurnal curve: trough ~4-5 am, shoulder through the
// workday, peak 8-10 pm local (FCC peak hours are 7-11 pm).
constexpr double kDiurnal[24] = {
    0.30, 0.18, 0.10, 0.04, 0.00, 0.02, 0.08, 0.18,  // 00-07
    0.30, 0.40, 0.47, 0.52, 0.55, 0.57, 0.60, 0.63,  // 08-15
    0.68, 0.75, 0.83, 0.92, 1.00, 0.98, 0.85, 0.55,  // 16-23
};

// 2020-01-01 (day 0) was a Wednesday, i.e. weekday index 2 with
// Monday == 0; Saturday/Sunday are indices 5/6.
bool is_weekend(std::int64_t day_index) {
  const std::int64_t dow = ((day_index % 7) + 7 + 2) % 7;
  return dow >= 5;
}

// Mix (seed, link, dir, salt) into a 64-bit hash for deterministic draws.
std::uint64_t mix(std::uint64_t seed, link_index link, link_dir dir,
                  std::uint64_t salt) {
  std::uint64_t s = seed ^ (static_cast<std::uint64_t>(link.value) << 20) ^
                    (dir == link_dir::a_to_b ? 0x9e37ULL : 0x79b9ULL) ^
                    (salt * 0xff51afd7ed558ccdULL);
  return splitmix64(s);
}

// Uniform double in [0,1) from a hash.
double hash_uniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint32_t link_load_model::add_profile(load_profile profile) {
  profiles_.push_back(profile);
  return static_cast<std::uint32_t>(profiles_.size() - 1);
}

const load_profile& link_load_model::profile(std::uint32_t id) const {
  if (id >= profiles_.size()) {
    throw not_found_error("link_load_model: bad profile id");
  }
  return profiles_[id];
}

const direction_load& link_load_model::params(std::uint32_t profile_id,
                                              link_dir dir) const {
  const load_profile& p = profile(profile_id);
  return dir == link_dir::a_to_b ? p.fwd : p.rev;
}

double link_load_model::diurnal_shape(unsigned local_hour) {
  return kDiurnal[local_hour % 24];
}

bool link_load_model::episode_active(std::uint32_t profile_id, link_index link,
                                     link_dir dir, hour_stamp at) const {
  const load_profile& prof = profile(profile_id);
  const direction_load& d = params(profile_id, dir);
  if (d.episodes == episode_kind::none || d.episode_prob <= 0.0) return false;

  const std::int64_t local_day = at.local_day_index(prof.tz);
  const unsigned local_hour = at.local_hour_of_day(prof.tz);

  // Episode days are a deterministic per-day Bernoulli draw.
  const double day_draw = hash_uniform(
      mix(seed_, link, dir, 0xE1150DE5ULL ^ static_cast<std::uint64_t>(local_day)));
  if (day_draw >= d.episode_prob) return false;

  switch (d.episodes) {
    case episode_kind::none:
      return false;
    case episode_kind::evening_peak:
      // FCC peak hours: 7 pm - 11 pm local, occasionally starting earlier.
      return local_hour >= 18 && local_hour <= 23;
    case episode_kind::daytime:
      // Business-hours congestion (the paper's Cox case: 10 am - 4 pm).
      return local_hour >= 9 && local_hour <= 16;
    case episode_kind::all_day:
      // Persistent under-provisioning, worst 10 am - 8 pm.
      return local_hour >= 8 && local_hour <= 21;
  }
  return false;
}

double link_load_model::utilization_given_episode(std::uint32_t profile_id,
                                                  link_index link,
                                                  link_dir dir, hour_stamp at,
                                                  bool episode) const {
  const load_profile& prof = profile(profile_id);
  const direction_load& d = params(profile_id, dir);
  const unsigned local_hour = at.local_hour_of_day(prof.tz);
  const std::int64_t local_day = at.local_day_index(prof.tz);

  double amp = d.diurnal_amp;
  if (is_weekend(local_day)) amp *= (1.0 + d.weekend_boost);

  double u = d.base_util + amp * diurnal_shape(local_hour);

  // Hour-to-hour lognormal noise.
  if (d.noise_sigma > 0.0) {
    const std::uint64_t h = mix(
        seed_, link, dir,
        0x5EEDULL ^ static_cast<std::uint64_t>(at.hours_since_epoch()));
    // Box-Muller from two hash-derived uniforms.
    std::uint64_t s = h;
    const double u1 = std::max(hash_uniform(splitmix64(s)), 1e-12);
    const double u2 = hash_uniform(splitmix64(s));
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    u *= std::exp(d.noise_sigma * z - 0.5 * d.noise_sigma * d.noise_sigma);
  }

  if (episode) {
    // Severity varies within an episode: strongest mid-window.
    const std::uint64_t h = mix(
        seed_, link, dir,
        0x0E15ULL + static_cast<std::uint64_t>(at.hours_since_epoch()));
    const double jitter = 0.7 + 0.6 * hash_uniform(h);
    u += d.episode_severity * jitter;
  }

  return std::max(u, 0.0);
}

double link_load_model::utilization(std::uint32_t profile_id, link_index link,
                                    link_dir dir, hour_stamp at) const {
  return utilization_given_episode(profile_id, link, dir, at,
                                   episode_active(profile_id, link, dir, at));
}

millis max_queue_delay(link_kind kind) {
  switch (kind) {
    case link_kind::host_access: return millis{25.0};
    case link_kind::metro_agg: return millis{40.0};
    case link_kind::backbone: return millis{8.0};
    case link_kind::interdomain: return millis{20.0};
    case link_kind::cloud_wan: return millis{1.5};
  }
  return millis{5.0};
}

link_condition link_load_model::condition(std::uint32_t profile_id,
                                          link_index link, link_dir dir,
                                          hour_stamp at, mbps capacity,
                                          link_kind kind) const {
  const direction_load& d = params(profile_id, dir);
  link_condition c;
  c.episode = episode_active(profile_id, link, dir, at);
  c.utilization =
      utilization_given_episode(profile_id, link, dir, at, c.episode);

  // Available bandwidth: the headroom, with a small floor representing the
  // fair share a new elastic flow can still claim from an overloaded link.
  const double headroom = std::max(0.0, 1.0 - c.utilization);
  const double overload = std::max(0.0, c.utilization - 1.0);
  const double share_floor = 0.04 / (1.0 + 12.0 * overload);
  c.available = capacity * std::max(headroom, share_floor);

  // Loss: negligible below ~90% utilization, then grows quadratically; an
  // extra persistent floor models chronically lossy peerings.
  constexpr double kLossKnee = 0.90;
  double loss = 5e-8;  // background corruption/transient loss
  if (c.utilization > kLossKnee) {
    const double x = (c.utilization - kLossKnee) / 0.45;
    loss += 0.45 * x * x;
  }
  loss += d.persistent_loss;
  c.loss_rate = std::min(loss, 0.60);

  // Queueing delay ramps up as the link saturates (bufferbloat).
  const double q_frac =
      std::clamp((c.utilization - 0.85) / 0.35, 0.0, 1.0);
  c.queue_delay = max_queue_delay(kind) * (q_frac * q_frac);

  return c;
}

}  // namespace clasp

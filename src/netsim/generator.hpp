// Synthetic Internet generation.
//
// generate_internet() builds the whole substrate the paper's measurement
// campaign runs against:
//  * the cloud provider AS (Google analogue, AS 15169) with ~40 PoPs and a
//    full-mesh private WAN,
//  * tier-1 and transit providers with multi-city backbones,
//  * thousands of eyeball / hosting / education / business ASes with their
//    own address space, routers, upstream transit links and (for a subset)
//    direct peerings with the cloud,
//  * per-link load profiles with planted congestion episodes (ground
//    truth), including the paper's named case studies (Cox daytime
//    reverse-path congestion, Smarterbroadband all-day congestion, Cogent
//    evening peaks, lossy premium peerings in India/Australia),
//  * Speedchecker-style eyeball vantage-point hosts for the differential
//    pre-test,
//  * the prefix-to-AS and ipinfo-style databases derived from the above.
//
// Everything is driven by one seed; two calls with equal configs produce
// identical internets.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/geo.hpp"
#include "data/ipinfo.hpp"
#include "data/prefix2as.hpp"
#include "netsim/load.hpp"
#include "netsim/topology.hpp"
#include "util/rng.hpp"

namespace clasp {

// Scenario archetype planted on an AS's links (see load.hpp).
enum class congestion_archetype {
  none,
  evening_eyeball,   // evening_peak episodes on upstream links
  daytime_reverse,   // daytime episodes, ingress (AS->cloud) direction only
  all_day,           // persistent under-provisioning
  lossy_premium,     // persistent loss on the AS's direct cloud peerings
  std_path_episodes, // episodes on the AS's transit link (standard path)
};

struct internet_config {
  std::uint64_t seed{42};

  // AS population (procedural, in addition to the named seed table).
  std::size_t tier1_count{12};
  std::size_t transit_count{8};
  std::size_t large_isp_count{60};
  std::size_t regional_isp_count{2000};
  std::size_t hosting_count{1200};
  std::size_t education_count{400};
  std::size_t business_count{3000};

  // Fraction of small ASes homed outside the U.S.
  double international_fraction{0.32};

  // Probability that an AS of a role peers directly with the cloud.
  double peering_prob_large_isp{0.90};
  double peering_prob_regional_isp{0.38};
  double peering_prob_hosting{0.85};
  double peering_prob_education{0.70};
  double peering_prob_business{0.62};

  // Mean number of cloud links for a peering AS (1..3 drawn around this).
  double mean_cloud_links{2.15};

  // Fraction of eyeball ISPs that are congestion-prone (evening episodes).
  double congestion_prone_fraction{0.42};
  // Per-day episode probability range for prone ISPs.
  double episode_prob_lo{0.08};
  double episode_prob_hi{0.42};

  // ipinfo coverage gaps (lookups for these ASes return Unknown).
  double ipinfo_missing_fraction{0.05};

  // Speedchecker-style vantage points for the differential pre-test.
  std::size_t vantage_point_count{1200};

  // Synthetic fleet multiplier: deploy_servers() appends fleet_scale - 1
  // replica rounds of the server fleet, each replica sharing its base
  // server's host attachment, so 10x/100x measurement loads are
  // constructible without changing the generated world (the base fleet
  // stays byte-identical at every scale). Must be >= 1; 1 is the
  // paper-scale fleet.
  std::size_t fleet_scale{1};
};

// What a dynamically attached host is; selects its NIC load profile.
enum class host_flavor { server, vantage_point, vm };

// A generated Internet. Non-copyable: the topology refers to the geo
// database by address.
struct internet {
  internet_config config;
  std::unique_ptr<geo_database> geo;
  std::unique_ptr<topology> topo;
  std::unique_ptr<link_load_model> load;
  ipinfo_database ipinfo;

  as_index cloud;
  // Cities where the cloud has a PoP router.
  std::vector<city_id> pop_cities;
  // Eyeball vantage-point hosts (Speedchecker analogue).
  std::vector<host_index> vantage_points;
  // Scenario archetype per AS (for ground-truth validation and benches).
  std::unordered_map<std::uint32_t, congestion_archetype> archetype_of_as;
  // Remaining host address space per AS (index.value keyed).
  std::unordered_map<std::uint32_t, std::vector<prefix_allocator>> host_pools;
  // The link from an edge AS to its primary transit (index.value keyed).
  std::unordered_map<std::uint32_t, link_index> transit_link_of;

  // Links whose load profile contains planted episodes, with direction.
  struct planted_episode {
    link_index link;
    link_dir dir;
    episode_kind kind;
  };
  std::vector<planted_episode> planted;

  const as_info& cloud_as() const { return topo->as_at(cloud); }
  congestion_archetype archetype(as_index a) const;

  // Allocate an end-host address from the AS's announced space.
  ipv4_addr allocate_host_address(as_index owner, rng& r);

  // Attach a host (speed-test server, VM, extra vantage point) to the AS's
  // router in `city` with a flavor-appropriate NIC load profile. Throws
  // not_found_error when the AS has no presence in that city.
  host_index attach_host(as_index owner, city_id city, host_flavor flavor,
                         mbps nic_capacity, rng& r);
};

// Build the substrate. Throws invalid_argument_error on nonsensical
// configs (zero tier1s, fractions outside [0,1], ...).
internet generate_internet(const internet_config& config);

// The cloud provider's well-known constants.
asn cloud_asn();
// Interconnect address pool announced by the cloud (far-side interfaces of
// cloud peerings live here — the bdrmap challenge).
ipv4_prefix cloud_interconnect_pool();

}  // namespace clasp

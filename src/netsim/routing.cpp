#include "netsim/routing.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {

namespace {

double hash_unit(std::uint64_t a, std::uint64_t b, std::uint64_t salt) {
  std::uint64_t s = a * 0x9e3779b97f4a7c15ULL ^ (b << 21) ^ salt;
  return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(service_tier tier) {
  return tier == service_tier::premium ? "premium" : "standard";
}

route_planner::route_planner(const internet* net) : net_(net) {
  if (net == nullptr) throw invalid_argument_error("route_planner: null net");
  prefix2as_ = net->topo->build_prefix2as();
  for (const as_info& a : net->topo->ases()) {
    asn_to_index_[a.number.value] = a.index;
  }
  // Index every cloud interdomain link by its non-cloud neighbor once;
  // scanning the full link table per AS would cost O(ASes x links).
  for (const link_info& l : net->topo->links()) {
    if (l.kind != link_kind::interdomain) continue;
    const as_index oa = net->topo->owner_of(l.a);
    const as_index ob = net->topo->owner_of(l.b);
    if (oa != net->cloud && ob != net->cloud) continue;
    const router_index cloud_router = (oa == net->cloud) ? l.a : l.b;
    const as_index neighbor = (oa == net->cloud) ? ob : oa;
    cloud_links_cache_[neighbor.value].push_back(
        {l.index, net->topo->router_at(cloud_router).city});
  }
}

void route_planner::set_region_policy(city_id region_city,
                                      egress_policy policy) {
  policies_[region_city.value] = policy;
}

egress_policy route_planner::region_policy(city_id region_city) const {
  const auto it = policies_.find(region_city.value);
  return it == policies_.end() ? egress_policy{} : it->second;
}

endpoint route_planner::endpoint_of_host(host_index h) const {
  const host_info& info = net_->topo->host_at(h);
  return endpoint{info.owner, info.city, info.addr, h};
}

endpoint route_planner::endpoint_of_address(ipv4_addr addr) const {
  const auto origin = prefix2as_.lookup(addr);
  if (!origin) {
    throw not_found_error("route_planner: unrouted address " +
                          addr.to_string());
  }
  const as_index owner = asn_to_index_.at(origin->value);
  const as_info& info = net_->topo->as_at(owner);
  // Anchor city: the longest announced prefix containing the address.
  city_id anchor = info.presence.empty() ? city_id{0} : info.presence.front();
  unsigned best_len = 0;
  for (const announced_prefix& p : info.prefixes) {
    if (p.prefix.contains(addr) && p.prefix.length() >= best_len) {
      best_len = p.prefix.length();
      anchor = p.anchor;
    }
  }
  return endpoint{owner, anchor, addr, std::nullopt};
}

bool route_planner::link_visible(city_id region_city, link_index l) const {
  const double vis = region_policy(region_city).visibility;
  return hash_unit(region_city.value, l.value, 0x71517151ULL) < vis;
}

bool route_planner::concentrated(city_id region_city, as_index a) const {
  const double conc = region_policy(region_city).concentration;
  return hash_unit(region_city.value, a.value, 0xC0C0C0ULL) < conc;
}

const std::vector<route_planner::cloud_link_ref>&
route_planner::cloud_links_for(as_index a, as_index& via) const {
  // The AS's own peerings win; otherwise its primary transit's. The
  // constructor indexed every cloud link by neighbor.
  const as_info& info = net_->topo->as_at(a);
  if (info.peers_with_cloud) {
    const auto it = cloud_links_cache_.find(a.value);
    if (it != cloud_links_cache_.end() && !it->second.empty()) {
      via = a;
      return it->second;
    }
  }
  if (!info.primary_transit) {
    throw state_error("route_planner: AS " + info.name +
                      " has no path to the cloud");
  }
  via = *info.primary_transit;
  const auto it = cloud_links_cache_.find(via.value);
  if (it == cloud_links_cache_.end() || it->second.empty()) {
    throw state_error("route_planner: transit " +
                      net_->topo->as_at(via).name +
                      " has no cloud interconnects");
  }
  return it->second;
}

route_planner::cloud_link_ref route_planner::pick_premium_edge(
    as_index a, city_id edge_city, city_id region_city, ipv4_addr flow_addr,
    bool sticky, as_index& via) const {
  const auto& candidates = cloud_links_for(a, via);
  const geo_database& geo = *net_->geo;
  const bool conc = sticky && concentrated(region_city, a);
  const city_info& edge = geo.city(edge_city);
  const city_info& region = geo.city(region_city);
  // Rank candidates, visible ones first. Concentrated flows prefer the
  // interconnect nearest the region. Everything else hands off near the
  // source (cold potato) but pays a penalty for geographic backtracking,
  // so a sparse footprint never routes Mumbai -> Singapore -> Europe when
  // a link on the way exists.
  struct ranked {
    const cloud_link_ref* link;
    double distance;
    bool visible;
  };
  const double direct = haversine_km(edge, region);
  std::vector<ranked> order;
  order.reserve(candidates.size());
  for (const cloud_link_ref& c : candidates) {
    const city_info& pop = geo.city(c.pop_city);
    double metric;
    if (conc) {
      metric = haversine_km(pop, region);
    } else {
      const double to_pop = haversine_km(edge, pop);
      const double backtrack =
          std::max(0.0, to_pop + haversine_km(pop, region) - direct);
      metric = to_pop + 0.5 * backtrack;
    }
    order.push_back({&c, metric, link_visible(region_city, c.link)});
  }
  if (order.empty()) {
    throw state_error("route_planner: no interconnect candidates");
  }
  std::sort(order.begin(), order.end(), [](const ranked& x, const ranked& y) {
    if (x.visible != y.visible) return x.visible;
    return x.distance < y.distance;
  });
  std::size_t usable = 0;
  while (usable < order.size() && order[usable].visible) ++usable;
  if (usable == 0) usable = order.size();  // all hidden: routes still exist

  // Per-/24 steering: the /24 block of the flow address picks among the
  // nearest candidates with weights 62/26/12. Concentrated host flows pin
  // to the interconnect nearest the region.
  std::size_t pick = 0;
  if (!conc) {
    const double roll =
        hash_unit(flow_addr.value() >> 8, a.value, 0x9EF1A9ULL);
    if (usable >= 2 && roll >= 0.62) pick = 1;
    if (usable >= 3 && roll >= 0.88) pick = 2;
  }
  return *order[pick].link;
}

route_planner::cloud_link_ref route_planner::pick_standard_edge(
    as_index a, city_id region_city, as_index& via) const {
  // Standard tier: the public-Internet path runs all the way to the
  // region; the crossing happens at the region's own PoP when one exists,
  // else at the nearest visible interconnect to the region.
  const auto& candidates = cloud_links_for(a, via);
  for (const cloud_link_ref& c : candidates) {
    if (c.pop_city == region_city) return c;
  }
  // No link at the region PoP (typical for edge ASes): hand off through
  // the transit, which is guaranteed to interconnect at every region city.
  const as_info& info = net_->topo->as_at(a);
  if (via == a && info.primary_transit) {
    via = *info.primary_transit;
    const auto& transit_links = cloud_links_for(via, via);
    for (const cloud_link_ref& c : transit_links) {
      if (c.pop_city == region_city) return c;
    }
  }
  // Degenerate fallback: nearest link to the region.
  const geo_database& geo = *net_->geo;
  const cloud_link_ref* best = nullptr;
  double best_d = 1e18;
  for (const cloud_link_ref& c : cloud_links_for(via, via)) {
    const double d =
        haversine_km(geo.city(c.pop_city), geo.city(region_city));
    if (d < best_d) {
      best_d = d;
      best = &c;
    }
  }
  if (best == nullptr) {
    throw state_error("route_planner: no standard-tier interconnect");
  }
  return *best;
}

link_index route_planner::intra_link(router_index a, router_index b) const {
  const router_info& ra = net_->topo->router_at(a);
  for (const link_index li : ra.links) {
    const link_info& l = net_->topo->link_at(li);
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return li;
  }
  throw not_found_error("route_planner: no intra-AS link between routers");
}

link_index route_planner::transit_link_of(as_index a) const {
  const auto it = net_->transit_link_of.find(a.value);
  if (it == net_->transit_link_of.end()) {
    throw not_found_error("route_planner: AS " + net_->topo->as_at(a).name +
                          " has no transit link");
  }
  return it->second;
}

void route_planner::append_intra(route_path& path, router_index from,
                                 router_index to) const {
  if (from == to) return;
  const link_index li = intra_link(from, to);
  append_link(path, li, from);
}

void route_planner::append_link(route_path& path, link_index l,
                                router_index from) const {
  const link_info& info = net_->topo->link_at(l);
  const router_index to = (info.a == from) ? info.b : info.a;
  const link_dir dir = (info.a == from) ? link_dir::a_to_b : link_dir::b_to_a;
  path.transit_hops.push_back({l, dir});
  path.routers.push_back(to);
  if (info.kind == link_kind::interdomain) {
    const as_index oa = net_->topo->owner_of(info.a);
    const as_index ob = net_->topo->owner_of(info.b);
    if (oa == net_->cloud || ob == net_->cloud) path.cloud_edge = l;
  }
}

route_path route_planner::to_cloud(const endpoint& src, const endpoint& vm,
                                   service_tier tier) const {
  if (src.owner == net_->cloud) {
    throw invalid_argument_error("route_planner: source already in cloud");
  }
  const topology& topo = *net_->topo;
  route_path path;
  path.src_addr = src.addr;
  path.dst_addr = vm.addr;

  // Source access (when the endpoint is a host).
  const router_index src_router = [&] {
    if (src.host) {
      const host_info& h = topo.host_at(*src.host);
      path.src_access = path_hop{h.access, link_dir::b_to_a};
      return h.attach;
    }
    const auto r = topo.router_of(src.owner, src.city);
    if (!r) throw not_found_error("route_planner: source router missing");
    return *r;
  }();
  path.routers.push_back(src_router);

  as_index via{};
  const cloud_link_ref edge =
      (tier == service_tier::premium)
          ? pick_premium_edge(src.owner, src.city, vm.city, src.addr,
                              src.host.has_value(), via)
          : pick_standard_edge(src.owner, vm.city, via);

  const link_info& edge_link = topo.link_at(edge.link);
  const bool edge_a_is_cloud = topo.owner_of(edge_link.a) == net_->cloud;
  const router_index edge_far =
      edge_a_is_cloud ? edge_link.b : edge_link.a;  // non-cloud side
  const router_index edge_near =
      edge_a_is_cloud ? edge_link.a : edge_link.b;  // cloud side

  if (via == src.owner) {
    // Ride the source AS's backbone to its side of the interconnect.
    append_intra(path, src_router, edge_far);
  } else {
    // Cross to the transit at the AS's home attachment, then ride the
    // transit backbone to its side of the interconnect.
    const link_index tl = transit_link_of(src.owner);
    const link_info& tli = topo.link_at(tl);
    const router_index cust_side =
        (topo.owner_of(tli.a) == src.owner) ? tli.a : tli.b;
    append_intra(path, src_router, cust_side);
    append_link(path, tl, cust_side);
    append_intra(path, path.routers.back(), edge_far);
  }

  // Cross into the cloud and ride the WAN to the region gateway.
  append_link(path, edge.link, edge_far);
  const auto region_router = topo.router_of(net_->cloud, vm.city);
  if (!region_router) {
    throw not_found_error("route_planner: region has no cloud router");
  }
  append_intra(path, edge_near, *region_router);

  // VM access.
  if (vm.host) {
    const host_info& h = topo.host_at(*vm.host);
    path.dst_access = path_hop{h.access, link_dir::a_to_b};
  }
  return path;
}

route_path route_planner::from_cloud(const endpoint& vm, const endpoint& dst,
                                     service_tier tier) const {
  if (dst.owner == net_->cloud) {
    throw invalid_argument_error("route_planner: destination in cloud");
  }
  const topology& topo = *net_->topo;
  route_path path;
  path.src_addr = vm.addr;
  path.dst_addr = dst.addr;

  if (vm.host) {
    const host_info& h = topo.host_at(*vm.host);
    path.src_access = path_hop{h.access, link_dir::b_to_a};
  }
  const auto region_router = topo.router_of(net_->cloud, vm.city);
  if (!region_router) {
    throw not_found_error("route_planner: region has no cloud router");
  }
  path.routers.push_back(*region_router);

  as_index via{};
  const cloud_link_ref edge =
      (tier == service_tier::premium)
          ? pick_premium_edge(dst.owner, dst.city, vm.city, dst.addr,
                              dst.host.has_value(), via)
          : pick_standard_edge(dst.owner, vm.city, via);

  const link_info& edge_link = topo.link_at(edge.link);
  const bool edge_a_is_cloud = topo.owner_of(edge_link.a) == net_->cloud;
  const router_index edge_near = edge_a_is_cloud ? edge_link.a : edge_link.b;

  // WAN to the egress PoP, cross the interconnect.
  append_intra(path, *region_router, edge_near);
  append_link(path, edge.link, edge_near);

  // Ride the far side to the destination.
  const router_index dst_router = [&] {
    if (dst.host) return topo.host_at(*dst.host).attach;
    const auto r = topo.router_of(dst.owner, dst.city);
    if (!r) throw not_found_error("route_planner: destination router missing");
    return *r;
  }();

  if (via == dst.owner) {
    append_intra(path, path.routers.back(), dst_router);
  } else {
    // Transit backbone to the customer attachment, cross, then intra.
    const link_index tl = transit_link_of(dst.owner);
    const link_info& tli = topo.link_at(tl);
    const router_index transit_side =
        (topo.owner_of(tli.a) == via) ? tli.a : tli.b;
    append_intra(path, path.routers.back(), transit_side);
    append_link(path, tl, transit_side);
    append_intra(path, path.routers.back(), dst_router);
  }

  if (dst.host) {
    const host_info& h = topo.host_at(*dst.host);
    path.dst_access = path_hop{h.access, link_dir::a_to_b};
  }
  return path;
}

std::vector<asn> route_planner::as_path(const route_path& path) const {
  std::vector<asn> out;
  for (const router_index r : path.routers) {
    const asn owner = net_->topo->as_at(net_->topo->owner_of(r)).number;
    if (out.empty() || out.back() != owner) out.push_back(owner);
  }
  return out;
}

std::size_t route_planner::as_hops_to_destination(
    const route_path& path) const {
  const auto ases = as_path(path);
  std::size_t hops = 0;
  for (const asn a : ases) {
    if (a != cloud_asn()) ++hops;
  }
  return hops;
}

}  // namespace clasp

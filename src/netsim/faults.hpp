// Deterministic fault injection for campaign replay.
//
// The paper's five-month campaign ran against 458 third-party servers and
// a live cloud: servers were withdrawn mid-campaign, tests aborted or
// truncated, VMs were preempted for maintenance, and artifact uploads
// occasionally failed. This module plants those failures into the replay
// as a *plan*: every fault is drawn from a dedicated counter-based RNG
// stream keyed by the faulted entity (server id, VM slot, hour), never
// from the measurement streams, so
//  * with faults disabled the campaign output is byte-identical to a
//    build without this module at all, and
//  * with faults enabled the schedule depends only on (seed, config,
//    fleet shape) — never on worker scheduling — so replay stays
//    bit-identical for any worker count (see DESIGN.md, "Fault model &
//    failure handling").
//
// The plan models four fault classes:
//  * server churn — a server withdraws at a planned hour and vanishes
//    from crawls (speed_server::withdrawn) and from the campaign,
//  * per-test transient failures — an attempt aborts mid-transfer and is
//    retried within the hour's test-slot budget,
//  * VM maintenance/preemption windows — a VM is down for a span of
//    hours, then redeployed,
//  * artifact-upload failures — an hour's compressed artifacts never
//    reach the bucket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace clasp {

// What happened to one (server, hour) test slot. Recorded per test in the
// `test_status` TSDB series (faults enabled) and aggregated into the
// campaign_health report.
enum class test_outcome : std::uint8_t {
  ok = 0,                // completed on the first attempt
  ok_after_retry = 1,    // completed after >= 1 transient failure
  failed = 2,            // every attempt aborted (retries exhausted)
  server_withdrawn = 3,  // server left the fleet before this hour
  vm_down = 4,           // the VM was in a maintenance/preemption window
  skipped_budget = 5,    // retries ate the hour's test-slot budget first
};

const char* to_string(test_outcome o);

struct fault_config {
  bool enabled{false};
  // Mixed into the campaign's stream seed so two campaigns with the same
  // label can replay different fault schedules.
  std::uint64_t seed{0};
  // Fraction of the fleet that withdraws at some hour of the window.
  double server_churn_rate{0.0};
  // Per-attempt probability that a transfer aborts (truncated test).
  double test_failure_rate{0.0};
  // Extra attempts after a failed one; each costs one test slot of the
  // hour's tests_per_vm_hour budget (the capped-backoff model: a slot is
  // ~3.5 simulated minutes, which caps the retry wait).
  unsigned max_retries{2};
  // Per-(VM, hour) probability that a maintenance/preemption window
  // starts; its length is uniform in [vm_outage_hours_min, _max].
  double vm_preemption_rate{0.0};
  unsigned vm_outage_hours_min{1};
  unsigned vm_outage_hours_max{4};
  // Per-(VM, hour) probability the artifact upload fails (objects lost).
  double upload_failure_rate{0.0};
  // When true, an hour whose retries starve a scheduled test of its slot
  // raises budget_exceeded_error instead of recording skipped_budget.
  bool strict_hour_budget{false};

  // Named rate presets: "off", "low" (a well-run campaign's background
  // failure rate) and "high" (a stress scenario). Throws
  // invalid_argument_error on other names.
  static fault_config preset(std::string_view level);
};

// One planned VM maintenance/preemption window.
struct vm_outage {
  std::size_t vm_slot{0};
  hour_range window;
};

// The precomputed, deterministic fault schedule for one campaign.
// Built once at deploy() time on the coordinator thread; workers only
// read it (plus per-(VM, hour) fault streams derived from it), so it is
// safe to share across staging threads.
class fault_plan {
 public:
  fault_plan() = default;  // empty plan: faults disabled

  // Draw the schedule. `stream_seed` is the campaign's stream seed (the
  // plan mixes config.seed into it); `server_ids` are the campaign's
  // servers in session order.
  static fault_plan build(const fault_config& config,
                          std::uint64_t stream_seed, std::size_t vm_count,
                          const std::vector<std::size_t>& server_ids,
                          hour_range window);

  bool enabled() const { return config_.enabled; }
  const fault_config& config() const { return config_; }

  // The hour a server withdraws, if the plan churns it out.
  std::optional<hour_stamp> withdraw_hour(std::size_t server_id) const;
  // True when the server is gone by `at` (withdraw hour <= at).
  bool withdrawn_by(std::size_t server_id, hour_stamp at) const;
  std::size_t withdrawal_count() const { return withdrawals_.size(); }
  // All (server id, withdraw hour) pairs, sorted by server id.
  const std::vector<std::pair<std::size_t, hour_stamp>>& withdrawals() const {
    return withdrawals_;
  }

  // Planned maintenance windows, ordered by (vm_slot, begin).
  const std::vector<vm_outage>& outages() const { return outages_; }

  // The counter-based fault stream for one (VM slot, hour): transient
  // test failures and the upload-failure draw come from here, keeping
  // the measurement streams untouched. Independent of scheduling.
  rng vm_fault_stream(std::size_t vm_slot, hour_stamp at) const;

 private:
  fault_config config_{};
  std::uint64_t fault_seed_{0};
  // (server id, withdraw hour), sorted by server id for binary search.
  std::vector<std::pair<std::size_t, hour_stamp>> withdrawals_;
  std::vector<vm_outage> outages_;
};

// Deterministic per-entity online/offline churn timeline — the membership
// half of a community probe swarm (Globalping-style platforms see probes
// join and leave constantly). Like fault_plan, every entity owns one
// dedicated counter-based stream keyed by (seed, kind, entity), so the
// timeline is a pure function of (seed, kind, entity_count, window,
// rates): independent of scheduling, of every other entity, and of how
// often callers query it. A default-constructed (disabled) plan reports
// every entity online forever, so churn-off consumers behave exactly as
// if this class did not exist.
class churn_plan {
 public:
  churn_plan() = default;  // disabled: every entity is always online

  // Draw the timelines. `kind` namespaces the streams (e.g. "swarm") so
  // two plans from one seed stay decorrelated. An entity's state evolves
  // hourly: offline entities come online with probability join_rate per
  // hour, online entities leave with probability leave_rate per hour, and
  // the initial state is drawn from the chain's stationary distribution
  // (always online when leave_rate is 0). Throws invalid_argument_error
  // when a rate is outside [0, 1] or the window is empty.
  static churn_plan build(std::uint64_t seed, std::string_view kind,
                          std::size_t entity_count, hour_range window,
                          double join_rate, double leave_rate);

  bool enabled() const { return enabled_; }
  std::size_t entity_count() const { return entities_; }
  hour_range window() const { return window_; }

  // True when the entity is online at `at`. Always true when disabled;
  // hours outside the built window report the nearest edge interval.
  bool online(std::size_t entity, hour_stamp at) const;
  // Entities online at `at` (entity_count when disabled).
  std::size_t online_count(hour_stamp at) const;

  // Total offline->online / online->offline transitions strictly inside
  // the window (the initial state is neither).
  std::size_t join_count() const { return joins_; }
  std::size_t leave_count() const { return leaves_; }

 private:
  bool enabled_{false};
  std::size_t entities_{0};
  hour_range window_{};
  // CSR: entity e's online intervals are
  // intervals_[offsets_[e] .. offsets_[e+1]), ascending and disjoint.
  std::vector<std::uint32_t> offsets_{0};
  std::vector<hour_range> intervals_;
  std::size_t joins_{0};
  std::size_t leaves_{0};
};

}  // namespace clasp

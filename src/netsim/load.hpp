// Time-varying background load on links.
//
// Every link direction carries background traffic described by a load
// profile: a diurnal curve in the link's local timezone, multiplicative
// noise, a weekend factor and (for congestion-prone links) planted
// congestion episodes. Utilization is a pure deterministic function of
// (profile, direction, hour, seed) so any hour of the five-month campaign
// can be evaluated in any order — there is no hidden simulation state.
//
// Planted episodes are the ground truth that the paper's detector
// (V(s,d) > 0.5) is later validated against:
//  * evening_peak  — eyeball ISP aggregation/interconnect congestion in
//                    the FCC peak hours (Fig. 6's 7-11 pm upticks)
//  * daytime       — business-hours reverse-path congestion (the paper's
//                    Cox Las Vegas / Southern California case, Fig. 3)
//  * all_day       — persistent under-provisioning (the paper's
//                    Smarterbroadband case)
//  * none          — well-provisioned links
// Independent of episodes, a profile may carry persistent_loss — the
// paper's premium-tier peering links with >10% measured packet loss.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/types.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace clasp {

enum class episode_kind { none, evening_peak, daytime, all_day };

// Parameters for one direction of one link.
struct direction_load {
  double base_util{0.2};      // utilization at the diurnal trough
  double diurnal_amp{0.15};   // extra utilization at the diurnal peak
  double noise_sigma{0.05};   // lognormal sigma of hour-to-hour noise
  double weekend_boost{0.1};  // relative amp increase on Sat/Sun
  episode_kind episodes{episode_kind::none};
  double episode_prob{0.0};      // per-local-day probability of an episode
  double episode_severity{0.0};  // utilization added during episode hours
  double persistent_loss{0.0};   // loss floor independent of utilization
};

// A load profile: both directions plus the local timezone that phases the
// diurnal curve (the timezone of the traffic's eyeball side).
struct load_profile {
  direction_load fwd;  // a_to_b
  direction_load rev;  // b_to_a
  timezone_offset tz{};
};

// Instantaneous condition of a link direction.
struct link_condition {
  double utilization{0.0};  // may exceed 1 when overloaded
  double loss_rate{0.0};    // packet loss probability
  millis queue_delay{0.0};  // added one-way queueing delay
  mbps available{0.0};      // bandwidth available to a new flow
  bool episode{false};      // a planted episode is active (ground truth)
};

// Deterministic evaluator for link conditions.
class link_load_model {
 public:
  explicit link_load_model(std::uint64_t seed) : seed_(seed) {}

  // Register a profile; returns its id (stored in link_info::load_profile).
  std::uint32_t add_profile(load_profile profile);

  const load_profile& profile(std::uint32_t id) const;
  std::size_t profile_count() const { return profiles_.size(); }

  // Raw utilization (background only) of a link direction at an hour.
  double utilization(std::uint32_t profile_id, link_index link, link_dir dir,
                     hour_stamp at) const;

  // Full condition including loss, queueing, available bandwidth and the
  // planted-episode flag for a link of the given capacity and kind. The
  // episode state is computed once and reused for the severity bump, so
  // callers that need both the condition and the ground-truth flag pay
  // the episode hash draws a single time per (link, dir, hour).
  link_condition condition(std::uint32_t profile_id, link_index link,
                           link_dir dir, hour_stamp at, mbps capacity,
                           link_kind kind) const;

  // True when an episode is active on this link direction at this hour
  // (ground truth for detector validation).
  bool episode_active(std::uint32_t profile_id, link_index link, link_dir dir,
                      hour_stamp at) const;

  // The diurnal shape, exposed for tests: fraction of peak load at a local
  // hour of day, in [0, 1].
  static double diurnal_shape(unsigned local_hour);

 private:
  const direction_load& params(std::uint32_t profile_id, link_dir dir) const;

  // Utilization with the episode state already decided (episode_active is
  // the expensive part shared by utilization() and condition()).
  double utilization_given_episode(std::uint32_t profile_id, link_index link,
                                   link_dir dir, hour_stamp at,
                                   bool episode) const;

  std::uint64_t seed_;
  std::vector<load_profile> profiles_;
};

// Maximum bufferbloat queueing delay by link kind (one-way).
millis max_queue_delay(link_kind kind);

}  // namespace clasp

#include "netsim/validate.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace clasp {

namespace {

void add_error(validation_report& report, std::string what) {
  report.issues.push_back(
      {validation_issue::severity::error, std::move(what)});
}

void add_warning(validation_report& report, std::string what) {
  report.issues.push_back(
      {validation_issue::severity::warning, std::move(what)});
}

}  // namespace

std::size_t validation_report::error_count() const {
  return static_cast<std::size_t>(std::count_if(
      issues.begin(), issues.end(), [](const validation_issue& i) {
        return i.level == validation_issue::severity::error;
      }));
}

std::size_t validation_report::warning_count() const {
  return issues.size() - error_count();
}

validation_report validate_topology(const topology& topo) {
  validation_report report;

  // Routers: owner consistency and presence bookkeeping.
  for (std::uint32_t ri = 0; ri < topo.router_count(); ++ri) {
    const router_info& r = topo.router_at(router_index{ri});
    if (r.owner.value >= topo.as_count()) {
      add_error(report, "router " + std::to_string(ri) + " has bad owner");
      continue;
    }
    const as_info& owner = topo.as_at(r.owner);
    if (std::find(owner.presence.begin(), owner.presence.end(), r.city) ==
        owner.presence.end()) {
      add_error(report, "router " + std::to_string(ri) + " city not in " +
                            owner.name + "'s presence list");
    }
    if (topo.router_of(r.owner, r.city) != r.index) {
      add_error(report, "router " + std::to_string(ri) +
                            " not indexed under its (AS, city)");
    }
  }

  // Links: endpoint validity and interface-address uniqueness.
  std::unordered_map<std::uint32_t, std::uint32_t> seen_addr;  // addr -> link
  for (const link_info& l : topo.links()) {
    if (l.a.value >= topo.router_count() || l.b.value >= topo.router_count()) {
      add_error(report, "link " + std::to_string(l.index.value) +
                            " has bad endpoints");
      continue;
    }
    if (l.a == l.b && l.kind != link_kind::host_access) {
      add_error(report, "non-access self-link " +
                            std::to_string(l.index.value));
    }
    if (l.capacity.value <= 0.0) {
      add_error(report, "link " + std::to_string(l.index.value) +
                            " has non-positive capacity");
    }
    if (l.propagation.value < 0.0) {
      add_error(report, "link " + std::to_string(l.index.value) +
                            " has negative propagation");
    }
    for (const ipv4_addr addr : {l.addr_a, l.addr_b}) {
      const auto [it, inserted] = seen_addr.emplace(addr.value(),
                                                    l.index.value);
      // The a-side of a host-access stub reuses the router loopback by
      // construction; only flag duplicates between distinct real links.
      if (!inserted && l.kind != link_kind::host_access) {
        add_error(report, "interface " + addr.to_string() +
                              " assigned to links " +
                              std::to_string(it->second) + " and " +
                              std::to_string(l.index.value));
      }
    }
  }

  // Hosts.
  for (const host_info& h : topo.hosts()) {
    const link_info& access = topo.link_at(h.access);
    if (access.kind != link_kind::host_access) {
      add_error(report, "host " + std::to_string(h.index.value) +
                            " access link is not host_access");
    }
    if (access.addr_b != h.addr) {
      add_error(report, "host " + std::to_string(h.index.value) +
                            " address mismatch with access link");
    }
    if (topo.router_at(h.attach).owner != h.owner) {
      add_error(report, "host " + std::to_string(h.index.value) +
                            " attached to a foreign router");
    }
  }

  // Prefixes: anchors valid; no cross-AS overlap.
  struct owned_prefix {
    ipv4_prefix prefix;
    std::uint32_t owner;
  };
  std::vector<owned_prefix> all;
  for (const as_info& a : topo.ases()) {
    for (const announced_prefix& p : a.prefixes) {
      if (!a.presence.empty() &&
          std::find(a.presence.begin(), a.presence.end(), p.anchor) ==
              a.presence.end()) {
        add_warning(report, a.name + " prefix " + p.prefix.to_string() +
                                " anchored outside its presence");
      }
      all.push_back({p.prefix, a.index.value});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const owned_prefix& x, const owned_prefix& y) {
              return x.prefix.base().value() < y.prefix.base().value();
            });
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    // Same-AS nesting (infra inside the block) is fine; cross-AS is not.
    if (all[i].owner != all[i + 1].owner &&
        all[i].prefix.contains(all[i + 1].prefix.base())) {
      add_error(report, "prefixes overlap across ASes: " +
                            all[i].prefix.to_string() + " and " +
                            all[i + 1].prefix.to_string());
    }
  }

  return report;
}

validation_report validate_internet(const internet& net) {
  validation_report report = validate_topology(*net.topo);
  const topology& topo = *net.topo;

  // Cloud PoPs.
  if (topo.as_at(net.cloud).role != as_role::cloud) {
    add_error(report, "cloud index does not point at a cloud-role AS");
  }
  for (const city_id c : net.pop_cities) {
    if (!topo.router_of(net.cloud, c)) {
      add_error(report, "missing cloud PoP router in city " +
                            net.geo->city(c).name);
    }
  }

  // Edge ASes reach the cloud.
  for (const as_info& a : topo.ases()) {
    const bool carrier = a.role == as_role::cloud ||
                         a.role == as_role::tier1 ||
                         a.role == as_role::transit;
    if (carrier) continue;
    if (!a.primary_transit) {
      add_error(report, a.name + " has no primary transit");
      continue;
    }
    if (!net.transit_link_of.contains(a.index.value)) {
      add_error(report, a.name + " has no transit link");
    }
  }

  // Load profiles registered.
  for (const link_info& l : topo.links()) {
    if (l.load_profile >= net.load->profile_count()) {
      add_error(report, "link " + std::to_string(l.index.value) +
                            " references unknown load profile");
    }
  }

  // Planted episodes really exist in the profiles.
  for (const internet::planted_episode& p : net.planted) {
    const link_info& l = topo.link_at(p.link);
    const load_profile& prof = net.load->profile(l.load_profile);
    const direction_load& d =
        p.dir == link_dir::a_to_b ? prof.fwd : prof.rev;
    if (d.episodes != p.kind || d.episode_prob <= 0.0) {
      add_error(report, "planted episode on link " +
                            std::to_string(p.link.value) +
                            " missing from its load profile");
    }
  }

  // Vantage points are hosts.
  for (const host_index h : net.vantage_points) {
    if (h.value >= topo.host_count()) {
      add_error(report, "vantage point index out of range");
    }
  }

  return report;
}

}  // namespace clasp

#include "netsim/topology.hpp"

#include "util/error.hpp"

namespace clasp {

namespace {

std::uint64_t as_city_key(as_index a, city_id c) {
  return (static_cast<std::uint64_t>(a.value) << 32) | c.value;
}

}  // namespace

topology::topology(const geo_database* geo) : geo_(geo) {
  if (geo == nullptr) {
    throw invalid_argument_error("topology: null geo database");
  }
}

as_index topology::add_as(asn number, std::string name, as_role role) {
  if (asn_to_index_.contains(number.value)) {
    throw invalid_argument_error("topology: duplicate ASN " +
                                 std::to_string(number.value));
  }
  as_info info;
  info.index = as_index{static_cast<std::uint32_t>(ases_.size())};
  info.number = number;
  info.name = std::move(name);
  info.role = role;
  asn_to_index_[number.value] = info.index;
  ases_.push_back(std::move(info));
  return ases_.back().index;
}

router_index topology::add_router(as_index owner, city_id city,
                                  ipv4_addr loopback) {
  as_info& as_rec = as_at(owner);
  const std::uint64_t key = as_city_key(owner, city);
  if (as_city_router_.contains(key)) {
    throw invalid_argument_error("topology: AS " + as_rec.name +
                                 " already has a router in city " +
                                 std::to_string(city.value));
  }
  router_info info;
  info.index = router_index{static_cast<std::uint32_t>(routers_.size())};
  info.owner = owner;
  info.city = city;
  info.loopback = loopback;
  as_city_router_[key] = info.index;
  as_rec.presence.push_back(city);
  iface_to_router_[loopback.value()] = info.index;
  routers_.push_back(std::move(info));
  return routers_.back().index;
}

link_index topology::add_link(link_kind kind, router_index a, router_index b,
                              ipv4_addr addr_a, ipv4_addr addr_b,
                              mbps capacity, millis propagation) {
  if (a == b) throw invalid_argument_error("topology: self-link");
  link_info info;
  info.index = link_index{static_cast<std::uint32_t>(links_.size())};
  info.kind = kind;
  info.a = a;
  info.b = b;
  info.addr_a = addr_a;
  info.addr_b = addr_b;
  info.capacity = capacity;
  info.propagation = propagation;
  routers_[a.value].links.push_back(info.index);
  routers_[b.value].links.push_back(info.index);
  iface_to_router_[addr_a.value()] = a;
  iface_to_router_[addr_b.value()] = b;
  iface_to_link_[addr_a.value()] = info.index;
  iface_to_link_[addr_b.value()] = info.index;
  links_.push_back(info);
  return links_.back().index;
}

host_index topology::add_host(as_index owner, city_id city, ipv4_addr addr,
                              router_index attach, mbps nic_capacity) {
  const router_info& r = router_at(attach);
  host_info info;
  info.index = host_index{static_cast<std::uint32_t>(hosts_.size())};
  info.owner = owner;
  info.city = city;
  info.addr = addr;
  info.attach = attach;
  // The host NIC is modeled as a dedicated access link between a synthetic
  // "host port" on the attach router and the host. We reuse the router on
  // both ends of link bookkeeping by making the access link a one-router
  // stub: endpoint b == attach, endpoint a == attach, which add_link
  // rejects — so access links get a dedicated entry with both interface
  // addresses owned by the host/router pair instead.
  link_info link;
  link.index = link_index{static_cast<std::uint32_t>(links_.size())};
  link.kind = link_kind::host_access;
  link.a = attach;
  link.b = attach;  // stub: hosts are not routers
  link.addr_a = r.loopback;
  link.addr_b = addr;
  link.capacity = nic_capacity;
  link.propagation = millis{0.25};
  links_.push_back(link);
  info.access = link.index;
  iface_to_link_[addr.value()] = link.index;
  hosts_.push_back(info);
  return hosts_.back().index;
}

void topology::announce_prefix(as_index owner, ipv4_prefix prefix,
                               city_id anchor) {
  as_at(owner).prefixes.push_back(announced_prefix{prefix, anchor});
}

void topology::set_primary_transit(as_index customer, as_index transit) {
  if (customer == transit) {
    throw invalid_argument_error("topology: AS cannot transit itself");
  }
  as_at(customer).primary_transit = transit;
}

const as_info& topology::as_at(as_index i) const {
  if (i.value >= ases_.size()) throw not_found_error("topology: bad as_index");
  return ases_[i.value];
}

as_info& topology::as_at(as_index i) {
  if (i.value >= ases_.size()) throw not_found_error("topology: bad as_index");
  return ases_[i.value];
}

const router_info& topology::router_at(router_index i) const {
  if (i.value >= routers_.size()) {
    throw not_found_error("topology: bad router_index");
  }
  return routers_[i.value];
}

const link_info& topology::link_at(link_index i) const {
  if (i.value >= links_.size()) throw not_found_error("topology: bad link_index");
  return links_[i.value];
}

link_info& topology::link_at(link_index i) {
  if (i.value >= links_.size()) throw not_found_error("topology: bad link_index");
  return links_[i.value];
}

const host_info& topology::host_at(host_index i) const {
  if (i.value >= hosts_.size()) throw not_found_error("topology: bad host_index");
  return hosts_[i.value];
}

std::optional<router_index> topology::router_of(as_index owner,
                                                city_id city) const {
  const auto it = as_city_router_.find(as_city_key(owner, city));
  if (it == as_city_router_.end()) return std::nullopt;
  return it->second;
}

std::vector<router_index> topology::routers_of(as_index owner) const {
  std::vector<router_index> out;
  for (const city_id c : as_at(owner).presence) {
    if (const auto r = router_of(owner, c)) out.push_back(*r);
  }
  return out;
}

as_index topology::owner_of(router_index r) const {
  return router_at(r).owner;
}

std::optional<as_index> topology::find_as(asn number) const {
  const auto it = asn_to_index_.find(number.value);
  if (it == asn_to_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<link_index> topology::interdomain_links_between(
    as_index x, as_index y) const {
  std::vector<link_index> out;
  for (const link_info& l : links_) {
    if (l.kind != link_kind::interdomain) continue;
    const as_index oa = owner_of(l.a);
    const as_index ob = owner_of(l.b);
    if ((oa == x && ob == y) || (oa == y && ob == x)) out.push_back(l.index);
  }
  return out;
}

std::vector<link_index> topology::interdomain_links_of(as_index x) const {
  std::vector<link_index> out;
  for (const link_info& l : links_) {
    if (l.kind != link_kind::interdomain) continue;
    if (owner_of(l.a) == x || owner_of(l.b) == x) out.push_back(l.index);
  }
  return out;
}

std::optional<router_index> topology::router_of_interface(
    ipv4_addr addr) const {
  const auto it = iface_to_router_.find(addr.value());
  if (it == iface_to_router_.end()) return std::nullopt;
  return it->second;
}

std::vector<ipv4_addr> topology::interfaces_of(router_index r) const {
  std::vector<ipv4_addr> out;
  const router_info& info = router_at(r);
  out.push_back(info.loopback);
  for (const link_index li : info.links) {
    const link_info& l = link_at(li);
    out.push_back(l.a == r ? l.addr_a : l.addr_b);
  }
  return out;
}

std::optional<link_index> topology::link_of_interface(ipv4_addr addr) const {
  const auto it = iface_to_link_.find(addr.value());
  if (it == iface_to_link_.end()) return std::nullopt;
  return it->second;
}

prefix2as_table topology::build_prefix2as() const {
  prefix2as_table table;
  for (const as_info& a : ases_) {
    for (const announced_prefix& p : a.prefixes) table.add(p.prefix, a.number);
  }
  return table;
}

ipv4_addr topology::interface_on(router_index r, link_index l) const {
  const link_info& info = link_at(l);
  if (info.a == r) return info.addr_a;
  if (info.b == r) return info.addr_b;
  throw invalid_argument_error("topology: router not on link");
}

router_index topology::neighbor_on(router_index r, link_index l) const {
  const link_info& info = link_at(l);
  if (info.a == r) return info.b;
  if (info.b == r) return info.a;
  throw invalid_argument_error("topology: router not on link");
}

}  // namespace clasp

// Core identifiers and enums for the simulated Internet topology.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace clasp {

// Index of an AS within a topology (dense, 0-based). The AS's public
// number (asn) is a separate attribute, as in the real Internet.
struct as_index {
  std::uint32_t value{0};
  constexpr auto operator<=>(const as_index&) const = default;
};

// Index of a router within a topology.
struct router_index {
  std::uint32_t value{0};
  constexpr auto operator<=>(const router_index&) const = default;
};

// Index of a link within a topology.
struct link_index {
  std::uint32_t value{0};
  constexpr auto operator<=>(const link_index&) const = default;
};

// Index of an attached host (speed-test server, VM, eyeball VP).
struct host_index {
  std::uint32_t value{0};
  constexpr auto operator<=>(const host_index&) const = default;
};

// The role a network plays in the synthetic Internet. Determines router
// footprint, link capacities, load profiles and ipinfo business type.
enum class as_role {
  cloud,         // the cloud provider (Google analogue)
  tier1,         // global transit backbone
  transit,       // regional transit provider
  access_isp,    // large consumer/eyeball ISP
  regional_isp,  // small/regional eyeball ISP
  hosting,       // datacenter / web hosting
  education,     // university / NREN
  business,      // enterprise network
};

// What a link physically is; selects capacity ranges and load profiles.
enum class link_kind {
  host_access,   // host NIC to first-hop aggregation/router
  metro_agg,     // metro aggregation (shared by hosts of an AS in a city)
  backbone,      // intra-AS long-haul between two cities
  interdomain,   // peering/transit link between two ASes
  cloud_wan,     // the cloud provider's private WAN
};

// Direction of travel across a link, relative to the link's (a, b) ends.
enum class link_dir { a_to_b, b_to_a };

constexpr link_dir reverse(link_dir d) {
  return d == link_dir::a_to_b ? link_dir::b_to_a : link_dir::a_to_b;
}

}  // namespace clasp

// Hashes so the ids can key unordered containers.
template <>
struct std::hash<clasp::as_index> {
  std::size_t operator()(const clasp::as_index& x) const noexcept {
    return std::hash<std::uint32_t>{}(x.value);
  }
};
template <>
struct std::hash<clasp::router_index> {
  std::size_t operator()(const clasp::router_index& x) const noexcept {
    return std::hash<std::uint32_t>{}(x.value);
  }
};
template <>
struct std::hash<clasp::link_index> {
  std::size_t operator()(const clasp::link_index& x) const noexcept {
    return std::hash<std::uint32_t>{}(x.value);
  }
};
template <>
struct std::hash<clasp::host_index> {
  std::size_t operator()(const clasp::host_index& x) const noexcept {
    return std::hash<std::uint32_t>{}(x.value);
  }
};

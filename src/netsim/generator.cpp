#include "netsim/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace clasp {

namespace {

// ---------------------------------------------------------------------------
// Constants: address plan
// ---------------------------------------------------------------------------

// Pool carved into per-AS /18 blocks.
const ipv4_prefix kAsBlockPool = ipv4_prefix::parse("16.0.0.0/5");
// Cloud host + infra space (the Google 35/8 analogue).
const ipv4_prefix kCloudPool = ipv4_prefix::parse("35.0.0.0/12");
// Interconnect space announced by the cloud; far-side interfaces of cloud
// peerings are addressed here, which is why naive prefix-to-AS mapping
// attributes them to the cloud and bdrmap-style inference is needed.
const ipv4_prefix kInterconnectPool = ipv4_prefix::parse("72.14.0.0/16");

constexpr std::uint32_t kCloudAsn = 15169;

// ---------------------------------------------------------------------------
// Cloud PoP cities (Google edge analogue)
// ---------------------------------------------------------------------------

const char* const kPopCityNames[] = {
    // US (region host cities are PoPs too)
    "The Dalles, OR", "Seattle, WA", "Portland, OR", "San Francisco, CA",
    "San Jose, CA", "Los Angeles, CA", "Las Vegas, NV", "Phoenix, AZ",
    "Salt Lake City, UT", "Denver, CO", "Dallas, TX", "Houston, TX",
    "Chicago, IL", "Kansas City, MO", "Council Bluffs, IA",
    "Minneapolis, MN", "Atlanta, GA", "Miami, FL", "Ashburn, VA",
    "New York, NY", "Boston, MA", "Charlotte, NC", "Moncks Corner, SC",
    // Europe
    "St. Ghislain", "London", "Paris", "Amsterdam", "Frankfurt", "Brussels",
    "Madrid", "Milan", "Stockholm", "Zurich", "Warsaw",
    // APAC + other
    "Tokyo", "Singapore", "Hong Kong", "Sydney", "Mumbai", "Chennai",
    "Seoul", "Sao Paulo", "Toronto",
};

// ---------------------------------------------------------------------------
// Named AS seed table (the paper's case-study networks and major carriers)
// ---------------------------------------------------------------------------

struct named_as_spec {
  const char* name;
  std::uint32_t number;
  as_role role;
  std::initializer_list<const char*> cities;
  bool peers_with_cloud;
  congestion_archetype archetype;
};

const named_as_spec kTier1Specs[] = {
    {"Cogent", 174, as_role::tier1, {}, true, congestion_archetype::evening_eyeball},
    {"Lumen", 3356, as_role::tier1, {}, true, congestion_archetype::none},
    {"AT&T", 7018, as_role::tier1, {}, true, congestion_archetype::none},
    {"Verizon", 701, as_role::tier1, {}, true, congestion_archetype::none},
    {"Zayo", 6461, as_role::tier1, {}, true, congestion_archetype::none},
    {"GTT", 3257, as_role::tier1, {}, true, congestion_archetype::none},
    {"Telia", 1299, as_role::tier1, {}, true, congestion_archetype::none},
    {"NTT", 2914, as_role::tier1, {}, true, congestion_archetype::none},
    {"Tata", 6453, as_role::tier1, {}, true, congestion_archetype::none},
    {"Sprint", 1239, as_role::tier1, {}, true, congestion_archetype::none},
    {"Hurricane Electric", 6939, as_role::tier1, {}, true, congestion_archetype::none},
    {"PCCW", 3491, as_role::tier1, {}, true, congestion_archetype::none},
};

const named_as_spec kNamedEyeballs[] = {
    // The paper's case studies.
    {"Cox", 22773, as_role::access_isp,
     {"San Diego, CA", "Las Vegas, NV", "Santa Barbara, CA", "Phoenix, AZ",
      "Tulsa, OK", "New Orleans, LA"},
     true, congestion_archetype::daytime_reverse},
    {"unWired Broadband", 33548, as_role::regional_isp,
     {"Fresno, CA"}, true, congestion_archetype::evening_eyeball},
    {"Suddenlink", 19108, as_role::access_isp,
     {"Lubbock, TX", "Shreveport, LA", "Tulsa, OK"},
     true, congestion_archetype::evening_eyeball},
    {"Smarterbroadband", 46276, as_role::regional_isp,
     {"Grass Valley, CA"}, true, congestion_archetype::all_day},
    {"Telstra", 1221, as_role::access_isp,
     {"Sydney", "Melbourne", "Brisbane", "Perth"},
     true, congestion_archetype::std_path_episodes},
    {"Vortex Netsol Private Limited", 136334, as_role::regional_isp,
     {"Mumbai", "Delhi"}, true, congestion_archetype::std_path_episodes},
    {"Joister Broadband", 45194, as_role::regional_isp,
     {"Mumbai"}, true, congestion_archetype::std_path_episodes},
    // Major carriers for realism of the server fleet.
    {"Comcast", 7922, as_role::access_isp,
     {"Philadelphia, PA", "Denver, CO", "Chicago, IL", "Seattle, WA",
      "Atlanta, GA", "Boston, MA"},
     true, congestion_archetype::none},
    {"Charter", 20115, as_role::access_isp,
     {"St. Louis, MO", "Los Angeles, CA", "Dallas, TX", "Charlotte, NC",
      "New York, NY"},
     true, congestion_archetype::none},
    {"CenturyLink", 209, as_role::access_isp,
     {"Denver, CO", "Seattle, WA", "Minneapolis, MN", "Phoenix, AZ"},
     true, congestion_archetype::evening_eyeball},
    {"Frontier", 5650, as_role::access_isp,
     {"Tampa, FL", "Dallas, TX", "Los Angeles, CA"},
     true, congestion_archetype::evening_eyeball},
    {"Windstream", 7029, as_role::access_isp,
     {"Little Rock, AR", "Atlanta, GA", "Lexington, KY"},
     true, congestion_archetype::evening_eyeball},
    {"Mediacom", 30036, as_role::access_isp,
     {"Des Moines, IA", "Cedar Rapids, IA"},
     true, congestion_archetype::evening_eyeball},
    {"Cable One", 11492, as_role::access_isp,
     {"Phoenix, AZ", "Boise, ID", "Fargo, ND"},
     true, congestion_archetype::none},
    {"Sonic", 46375, as_role::regional_isp,
     {"Santa Rosa, CA"}, true, congestion_archetype::none},
    {"Proximus", 5432, as_role::access_isp,
     {"Brussels"}, true, congestion_archetype::none},
    {"Telenet", 6848, as_role::access_isp,
     {"Brussels"}, true, congestion_archetype::none},
    {"BT", 2856, as_role::access_isp,
     {"London"}, true, congestion_archetype::none},
    {"Deutsche Telekom", 3320, as_role::access_isp,
     {"Frankfurt", "Berlin"}, true, congestion_archetype::none},
    {"Orange", 3215, as_role::access_isp,
     {"Paris"}, true, congestion_archetype::none},
    {"Airtel", 9498, as_role::access_isp,
     {"Delhi", "Mumbai"}, true, congestion_archetype::lossy_premium},
    {"Jio", 55836, as_role::access_isp,
     {"Mumbai", "Delhi", "Bangalore"}, true, congestion_archetype::lossy_premium},
    {"Optus", 4804, as_role::access_isp,
     {"Sydney"}, true, congestion_archetype::lossy_premium},
    {"TPG", 7545, as_role::access_isp,
     {"Sydney", "Melbourne"}, true, congestion_archetype::none},
};

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

struct as_build_state {
  as_index index;
  prefix_allocator infra;
  congestion_archetype archetype{congestion_archetype::none};
  bool prone{false};
  double episode_prob{0.0};
};

class internet_builder {
 public:
  explicit internet_builder(const internet_config& config)
      : config_(config), root_(rng(config.seed)) {
    validate();
    net_.config = config;
    net_.geo = std::make_unique<geo_database>(geo_database::builtin());
    net_.topo = std::make_unique<topology>(net_.geo.get());
    net_.load = std::make_unique<link_load_model>(
        hash_tag(config.seed, "load"));
    block_alloc_ = std::make_unique<prefix_allocator>(kAsBlockPool);
    interconnect_alloc_ = std::make_unique<prefix_allocator>(kInterconnectPool);
  }

  internet build() {
    build_cloud();
    build_carriers();
    build_eyeballs();
    build_vantage_points();
    CLASP_LOG(info, "generator")
        << "internet: " << net_.topo->as_count() << " ASes, "
        << net_.topo->router_count() << " routers, "
        << net_.topo->link_count() << " links";
    return std::move(net_);
  }

 private:
  void validate() const {
    if (config_.tier1_count == 0 || config_.tier1_count > 32) {
      throw invalid_argument_error("internet_config: tier1_count out of range");
    }
    const double fractions[] = {
        config_.international_fraction, config_.peering_prob_large_isp,
        config_.peering_prob_regional_isp, config_.peering_prob_hosting,
        config_.peering_prob_education, config_.peering_prob_business,
        config_.congestion_prone_fraction, config_.ipinfo_missing_fraction};
    for (const double f : fractions) {
      if (f < 0.0 || f > 1.0) {
        throw invalid_argument_error("internet_config: fraction outside [0,1]");
      }
    }
    if (config_.episode_prob_lo > config_.episode_prob_hi) {
      throw invalid_argument_error("internet_config: episode prob range");
    }
    if (config_.fleet_scale == 0) {
      throw invalid_argument_error(
          "internet_config: fleet_scale must be >= 1 (synthetic fleet "
          "multiplier; 1 is the paper-scale fleet)");
    }
  }

  topology& topo() { return *net_.topo; }
  const geo_database& geo() const { return *net_.geo; }

  // --- cloud -------------------------------------------------------------

  void build_cloud() {
    net_.cloud = topo().add_as(asn{kCloudAsn}, "Google", as_role::cloud);
    cloud_infra_ = std::make_unique<prefix_allocator>(
        ipv4_prefix::parse("35.0.0.0/16"));
    // Announce host space and the interconnect pool.
    const city_id anchor = geo().city_by_name("Council Bluffs, IA").id;
    topo().announce_prefix(net_.cloud, kCloudPool, anchor);
    topo().announce_prefix(net_.cloud, kInterconnectPool, anchor);
    // VM address space lives inside the cloud pool.
    net_.host_pools[net_.cloud.value].push_back(
        prefix_allocator(ipv4_prefix::parse("35.4.0.0/14")));

    // PoP routers.
    for (const char* name : kPopCityNames) {
      const city_info& c = geo().city_by_name(name);
      const ipv4_addr loopback = cloud_infra_->allocate(32).base();
      topo().add_router(net_.cloud, c.id, loopback);
      net_.pop_cities.push_back(c.id);
    }

    // Full-mesh private WAN between PoPs.
    rng wan_rng = root_.fork("wan");
    for (std::size_t i = 0; i < net_.pop_cities.size(); ++i) {
      for (std::size_t j = i + 1; j < net_.pop_cities.size(); ++j) {
        const city_info& ca = geo().city(net_.pop_cities[i]);
        const city_info& cb = geo().city(net_.pop_cities[j]);
        const router_index ra = *topo().router_of(net_.cloud, ca.id);
        const router_index rb = *topo().router_of(net_.cloud, cb.id);
        const ipv4_prefix p31 = cloud_infra_->allocate(31);
        const link_index li = topo().add_link(
            link_kind::cloud_wan, ra, rb, p31.address_at(0), p31.address_at(1),
            mbps::from_gbps(1000.0), propagation_delay(ca, cb));
        load_profile prof;
        prof.tz = ca.tz;
        prof.fwd = {wan_rng.uniform(0.12, 0.32), wan_rng.uniform(0.05, 0.12),
                    0.03, 0.05, episode_kind::none, 0, 0, 0};
        prof.rev = {wan_rng.uniform(0.12, 0.32), wan_rng.uniform(0.05, 0.12),
                    0.03, 0.05, episode_kind::none, 0, 0, 0};
        topo().link_at(li).load_profile = net_.load->add_profile(prof);
      }
    }
  }

  // --- carriers (tier1 + transit) -----------------------------------------

  void build_carriers() {
    rng carrier_rng = root_.fork("carriers");

    // Tier-1s from the named table (count limited by config).
    const std::size_t n_tier1 =
        std::min(config_.tier1_count, std::size(kTier1Specs));
    for (std::size_t i = 0; i < n_tier1; ++i) {
      carriers_.push_back(build_carrier_as(kTier1Specs[i], carrier_rng));
    }
    // Procedural regional transits.
    for (std::size_t i = 0; i < config_.transit_count; ++i) {
      const std::string name = "Transit-" + std::to_string(i + 1);
      named_as_spec spec{name.c_str(),
                         static_cast<std::uint32_t>(21000 + i),
                         as_role::transit,
                         {},
                         true,
                         congestion_archetype::none};
      carriers_.push_back(build_carrier_as(spec, carrier_rng));
    }
  }

  as_index build_carrier_as(const named_as_spec& spec, rng& r) {
    const as_index idx = create_as(spec.name, spec.number, spec.role,
                                   /*infra_len=*/20);
    net_.archetype_of_as[idx.value] = spec.archetype;
    as_build_state& st = state_of(idx);
    st.archetype = spec.archetype;
    if (spec.archetype != congestion_archetype::none) {
      st.prone = true;
      st.episode_prob = r.uniform(0.12, 0.30);
    }

    // Presence: all region PoP cities (required for standard-tier entry)
    // plus a sample of other major cities.
    std::vector<city_id> cities = region_pop_cities();
    const std::size_t extra =
        (spec.role == as_role::tier1)
            ? 13 + static_cast<std::size_t>(r.uniform_int(0, 5))
            : 6 + static_cast<std::size_t>(r.uniform_int(0, 4));
    std::vector<city_id> pool = net_.pop_cities;
    r.shuffle(pool);
    for (const city_id c : pool) {
      if (cities.size() >= region_pop_cities().size() + extra) break;
      if (std::find(cities.begin(), cities.end(), c) == cities.end()) {
        cities.push_back(c);
      }
    }
    add_presence_and_backbone(idx, cities, r, mbps::from_gbps(600.0));
    announce_host_prefixes(idx, r);

    // Interdomain links with the cloud: at every region PoP city (forced)
    // and at other common cities with probability.
    const auto& info = topo().as_at(idx);
    // One materialized copy: calling region_pop_cities() per begin()/end()
    // would mix iterators of two distinct temporaries (UB caught by TSan).
    const std::vector<city_id> region_cities = region_pop_cities();
    for (const city_id c : info.presence) {
      const bool is_region_city =
          std::find(region_cities.begin(), region_cities.end(), c) !=
          region_cities.end();
      const bool has_pop =
          std::find(net_.pop_cities.begin(), net_.pop_cities.end(), c) !=
          net_.pop_cities.end();
      if (!has_pop) continue;
      const double prob = (spec.role == as_role::tier1) ? 0.75 : 0.5;
      if (is_region_city || r.bernoulli(prob)) {
        add_cloud_link(idx, c, r, mbps::from_gbps(400.0));
      }
    }
    topo().as_at(idx).peers_with_cloud = true;
    register_ipinfo(idx, business_type::isp, r);
    return idx;
  }

  // --- eyeball / hosting / education / business ASes -----------------------

  void build_eyeballs() {
    rng eye_rng = root_.fork("eyeballs");

    // Named eyeballs first.
    for (const named_as_spec& spec : kNamedEyeballs) {
      build_edge_as(spec.name, spec.number, spec.role,
                    named_cities(spec.cities), spec.peers_with_cloud,
                    spec.archetype, eye_rng);
    }

    // Procedural populations.
    std::uint32_t next_asn = 390000;
    const struct {
      as_role role;
      std::size_t count;
      double peer_prob;
    } populations[] = {
        {as_role::access_isp, config_.large_isp_count,
         config_.peering_prob_large_isp},
        {as_role::regional_isp, config_.regional_isp_count,
         config_.peering_prob_regional_isp},
        {as_role::hosting, config_.hosting_count, config_.peering_prob_hosting},
        {as_role::education, config_.education_count,
         config_.peering_prob_education},
        {as_role::business, config_.business_count,
         config_.peering_prob_business},
    };
    for (const auto& pop : populations) {
      for (std::size_t i = 0; i < pop.count; ++i) {
        const std::string name =
            role_name_prefix(pop.role) + "-" + std::to_string(i + 1);
        build_edge_as(name.c_str(), next_asn++, pop.role,
                      procedural_cities(pop.role, eye_rng),
                      eye_rng.bernoulli(pop.peer_prob),
                      congestion_archetype::none, eye_rng);
      }
    }
  }

  static std::string role_name_prefix(as_role role) {
    switch (role) {
      case as_role::access_isp: return "AccessNet";
      case as_role::regional_isp: return "RegionalNet";
      case as_role::hosting: return "HostCo";
      case as_role::education: return "EduNet";
      case as_role::business: return "BizNet";
      default: return "Net";
    }
  }

  std::vector<city_id> named_cities(
      std::initializer_list<const char*> names) const {
    std::vector<city_id> out;
    for (const char* n : names) out.push_back(geo().city_by_name(n).id);
    return out;
  }

  std::vector<city_id> procedural_cities(as_role role, rng& r) {
    const bool international = r.bernoulli(config_.international_fraction);
    std::vector<city_id>& pool = international ? intl_cities_ : us_cities_;
    if (pool.empty()) {
      for (const city_info& c : geo().cities()) {
        ((c.country == "US") ? us_cities_ : intl_cities_).push_back(c.id);
      }
    }
    // Weighted pick by population weight.
    const auto pick_city = [&]() {
      double total = 0.0;
      for (const city_id c : pool) total += geo().city(c).population_weight;
      double x = r.uniform(0.0, total);
      for (const city_id c : pool) {
        x -= geo().city(c).population_weight;
        if (x <= 0.0) return c;
      }
      return pool.back();
    };
    std::vector<city_id> out{pick_city()};
    const std::size_t extra =
        (role == as_role::access_isp)
            ? 2 + static_cast<std::size_t>(r.uniform_int(0, 3))
            : (r.bernoulli(0.2) ? 1 : 0);
    for (std::size_t i = 0; i < extra; ++i) {
      const city_id c = pick_city();
      if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
    }
    return out;
  }

  void build_edge_as(const char* name, std::uint32_t number, as_role role,
                     std::vector<city_id> cities, bool peer,
                     congestion_archetype archetype, rng& r) {
    const as_index idx = create_as(name, number, role, /*infra_len=*/22);

    // Congestion proneness: the named archetype wins; otherwise eyeball
    // ISPs draw it with an east-coast skew (earlier-timezone metros were
    // harder hit in the paper's campaign).
    as_build_state& st = state_of(idx);
    st.archetype = archetype;
    const city_info& home = geo().city(cities.front());
    if (archetype == congestion_archetype::none &&
        (role == as_role::access_isp || role == as_role::regional_isp)) {
      const double skew = east_skew(home.tz.hours_east_of_utc);
      if (r.bernoulli(config_.congestion_prone_fraction * skew)) {
        st.archetype = congestion_archetype::evening_eyeball;
      }
    }
    // Some international peerings are chronically lossy on the premium
    // path (the mechanism behind the paper's 8 standard-faster targets).
    if (st.archetype == congestion_archetype::none && peer &&
        home.country != "US" && r.bernoulli(0.35)) {
      st.archetype = congestion_archetype::lossy_premium;
    }
    if (st.archetype != congestion_archetype::none) {
      st.prone = true;
      switch (st.archetype) {
        case congestion_archetype::daytime_reverse:
          // The Cox case: frequent business-hours congestion.
          st.episode_prob = r.uniform(0.50, 0.75);
          break;
        case congestion_archetype::std_path_episodes:
          st.episode_prob = r.uniform(0.45, 0.65);
          break;
        case congestion_archetype::all_day:
          st.episode_prob = r.uniform(0.55, 0.80);
          break;
        default:
          st.episode_prob =
              r.uniform(config_.episode_prob_lo, config_.episode_prob_hi);
          break;
      }
    }
    net_.archetype_of_as[idx.value] = st.archetype;

    const mbps backbone_cap = (role == as_role::access_isp)
                                  ? mbps::from_gbps(200.0)
                                  : mbps::from_gbps(60.0);
    add_presence_and_backbone(idx, cities, r, backbone_cap);
    announce_host_prefixes(idx, r);

    // Upstream transit: every edge AS gets one (even cloud peers use it
    // for the rest of the Internet and for standard-tier paths).
    const as_index transit = carriers_[static_cast<std::size_t>(
        r.uniform_int(0, static_cast<std::int64_t>(carriers_.size()) - 1))];
    add_transit_link(idx, transit, r);
    topo().set_primary_transit(idx, transit);

    if (peer) {
      add_cloud_peerings(idx, r);
      topo().as_at(idx).peers_with_cloud = true;
    }

    register_ipinfo(idx, role_to_business(role), r);
  }

  static business_type role_to_business(as_role role) {
    switch (role) {
      case as_role::access_isp:
      case as_role::regional_isp:
      case as_role::tier1:
      case as_role::transit:
        return business_type::isp;
      case as_role::hosting: return business_type::hosting;
      case as_role::education: return business_type::education;
      case as_role::business: return business_type::business;
      case as_role::cloud: return business_type::hosting;
    }
    return business_type::unknown;
  }

  static double east_skew(int tz) {
    // Eastern U.S. (-5) most prone, Pacific (-8) least; elsewhere neutral.
    switch (tz) {
      case -5: return 1.50;
      case -6: return 1.15;
      case -7: return 0.75;
      case -8: return 0.45;
      default: return 1.0;
    }
  }

  // --- shared pieces -------------------------------------------------------

  as_index create_as(const char* name, std::uint32_t number, as_role role,
                     unsigned infra_len) {
    const ipv4_prefix block = block_alloc_->allocate(18);
    prefix_allocator block_local(block);
    const ipv4_prefix infra = block_local.allocate(infra_len);
    const as_index idx = topo().add_as(asn{number}, name, role);
    // Announce the infra prefix so traceroute hops resolve to this AS.
    states_.emplace(idx.value,
                    as_build_state{idx, prefix_allocator(infra),
                                   congestion_archetype::none, false, 0.0});
    blocks_.emplace(idx.value, std::move(block_local));
    topo().announce_prefix(idx, infra, city_id{0});
    return idx;
  }

  as_build_state& state_of(as_index idx) { return states_.at(idx.value); }

  void add_presence_and_backbone(as_index idx, const std::vector<city_id>& cities,
                                 rng& r, mbps backbone_cap) {
    for (const city_id c : cities) {
      const ipv4_addr loopback = state_of(idx).infra.allocate(32).base();
      topo().add_router(idx, c, loopback);
    }
    // Full mesh backbone between presence routers.
    for (std::size_t i = 0; i < cities.size(); ++i) {
      for (std::size_t j = i + 1; j < cities.size(); ++j) {
        const city_info& ca = geo().city(cities[i]);
        const city_info& cb = geo().city(cities[j]);
        const ipv4_prefix p31 = state_of(idx).infra.allocate(31);
        const link_index li = topo().add_link(
            link_kind::backbone, *topo().router_of(idx, cities[i]),
            *topo().router_of(idx, cities[j]), p31.address_at(0),
            p31.address_at(1), backbone_cap, propagation_delay(ca, cb));
        load_profile prof;
        prof.tz = ca.tz;
        prof.fwd = {r.uniform(0.25, 0.45), r.uniform(0.10, 0.22), 0.04, 0.08,
                    episode_kind::none, 0, 0, 0};
        prof.rev = {r.uniform(0.25, 0.45), r.uniform(0.10, 0.22), 0.04, 0.08,
                    episode_kind::none, 0, 0, 0};
        topo().link_at(li).load_profile = net_.load->add_profile(prof);
      }
    }
  }

  void announce_host_prefixes(as_index idx, rng& r) {
    const as_info& info = topo().as_at(idx);
    auto& block = blocks_.at(idx.value);
    const std::size_t n_prefixes =
        1 + static_cast<std::size_t>(r.bernoulli(0.70)) +
        static_cast<std::size_t>(r.bernoulli(0.50));
    for (std::size_t i = 0; i < n_prefixes; ++i) {
      const unsigned len = (i == 0) ? 22 : (r.bernoulli(0.5) ? 23 : 24);
      const city_id anchor =
          info.presence[i % info.presence.size()];
      topo().announce_prefix(idx, block.allocate(len), anchor);
      net_.host_pools[idx.value].push_back(
          prefix_allocator(topo().as_at(idx).prefixes.back().prefix));
    }
    // Fix the infra prefix's anchor now that presence exists.
    topo().as_at(idx).prefixes.front().anchor = info.presence.front();
  }

  void add_transit_link(as_index customer, as_index transit, rng& r) {
    const as_info& cust = topo().as_at(customer);
    const city_id home = cust.presence.front();
    // Transit side: usually the transit's router nearest the customer,
    // but a quarter of edge networks buy backhauled transit delivered at
    // a distant city — the mechanism behind pre-test tuples where the
    // standard tier's latency is clearly higher (premium_lower class).
    const bool std_case = state_of(customer).archetype ==
                          congestion_archetype::std_path_episodes;
    const router_index tr =
        std_case ? farthest_router_of(transit, home)
        : r.bernoulli(0.25)
            ? *topo().router_of(transit,
                                r.pick(topo().as_at(transit).presence))
            : nearest_router_of(transit, home);
    const router_index cr = *topo().router_of(customer, home);
    const ipv4_prefix p31 = state_of(transit).infra.allocate(31);
    const city_info& tcity = geo().city(topo().router_at(tr).city);
    const city_info& ccity = geo().city(home);
    const mbps cap = (cust.role == as_role::access_isp)
                         ? mbps::from_gbps(100.0)
                         : mbps{r.uniform(2000.0, 20000.0)};
    // a = provider (transit), b = customer; addresses from provider infra.
    const link_index li =
        topo().add_link(link_kind::interdomain, tr, cr, p31.address_at(0),
                        p31.address_at(1), cap, propagation_delay(tcity, ccity));
    apply_upstream_profile(li, customer, ccity.tz, r,
                           /*is_cloud_link=*/false);
    net_.transit_link_of[customer.value] = li;
  }

  void add_cloud_peerings(as_index idx, rng& r) {
    const as_info& info = topo().as_at(idx);
    std::vector<city_id> candidates;
    if (r.bernoulli(0.10)) {
      // A minority of networks only peer at distant PoPs (e.g. a single
      // remote IX port). Their premium-tier path detours there, which is
      // the mechanism behind pre-test tuples where the premium tier's
      // latency is clearly higher (standard_lower class).
      for (std::size_t n = 2; n <= 4; ++n) {
        const city_id pop = nth_nearest_pop_city(info.presence.front(), n);
        if (std::find(candidates.begin(), candidates.end(), pop) ==
            candidates.end()) {
          candidates.push_back(pop);
        }
      }
    } else {
      // Candidate PoP cities: nearest PoP to each presence city.
      for (const city_id c : info.presence) {
        const city_id pop = nearest_pop_city(c);
        if (std::find(candidates.begin(), candidates.end(), pop) ==
            candidates.end()) {
          candidates.push_back(pop);
        }
      }
      // Plus the second- and third-nearest PoPs to the home city
      // (multi-homed peering).
      for (std::size_t n = 1; n <= 2; ++n) {
        const city_id pop = nth_nearest_pop_city(info.presence.front(), n);
        if (std::find(candidates.begin(), candidates.end(), pop) ==
            candidates.end()) {
          candidates.push_back(pop);
        }
      }
    }
    const double extra_p =
        std::clamp(config_.mean_cloud_links - 1.0, 0.0, 2.0) / 2.0;
    const std::size_t n_links = std::min<std::size_t>(
        candidates.size(),
        1 + static_cast<std::size_t>(r.bernoulli(extra_p)) +
            static_cast<std::size_t>(r.bernoulli(extra_p * 0.7)));
    const bool skinny_port =
        state_of(idx).archetype == congestion_archetype::lossy_premium ||
        state_of(idx).archetype == congestion_archetype::std_path_episodes;
    for (std::size_t i = 0; i < n_links; ++i) {
      // Chronically troubled peerings run on small, hot ports — the
      // structural reason their premium-tier paths underperform.
      const mbps cap = skinny_port ? mbps{r.uniform(800.0, 1600.0)}
                       : (info.role == as_role::access_isp)
                           ? mbps::from_gbps(100.0)
                           : mbps{r.uniform(2000.0, 20000.0)};
      add_cloud_link(idx, candidates[i], r, cap);
    }
  }

  // Create one cloud<->AS interdomain link at PoP city `pop_c`. The AS side
  // lands on the AS's router nearest to the PoP.
  void add_cloud_link(as_index idx, city_id pop_c, rng& r, mbps capacity) {
    const router_index gr = *topo().router_of(net_.cloud, pop_c);
    const router_index ar = nearest_router_of(idx, pop_c);
    const ipv4_prefix p31 = interconnect_alloc_->allocate(31);
    const city_info& gcity = geo().city(pop_c);
    const city_info& acity = geo().city(topo().router_at(ar).city);
    // a = cloud, b = neighbor; both interface addresses come from the
    // cloud's interconnect pool (provider-side addressing).
    const link_index li = topo().add_link(
        link_kind::interdomain, gr, ar, p31.address_at(0), p31.address_at(1),
        capacity, propagation_delay(gcity, acity));
    apply_upstream_profile(li, idx, acity.tz, r, /*is_cloud_link=*/true);
  }

  // Load profile for an AS's upstream link (cloud peering or transit).
  // Direction conventions: a = provider/cloud side, b = edge AS side, so
  // b_to_a is the AS -> cloud/transit (ingress/download-test) direction.
  void apply_upstream_profile(link_index li, as_index edge_as,
                              timezone_offset tz, rng& r, bool is_cloud_link) {
    const as_build_state& st = state_of(edge_as);
    const as_role role = topo().as_at(edge_as).role;
    const bool carrier =
        role == as_role::tier1 || role == as_role::transit;
    load_profile prof;
    prof.tz = tz;
    // Toward the edge AS (upload-test data direction): eyeball downstream
    // background, moderate.
    prof.fwd = {r.uniform(0.25, 0.45), r.uniform(0.12, 0.28), 0.05, 0.12,
                episode_kind::none, 0, 0, 0};
    // Toward the provider/cloud (download-test data direction).
    prof.rev = {r.uniform(0.26, 0.48), r.uniform(0.05, 0.16), 0.065, 0.10,
                episode_kind::none, 0, 0, 0};
    // Systematic tilt behind Fig. 5: direct edge peering ports run hotter
    // than the fat carrier interconnects at region PoPs, so premium-tier
    // paths (edge peering near the endpoint) see slightly less headroom
    // than standard-tier paths (carrier interconnect at the region).
    if (is_cloud_link) {
      const bool skinny =
          st.archetype == congestion_archetype::lossy_premium ||
          st.archetype == congestion_archetype::std_path_episodes;
      prof.rev.base_util += carrier ? -0.06 : (skinny ? 0.16 : 0.07);
      prof.rev.base_util = std::clamp(prof.rev.base_util, 0.05, 0.64);
    }

    episode_kind kind = episode_kind::none;
    bool episodes_on_this_link = false;
    switch (st.archetype) {
      case congestion_archetype::none:
        break;
      case congestion_archetype::evening_eyeball:
        kind = episode_kind::evening_peak;
        episodes_on_this_link = true;  // both upstream kinds affected
        break;
      case congestion_archetype::daytime_reverse:
        kind = episode_kind::daytime;
        episodes_on_this_link = is_cloud_link;  // the Cox case: peerings only
        break;
      case congestion_archetype::all_day:
        kind = episode_kind::all_day;
        episodes_on_this_link = is_cloud_link;
        break;
      case congestion_archetype::lossy_premium:
        if (is_cloud_link) {
          // Lossy premium peering: a small persistent floor plus daytime
          // overload episodes. The episodes produce the >10% *average*
          // measured loss the paper reports while most individual tests
          // stay within a moderate throughput deficit.
          prof.rev.episodes = episode_kind::daytime;
          prof.rev.episode_prob = r.uniform(0.55, 0.80);
          prof.rev.episode_severity = r.uniform(0.6, 1.0);
          net_.planted.push_back({li, link_dir::b_to_a, episode_kind::daytime});
        }
        break;
      case congestion_archetype::std_path_episodes:
        if (!is_cloud_link) {
          // Standard-tier path (via transit) congests in the evening.
          kind = episode_kind::evening_peak;
          episodes_on_this_link = true;
        } else {
          // The premium peering congests in daytime too (Fig. 5's premium
          // throughput deficit for these targets).
          prof.rev.episodes = episode_kind::daytime;
          prof.rev.episode_prob = r.uniform(0.15, 0.30);
          prof.rev.episode_severity = r.uniform(0.45, 0.8);
          net_.planted.push_back({li, link_dir::b_to_a, episode_kind::daytime});
        }
        break;
    }

    if (episodes_on_this_link && kind != episode_kind::none) {
      // Congestion in the AS -> cloud direction (the paper's ingress
      // congestion; Cox's reverse-path case).
      prof.rev.episodes = kind;
      prof.rev.episode_prob = st.episode_prob;
      prof.rev.episode_severity = (kind == episode_kind::daytime)
                                      ? r.uniform(0.6, 1.1)
                                      : r.uniform(0.45, 0.95);
      net_.planted.push_back({li, link_dir::b_to_a, kind});
      // Evening congestion also mildly affects the downstream direction.
      if (kind == episode_kind::evening_peak && r.bernoulli(0.3)) {
        prof.fwd.episodes = kind;
        prof.fwd.episode_prob = st.episode_prob * 0.5;
        prof.fwd.episode_severity = r.uniform(0.3, 0.6);
        net_.planted.push_back({li, link_dir::a_to_b, kind});
      }
    }
    topo().link_at(li).load_profile = net_.load->add_profile(prof);
  }

  router_index nearest_router_of(as_index idx, city_id target) const {
    const as_info& info = net_.topo->as_at(idx);
    const city_info& t = geo().city(target);
    double best = 1e18;
    city_id best_city = info.presence.front();
    for (const city_id c : info.presence) {
      const double d = haversine_km(geo().city(c), t);
      if (d < best) {
        best = d;
        best_city = c;
      }
    }
    return *net_.topo->router_of(idx, best_city);
  }

  router_index farthest_router_of(as_index idx, city_id target) const {
    const as_info& info = net_.topo->as_at(idx);
    const city_info& t = geo().city(target);
    double best = -1.0;
    city_id best_city = info.presence.front();
    for (const city_id c : info.presence) {
      const double d = haversine_km(geo().city(c), t);
      if (d > best) {
        best = d;
        best_city = c;
      }
    }
    return *net_.topo->router_of(idx, best_city);
  }

  city_id nearest_pop_city(city_id from) const {
    return nth_nearest_pop_city(from, 0);
  }
  city_id second_nearest_pop_city(city_id from) const {
    return nth_nearest_pop_city(from, 1);
  }
  city_id nth_nearest_pop_city(city_id from, std::size_t n) const {
    const city_info& f = geo().city(from);
    std::vector<std::pair<double, city_id>> dist;
    dist.reserve(net_.pop_cities.size());
    for (const city_id c : net_.pop_cities) {
      dist.emplace_back(haversine_km(geo().city(c), f), c);
    }
    std::sort(dist.begin(), dist.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return dist[std::min(n, dist.size() - 1)].second;
  }

  std::vector<city_id> region_pop_cities() const {
    static const char* const kRegionCities[] = {
        "The Dalles, OR", "Los Angeles, CA", "Las Vegas, NV",
        "Moncks Corner, SC", "Ashburn, VA", "Council Bluffs, IA",
        "St. Ghislain"};
    std::vector<city_id> out;
    for (const char* n : kRegionCities) out.push_back(geo().city_by_name(n).id);
    return out;
  }

  void register_ipinfo(as_index idx, business_type type, rng& r) {
    if (!r.bernoulli(config_.ipinfo_missing_fraction)) {
      net_.ipinfo.add(topo().as_at(idx).number, type, topo().as_at(idx).name);
    }
  }

  // --- vantage points ------------------------------------------------------

  void build_vantage_points() {
    rng vp_rng = root_.fork("vps");
    // Speedchecker has probes inside every major ISP: seed one VP per
    // presence city of each named eyeball AS so the differential pre-test
    // can always form tuples for the paper's case-study networks.
    for (const named_as_spec& spec : kNamedEyeballs) {
      const auto idx = topo().find_as(asn{spec.number});
      if (!idx) continue;
      for (const city_id c : topo().as_at(*idx).presence) {
        const host_index h =
            net_.attach_host(*idx, c, host_flavor::vantage_point,
                             mbps{vp_rng.uniform(100.0, 500.0)}, vp_rng);
        net_.vantage_points.push_back(h);
      }
    }
    // Eligible ASes: eyeball ISPs.
    std::vector<as_index> eyeballs;
    for (const as_info& a : topo().ases()) {
      if (a.role == as_role::access_isp || a.role == as_role::regional_isp) {
        eyeballs.push_back(a.index);
      }
    }
    for (std::size_t i = 0;
         i < config_.vantage_point_count && !eyeballs.empty(); ++i) {
      const as_index a = vp_rng.pick(eyeballs);
      const as_info& info = topo().as_at(a);
      const city_id c = vp_rng.pick(info.presence);
      const host_index h =
          net_.attach_host(a, c, host_flavor::vantage_point,
                           mbps{vp_rng.uniform(100.0, 500.0)}, vp_rng);
      net_.vantage_points.push_back(h);
    }
  }

 private:
  internet_config config_;
  rng root_;
  internet net_;
  std::unique_ptr<prefix_allocator> block_alloc_;
  std::unique_ptr<prefix_allocator> interconnect_alloc_;
  std::unique_ptr<prefix_allocator> cloud_infra_;
  std::vector<as_index> carriers_;
  std::unordered_map<std::uint32_t, as_build_state> states_;
  std::unordered_map<std::uint32_t, prefix_allocator> blocks_;
  std::vector<city_id> us_cities_;
  std::vector<city_id> intl_cities_;
};

}  // namespace

congestion_archetype internet::archetype(as_index a) const {
  const auto it = archetype_of_as.find(a.value);
  return it == archetype_of_as.end() ? congestion_archetype::none : it->second;
}

ipv4_addr internet::allocate_host_address(as_index owner, rng& r) {
  const auto it = host_pools.find(owner.value);
  if (it == host_pools.end() || it->second.empty()) {
    throw not_found_error("internet: AS " + topo->as_at(owner).name +
                          " has no host address pool");
  }
  auto& pools = it->second;
  // Prefer a random pool, but fall through to any pool with space.
  const std::size_t start = static_cast<std::size_t>(
      r.uniform_int(0, static_cast<std::int64_t>(pools.size()) - 1));
  for (std::size_t k = 0; k < pools.size(); ++k) {
    auto& pool = pools[(start + k) % pools.size()];
    if (pool.remaining() > 0) return pool.allocate(32).base();
  }
  throw state_error("internet: host pools exhausted for AS " +
                    topo->as_at(owner).name);
}

host_index internet::attach_host(as_index owner, city_id city,
                                 host_flavor flavor, mbps nic_capacity,
                                 rng& r) {
  const auto router = topo->router_of(owner, city);
  if (!router) {
    throw not_found_error("internet: AS " + topo->as_at(owner).name +
                          " has no presence in city " +
                          geo->city(city).name);
  }
  const ipv4_addr addr = allocate_host_address(owner, r);
  const host_index h = topo->add_host(owner, city, addr, *router, nic_capacity);

  load_profile prof;
  prof.tz = geo->city(city).tz;
  switch (flavor) {
    case host_flavor::server:
      // rev (host -> network) carries the download-test data: the server's
      // shared serving load lives there.
      prof.rev = {r.uniform(0.30, 0.62), r.uniform(0.05, 0.18), 0.07, 0.10,
                  episode_kind::none, 0, 0, 0};
      prof.fwd = {r.uniform(0.05, 0.20), r.uniform(0.05, 0.15), 0.05, 0.10,
                  episode_kind::none, 0, 0, 0};
      break;
    case host_flavor::vantage_point:
      prof.rev = {r.uniform(0.10, 0.30), r.uniform(0.10, 0.25), 0.06, 0.15,
                  episode_kind::none, 0, 0, 0};
      prof.fwd = {r.uniform(0.15, 0.40), r.uniform(0.10, 0.30), 0.06, 0.15,
                  episode_kind::none, 0, 0, 0};
      break;
    case host_flavor::vm:
      // Shared-tenancy contention on the VM host NIC is small but nonzero.
      prof.rev = {0.02, 0.02, 0.02, 0.0, episode_kind::none, 0, 0, 0};
      prof.fwd = {0.02, 0.02, 0.02, 0.0, episode_kind::none, 0, 0, 0};
      break;
  }
  topo->link_at(topo->host_at(h).access).load_profile =
      load->add_profile(prof);
  return h;
}

internet generate_internet(const internet_config& config) {
  internet_builder builder(config);
  return builder.build();
}

asn cloud_asn() { return asn{kCloudAsn}; }

ipv4_prefix cloud_interconnect_pool() { return kInterconnectPool; }

}  // namespace clasp

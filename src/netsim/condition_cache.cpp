#include "netsim/condition_cache.hpp"

#include "obs/families.hpp"
#include "util/error.hpp"

namespace clasp {

condition_cache::condition_cache(const internet* net)
    : net_(net),
      hits_(&obs::metrics_registry::instance().get_counter(
          obs::family::kCacheHits)),
      misses_(&obs::metrics_registry::instance().get_counter(
          obs::family::kCacheMisses)),
      prefills_(&obs::metrics_registry::instance().get_counter(
          obs::family::kCachePrefills)),
      prefill_links_(&obs::metrics_registry::instance().get_counter(
          obs::family::kCachePrefillLinks)) {
  if (net == nullptr) {
    throw invalid_argument_error("condition_cache: null net");
  }
}

void condition_cache::register_link(link_index l) {
  // The cloud layer attaches VM access links after generation, so the
  // link id space can grow between registrations.
  if (l.value >= slot_of_.size()) {
    slot_of_.resize(net_->topo->link_count(), kNoSlot);
    if (l.value >= slot_of_.size()) {
      throw invalid_argument_error("condition_cache: unknown link");
    }
  }
  if (slot_of_[l.value] != kNoSlot) return;
  slot_of_[l.value] = static_cast<std::uint32_t>(links_.size());
  const link_info& info = net_->topo->link_at(l);
  links_.push_back({l, info.load_profile, info.capacity, info.kind});
  table_.resize(2 * links_.size());
  valid_ = false;  // the new slots hold no hour's data yet
}

void condition_cache::register_path(const route_path& path) {
  if (path.src_access) register_link(path.src_access->link);
  for (const path_hop& h : path.transit_hops) register_link(h.link);
  if (path.dst_access) register_link(path.dst_access->link);
}

void condition_cache::fill_slot(std::size_t slot, hour_stamp at) {
  const registered_link& reg = links_[slot];
  table_[2 * slot] =
      net_->load->condition(reg.load_profile, reg.link, link_dir::a_to_b, at,
                            reg.capacity, reg.kind);
  table_[2 * slot + 1] =
      net_->load->condition(reg.load_profile, reg.link, link_dir::b_to_a, at,
                            reg.capacity, reg.kind);
}

void condition_cache::prefill(hour_stamp at, thread_pool* pool) {
  valid_ = false;
  if (pool != nullptr && links_.size() > 1) {
    pool->parallel_for(links_.size(),
                       [&](std::size_t slot) { fill_slot(slot, at); });
  } else {
    for (std::size_t slot = 0; slot < links_.size(); ++slot) {
      fill_slot(slot, at);
    }
  }
  epoch_ = at.hours_since_epoch();
  valid_ = true;
  prefills_->add(1);
  prefill_links_->add(links_.size());
}

}  // namespace clasp

// Hour-epoch cache of link conditions for the campaign replay hot loop.
//
// link_load_model::condition() is a pure function of
// (profile, link, dir, hour), but it costs transcendental math (Box-Muller
// log/sqrt/cos for the hour noise, exp, plus the episode hash draws) and
// the campaign replay re-evaluates it for every hop of every session's two
// paths — even though cloud-WAN, interconnect and transit-backbone links
// are shared by hundreds of sessions in the same region. This cache
// memoizes one hour's worth of conditions for a registered set of links:
// a dense 2 x links table of link_condition keyed by (link slot, dir) and
// stamped with the hour it was filled for.
//
// Usage contract (what keeps replay deterministic AND data-race free):
//  * register_link / register_path run at deployment time, before any
//    worker exists. Registration is idempotent.
//  * prefill(at) recomputes every registered entry for one hour. It is
//    called by the replay coordinator at the top of each simulated hour,
//    while no worker is evaluating (optionally fanning the recompute out
//    across an idle thread_pool — slots are disjoint, so scheduling cannot
//    change any value).
//  * lookup() is read-only and lock-free; workers call it concurrently
//    during the hour. A miss (unregistered link, or an hour other than the
//    prefilled epoch) returns nullptr and the caller falls back to the
//    direct computation — which yields bit-identical values, because the
//    cache stores exactly condition()'s outputs.
//
// The prefill-then-read phase split means no entry is ever written while
// a reader is live; the thread_pool's batch join publishes the writes to
// every worker (see DESIGN.md, "Hour-epoch link-condition caching").
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/generator.hpp"
#include "netsim/routing.hpp"
#include "obs/metrics.hpp"
#include "util/sim_time.hpp"
#include "util/thread_pool.hpp"

namespace clasp {

namespace detail {
// Per-thread hit/miss tally for the global cache counter family. Plain
// fields with constant initialization: the per-evaluation cost is two TLS
// adds and a compare, with the sharded-counter publish amortized over
// kCacheTallyFlushLookups lookups. All condition_cache instances resolve
// the same registry counters, so one process-wide tally is sound.
struct cache_tally {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
};
inline thread_local cache_tally t_cache_tally;
inline constexpr std::uint64_t kCacheTallyFlushLookups = 4096;
}  // namespace detail

class condition_cache {
 public:
  // Sentinel for "link has no table slot" (unregistered). Public so batch
  // evaluators can pre-resolve link -> slot once and test against it.
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  explicit condition_cache(const internet* net);

  // Add a link to the registered set (idempotent). Coordinator-only; must
  // not race with lookup() or prefill().
  void register_link(link_index l);
  // Register every link crossing of a path (access + transit hops).
  void register_path(const route_path& path);

  std::size_t registered_count() const { return links_.size(); }

  // Recompute both directions of every registered link for hour `at`.
  // Coordinator-only, with no concurrent readers. When `pool` is non-null
  // the recompute fans out across it (one index per link; entries are
  // disjoint, values schedule-independent).
  void prefill(hour_stamp at, thread_pool* pool = nullptr);

  // The cached condition of (l, dir) at `at`, or nullptr when the link is
  // unregistered or `at` is not the prefilled epoch. Safe to call from
  // many threads between prefills.
  const link_condition* lookup(link_index l, link_dir dir,
                               hour_stamp at) const {
    if (!valid_ || at.hours_since_epoch() != epoch_) return nullptr;
    if (l.value >= slot_of_.size()) return nullptr;
    const std::uint32_t slot = slot_of_[l.value];
    if (slot == kNoSlot) return nullptr;
    return &table_[2 * slot + (dir == link_dir::a_to_b ? 0 : 1)];
  }

  // The table slot assigned to `l`, or kNoSlot when unregistered. Slots
  // are stable once assigned (register_link only appends), so a batch
  // evaluator can resolve its paths once and reuse the indices for the
  // lifetime of the cache. Entry (slot, dir) lives at table 2*slot + dir.
  std::uint32_t slot(link_index l) const {
    return l.value < slot_of_.size() ? slot_of_[l.value] : kNoSlot;
  }

  // The dense condition table for hour `at`, or nullptr when `at` is not
  // the prefilled epoch. The same validity test lookup() performs, hoisted
  // out of per-hop loops: a batch sweep checks once, then indexes
  // table[2*slot + (dir == a_to_b ? 0 : 1)] directly.
  const link_condition* table_for(hour_stamp at) const {
    if (!valid_ || at.hours_since_epoch() != epoch_) return nullptr;
    return table_.data();
  }

  // Batched hit/miss accounting. lookup() itself stays metric-free so the
  // per-hop cost is untouched; callers tally locally per evaluation and
  // publish once (network_view::evaluate does this per path). The publish
  // lands in a thread-local tally, pushed to the sharded counters every
  // few thousand lookups; a residual below the threshold can linger per
  // thread, which the >90%-hit-ratio consumers tolerate by design.
  void note_lookups(std::uint64_t hits, std::uint64_t misses) const {
    if (!obs::enabled()) return;
    detail::cache_tally& t = detail::t_cache_tally;
    t.hits += hits;
    t.misses += misses;
    if (t.hits + t.misses >= detail::kCacheTallyFlushLookups) {
      hits_->add(t.hits);
      misses_->add(t.misses);
      t = {};
    }
  }

 private:
  // Static link attributes captured at registration, so the hourly
  // prefill walks a contiguous array instead of chasing topology entries.
  struct registered_link {
    link_index link;
    std::uint32_t load_profile{0};
    mbps capacity;
    link_kind kind{link_kind::backbone};
  };

  void fill_slot(std::size_t slot, hour_stamp at);

  const internet* net_;
  std::vector<std::uint32_t> slot_of_;  // link.value -> slot or kNoSlot
  std::vector<registered_link> links_;  // slot -> link + static attributes
  std::vector<link_condition> table_;   // 2 per slot: [a_to_b, b_to_a]
  std::int64_t epoch_{0};               // hour the table was filled for
  bool valid_{false};                   // false until the first prefill

  // Registry handles, resolved once at construction (stable pointers).
  obs::counter* const hits_;
  obs::counter* const misses_;
  obs::counter* const prefills_;
  obs::counter* const prefill_links_;
};

}  // namespace clasp

#include "netsim/network.hpp"

#include "util/error.hpp"

namespace clasp {

network_view::network_view(const internet* net)
    : net_(net),
      cache_(net ? std::make_unique<condition_cache>(net) : nullptr) {
  if (net == nullptr) throw invalid_argument_error("network_view: null net");
}

link_condition network_view::link_state(link_index l, link_dir dir,
                                        hour_stamp at) const {
  if (const link_condition* c = cache_->lookup(l, dir, at)) return *c;
  const link_info& info = net_->topo->link_at(l);
  return net_->load->condition(info.load_profile, l, dir, at, info.capacity,
                               info.kind);
}

template <typename Fn>
void network_view::for_each_hop(const route_path& path, Fn&& fn) const {
  if (path.src_access) fn(*path.src_access);
  for (const path_hop& h : path.transit_hops) fn(h);
  if (path.dst_access) fn(*path.dst_access);
}

path_metrics network_view::evaluate(const route_path& path,
                                    hour_stamp at) const {
  path_metrics m;
  m.bottleneck = mbps{1e12};
  double pass = 1.0;
  for_each_hop(path, [&](const path_hop& h) {
    const link_info& info = net_->topo->link_at(h.link);
    const link_condition data = link_state(h.link, h.dir, at);
    const link_condition ack = link_state(h.link, reverse(h.dir), at);
    m.base_rtt = m.base_rtt + info.propagation * 2.0;
    m.rtt = m.rtt + info.propagation * 2.0 + data.queue_delay +
            ack.queue_delay;
    pass *= (1.0 - data.loss_rate);
    if (data.available < m.bottleneck) {
      m.bottleneck = data.available;
      m.bottleneck_link = h.link;
      m.bottleneck_util = data.utilization;
    }
    if (data.episode) m.episode = true;
  });
  // Per-router forwarding adds a small fixed cost.
  const double router_cost_ms = 0.08 * static_cast<double>(path.routers.size());
  m.base_rtt = m.base_rtt + millis{2.0 * router_cost_ms};
  m.rtt = m.rtt + millis{2.0 * router_cost_ms};
  m.loss = 1.0 - pass;
  return m;
}

flat_path network_view::flatten(const route_path& path) const {
  flat_path flat;
  flat.hops.reserve(path.transit_hops.size() + 2);
  // base_rtt accumulates in the exact hop order evaluate(route_path) uses,
  // so the precomputed sum is bit-identical to the per-call one.
  millis base{0.0};
  for_each_hop(path, [&](const path_hop& h) {
    const link_info& info = net_->topo->link_at(h.link);
    flat_hop fh;
    fh.link = h.link;
    fh.dir = h.dir;
    fh.kind = info.kind;
    fh.load_profile = info.load_profile;
    fh.capacity = info.capacity;
    fh.prop_rtt = info.propagation * 2.0;
    base = base + fh.prop_rtt;
    flat.hops.push_back(fh);
  });
  flat.router_cost_rtt =
      millis{2.0 * (0.08 * static_cast<double>(path.routers.size()))};
  flat.base_rtt = base + flat.router_cost_rtt;
  return flat;
}

path_metrics network_view::evaluate(const flat_path& path,
                                    hour_stamp at) const {
  path_metrics m;
  m.bottleneck = mbps{1e12};
  double pass = 1.0;
  // Cache accounting stays in registers across the hop loop and is
  // published once per evaluation (batched sharded add), so the campaign
  // hot loop pays ~2 atomic adds per path instead of 2 per hop.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  for (const flat_hop& h : path.hops) {
    link_condition data;
    link_condition ack;
    if (const link_condition* c = cache_->lookup(h.link, h.dir, at)) {
      data = *c;
      ack = *cache_->lookup(h.link, reverse(h.dir), at);
      cache_hits += 2;
    } else {
      data = net_->load->condition(h.load_profile, h.link, h.dir, at,
                                   h.capacity, h.kind);
      ack = net_->load->condition(h.load_profile, h.link, reverse(h.dir), at,
                                  h.capacity, h.kind);
      cache_misses += 2;
    }
    m.rtt = m.rtt + h.prop_rtt + data.queue_delay + ack.queue_delay;
    pass *= (1.0 - data.loss_rate);
    if (data.available < m.bottleneck) {
      m.bottleneck = data.available;
      m.bottleneck_link = h.link;
      m.bottleneck_util = data.utilization;
    }
    if (data.episode) m.episode = true;
  }
  m.base_rtt = path.base_rtt;
  m.rtt = m.rtt + path.router_cost_rtt;
  m.loss = 1.0 - pass;
  cache_->note_lookups(cache_hits, cache_misses);
  return m;
}

std::size_t path_arena::add(const flat_path& path) {
  const std::size_t index = size();
  hops_.insert(hops_.end(), path.hops.begin(), path.hops.end());
  cond_.resize(hops_.size(), kUnresolved);
  offsets_.push_back(static_cast<std::uint32_t>(hops_.size()));
  base_rtt_.push_back(path.base_rtt);
  router_cost_rtt_.push_back(path.router_cost_rtt);
  return index;
}

void path_arena::resolve(const condition_cache& cache) {
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    const std::uint32_t slot = cache.slot(hops_[i].link);
    cond_[i] = slot == condition_cache::kNoSlot
                   ? kUnresolved
                   : 2 * slot +
                         (hops_[i].dir == link_dir::a_to_b ? 0u : 1u);
  }
}

void network_view::evaluate_batch(const path_arena& arena, hour_stamp at,
                                  std::size_t begin_path,
                                  std::size_t end_path,
                                  path_metrics* out) const {
  const link_condition* table = cache_->table_for(at);
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  for (std::size_t p = begin_path; p < end_path; ++p) {
    path_metrics m;
    m.bottleneck = mbps{1e12};
    double pass = 1.0;
    const std::uint32_t hop_end = arena.offsets_[p + 1];
    for (std::uint32_t i = arena.offsets_[p]; i < hop_end; ++i) {
      const flat_hop& h = arena.hops_[i];
      link_condition data;
      link_condition ack;
      const std::uint32_t c = arena.cond_[i];
      if (table != nullptr && c != path_arena::kUnresolved) {
        data = table[c];
        ack = table[c ^ 1u];  // same slot, opposite direction bit
        cache_hits += 2;
      } else {
        data = net_->load->condition(h.load_profile, h.link, h.dir, at,
                                     h.capacity, h.kind);
        ack = net_->load->condition(h.load_profile, h.link, reverse(h.dir),
                                    at, h.capacity, h.kind);
        cache_misses += 2;
      }
      m.rtt = m.rtt + h.prop_rtt + data.queue_delay + ack.queue_delay;
      pass *= (1.0 - data.loss_rate);
      if (data.available < m.bottleneck) {
        m.bottleneck = data.available;
        m.bottleneck_link = h.link;
        m.bottleneck_util = data.utilization;
      }
      if (data.episode) m.episode = true;
    }
    m.base_rtt = arena.base_rtt_[p];
    m.rtt = m.rtt + arena.router_cost_rtt_[p];
    m.loss = 1.0 - pass;
    out[p] = m;
  }
  cache_->note_lookups(cache_hits, cache_misses);
}

millis network_view::base_rtt(const route_path& path) const {
  millis total{0.0};
  for_each_hop(path, [&](const path_hop& h) {
    total = total + net_->topo->link_at(h.link).propagation * 2.0;
  });
  return total + millis{0.16 * static_cast<double>(path.routers.size())};
}

millis network_view::delay_to_router(const route_path& path,
                                     std::size_t router_i,
                                     hour_stamp at) const {
  if (router_i >= path.routers.size()) {
    throw invalid_argument_error("network_view: router index out of range");
  }
  millis total{0.0};
  if (path.src_access) {
    const link_info& info = net_->topo->link_at(path.src_access->link);
    const link_condition c = link_state(path.src_access->link,
                                        path.src_access->dir, at);
    total = total + info.propagation + c.queue_delay;
  }
  for (std::size_t i = 0; i < router_i && i < path.transit_hops.size(); ++i) {
    const path_hop& h = path.transit_hops[i];
    const link_info& info = net_->topo->link_at(h.link);
    const link_condition c = link_state(h.link, h.dir, at);
    total = total + info.propagation + c.queue_delay;
  }
  return total + millis{0.08 * static_cast<double>(router_i + 1)};
}

bool network_view::episode_on_path(const route_path& path,
                                   hour_stamp at) const {
  bool active = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  for_each_hop(path, [&](const path_hop& h) {
    if (active) return;
    if (const link_condition* c = cache_->lookup(h.link, h.dir, at)) {
      active = c->episode;
      ++cache_hits;
      return;
    }
    ++cache_misses;
    const link_info& info = net_->topo->link_at(h.link);
    if (net_->load->episode_active(info.load_profile, h.link, h.dir, at)) {
      active = true;
    }
  });
  cache_->note_lookups(cache_hits, cache_misses);
  return active;
}

}  // namespace clasp

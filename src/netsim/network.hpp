// Instantaneous evaluation of a path against the load model.
//
// network_view is the read-side facade the measurement tools use: given a
// route_path and an hour, it walks every link crossing, asks the load
// model for that link direction's condition, and aggregates RTT
// (propagation + bidirectional queueing), data-direction loss and the
// bottleneck available bandwidth.
//
// Two complementary fast paths serve the campaign replay hot loop:
//  * an hour-epoch condition_cache owned by the view: once the replay
//    coordinator prefills it for an hour, every link_state / evaluate
//    call backed by a registered link becomes a table lookup instead of
//    recomputing the load model's transcendental math (the prober and
//    every other view client reuse the same cached hour for free);
//  * flat_path: a route_path flattened at session-construction time into
//    a contiguous hop array with the static per-hop terms (propagation
//    RTT, capacity, profile, kind) and the propagation-only RTT
//    precomputed, removing the optional-access branches and link_at
//    indirections from the per-test inner loop.
// Both are bit-identical to the plain route_path walk: the cache stores
// exactly condition()'s outputs and the flat walk performs the same
// floating-point operations in the same order.
#pragma once

#include <memory>
#include <vector>

#include "netsim/condition_cache.hpp"
#include "netsim/generator.hpp"
#include "netsim/routing.hpp"

namespace clasp {

// Aggregated condition of one path at one hour.
struct path_metrics {
  millis base_rtt;     // propagation-only round trip
  millis rtt;          // round trip including queueing delay both ways
  double loss{0.0};    // cumulative data-direction loss probability
  mbps bottleneck;     // minimum available bandwidth along the path
  link_index bottleneck_link;
  double bottleneck_util{0.0};  // utilization of the bottleneck link
  bool episode{false};          // a planted episode was active on the path
};

// One link crossing of a flattened path with its static terms hoisted out
// of the inner loop.
struct flat_hop {
  link_index link;
  link_dir dir;                // data direction
  link_kind kind{link_kind::backbone};
  std::uint32_t load_profile{0};
  mbps capacity;
  millis prop_rtt;             // propagation * 2 (both directions)
};

// A route_path flattened for repeated evaluation (see file comment).
struct flat_path {
  std::vector<flat_hop> hops;  // src access + transit + dst access
  millis base_rtt;             // full propagation-only RTT incl. router cost
  millis router_cost_rtt;      // 2 * 0.08 ms * router count
};

// Structure-of-arrays twin of a set of flat_paths: every path's hops are
// concatenated into one shared hop arena addressed by a CSR offsets array,
// with the per-path static terms (base RTT, router cost) in parallel
// arrays. A per-hour sweep over all paths then walks memory linearly
// instead of chasing one std::vector per session.
//
// Lifetime rules: add() every path at deployment time, then resolve()
// once against the view's condition_cache (slots are stable once
// assigned, so resolution survives later prefills; links registered with
// the cache *after* resolve() simply stay on the compute fallback). The
// arena is immutable afterwards and safe to share across reader threads.
class path_arena {
 public:
  // "Hop has no resolved condition-table entry" sentinel; such hops fall
  // back to the direct load-model computation (bit-identical by contract).
  static constexpr std::uint32_t kUnresolved = ~std::uint32_t{0};

  // Append a path; returns its index. Paths are evaluated in add() order.
  std::size_t add(const flat_path& path);

  // Map each hop to its condition-table entry 2*slot + dir_bit (or
  // kUnresolved). Coordinator-only; idempotent.
  void resolve(const condition_cache& cache);

  std::size_t size() const { return offsets_.size() - 1; }
  std::size_t hop_count() const { return hops_.size(); }

 private:
  friend class network_view;
  std::vector<flat_hop> hops_;          // all paths' hops, concatenated
  std::vector<std::uint32_t> cond_;     // per hop: table index or kUnresolved
  std::vector<std::uint32_t> offsets_{0};  // path i = [offsets_[i], offsets_[i+1])
  std::vector<millis> base_rtt_;           // per path
  std::vector<millis> router_cost_rtt_;    // per path
};

class network_view {
 public:
  explicit network_view(const internet* net);

  // Condition of one link direction at one hour (cache lookup when the
  // link is registered and the hour prefilled; direct computation else).
  link_condition link_state(link_index l, link_dir dir, hour_stamp at) const;

  // Aggregate over every hop of a path.
  path_metrics evaluate(const route_path& path, hour_stamp at) const;

  // Flatten a path once; evaluate(flat, at) then walks a contiguous hop
  // array. Bit-identical to evaluate(path, at).
  flat_path flatten(const route_path& path) const;
  path_metrics evaluate(const flat_path& path, hour_stamp at) const;

  // Batched evaluation: compute metrics for arena paths
  // [begin_path, end_path) at hour `at`, writing out[p] for each absolute
  // path index p. Each hop whose condition-table entry resolved reads the
  // prefilled table directly (one validity check per call, hoisted out of
  // the hop loop); unresolved hops and non-prefilled hours fall back to
  // the load model. Bit-identical to evaluate(flat_path) per path — same
  // floating-point operations in the same order. Disjoint [begin, end)
  // ranges may run on different threads between prefills.
  void evaluate_batch(const path_arena& arena, hour_stamp at,
                      std::size_t begin_path, std::size_t end_path,
                      path_metrics* out) const;

  // Propagation-only round-trip time (no load model; used for latency
  // floor assertions and 5th-percentile sanity checks).
  millis base_rtt(const route_path& path) const;

  // Cumulative one-way delay from the source to the i-th router of the
  // path (traceroute per-hop RTT support; includes queueing).
  millis delay_to_router(const route_path& path, std::size_t router_i,
                         hour_stamp at) const;

  // True when a planted episode is active on any hop (ground truth).
  bool episode_on_path(const route_path& path, hour_stamp at) const;

  // The hour-epoch condition cache shared by every client of this view.
  // Campaign runners register their sessions' links at deploy() time and
  // prefill at the top of each replayed hour; see condition_cache.hpp for
  // the coordinator-only write contract.
  condition_cache& link_cache() const { return *cache_; }

  const internet& net() const { return *net_; }

 private:
  template <typename Fn>
  void for_each_hop(const route_path& path, Fn&& fn) const;

  const internet* net_;
  std::unique_ptr<condition_cache> cache_;
};

}  // namespace clasp

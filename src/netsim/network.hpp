// Instantaneous evaluation of a path against the load model.
//
// network_view is the read-side facade the measurement tools use: given a
// route_path and an hour, it walks every link crossing, asks the load
// model for that link direction's condition, and aggregates RTT
// (propagation + bidirectional queueing), data-direction loss and the
// bottleneck available bandwidth.
#pragma once

#include "netsim/generator.hpp"
#include "netsim/routing.hpp"

namespace clasp {

// Aggregated condition of one path at one hour.
struct path_metrics {
  millis base_rtt;     // propagation-only round trip
  millis rtt;          // round trip including queueing delay both ways
  double loss{0.0};    // cumulative data-direction loss probability
  mbps bottleneck;     // minimum available bandwidth along the path
  link_index bottleneck_link;
  double bottleneck_util{0.0};  // utilization of the bottleneck link
  bool episode{false};          // a planted episode was active on the path
};

class network_view {
 public:
  explicit network_view(const internet* net);

  // Condition of one link direction at one hour.
  link_condition link_state(link_index l, link_dir dir, hour_stamp at) const;

  // Aggregate over every hop of a path.
  path_metrics evaluate(const route_path& path, hour_stamp at) const;

  // Propagation-only round-trip time (no load model; used for latency
  // floor assertions and 5th-percentile sanity checks).
  millis base_rtt(const route_path& path) const;

  // Cumulative one-way delay from the source to the i-th router of the
  // path (traceroute per-hop RTT support; includes queueing).
  millis delay_to_router(const route_path& path, std::size_t router_i,
                         hour_stamp at) const;

  // True when a planted episode is active on any hop (ground truth).
  bool episode_on_path(const route_path& path, hour_stamp at) const;

  const internet& net() const { return *net_; }

 private:
  template <typename Fn>
  void for_each_hop(const route_path& path, Fn&& fn) const;

  const internet* net_;
};

}  // namespace clasp

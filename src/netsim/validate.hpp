// Topology integrity validation.
//
// The generator builds tens of thousands of objects with cross-references
// (routers -> ASes, links -> routers, hosts -> links, prefixes -> cities,
// interface addresses -> owners). validate_topology() checks every
// structural invariant the rest of the library assumes and returns a
// list of human-readable violations — run by the generator tests and
// available to users who build custom topologies by hand.
#pragma once

#include <string>
#include <vector>

#include "netsim/generator.hpp"

namespace clasp {

struct validation_issue {
  enum class severity { error, warning };
  severity level{severity::error};
  std::string what;
};

struct validation_report {
  std::vector<validation_issue> issues;

  std::size_t error_count() const;
  std::size_t warning_count() const;
  bool ok() const { return error_count() == 0; }
};

// Structural checks on a bare topology:
//  * every router's owner exists and owns it back (presence list),
//  * every link's endpoints exist; no self-links except host-access stubs,
//  * interface addresses are globally unique,
//  * every host's access link and attach router are consistent,
//  * every announced prefix's anchor is a presence city of its AS,
//  * announced prefixes of different ASes do not overlap.
validation_report validate_topology(const topology& topo);

// Additional checks on a generated internet:
//  * the cloud AS exists with PoPs in every listed city,
//  * every non-carrier AS has a primary transit and a transit link,
//  * every link's load profile id is registered,
//  * every planted episode's link/direction really has episode parameters,
//  * every vantage point is an attached host.
validation_report validate_internet(const internet& net);

}  // namespace clasp

// Speed-test platforms and server fleets (Ookla / M-Lab / Comcast Xfinity
// analogues).
//
// deploy_servers() places a synthetic fleet matching the paper's March
// 2021 crawl statistics: >11,000 servers globally, ~1,330 in the U.S.
// across ~799 ASes, mostly in ISP networks, with Ookla requiring >=1 Gbps
// server uplinks. The registry then plays the role of the paper's server
// crawler: it exposes per-server metadata (IP, network name, AS, city,
// platform) that the selection methods consume.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netsim/generator.hpp"

namespace clasp {

enum class speedtest_platform { ookla, mlab, comcast };

const char* to_string(speedtest_platform p);

struct speed_server {
  std::size_t id{0};
  speedtest_platform platform{speedtest_platform::ookla};
  std::string name;       // "<network> (<city>)" as shown in server pickers
  host_index host;
  as_index owner;
  asn network;
  city_id city;
  std::string country;    // ISO alpha-2
  mbps capacity{mbps::from_gbps(1.0)};
  // Withdrawn servers stay addressable by id but vanish from crawls.
  bool withdrawn{false};
  // Synthetic fleet-scale replica (internet_config::fleet_scale > 1):
  // shares its base server's host attachment, so it adds measurement load
  // without changing the generated world. Replicas are excluded from
  // crawls and selection; campaigns reach them via with_replicas().
  bool replica{false};
};

struct server_deploy_config {
  std::size_t us_server_target{1330};
  std::size_t global_server_target{11200};
  // Fraction of servers per platform (Ookla dominates deployments).
  double ookla_fraction{0.80};
  double mlab_fraction{0.12};
  // Business-type mix of hosting ASes (Fig. 8: most servers are in ISPs).
  double isp_fraction{0.72};
  double hosting_fraction{0.14};
  double education_fraction{0.08};
  double business_fraction{0.06};
};

class server_registry {
 public:
  const std::vector<speed_server>& all() const { return servers_; }

  // Fleet churn (the §5 re-pilot motivation: "any new deployment of
  // speed test servers"). add_server attaches a new host in the AS's
  // given city and returns the server id; retire_server marks a server
  // withdrawn (crawls stop returning it, lookups by id still work).
  std::size_t add_server(internet& net, as_index owner, city_id city,
                         speedtest_platform platform, mbps capacity, rng& r);
  void retire_server(std::size_t id);
  bool retired(std::size_t id) const;
  std::size_t size() const { return servers_.size(); }
  const speed_server& server(std::size_t id) const;

  // The crawler interface: servers filtered by country.
  std::vector<std::size_t> crawl(const std::string& country) const;
  // Servers in an exact <city, AS> (differential selection).
  std::vector<std::size_t> in_city_as(city_id city, asn network) const;
  // Number of distinct ASes hosting servers in a country.
  std::size_t distinct_ases(const std::string& country) const;

  // --- synthetic fleet scaling (internet_config::fleet_scale) ---
  // Replica id layout: round r's copy of base server b has id
  // base_count() * r + b, rounds appended after the base fleet in order.
  // Deployment and selection never see replicas, so a scaled world's base
  // fleet (ids, hosts, paths) is byte-identical to the 1x world.
  std::size_t base_count() const { return base_count_; }
  std::size_t replication() const { return replication_; }
  // Expand a list of base server ids with their replicas (round-major:
  // the input order first, then each round's copies in the same order).
  // Identity at 1x. Throws invalid_argument_error for a non-base id.
  std::vector<std::size_t> with_replicas(
      const std::vector<std::size_t>& ids) const;

 private:
  friend server_registry deploy_servers(internet& net,
                                        const server_deploy_config& config);
  std::vector<speed_server> servers_;
  std::size_t base_count_{0};     // fleet size before replication
  std::size_t replication_{1};    // fleet_scale the fleet was built with
};

// Place the fleet into the topology (attaches hosts + access profiles).
server_registry deploy_servers(internet& net,
                               const server_deploy_config& config);

}  // namespace clasp

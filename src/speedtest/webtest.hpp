// Web speed-test execution (the headless-Chromium script analogue).
//
// A speed_test_session binds one measurement VM to one server and caches
// the four unidirectional paths it needs (download data path server->VM,
// upload data path VM->server, both on the VM's network tier). run()
// evaluates the paths at an hour and produces the report the web UI would
// show plus the tcpdump-derived flow statistics the analysis pipeline
// uses (RTT, loss).
#pragma once

#include "cloud/gcp.hpp"
#include "netsim/network.hpp"
#include "speedtest/registry.hpp"
#include "tcp/model.hpp"
#include "util/sim_time.hpp"

namespace clasp {

// What one hourly test yields (web UI numbers + captured flow stats).
struct speed_test_report {
  std::size_t server_id{0};
  hour_stamp at;
  service_tier tier{service_tier::premium};
  mbps download;
  mbps upload;
  millis latency;
  double download_loss{0.0};
  double upload_loss{0.0};
  bool download_loss_limited{false};
  megabytes volume_down;
  megabytes volume_up;
  bool ground_truth_episode{false};  // planted episode active on a path
};

struct speed_test_config {
  tcp_config tcp{};
  unsigned latency_probes{10};
  double download_seconds{15.0};
  double upload_seconds{15.0};
};

class speed_test_session {
 public:
  // Paths are computed once (routing in the substrate is load-independent,
  // as BGP paths were stable over the paper's campaign).
  speed_test_session(const gcp_cloud* cloud, const network_view* view,
                     gcp_cloud::vm_id vm, const speed_server& server,
                     speed_test_config config = {});

  // Execute one test. `r` supplies client-side measurement noise.
  speed_test_report run(hour_stamp at, rng& r) const;

  // Execute one test against pre-evaluated path conditions. The batched
  // campaign sweep evaluates every session's paths for an hour in one
  // arena pass and feeds the results here; run() is exactly
  // run_with_metrics(evaluate(flat_down), evaluate(flat_up), ...), so the
  // two entry points are bit-identical for the same hour.
  speed_test_report run_with_metrics(const path_metrics& down_m,
                                     const path_metrics& up_m, hour_stamp at,
                                     rng& r) const;

  const route_path& download_path() const { return down_; }
  const route_path& upload_path() const { return up_; }
  // The flattened paths run() evaluates, in data direction. Exposed so a
  // batch evaluator (path_arena) can mirror them; evaluating these at an
  // hour reproduces run()'s inputs exactly.
  const flat_path& flat_download_path() const { return flat_down_; }
  const flat_path& flat_upload_path() const { return flat_up_; }
  std::size_t server_id() const { return server_id_; }
  gcp_cloud::vm_id vm_id() const { return vm_; }

 private:
  const gcp_cloud* cloud_;
  const network_view* view_;
  gcp_cloud::vm_id vm_;
  std::size_t server_id_;
  service_tier tier_;
  vm_shaping shaping_;
  speed_test_config config_;
  route_path down_;  // server -> VM (data direction of the download test)
  route_path up_;    // VM -> server
  flat_path flat_down_;  // down_/up_ flattened once at construction;
  flat_path flat_up_;    // run() evaluates these (bit-identical, faster)
};

}  // namespace clasp

#include "speedtest/webtest.hpp"

#include "util/error.hpp"

namespace clasp {

speed_test_session::speed_test_session(const gcp_cloud* cloud,
                                       const network_view* view,
                                       gcp_cloud::vm_id vm,
                                       const speed_server& server,
                                       speed_test_config config)
    : cloud_(cloud),
      view_(view),
      vm_(vm),
      server_id_(server.id),
      config_(config) {
  if (cloud == nullptr || view == nullptr) {
    throw invalid_argument_error("speed_test_session: null dependency");
  }
  const vm_instance& inst = cloud->vm(vm);
  tier_ = inst.tier;
  shaping_ = inst.shaping;
  const route_planner& planner = cloud->planner();
  const endpoint vm_ep = cloud->vm_endpoint(vm);
  const endpoint server_ep = planner.endpoint_of_host(server.host);
  down_ = planner.to_cloud(server_ep, vm_ep, tier_);
  up_ = planner.from_cloud(vm_ep, server_ep, tier_);
  flat_down_ = view->flatten(down_);
  flat_up_ = view->flatten(up_);
}

speed_test_report speed_test_session::run(hour_stamp at, rng& r) const {
  return run_with_metrics(view_->evaluate(flat_down_, at),
                          view_->evaluate(flat_up_, at), at, r);
}

speed_test_report speed_test_session::run_with_metrics(
    const path_metrics& down_m, const path_metrics& up_m, hour_stamp at,
    rng& r) const {
  speed_test_report report;
  report.server_id = server_id_;
  report.at = at;
  report.tier = tier_;

  // Latency phase (HTTP pings on the download path).
  report.latency = run_latency_probe(down_m, config_.latency_probes, r);

  // Download phase: server -> VM, capped by the VM's tc downlink shaping.
  tcp_config down_cfg = config_.tcp;
  down_cfg.duration_seconds = config_.download_seconds;
  const flow_result down =
      run_speedtest_flow(down_m, down_cfg, shaping_.downlink, r);
  report.download = down.goodput;
  report.download_loss = down.reported_loss;
  report.download_loss_limited = down.loss_limited;
  report.volume_down = down.volume;

  // Upload phase: VM -> server, capped by the tc uplink shaping.
  tcp_config up_cfg = config_.tcp;
  up_cfg.duration_seconds = config_.upload_seconds;
  const flow_result up = run_speedtest_flow(up_m, up_cfg, shaping_.uplink, r);
  report.upload = up.goodput;
  report.upload_loss = up.reported_loss;
  report.volume_up = up.volume;

  report.ground_truth_episode = down_m.episode || up_m.episode;
  return report;
}

}  // namespace clasp

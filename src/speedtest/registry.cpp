#include "speedtest/registry.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp {

namespace {

// The paper's named case-study servers: network ASN, display name of the
// hosting company (when it differs from the AS name), and city.
struct named_server_spec {
  std::uint32_t network;
  const char* display;  // nullptr -> use the AS name
  const char* city;
  speedtest_platform platform;
};

const named_server_spec kNamedServers[] = {
    // Cox: three Southern-California/Nevada servers (daytime reverse-path
    // congestion case, Fig. 3 & Fig. 6b).
    {22773, nullptr, "San Diego, CA", speedtest_platform::ookla},
    {22773, nullptr, "Las Vegas, NV", speedtest_platform::ookla},
    {22773, nullptr, "Santa Barbara, CA", speedtest_platform::ookla},
    // unWired / Suddenlink (Fig. 6b evening upticks).
    {33548, nullptr, "Fresno, CA", speedtest_platform::ookla},
    {19108, nullptr, "Lubbock, TX", speedtest_platform::ookla},
    {19108, nullptr, "Tulsa, OK", speedtest_platform::ookla},
    // Smarterbroadband (Fig. 6a all-day degradation).
    {46276, nullptr, "Grass Valley, CA", speedtest_platform::ookla},
    // Hosting companies with IPs inside Cogent (Fig. 6a evening peaks).
    {174, "Axigent Technologies Group", "Ashburn, VA",
     speedtest_platform::ookla},
    {174, "fdcservers.net", "Chicago, IL", speedtest_platform::ookla},
    // Differential-experiment destinations (Fig. 5 / Fig. 6c).
    {1221, nullptr, "Sydney", speedtest_platform::ookla},
    {1221, nullptr, "Melbourne", speedtest_platform::ookla},
    {136334, nullptr, "Mumbai", speedtest_platform::ookla},
    {45194, nullptr, "Mumbai", speedtest_platform::ookla},
    {9498, nullptr, "Delhi", speedtest_platform::ookla},
    {55836, nullptr, "Mumbai", speedtest_platform::ookla},
    {4804, nullptr, "Sydney", speedtest_platform::ookla},
    {7545, nullptr, "Sydney", speedtest_platform::mlab},
    // European carriers near europe-west1.
    {5432, nullptr, "Brussels", speedtest_platform::ookla},
    {6848, nullptr, "Brussels", speedtest_platform::ookla},
    {2856, nullptr, "London", speedtest_platform::ookla},
    {3320, nullptr, "Frankfurt", speedtest_platform::ookla},
    {3215, nullptr, "Paris", speedtest_platform::ookla},
};

mbps draw_capacity(speedtest_platform platform, rng& r) {
  switch (platform) {
    case speedtest_platform::ookla:
      // Ookla requires >= 1 Gbps; larger hosts provision 10 Gbps.
      return r.bernoulli(0.12) ? mbps::from_gbps(10.0) : mbps::from_gbps(1.0);
    case speedtest_platform::mlab:
      return mbps::from_gbps(1.0);
    case speedtest_platform::comcast:
      return mbps::from_gbps(10.0);
  }
  return mbps::from_gbps(1.0);
}

}  // namespace

const char* to_string(speedtest_platform p) {
  switch (p) {
    case speedtest_platform::ookla: return "ookla";
    case speedtest_platform::mlab: return "mlab";
    case speedtest_platform::comcast: return "comcast";
  }
  return "?";
}

const speed_server& server_registry::server(std::size_t id) const {
  if (id >= servers_.size()) {
    throw not_found_error("server_registry: bad server id");
  }
  return servers_[id];
}

std::vector<std::size_t> server_registry::crawl(
    const std::string& country) const {
  std::vector<std::size_t> out;
  for (const speed_server& s : servers_) {
    if (!s.withdrawn && !s.replica && s.country == country) {
      out.push_back(s.id);
    }
  }
  return out;
}

std::vector<std::size_t> server_registry::in_city_as(city_id city,
                                                     asn network) const {
  std::vector<std::size_t> out;
  for (const speed_server& s : servers_) {
    if (!s.withdrawn && !s.replica && s.city == city &&
        s.network == network) {
      out.push_back(s.id);
    }
  }
  return out;
}

std::size_t server_registry::add_server(internet& net, as_index owner,
                                        city_id city,
                                        speedtest_platform platform,
                                        mbps capacity, rng& r) {
  const host_index host =
      net.attach_host(owner, city, host_flavor::server, capacity, r);
  speed_server s;
  s.id = servers_.size();
  s.platform = platform;
  s.host = host;
  s.owner = owner;
  s.network = net.topo->as_at(owner).number;
  s.city = city;
  s.country = net.geo->city(city).country;
  s.capacity = capacity;
  s.name = net.topo->as_at(owner).name + " (" +
           net.geo->city(city).name + ")";
  servers_.push_back(std::move(s));
  return servers_.back().id;
}

void server_registry::retire_server(std::size_t id) {
  if (id >= servers_.size()) {
    throw not_found_error("server_registry: bad server id");
  }
  servers_[id].withdrawn = true;
}

bool server_registry::retired(std::size_t id) const {
  return server(id).withdrawn;
}

std::size_t server_registry::distinct_ases(const std::string& country) const {
  std::unordered_set<std::uint32_t> ases;
  for (const speed_server& s : servers_) {
    if (!s.withdrawn && !s.replica && s.country == country) {
      ases.insert(s.network.value);
    }
  }
  return ases.size();
}

std::vector<std::size_t> server_registry::with_replicas(
    const std::vector<std::size_t>& ids) const {
  if (replication_ > 1) {
    for (const std::size_t id : ids) {
      if (id >= base_count_) {
        throw invalid_argument_error(
            "server_registry: with_replicas takes base server ids");
      }
    }
  }
  std::vector<std::size_t> out;
  out.reserve(ids.size() * replication_);
  out = ids;
  for (std::size_t round = 1; round < replication_; ++round) {
    for (const std::size_t id : ids) {
      out.push_back(round * base_count_ + id);
    }
  }
  return out;
}

server_registry deploy_servers(internet& net,
                               const server_deploy_config& config) {
  server_registry registry;
  rng r = rng(net.config.seed).fork("servers");
  const topology& topo = *net.topo;
  const geo_database& geo = *net.geo;

  const auto add_server = [&](as_index owner, city_id city,
                              speedtest_platform platform,
                              const char* display) {
    const mbps capacity = draw_capacity(platform, r);
    const host_index host =
        net.attach_host(owner, city, host_flavor::server, capacity, r);
    speed_server s;
    s.id = registry.servers_.size();
    s.platform = platform;
    s.host = host;
    s.owner = owner;
    s.network = topo.as_at(owner).number;
    s.city = city;
    s.country = geo.city(city).country;
    s.capacity = capacity;
    const std::string company =
        (display != nullptr) ? display : topo.as_at(owner).name;
    s.name = company + " (" + geo.city(city).name + ")";
    registry.servers_.push_back(std::move(s));
  };

  // 1. Named case-study servers. When the AS has no router in the exact
  // city (carriers sample their footprint), fall back to its nearest
  // presence city.
  for (const named_server_spec& spec : kNamedServers) {
    const auto owner = topo.find_as(asn{spec.network});
    if (!owner) continue;  // config may have removed a named AS
    const city_info& want = geo.city_by_name(spec.city);
    const as_info& info = topo.as_at(*owner);
    city_id best = info.presence.front();
    double best_d = 1e18;
    for (const city_id c : info.presence) {
      const double d = haversine_km(geo.city(c), want);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    add_server(*owner, best, spec.platform, spec.display);
  }

  // 2. Candidate AS pools by role and country.
  struct pool_entry {
    as_index index;
    bool us;
  };
  std::vector<pool_entry> isp_pool, hosting_pool, edu_pool, biz_pool;
  for (const as_info& a : topo.ases()) {
    if (a.index == net.cloud || a.presence.empty()) continue;
    const bool us = geo.city(a.presence.front()).country == "US";
    switch (a.role) {
      case as_role::access_isp:
      case as_role::regional_isp:
        isp_pool.push_back({a.index, us});
        break;
      case as_role::hosting:
        hosting_pool.push_back({a.index, us});
        break;
      case as_role::education:
        edu_pool.push_back({a.index, us});
        break;
      case as_role::business:
        biz_pool.push_back({a.index, us});
        break;
      default:
        break;
    }
  }
  r.shuffle(isp_pool);
  r.shuffle(hosting_pool);
  r.shuffle(edu_pool);
  r.shuffle(biz_pool);

  // 3. Fill to the U.S. and global targets, drawing roles by the mix.
  const auto draw_platform = [&](as_role role) {
    // Comcast-platform servers only live in the Comcast AS (handled
    // separately); M-Lab prefers hosting/education sites.
    if ((role == as_role::hosting || role == as_role::education) &&
        r.bernoulli(config.mlab_fraction * 3.0)) {
      return speedtest_platform::mlab;
    }
    return r.bernoulli(config.mlab_fraction * 0.4)
               ? speedtest_platform::mlab
               : speedtest_platform::ookla;
  };

  const auto fill = [&](bool us, std::size_t target) {
    std::size_t isp_i = 0, host_i = 0, edu_i = 0, biz_i = 0;
    while (registry.servers_.size() < target) {
      const double roll = r.uniform();
      std::vector<pool_entry>* pool;
      std::size_t* cursor;
      as_role role;
      if (roll < config.isp_fraction) {
        pool = &isp_pool; cursor = &isp_i; role = as_role::regional_isp;
      } else if (roll < config.isp_fraction + config.hosting_fraction) {
        pool = &hosting_pool; cursor = &host_i; role = as_role::hosting;
      } else if (roll < config.isp_fraction + config.hosting_fraction +
                            config.education_fraction) {
        pool = &edu_pool; cursor = &edu_i; role = as_role::education;
      } else {
        pool = &biz_pool; cursor = &biz_i; role = as_role::business;
      }
      // Advance to the next AS in this pool with the right country.
      std::size_t scanned = 0;
      while (scanned < pool->size() &&
             (*pool)[*cursor % pool->size()].us != us) {
        ++*cursor;
        ++scanned;
      }
      if (scanned >= pool->size()) continue;  // pool exhausted for country
      const as_index owner = (*pool)[*cursor % pool->size()].index;
      ++*cursor;
      // Speed-test servers live disproportionately in networks that are
      // not direct cloud peers (most of the cloud's thousands of peers are
      // small multi-homed organizations without public test servers).
      if (topo.as_at(owner).peers_with_cloud && r.bernoulli(0.92)) continue;
      const as_info& info = topo.as_at(owner);
      // 1-3 servers per AS, spread over its presence cities.
      const std::size_t n = 1 + static_cast<std::size_t>(r.bernoulli(0.45)) +
                            static_cast<std::size_t>(r.bernoulli(0.2));
      for (std::size_t k = 0; k < n && registry.servers_.size() < target; ++k) {
        const city_id c = info.presence[k % info.presence.size()];
        add_server(owner, c, draw_platform(role), nullptr);
      }
    }
  };

  // Comcast Xfinity platform servers (in the Comcast AS).
  if (const auto comcast = topo.find_as(asn{7922})) {
    const as_info& info = topo.as_at(*comcast);
    for (std::size_t k = 0; k < 36; ++k) {
      add_server(*comcast, info.presence[k % info.presence.size()],
                 speedtest_platform::comcast, nullptr);
    }
  }

  fill(/*us=*/true, config.us_server_target);
  fill(/*us=*/false, config.global_server_target);

  // 4. Synthetic fleet scaling: append fleet_scale - 1 replica rounds,
  // each copying the base fleet in id order. Replicas share the base
  // server's host attachment — no new topology state, no RNG draws — so
  // the base world (ids, hosts, routes, load profiles) is byte-identical
  // at every scale; only the measurement load multiplies.
  registry.base_count_ = registry.servers_.size();
  registry.replication_ = std::max<std::size_t>(net.config.fleet_scale, 1);
  for (std::size_t round = 1; round < registry.replication_; ++round) {
    for (std::size_t b = 0; b < registry.base_count_; ++b) {
      speed_server s = registry.servers_[b];
      s.id = registry.servers_.size();
      s.replica = true;
      registry.servers_.push_back(std::move(s));
    }
  }

  CLASP_LOG(info, "speedtest")
      << "deployed " << registry.size() << " servers ("
      << registry.crawl("US").size() << " US across "
      << registry.distinct_ases("US") << " ASes"
      << (registry.replication_ > 1
              ? ", fleet_scale " + std::to_string(registry.replication_)
              : std::string())
      << ")";
  return registry;
}

}  // namespace clasp

#include "tsdb/wal.hpp"

#include <filesystem>
#include <iterator>

#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "util/binio.hpp"
#include "util/error.hpp"

namespace clasp {

namespace {

// Process-wide WAL counters (one campaign writes one WAL at a time, and
// the registry aggregates across writers anyway).
struct wal_metrics {
  obs::counter* appends;
  obs::counter* bytes;
  obs::counter* flushes;
};

wal_metrics& wal_counters() {
  static wal_metrics m{
      &obs::metrics_registry::instance().get_counter(
          obs::family::kWalAppends),
      &obs::metrics_registry::instance().get_counter(obs::family::kWalBytes),
      &obs::metrics_registry::instance().get_counter(
          obs::family::kWalFlushes)};
  return m;
}

// Frames larger than this are treated as corruption, not allocation
// requests: a campaign hour's record is a few kilobytes.
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

constexpr std::uint8_t kTsdbCommitTag = 'C';

}  // namespace

wal_writer::wal_writer(const std::string& path, bool truncate)
    : path_(path),
      out_(path, truncate ? std::ios::binary | std::ios::trunc
                          : std::ios::binary | std::ios::app) {
  if (!out_) throw not_found_error("wal: cannot open " + path);
}

void wal_writer::append(std::string_view payload) {
  binary_writer header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(crc32(payload));
  out_.write(header.bytes().data(),
             static_cast<std::streamsize>(header.bytes().size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out_) throw state_error("wal: write failed on " + path_);
  bytes_written_ += 8 + payload.size();
  wal_counters().appends->add(1);
  wal_counters().bytes->add(8 + payload.size());
}

void wal_writer::flush() {
  out_.flush();
  if (!out_) throw state_error("wal: flush failed on " + path_);
  wal_counters().flushes->add(1);
}

wal_scan_result scan_wal(const std::string& path) {
  wal_scan_result result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // no log yet: nothing to recover

  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos + 8 <= content.size()) {
    binary_reader header(std::string_view(content).substr(pos, 8));
    const std::uint32_t len = header.u32();
    const std::uint32_t expect_crc = header.u32();
    if (len > kMaxRecordBytes) {
      // The full length field is on disk and nonsensical: corruption, not
      // a tear (a torn write can only shorten the file).
      result.corrupt = true;
      break;
    }
    if (pos + 8 + len > content.size()) break;  // torn mid-frame
    const std::string_view payload =
        std::string_view(content).substr(pos + 8, len);
    if (crc32(payload) != expect_crc) {
      // Every payload byte is present yet the CRC disagrees: interior
      // corruption. The valid prefix is still reported, but the caller
      // must not treat this as an ordinary torn tail.
      result.corrupt = true;
      break;
    }
    result.records.emplace_back(payload);
    pos += 8 + len;
    result.record_end.push_back(pos);
  }
  result.valid_bytes = pos;
  result.torn_tail = pos < content.size();
  return result;
}

void truncate_wal(const std::string& path, std::uint64_t valid_bytes) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size <= valid_bytes) return;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    throw state_error("wal: cannot truncate " + path + ": " + ec.message());
  }
}

std::string encode_tsdb_commit(
    hour_stamp at, std::span<const std::pair<series_ref, double>> writes) {
  binary_writer out;
  out.u8(kTsdbCommitTag);
  out.svarint(at.hours_since_epoch());
  out.varint(writes.size());
  for (const auto& [ref, value] : writes) {
    out.varint(ref);
    out.f64(value);
  }
  return out.take();
}

void apply_tsdb_commit(tsdb& db, std::string_view payload) {
  binary_reader in(payload);
  if (in.u8() != kTsdbCommitTag) {
    throw invalid_argument_error("wal: not a tsdb commit record");
  }
  const hour_stamp at{in.svarint()};
  const std::uint64_t n = in.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const series_ref ref = static_cast<series_ref>(in.varint());
    const double value = in.f64();
    db.write(ref, at, value);
  }
  if (!in.done()) {
    throw invalid_argument_error("wal: trailing bytes in commit record");
  }
}

}  // namespace clasp

// Embedded tag-indexed time-series store (InfluxDB analogue).
//
// The campaign indexes every measurement as (metric, tags, hour, value).
// Series are identified by metric name plus a sorted tag set; queries
// filter by metric and tag equality and can group results by tag or
// aggregate over time ranges. The store is append-mostly and keeps each
// series as a flat (hour, value) vector sorted by insertion time —
// campaigns append in time order, so range scans are binary searches.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/sim_time.hpp"

namespace clasp {

// Sorted tag set ("region" -> "us-west1", "server" -> "123", ...).
using tag_set = std::map<std::string, std::string>;

struct ts_point {
  hour_stamp at;
  double value{0.0};
};

// A single series: metric + tags + points.
class ts_series {
 public:
  ts_series(std::string metric, tag_set tags)
      : metric_(std::move(metric)), tags_(std::move(tags)) {}

  const std::string& metric() const { return metric_; }
  const tag_set& tags() const { return tags_; }
  const std::vector<ts_point>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  // Tag value or nullopt.
  std::optional<std::string> tag(const std::string& key) const;

  // Inline: a campaign hour appends hundreds of points through this.
  void append(hour_stamp at, double value) {
    if (!points_.empty() && at < points_.back().at) throw_out_of_order();
    points_.push_back({at, value});
  }

  // Hint that append() is about to run: pulls the vector tail into cache.
  // Purely advisory — correct (and cheap) on an empty series too.
  void prefetch_tail() const {
    __builtin_prefetch(points_.data() + points_.size(), 1);
  }

  // Points with begin <= at < end. Requires time-ordered appends (the
  // store enforces this).
  std::span<const ts_point> range(hour_stamp begin, hour_stamp end) const;

  // All raw values in a range.
  std::vector<double> values_in(hour_stamp begin, hour_stamp end) const;

 private:
  [[noreturn]] static void throw_out_of_order();

  std::string metric_;
  tag_set tags_;
  std::vector<ts_point> points_;
};

// Equality filter used by queries; empty matches everything.
struct tag_filter {
  tag_set required;
  bool matches(const tag_set& tags) const;
};

// Stable handle to a series, resolved once via tsdb::open_series. The
// campaign hot loop writes through refs so appends cost no string
// formatting and no hash-map lookup.
using series_ref = std::uint32_t;

class tsdb {
 public:
  // Append a point; creates the series on first use. Throws
  // invalid_argument_error when `at` precedes the series' last point
  // (campaigns write in time order).
  void write(const std::string& metric, const tag_set& tags, hour_stamp at,
             double value);

  // Intern a tag set: resolve (metric, tags) to a stable ref, creating
  // an empty series on first use. Refs stay valid for the store's
  // lifetime.
  series_ref open_series(const std::string& metric, const tag_set& tags);

  // Append through an interned ref (the campaign fast path). Same
  // time-order contract as the string-keyed overload. Inline: commit
  // merges every staged point of an hour through here.
  void write(series_ref ref, hour_stamp at, double value) {
    if (ref >= series_.size()) throw_bad_ref();
    series_[ref].append(at, value);
  }

  // Advisory cache warm-up for a ref an imminent write() will hit. The
  // commit loop appends to thousands of distinct series per hour, each
  // tail a cold line; prefetching a few refs ahead hides the miss
  // latency. A bad ref is silently ignored (no side effects).
  void prefetch(series_ref ref) const {
    if (ref < series_.size()) series_[ref].prefetch_tail();
  }

  // The series behind a ref (throws not_found_error on a bad ref).
  const ts_series& series_at(series_ref ref) const;

  // All series for a metric matching the filter.
  std::vector<const ts_series*> query(const std::string& metric,
                                      const tag_filter& filter = {}) const;

  // The single series with exactly these tags, or nullptr.
  const ts_series* find(const std::string& metric, const tag_set& tags) const;

  // Distinct values of `key` across a metric's series.
  std::vector<std::string> tag_values(const std::string& metric,
                                      const std::string& key) const;

  std::size_t series_count() const { return series_.size(); }
  std::size_t point_count() const;

  // Grafana-style CSV export: one row per point, tag columns in sorted
  // key order ("hour,value,<tag keys...>"). Rows come from every series
  // of the metric matching the filter.
  void export_csv(std::ostream& os, const std::string& metric,
                  const tag_filter& filter = {}) const;

  // --- durability (see DESIGN.md, "Durability & crash recovery") ---
  // Binary full snapshot: magic + version, every series in insertion
  // order (so restored series_refs equal the originals), strings carried
  // length-prefixed (non-ASCII tag values round-trip exactly), values as
  // IEEE-754 bit patterns, the whole payload CRC32-framed. restore_from
  // replaces the store's contents and throws invalid_argument_error on a
  // corrupt, truncated or version-mismatched snapshot. The path overloads
  // throw not_found_error when the file cannot be opened.
  void snapshot_to(std::ostream& os) const;
  void snapshot_to(const std::string& path) const;
  void restore_from(std::istream& is);
  void restore_from(const std::string& path);

 private:
  static std::string series_key(const std::string& metric,
                                const tag_set& tags);
  [[noreturn]] static void throw_bad_ref();

  std::vector<ts_series> series_;
  std::unordered_map<std::string, std::size_t> index_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_metric_;
};

}  // namespace clasp

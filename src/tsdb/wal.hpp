// Append-only write-ahead log with CRC32 framing.
//
// The durability layer logs every committed batch of work before the
// in-memory state that produced it can be lost: each record is framed as
//
//   [u32 payload length][u32 crc32(payload)][payload bytes]
//
// (fixed-width little-endian header via binio). A crash can tear at most
// the tail of the file; scan_wal walks records front to back, stops at
// the first short or corrupt frame, and reports how many bytes are valid
// so recovery can truncate the torn tail and trust everything before it.
//
// Payloads are opaque to the framing. Two record codecs live here:
// encode_tsdb_commit/apply_tsdb_commit carry a batch of interned
// (series_ref, value) appends for one hour — the TSDB's own recovery
// path, reusing the fast write(ref) path — while the campaign layer
// frames richer per-(VM, hour) records through the same wal_writer (see
// clasp/checkpoint.hpp).
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tsdb/tsdb.hpp"

namespace clasp {

// Appends CRC-framed records to a log file. Throws not_found_error when
// the file cannot be opened. Writes are buffered; call flush() at a
// consistency boundary (the campaign flushes once per committed hour).
class wal_writer {
 public:
  // truncate=true starts a fresh log; false appends after existing
  // records (the resume path, after scan_wal validated them).
  wal_writer(const std::string& path, bool truncate);

  void append(std::string_view payload);
  void flush();
  const std::string& path() const { return path_; }

  // Bytes appended through this writer (header + payload), excluding
  // whatever the file held before opening. Feeds the campaign heartbeat.
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t bytes_written_{0};
};

// Result of walking a log front to back. Two distinct stop reasons:
//  * torn tail — the file ends before the last frame completes. This is
//    what a crash produces; recovery truncates it and re-runs the hour.
//  * interior corruption — a frame is fully present (header readable,
//    every payload byte on disk) but its CRC does not match, or its
//    length field is absurd. Tearing cannot produce this; something
//    rewrote durable bytes. Recovery must NOT silently truncate — the
//    resume path refuses the log with a typed corruption_error.
struct wal_scan_result {
  std::vector<std::string> records;       // payloads of every valid record
  std::vector<std::uint64_t> record_end;  // file offset just past record i
  std::uint64_t valid_bytes{0};           // prefix that passed CRC framing
  bool torn_tail{false};                  // bytes past valid_bytes exist
  bool corrupt{false};                    // stop was a CRC/length mismatch
                                          // on a fully-present frame
};

// Scan a log, stopping at the first torn or corrupt frame. A missing
// file scans as empty (no records, not an error). Never throws on bad
// bytes — the caller inspects torn_tail/corrupt and decides.
wal_scan_result scan_wal(const std::string& path);

// Truncate the log to `valid_bytes` (recovery drops a torn tail or an
// incomplete record group). No-op when the file is already that short.
void truncate_wal(const std::string& path, std::uint64_t valid_bytes);

// --- TSDB commit records ---------------------------------------------------

// One committed batch of appends at a single hour, carried by series ref.
std::string encode_tsdb_commit(
    hour_stamp at, std::span<const std::pair<series_ref, double>> writes);

// Apply a record encoded by encode_tsdb_commit through tsdb::write(ref).
// Refs must have been interned (snapshot restore or a deterministic
// re-deploy) before replay. Throws invalid_argument_error on a payload
// that is not a TSDB commit record.
void apply_tsdb_commit(tsdb& db, std::string_view payload);

}  // namespace clasp

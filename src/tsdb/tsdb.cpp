#include "tsdb/tsdb.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <unordered_set>

#include "util/error.hpp"

namespace clasp {

std::optional<std::string> ts_series::tag(const std::string& key) const {
  const auto it = tags_.find(key);
  if (it == tags_.end()) return std::nullopt;
  return it->second;
}

void ts_series::throw_out_of_order() {
  throw invalid_argument_error("ts_series: out-of-order append");
}

std::span<const ts_point> ts_series::range(hour_stamp begin,
                                           hour_stamp end) const {
  const auto lo = std::lower_bound(
      points_.begin(), points_.end(), begin,
      [](const ts_point& p, hour_stamp h) { return p.at < h; });
  const auto hi = std::lower_bound(
      lo, points_.end(), end,
      [](const ts_point& p, hour_stamp h) { return p.at < h; });
  // points_.data() stays valid (possibly null) for empty vectors, where
  // &*points_.begin() would dereference the end iterator.
  return {points_.data() + (lo - points_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::vector<double> ts_series::values_in(hour_stamp begin,
                                         hour_stamp end) const {
  std::vector<double> out;
  for (const ts_point& p : range(begin, end)) out.push_back(p.value);
  return out;
}

bool tag_filter::matches(const tag_set& tags) const {
  for (const auto& [k, v] : required) {
    const auto it = tags.find(k);
    if (it == tags.end() || it->second != v) return false;
  }
  return true;
}

std::string tsdb::series_key(const std::string& metric, const tag_set& tags) {
  std::string key = metric;
  for (const auto& [k, v] : tags) {
    key += '\x1f';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

void tsdb::write(const std::string& metric, const tag_set& tags,
                 hour_stamp at, double value) {
  write(open_series(metric, tags), at, value);
}

series_ref tsdb::open_series(const std::string& metric, const tag_set& tags) {
  const std::string key = series_key(metric, tags);
  auto it = index_.find(key);
  if (it == index_.end()) {
    it = index_.emplace(key, series_.size()).first;
    series_.emplace_back(metric, tags);
    by_metric_[metric].push_back(series_.size() - 1);
  }
  return static_cast<series_ref>(it->second);
}

void tsdb::throw_bad_ref() { throw not_found_error("tsdb: bad series ref"); }

const ts_series& tsdb::series_at(series_ref ref) const {
  if (ref >= series_.size()) throw not_found_error("tsdb: bad series ref");
  return series_[ref];
}

std::vector<const ts_series*> tsdb::query(const std::string& metric,
                                          const tag_filter& filter) const {
  std::vector<const ts_series*> out;
  const auto it = by_metric_.find(metric);
  if (it == by_metric_.end()) return out;
  for (const std::size_t idx : it->second) {
    if (filter.matches(series_[idx].tags())) out.push_back(&series_[idx]);
  }
  return out;
}

const ts_series* tsdb::find(const std::string& metric,
                            const tag_set& tags) const {
  const auto it = index_.find(series_key(metric, tags));
  if (it == index_.end()) return nullptr;
  return &series_[it->second];
}

std::vector<std::string> tsdb::tag_values(const std::string& metric,
                                          const std::string& key) const {
  std::vector<std::string> out;
  const auto it = by_metric_.find(metric);
  if (it == by_metric_.end()) return out;
  std::unordered_set<std::string> seen;
  for (const std::size_t idx : it->second) {
    if (const auto v = series_[idx].tag(key)) {
      if (seen.insert(*v).second) out.push_back(*v);
    }
  }
  return out;
}

namespace {

// RFC-4180 quoting for fields containing separators or quotes.
void write_csv_field(std::ostream& os, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    os << field;
    return;
  }
  os << '"';
  for (const char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void tsdb::export_csv(std::ostream& os, const std::string& metric,
                      const tag_filter& filter) const {
  const auto matched = query(metric, filter);
  // Union of tag keys across matched series, sorted.
  std::set<std::string> keys;
  for (const ts_series* s : matched) {
    for (const auto& [k, v] : s->tags()) keys.insert(k);
  }
  os << "hour,value";
  for (const std::string& k : keys) {
    os << ',';
    write_csv_field(os, k);
  }
  os << '\n';
  for (const ts_series* s : matched) {
    for (const ts_point& p : s->points()) {
      os << p.at.hours_since_epoch() << ',' << p.value;
      for (const std::string& k : keys) {
        os << ',';
        write_csv_field(os, s->tag(k).value_or(""));
      }
      os << '\n';
    }
  }
}

std::size_t tsdb::point_count() const {
  std::size_t n = 0;
  for (const ts_series& s : series_) n += s.size();
  return n;
}

}  // namespace clasp

#include "tsdb/tsdb.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iterator>
#include <ostream>
#include <set>
#include <unordered_set>
#include <utility>

#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "util/binio.hpp"
#include "util/error.hpp"

namespace clasp {

std::optional<std::string> ts_series::tag(const std::string& key) const {
  const auto it = tags_.find(key);
  if (it == tags_.end()) return std::nullopt;
  return it->second;
}

void ts_series::throw_out_of_order() {
  throw invalid_argument_error("ts_series: out-of-order append");
}

std::span<const ts_point> ts_series::range(hour_stamp begin,
                                           hour_stamp end) const {
  const auto lo = std::lower_bound(
      points_.begin(), points_.end(), begin,
      [](const ts_point& p, hour_stamp h) { return p.at < h; });
  const auto hi = std::lower_bound(
      lo, points_.end(), end,
      [](const ts_point& p, hour_stamp h) { return p.at < h; });
  // points_.data() stays valid (possibly null) for empty vectors, where
  // &*points_.begin() would dereference the end iterator.
  return {points_.data() + (lo - points_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::vector<double> ts_series::values_in(hour_stamp begin,
                                         hour_stamp end) const {
  std::vector<double> out;
  for (const ts_point& p : range(begin, end)) out.push_back(p.value);
  return out;
}

bool tag_filter::matches(const tag_set& tags) const {
  for (const auto& [k, v] : required) {
    const auto it = tags.find(k);
    if (it == tags.end() || it->second != v) return false;
  }
  return true;
}

std::string tsdb::series_key(const std::string& metric, const tag_set& tags) {
  std::string key = metric;
  for (const auto& [k, v] : tags) {
    key += '\x1f';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

void tsdb::write(const std::string& metric, const tag_set& tags,
                 hour_stamp at, double value) {
  write(open_series(metric, tags), at, value);
}

series_ref tsdb::open_series(const std::string& metric, const tag_set& tags) {
  const std::string key = series_key(metric, tags);
  auto it = index_.find(key);
  if (it == index_.end()) {
    it = index_.emplace(key, series_.size()).first;
    series_.emplace_back(metric, tags);
    by_metric_[metric].push_back(series_.size() - 1);
  }
  return static_cast<series_ref>(it->second);
}

void tsdb::throw_bad_ref() { throw not_found_error("tsdb: bad series ref"); }

const ts_series& tsdb::series_at(series_ref ref) const {
  if (ref >= series_.size()) throw not_found_error("tsdb: bad series ref");
  return series_[ref];
}

std::vector<const ts_series*> tsdb::query(const std::string& metric,
                                          const tag_filter& filter) const {
  std::vector<const ts_series*> out;
  const auto it = by_metric_.find(metric);
  if (it == by_metric_.end()) return out;
  for (const std::size_t idx : it->second) {
    if (filter.matches(series_[idx].tags())) out.push_back(&series_[idx]);
  }
  return out;
}

const ts_series* tsdb::find(const std::string& metric,
                            const tag_set& tags) const {
  const auto it = index_.find(series_key(metric, tags));
  if (it == index_.end()) return nullptr;
  return &series_[it->second];
}

std::vector<std::string> tsdb::tag_values(const std::string& metric,
                                          const std::string& key) const {
  std::vector<std::string> out;
  const auto it = by_metric_.find(metric);
  if (it == by_metric_.end()) return out;
  std::unordered_set<std::string> seen;
  for (const std::size_t idx : it->second) {
    if (const auto v = series_[idx].tag(key)) {
      if (seen.insert(*v).second) out.push_back(*v);
    }
  }
  return out;
}

namespace {

// RFC-4180 quoting for fields containing separators or quotes.
void write_csv_field(std::ostream& os, const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    os << field;
    return;
  }
  os << '"';
  for (const char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void tsdb::export_csv(std::ostream& os, const std::string& metric,
                      const tag_filter& filter) const {
  const auto matched = query(metric, filter);
  // Union of tag keys across matched series, sorted.
  std::set<std::string> keys;
  for (const ts_series* s : matched) {
    for (const auto& [k, v] : s->tags()) keys.insert(k);
  }
  os << "hour,value";
  for (const std::string& k : keys) {
    os << ',';
    write_csv_field(os, k);
  }
  os << '\n';
  for (const ts_series* s : matched) {
    for (const ts_point& p : s->points()) {
      os << p.at.hours_since_epoch() << ',' << p.value;
      for (const std::string& k : keys) {
        os << ',';
        write_csv_field(os, s->tag(k).value_or(""));
      }
      os << '\n';
    }
  }
}

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x53544C43u;  // "CLTS" little-endian
constexpr std::uint32_t kSnapshotVersion = 1;

}  // namespace

void tsdb::snapshot_to(std::ostream& os) const {
  const auto begin = std::chrono::steady_clock::now();
  binary_writer out;
  out.u32(kSnapshotMagic);
  out.u32(kSnapshotVersion);
  out.varint(series_.size());
  for (const ts_series& s : series_) {
    out.str(s.metric());
    out.varint(s.tags().size());
    for (const auto& [k, v] : s.tags()) {
      out.str(k);
      out.str(v);
    }
    out.varint(s.points().size());
    std::int64_t prev_hour = 0;
    for (const ts_point& p : s.points()) {
      out.svarint(p.at.hours_since_epoch() - prev_hour);
      prev_hour = p.at.hours_since_epoch();
      out.f64(p.value);
    }
  }
  const std::string payload = out.take();
  binary_writer trailer;
  trailer.u32(crc32(payload));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  os.write(trailer.bytes().data(),
           static_cast<std::streamsize>(trailer.bytes().size()));
  if (!os) throw state_error("tsdb: snapshot write failed");
  if (obs::enabled()) {
    obs::metrics_registry& reg = obs::metrics_registry::instance();
    reg.get_counter(obs::family::kTsdbSnapshots).add(1);
    reg.get_counter(obs::family::kTsdbSnapshotBytes)
        .add(payload.size() + trailer.bytes().size());
    reg.get_histogram(obs::family::kTsdbSnapshotSeconds,
                      obs::duration_buckets())
        .observe(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - begin)
                     .count());
  }
}

void tsdb::snapshot_to(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw not_found_error("tsdb: cannot write snapshot " + path);
  snapshot_to(static_cast<std::ostream&>(out));
}

void tsdb::restore_from(std::istream& is) {
  obs::metrics_registry::instance()
      .get_counter(obs::family::kTsdbRestores)
      .add(1);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  if (content.size() < 12) {
    throw invalid_argument_error("tsdb: truncated snapshot");
  }
  const std::string_view payload =
      std::string_view(content).substr(0, content.size() - 4);
  binary_reader trailer(
      std::string_view(content).substr(content.size() - 4));
  if (trailer.u32() != crc32(payload)) {
    throw invalid_argument_error("tsdb: snapshot CRC mismatch");
  }
  binary_reader in(payload);
  if (in.u32() != kSnapshotMagic) {
    throw invalid_argument_error("tsdb: bad snapshot magic");
  }
  if (in.u32() != kSnapshotVersion) {
    throw invalid_argument_error("tsdb: unsupported snapshot version");
  }
  std::vector<ts_series> series;
  std::unordered_map<std::string, std::size_t> index;
  std::unordered_map<std::string, std::vector<std::size_t>> by_metric;
  const std::uint64_t n_series = in.varint();
  series.reserve(static_cast<std::size_t>(n_series));
  for (std::uint64_t i = 0; i < n_series; ++i) {
    std::string metric = in.str();
    tag_set tags;
    const std::uint64_t n_tags = in.varint();
    for (std::uint64_t t = 0; t < n_tags; ++t) {
      std::string key = in.str();
      tags.emplace(std::move(key), in.str());
    }
    ts_series s(metric, tags);
    const std::uint64_t n_points = in.varint();
    std::int64_t prev_hour = 0;
    for (std::uint64_t p = 0; p < n_points; ++p) {
      prev_hour += in.svarint();
      s.append(hour_stamp{prev_hour}, in.f64());
    }
    index.emplace(series_key(metric, tags), series.size());
    by_metric[metric].push_back(series.size());
    series.push_back(std::move(s));
  }
  if (!in.done()) {
    throw invalid_argument_error("tsdb: trailing bytes in snapshot");
  }
  series_ = std::move(series);
  index_ = std::move(index);
  by_metric_ = std::move(by_metric);
}

void tsdb::restore_from(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw not_found_error("tsdb: cannot read snapshot " + path);
  restore_from(static_cast<std::istream&>(in));
}

std::size_t tsdb::point_count() const {
  std::size_t n = 0;
  for (const ts_series& s : series_) n += s.size();
  return n;
}

}  // namespace clasp

// Active probing tools: ping and paris-traceroute (scamper analogue).
//
// Traceroute output follows real semantics: each hop reports the address
// of the interface the probe *arrived* on, per-hop RTTs include the load
// model's queueing delay at probe time, and a small fraction of routers
// do not respond (shown as a missing address), as in real campaigns.
#pragma once

#include <optional>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/routing.hpp"
#include "util/rng.hpp"

namespace clasp {

struct traceroute_hop {
  unsigned ttl{0};
  // Responding interface; nullopt renders as "*" (no response).
  std::optional<ipv4_addr> address;
  millis rtt{0.0};
};

struct traceroute_result {
  ipv4_addr src;
  ipv4_addr dst;
  hour_stamp at;
  std::vector<traceroute_hop> hops;
  bool reached{false};
};

class prober {
 public:
  // `nonresponse_prob` is the chance a router ignores TTL-expired probes.
  prober(const route_planner* planner, const network_view* view,
         double nonresponse_prob = 0.02);

  // ICMP-style RTT measurement over an already-computed path.
  millis ping(const route_path& path, hour_stamp at, rng& r) const;

  // Paris-traceroute over a path: per-hop interfaces and RTTs. The final
  // hop is the destination address when the endpoint is a host.
  traceroute_result traceroute(const route_path& path, hour_stamp at,
                               rng& r) const;

 private:
  const route_planner* planner_;
  const network_view* view_;
  double nonresponse_prob_;
};

// Alias resolution (MIDAR/iffinder analogue): maps an interface address to
// the set of addresses on the same router. The substrate resolves from
// topology ground truth; `miss_prob` models unresolvable routers.
class alias_resolver {
 public:
  explicit alias_resolver(const topology* topo, double miss_prob = 0.03);

  // All known aliases of an interface (including itself); just {addr} when
  // resolution fails.
  std::vector<ipv4_addr> aliases_of(ipv4_addr addr, rng& r) const;

  // True when two addresses belong to the same router (and resolution
  // succeeded for both).
  bool same_router(ipv4_addr a, ipv4_addr b, rng& r) const;

 private:
  const topology* topo_;
  double miss_prob_;
};

}  // namespace clasp

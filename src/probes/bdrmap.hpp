// bdrmap-style interdomain border inference (Luckie et al., IMC'16 subset).
//
// The pilot scan traceroutes from a cloud VM to one target in every
// announced (non-cloud) prefix, then infers where each path crossed the
// cloud's border. The inference is needed because both interfaces of a
// cloud peering are numbered from the cloud's interconnect pool, so naive
// prefix-to-AS mapping attributes the far-side interface to the cloud
// itself. The heuristic used here is the core bdrmap rule the paper
// relies on: a hop inside the announced cloud space whose *successor*
// (or the probe destination, when the successor is missing) resolves to
// a different origin AS is the far side of an interdomain link, and that
// AS is the neighbor.
#pragma once

#include <unordered_map>
#include <vector>

#include "data/prefix2as.hpp"
#include "netsim/network.hpp"
#include "netsim/routing.hpp"
#include "probes/traceroute.hpp"

namespace clasp {

// One inferred interdomain link, keyed by its far-side interface.
struct border_observation {
  ipv4_addr far_side;
  asn neighbor;            // inferred neighbor AS
  millis min_rtt{1e9};     // best RTT seen to the far side
  std::size_t path_count{0};  // traceroutes that crossed this link
};

struct bdrmap_result {
  std::vector<border_observation> links;
  // far-side address value -> index into `links`.
  std::unordered_map<std::uint32_t, std::size_t> by_far_side;
  std::size_t traceroutes_run{0};

  bool contains(ipv4_addr far) const {
    return by_far_side.contains(far.value());
  }
};

class bdrmap {
 public:
  bdrmap(const route_planner* planner, const prober* prober,
         const prefix2as_table* prefix2as);

  // Analyze one traceroute and merge any border crossing into `result`.
  void absorb(const traceroute_result& trace, bdrmap_result& result) const;

  // Full pilot scan from a VM endpoint: traceroute toward one address in
  // every announced host prefix of every non-cloud AS, using the given
  // tier (the paper's pilot uses the default premium tier).
  bdrmap_result run_pilot(const endpoint& vm, service_tier tier,
                          hour_stamp at, rng& r) const;

  // Extract the far-side crossing (if any) from a single traceroute.
  std::optional<std::pair<ipv4_addr, asn>> find_border(
      const traceroute_result& trace) const;

 private:
  const route_planner* planner_;
  const prober* prober_;
  const prefix2as_table* prefix2as_;
};

}  // namespace clasp

#include "probes/traceroute.hpp"

#include "util/error.hpp"

namespace clasp {

prober::prober(const route_planner* planner, const network_view* view,
               double nonresponse_prob)
    : planner_(planner), view_(view), nonresponse_prob_(nonresponse_prob) {
  if (planner == nullptr || view == nullptr) {
    throw invalid_argument_error("prober: null dependency");
  }
  if (nonresponse_prob < 0.0 || nonresponse_prob > 1.0) {
    throw invalid_argument_error("prober: nonresponse_prob outside [0,1]");
  }
}

millis prober::ping(const route_path& path, hour_stamp at, rng& r) const {
  const path_metrics m = view_->evaluate(path, at);
  return millis{m.rtt.value + r.exponential(2.0)};
}

traceroute_result prober::traceroute(const route_path& path, hour_stamp at,
                                     rng& r) const {
  const topology& topo = view_->net().topo.operator*();
  traceroute_result out;
  out.src = path.src_addr;
  out.dst = path.dst_addr;
  out.at = at;

  unsigned ttl = 1;
  for (std::size_t i = 0; i < path.routers.size(); ++i) {
    traceroute_hop hop;
    hop.ttl = ttl++;
    hop.rtt = view_->delay_to_router(path, i, at) * 2.0 +
              millis{r.exponential(2.0)};
    if (!r.bernoulli(nonresponse_prob_)) {
      if (i == 0) {
        // First router: the probe arrives over the source access link, so
        // the responding interface is the router's representative address.
        hop.address = topo.router_at(path.routers[i]).loopback;
      } else {
        hop.address =
            topo.interface_on(path.routers[i], path.transit_hops[i - 1].link);
      }
    }
    out.hops.push_back(hop);
  }

  // Destination host answers from its own address.
  if (path.dst_access) {
    traceroute_hop hop;
    hop.ttl = ttl;
    const path_metrics m = view_->evaluate(path, at);
    hop.rtt = m.rtt + millis{r.exponential(2.0)};
    hop.address = path.dst_addr;
    out.hops.push_back(hop);
    out.reached = true;
  } else {
    // Bare prefix targets respond from the last router (common for
    // infrastructure probing).
    out.reached = !out.hops.empty() && out.hops.back().address.has_value();
  }
  return out;
}

alias_resolver::alias_resolver(const topology* topo, double miss_prob)
    : topo_(topo), miss_prob_(miss_prob) {
  if (topo == nullptr) {
    throw invalid_argument_error("alias_resolver: null topology");
  }
}

std::vector<ipv4_addr> alias_resolver::aliases_of(ipv4_addr addr,
                                                  rng& r) const {
  const auto router = topo_->router_of_interface(addr);
  if (!router || r.bernoulli(miss_prob_)) return {addr};
  return topo_->interfaces_of(*router);
}

bool alias_resolver::same_router(ipv4_addr a, ipv4_addr b, rng& r) const {
  if (r.bernoulli(miss_prob_)) return false;
  const auto ra = topo_->router_of_interface(a);
  const auto rb = topo_->router_of_interface(b);
  return ra && rb && *ra == *rb;
}

}  // namespace clasp

#include "probes/bdrmap.hpp"

#include "netsim/generator.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp {

bdrmap::bdrmap(const route_planner* planner, const prober* prober,
               const prefix2as_table* prefix2as)
    : planner_(planner), prober_(prober), prefix2as_(prefix2as) {
  if (planner == nullptr || prober == nullptr || prefix2as == nullptr) {
    throw invalid_argument_error("bdrmap: null dependency");
  }
}

std::optional<std::pair<ipv4_addr, asn>> bdrmap::find_border(
    const traceroute_result& trace) const {
  const ipv4_prefix interconnect = cloud_interconnect_pool();
  const asn cloud = cloud_asn();

  // Origin AS of the destination (fallback neighbor attribution).
  const auto dst_origin = prefix2as_->lookup(trace.dst);

  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    const auto& hop = trace.hops[i];
    if (!hop.address || !interconnect.contains(*hop.address)) continue;

    // Candidate far side: confirm the next responsive hop (or the
    // destination) belongs to a non-cloud AS.
    std::optional<asn> next_origin;
    for (std::size_t j = i + 1; j < trace.hops.size(); ++j) {
      if (!trace.hops[j].address) continue;
      if (interconnect.contains(*trace.hops[j].address)) break;  // still edge
      next_origin = prefix2as_->lookup(*trace.hops[j].address);
      break;
    }
    if (!next_origin) next_origin = dst_origin;
    if (!next_origin || *next_origin == cloud) continue;
    return std::make_pair(*hop.address, *next_origin);
  }
  return std::nullopt;
}

void bdrmap::absorb(const traceroute_result& trace,
                    bdrmap_result& result) const {
  const auto border = find_border(trace);
  if (!border) return;
  const auto [far, neighbor] = *border;

  // RTT to the far side: the hop's own RTT.
  millis far_rtt{1e9};
  for (const auto& hop : trace.hops) {
    if (hop.address && *hop.address == far) {
      far_rtt = hop.rtt;
      break;
    }
  }

  const auto it = result.by_far_side.find(far.value());
  if (it == result.by_far_side.end()) {
    result.by_far_side.emplace(far.value(), result.links.size());
    result.links.push_back(border_observation{far, neighbor, far_rtt, 1});
  } else {
    border_observation& obs = result.links[it->second];
    obs.path_count += 1;
    if (far_rtt < obs.min_rtt) obs.min_rtt = far_rtt;
  }
}

bdrmap_result bdrmap::run_pilot(const endpoint& vm, service_tier tier,
                                hour_stamp at, rng& r) const {
  bdrmap_result result;
  const internet& net = planner_->net();

  for (const as_info& a : net.topo->ases()) {
    if (a.index == net.cloud) continue;
    // prefixes[0] is the AS's infrastructure prefix; host prefixes follow.
    for (std::size_t pi = 1; pi < a.prefixes.size(); ++pi) {
      const announced_prefix& p = a.prefixes[pi];
      // Real bdrmap probes every /24 of every prefix; the first and last
      // /24 capture the per-/24 egress diversity at a fraction of the cost.
      std::vector<std::uint64_t> offsets{1};
      if (p.prefix.size() > 256) offsets.push_back(p.prefix.size() - 255);
      for (const std::uint64_t off : offsets) {
        const ipv4_addr target = p.prefix.address_at(off);
        endpoint dst{a.index, p.anchor, target, std::nullopt};
        const route_path path = planner_->from_cloud(vm, dst, tier);
        // Unresponsive hops hide borders; scamper-style retries recover
        // them (up to three attempts per target).
        for (int attempt = 0; attempt < 3; ++attempt) {
          const traceroute_result trace = prober_->traceroute(path, at, r);
          ++result.traceroutes_run;
          const std::size_t before = result.links.size();
          absorb(trace, result);
          if (find_border(trace) || result.links.size() > before) break;
        }
      }
    }
  }
  CLASP_LOG(info, "bdrmap") << "pilot: " << result.traceroutes_run
                            << " traceroutes, " << result.links.size()
                            << " interdomain links";
  return result;
}

}  // namespace clasp

// Cooperative time-slicing scheduler: resident campaign sessions run in
// hour-quanta over the PR 4 run_until/checkpoint machinery.
//
// A campaign_session owns one clasp_platform built from the service's
// base config resolved against the campaign's spec, with durability
// namespaced per (tenant, id) under the service checkpoint root — so
// two tenants submitting the same region can never interleave
// checkpoints (the platform enforces this with a typed state_error).
// run_quantum advances the campaign up to quantum_hours via run_until
// (or a shard coordinator when the spec shards), which WAL-logs every
// hour and checkpoints on the campaign cadence; the final quantum goes
// through run() so storage is billed exactly once, like batch mode.
// Output is therefore byte-identical to an uninterrupted batch run for
// any quantum length, worker count or shard count.
//
// The scheduler keeps at most max_resident sessions in memory, evicting
// the least-recently-run *durable* session (checkpoint + destroy; a
// later acquire warm-resumes it from its checkpoint). Non-durable
// sessions are pinned — evicting one would lose its progress — so they
// can push residency past the cap, which only costs memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "svc/registry.hpp"

namespace clasp::svc {

struct scheduler_settings {
  platform_config base;        // the daemon's world template
  std::string checkpoint_root; // <state_dir>/ckpt
  unsigned quantum_hours{6};
  std::size_t max_resident{4};
};

class campaign_session {
 public:
  // Builds the platform, deploys the topology campaign and, when the
  // spec is durable, resumes from the campaign's checkpoint if one
  // exists (resumed() tells which).
  campaign_session(const campaign_record& rec,
                   const scheduler_settings& settings);

  struct quantum_result {
    std::size_t hours{0};     // hours actually advanced
    bool finished{false};     // window complete, storage billed
    bool interrupted{false};  // request_interrupt stopped the quantum
  };
  // Advance up to `hours` simulated hours. `active` (when non-null) is
  // published around the blocking run so a signal handler can interrupt
  // the in-flight quantum at the next hour barrier.
  quantum_result run_quantum(unsigned hours,
                             std::atomic<campaign_runner*>* active);

  // Publish a checkpoint at the current cursor if durable and the
  // cursor moved since the last publish (drain path; re-publishing an
  // unchanged cursor would be wasted I/O).
  void checkpoint_now();

  bool resumed() const { return resumed_; }
  bool durable() const { return runner_->durable(); }
  campaign_runner& runner() { return *runner_; }
  clasp_platform& platform() { return *platform_; }

  // The campaign's download series as CSV — the same filter and bytes
  // `clasp_cli run --csv` writes for this spec.
  void export_csv(std::ostream& out) const;

 private:
  std::unique_ptr<clasp_platform> platform_;
  campaign_runner* runner_{nullptr};
  std::string region_;
  bool resumed_{false};
  std::int64_t last_checkpoint_cursor_{-1};
};

class campaign_scheduler {
 public:
  explicit campaign_scheduler(scheduler_settings settings);

  // The resident session for `rec`, building (and possibly evicting the
  // least-recently-run durable session) when absent. Counts a cold
  // start or a warm resume accordingly.
  campaign_session& acquire(const campaign_record& rec);
  campaign_session* find(std::uint64_t id);

  // Run one quantum of a resident session (publishes the active runner
  // for signal-driven interrupts and counts the quantum).
  campaign_session::quantum_result run_quantum(campaign_session& session);

  // Drop a session, checkpointing first when asked and durable. A
  // non-durable session is only dropped when checkpoint_first is false
  // (terminal states); with checkpoint_first it stays resident.
  void release(std::uint64_t id, bool checkpoint_first);

  // Drain path: checkpoint every resident durable session.
  void checkpoint_all();

  struct sched_stats {
    std::uint64_t quanta{0};
    std::uint64_t preemptions{0};
    std::uint64_t evictions{0};
    std::uint64_t cold_starts{0};
    std::uint64_t warm_resumes{0};
  };
  const sched_stats& stats() const { return stats_; }
  void note_preemption() { stats_.preemptions += 1; }

  std::size_t resident() const { return sessions_.size(); }
  // The runner currently inside run_quantum (null between quanta); what
  // a drain signal interrupts.
  std::atomic<campaign_runner*>& active_runner() { return active_runner_; }
  const scheduler_settings& settings() const { return settings_; }

 private:
  void touch(std::uint64_t id);  // LRU move-to-back
  bool evict_one(std::uint64_t keep_id);

  scheduler_settings settings_;
  std::map<std::uint64_t, std::unique_ptr<campaign_session>> sessions_;
  std::vector<std::uint64_t> lru_;  // least recently run first
  sched_stats stats_;
  std::atomic<campaign_runner*> active_runner_{nullptr};
};

}  // namespace clasp::svc

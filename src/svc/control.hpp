// Control plane for the campaign service daemon.
//
// One request/one reply per connection round: the client sends a framed
// control_request over the daemon's unix socket (dist::fd_channel
// framing — [len][crc][payload] — so control messages inherit the CRC
// discipline the shard protocol uses), the daemon answers with a
// control_reply and the client disconnects. Payloads are versioned binio
// like every other wire format in the tree; decode throws
// invalid_argument_error on anything malformed, and the daemon turns
// that into an error reply instead of dying.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "svc/registry.hpp"

namespace clasp::svc {

enum class control_op : std::uint8_t {
  submit = 0,    // tenant + spec -> id
  status = 1,    // id == 0: service summary + all campaigns; else one
  pause = 2,     // id
  resume = 3,    // id
  cancel = 4,    // id
  shutdown = 5,  // graceful drain + exit
};

const char* to_string(control_op op);

struct control_request {
  control_op op{control_op::status};
  std::string tenant;        // submit (and audit on the rest)
  std::uint64_t id{0};       // pause/resume/cancel/status target
  campaign_spec spec;        // submit only
};

// One campaign's externally visible state.
struct campaign_status {
  std::uint64_t id{0};
  std::string tenant;
  std::string state;      // to_string(campaign_state)
  std::string region;
  int days{0};
  std::uint64_t seed{0};
  int workers{-1};
  int shards{-1};
  bool durable{true};
  std::int64_t cursor_hours{0};
  std::int64_t begin_hours{0};
  std::int64_t end_hours{0};
  std::uint64_t preemptions{0};
  std::string error;
};

// The daemon's own gauges, piggybacked on every status reply.
struct service_status {
  std::uint64_t queued{0};
  std::uint64_t admitted{0};
  std::uint64_t running{0};
  std::uint64_t paused{0};
  std::uint64_t done{0};
  std::uint64_t failed{0};
  std::uint64_t cancelled{0};
  std::uint64_t worker_budget{0};
  std::uint64_t reserved_units{0};
  std::uint64_t resident{0};
  std::uint64_t quanta{0};
  std::uint64_t preemptions{0};
  std::uint64_t evictions{0};
  std::uint64_t cold_starts{0};
  std::uint64_t warm_resumes{0};
};

struct control_reply {
  bool ok{false};
  std::string error;     // set when !ok (typed message text)
  std::uint64_t id{0};   // submit: the assigned campaign id
  service_status service;
  std::vector<campaign_status> campaigns;
};

// Versioned wire codecs. decode_* throw invalid_argument_error on
// malformed or version-mismatched payloads.
std::string encode_request(const control_request& req);
control_request decode_request(std::string_view payload);
std::string encode_reply(const control_reply& reply);
control_reply decode_reply(std::string_view payload);

// Client side: one connect/call round against a daemon socket. Throws
// state_error when nothing listens, the call times out, or the daemon
// hangs up mid-reply.
class control_client {
 public:
  explicit control_client(std::string socket_path);

  control_reply call(const control_request& req, int timeout_ms = 30000);

  const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
};

}  // namespace clasp::svc

// Multi-tenant campaign registry: every submitted campaign, its state
// machine and the durable queue the daemon reloads after a restart.
//
// States and legal transitions:
//
//   queued ──> admitted ──> running ──> done
//     │           │    ^       │ ├────> failed
//     │           │    │       v │
//     │           └──> paused <─┘ │
//     │                  │        │
//     └──────────────────┴────────┴───> cancelled
//
//   (paused ──> queued is how `resume` re-enters admission; a paused
//   campaign holds no budget, costing nothing but its checkpoint.)
//
// Every transition is validated — an illegal edge is a typed
// state_error, never a silent overwrite — and done/failed/cancelled are
// terminal. Persistence is a CRC-trailed snapshot written through the
// checkpoint layer's small-file helpers with a tmp+rename publish, so a
// kill -9 leaves either the old or the new registry, never a torn one.
// On reload, reset_transients() demotes admitted/running records back to
// queued: their sessions died with the process, and re-admission plus
// checkpoint resume reproduces their output byte-identically.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "svc/spec.hpp"

namespace clasp::svc {

enum class campaign_state : std::uint8_t {
  queued = 0,
  admitted = 1,
  running = 2,
  paused = 3,
  done = 4,
  failed = 5,
  cancelled = 6,
};

const char* to_string(campaign_state state);

// Active = still owns queue or budget state (not terminal).
bool state_active(campaign_state state);

struct campaign_record {
  std::uint64_t id{0};          // service-assigned, never reused
  std::string tenant;
  campaign_spec spec;           // seed already resolved (never 0)
  std::uint64_t fingerprint{0};
  campaign_state state{campaign_state::queued};
  std::uint64_t submit_seq{0};  // FIFO order for admission/scheduling
  std::int64_t cursor_hours{0};  // last observed progress (informational;
                                 // the checkpoint is authoritative)
  std::uint64_t preemptions{0};  // quanta this campaign yielded unfinished
  std::string error;             // why state == failed
};

class campaign_registry {
 public:
  // Register a submission: assigns id and submit_seq, resolves seed 0 to
  // a per-(tenant, id) hash, validates the spec, and refuses a duplicate
  // — same tenant, same fingerprint, still active — with state_error.
  // Resubmitting after done/failed/cancelled is fine.
  campaign_record& submit(const std::string& tenant, campaign_spec spec);

  bool contains(std::uint64_t id) const;
  campaign_record& record(std::uint64_t id);             // not_found_error
  const campaign_record& record(std::uint64_t id) const;

  // Validated state-machine edge; throws state_error on an illegal one.
  void transition(std::uint64_t id, campaign_state to);
  // Mark failed with a reason from any active state (the one edge every
  // active state has); throws state_error from a terminal state.
  void fail(std::uint64_t id, std::string why);

  // All ids in ascending id order / ids currently in `state`.
  std::vector<std::uint64_t> ids() const;
  std::vector<std::uint64_t> in_state(campaign_state state) const;
  std::size_t count(campaign_state state) const;
  // Active (non-terminal) records for a tenant / overall.
  std::size_t active_count() const;
  std::size_t active_count(const std::string& tenant) const;

  const std::map<std::uint64_t, campaign_record>& records() const {
    return records_;
  }

  // Restart reconciliation: admitted/running -> queued (their sessions
  // died with the daemon; re-admission resumes them from checkpoints).
  void reset_transients();

  // Versioned snapshot codec. decode throws invalid_argument_error on
  // corruption or a version mismatch.
  std::string encode() const;
  static campaign_registry decode(std::string_view payload);

  // Crash-atomic persistence: encode + CRC trailer into <path>.tmp, then
  // rename over <path>. load returns nullopt when no file exists yet.
  void save(const std::string& path) const;
  static std::optional<campaign_registry> load(const std::string& path);

  // True while an unsaved submit/transition/fail exists. Mid-quantum
  // cursor progress never dirties the registry — on reload the record is
  // demoted to queued and the checkpoint is authoritative — so a quantum
  // that changes no state skips the disk write entirely.
  bool dirty() const { return dirty_; }

 private:
  std::map<std::uint64_t, campaign_record> records_;
  std::uint64_t next_id_{1};
  std::uint64_t next_seq_{1};
  mutable bool dirty_{false};
};

}  // namespace clasp::svc

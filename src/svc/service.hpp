// The campaign service daemon: registry + admission + scheduler behind
// one control socket.
//
// Single-threaded by construction: the serve loop alternates between
// draining the control socket and running one scheduler quantum, so
// every registry mutation, admission decision and checkpoint publish
// happens on one thread and the daemon needs no locks. Control latency
// is bounded by one quantum (a few simulated hours of replay); a drain
// signal interrupts even that at the next hour barrier via
// campaign_runner::request_interrupt.
//
// Everything the daemon owns lives under service.state_dir:
//
//   <state_dir>/registry.bin        durable queue (CRC + tmp/rename)
//   <state_dir>/ckpt/<tenant>-<id>/ per-campaign checkpoints + WAL
//
// A kill -9 at any instant loses at most one checkpoint interval per
// campaign: the registry snapshot is crash-atomic, admitted/running
// records demote to queued on reload, and re-admission warm-resumes each
// campaign from its checkpoint — the replay determinism guarantees the
// rerun hours commit the same bytes the lost ones would have.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "svc/admission.hpp"
#include "svc/control.hpp"
#include "svc/registry.hpp"
#include "svc/scheduler.hpp"

namespace clasp::svc {

class campaign_service {
 public:
  // `base` is the daemon's world template (the batch config file plus
  // its [service] section). Reloads <state_dir>/registry.bin when one
  // exists and demotes admitted/running records back to queued.
  explicit campaign_service(platform_config base);

  // --- direct API (the control plane calls these; tests too) ---
  // Admission-checked submission; returns the campaign id.
  std::uint64_t submit(const std::string& tenant, campaign_spec spec);
  // admitted/running -> paused: checkpoint (durable) and free its budget.
  void pause_campaign(std::uint64_t id);
  // paused -> queued: re-enters admission next tick.
  void resume_campaign(std::uint64_t id);
  // any active state -> cancelled; the session is dropped un-checkpointed.
  void cancel_campaign(std::uint64_t id);

  // One wire request -> one reply. Typed clasp errors become error
  // replies, never daemon exits.
  control_reply handle(const control_request& req);

  // One scheduling step: admit, pick the next admitted/running campaign
  // round-robin by submit order, run one quantum, harvest completion.
  // Returns false when nothing was runnable.
  bool tick();
  // Drive tick() until no campaign is queued, admitted or running — the
  // in-process equivalent of letting the daemon idle (tests and the
  // bench use this; serve() interleaves control traffic).
  void run_to_idle();

  // Daemon loop: listen on service.socket, interleave control rounds
  // with ticks. Returns 0 after a shutdown request (graceful drain) or
  // 130 after request_drain() — both checkpoint every running campaign
  // and persist the registry first.
  int serve();

  // Signal-safe: flag the drain and interrupt the in-flight quantum at
  // its next hour barrier.
  void request_drain();
  bool drain_requested() const {
    return drain_.load(std::memory_order_relaxed);
  }

  // Checkpoint everything + persist the registry (the drain path; also
  // callable mid-run).
  void drain();
  void persist() const;

  campaign_registry& registry() { return registry_; }
  campaign_scheduler& scheduler() { return scheduler_; }
  const admission_controller& admission() const { return admission_; }
  const platform_config& base_config() const { return base_; }
  std::string registry_path() const;
  std::string results_path(std::uint64_t id) const;

  service_status status_summary() const;
  campaign_status status_of(std::uint64_t id) const;

 private:
  std::uint64_t pick_next_runnable();  // 0 = nothing runnable
  void run_one_quantum(std::uint64_t id);
  void harvest(std::uint64_t id, campaign_session& session);
  void publish_metrics();
  void heartbeat() const;

  platform_config base_;
  service_settings settings_;
  campaign_registry registry_;
  admission_controller admission_;
  campaign_scheduler scheduler_;
  std::atomic<bool> drain_{false};
  std::uint64_t last_scheduled_seq_{0};  // round-robin cursor
};

}  // namespace clasp::svc

#include "svc/spec.hpp"

#include "util/binio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp::svc {

namespace {

// Bump on any change to the encoded spec layout. Old registries are then
// rejected, not migrated — a queue is cheap to resubmit relative to a
// silently misdecoded campaign.
constexpr std::uint8_t kSpecVersion = 1;

}  // namespace

void validate_spec(const campaign_spec& spec) {
  region_by_name(spec.region);  // throws on an unknown region
  if (spec.days < 1 || spec.days > 153) {
    throw invalid_argument_error(
        "svc: spec days must be in [1, 153] (the paper campaign is 153)");
  }
  if (spec.workers < -1) {
    throw invalid_argument_error("svc: spec workers must be >= -1");
  }
  if (spec.shards == 0 || spec.shards < -1) {
    throw invalid_argument_error(
        "svc: spec shards must be -1 (base default) or >= 1");
  }
  if (spec.fleet_scale == 0 || spec.fleet_scale < -1) {
    throw invalid_argument_error(
        "svc: spec fleet_scale must be -1 (base default) or >= 1");
  }
  if (!spec.faults.empty() && spec.faults != "off" && spec.faults != "low" &&
      spec.faults != "high") {
    throw invalid_argument_error(
        "svc: spec faults must be empty (base default), off, low or high");
  }
}

std::string encode_spec(const campaign_spec& spec) {
  binary_writer out;
  out.u8(kSpecVersion);
  out.str(spec.region);
  out.svarint(spec.days);
  out.u64(spec.seed);
  out.svarint(spec.workers);
  out.svarint(spec.shards);
  out.svarint(spec.fleet_scale);
  out.str(spec.faults);
  out.boolean(spec.durable);
  return std::string(out.bytes());
}

campaign_spec decode_spec(std::string_view payload) {
  binary_reader in(payload);
  campaign_spec spec;
  const std::uint8_t version = in.u8();
  if (version != kSpecVersion) {
    throw invalid_argument_error("svc: spec version " +
                                 std::to_string(version) + " unsupported");
  }
  spec.region = in.str();
  spec.days = static_cast<int>(in.svarint());
  spec.seed = in.u64();
  spec.workers = static_cast<int>(in.svarint());
  spec.shards = static_cast<int>(in.svarint());
  spec.fleet_scale = static_cast<int>(in.svarint());
  spec.faults = in.str();
  spec.durable = in.boolean();
  if (!in.done()) {
    throw invalid_argument_error("svc: trailing bytes in spec");
  }
  validate_spec(spec);
  return spec;
}

std::uint64_t spec_fingerprint(const campaign_spec& spec) {
  // durable is operational, not identity: the same campaign run durable
  // or not produces the same bytes, so it stays out of the hash.
  std::uint64_t h = hash_tag(spec.seed, "svc-spec");
  h = hash_tag(h, spec.region);
  h = hash_tag(h, std::to_string(spec.days));
  h = hash_tag(h, spec.faults);
  h = hash_tag(h, std::to_string(spec.fleet_scale < 1 ? -1
                                                      : spec.fleet_scale));
  return h;
}

hour_range spec_window(const campaign_spec& spec) {
  const hour_stamp begin = hour_stamp::from_civil({2020, 5, 1}, 0);
  return {begin, begin + spec.days * 24};
}

platform_config resolve_platform_config(const campaign_spec& spec,
                                        const platform_config& base) {
  platform_config cfg = base;
  cfg.internet.seed = spec.seed;
  if (spec.workers >= 0) {
    cfg.campaign_workers = static_cast<unsigned>(spec.workers);
  }
  if (spec.shards >= 1) {
    cfg.campaign_shards = static_cast<std::size_t>(spec.shards);
  }
  if (spec.fleet_scale >= 1) {
    cfg.fleet_scale = static_cast<std::size_t>(spec.fleet_scale);
  }
  if (!spec.faults.empty()) {
    cfg.campaign_faults = fault_config::preset(spec.faults);
  }
  // Durability and isolation belong to the session layer: it claims a
  // per-(tenant, id) namespace under the service checkpoint root, so a
  // leaked base checkpoint dir can never interleave two campaigns.
  cfg.campaign_checkpoint_dir.clear();
  cfg.campaign_namespace.clear();
  return cfg;
}

}  // namespace clasp::svc

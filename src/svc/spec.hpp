// Campaign specs: what a tenant submits to the campaign service.
//
// A spec names one topology campaign — region, window length, seed and
// the replay knobs a batch `clasp_cli run` exposes — without binding it
// to a platform instance. The service resolves a spec against its own
// base platform_config (the daemon's world template) when the campaign
// is scheduled, so a spec's output is byte-identical to a batch run
// with the same config file and flags: the resolution below touches
// only knobs that are either output-neutral (workers, shards,
// durability) or part of the campaign identity (seed, region, days,
// faults, fleet_scale).
//
// Wire/persistence encoding is versioned binio; spec_fingerprint() is
// the submission identity the registry uses to refuse duplicate active
// submissions from one tenant.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "clasp/platform.hpp"

namespace clasp::svc {

struct campaign_spec {
  std::string region{"us-west1"};
  // Window length in days from the paper campaign epoch (2020-05-01),
  // exactly like `clasp_cli run --days`. Must be in [1, 153].
  int days{7};
  // Internet seed. 0 means "service assigns": the registry derives a
  // per-(tenant, id) seed at submit so auto-seeded campaigns never share
  // a world by accident. The assigned value is recorded in the spec and
  // reported back through status, so the batch-mode twin is always
  // reproducible.
  std::uint64_t seed{42};
  // Replay knobs, all batch-equivalent: -1 = the service base config's
  // default. workers 0 = hardware concurrency. Output is byte-identical
  // for any workers/shards value; fleet_scale and faults are part of the
  // campaign identity (they change the output).
  int workers{-1};
  int shards{-1};
  int fleet_scale{-1};
  std::string faults;  // "" = base default; else off|low|high
  // Durability: a durable campaign checkpoints under the service state
  // dir and survives daemon restarts; a non-durable one is pinned
  // resident (it cannot be evicted) and restarts from scratch after a
  // crash. Output bytes are identical either way.
  bool durable{true};
};

// Throws invalid_argument_error on a spec the service could never run
// (unknown region, days out of range, bad faults preset).
void validate_spec(const campaign_spec& spec);

// Versioned binio codec (wire + registry persistence). decode throws
// invalid_argument_error on malformed or version-mismatched payloads.
std::string encode_spec(const campaign_spec& spec);
campaign_spec decode_spec(std::string_view payload);

// Submission identity: a 64-bit hash over every identity-bearing field.
// Two specs with equal fingerprints produce byte-identical output under
// this service (given one base config).
std::uint64_t spec_fingerprint(const campaign_spec& spec);

// The campaign window a spec describes: days * 24 hours from the paper
// epoch, matching `clasp_cli run`.
hour_range spec_window(const campaign_spec& spec);

// Resolve a spec against the service's base platform config: seed and
// campaign knobs overlaid, durability cleared (the session layer sets
// the checkpoint dir and namespace itself). The result is exactly the
// platform a batch run with the same config file + flags builds.
platform_config resolve_platform_config(const campaign_spec& spec,
                                        const platform_config& base);

}  // namespace clasp::svc

#include "svc/service.hpp"

#include <filesystem>
#include <fstream>
#include <utility>

#include "dist/channel.hpp"
#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp::svc {

namespace fs = std::filesystem;

namespace {

admission_policy policy_from(const service_settings& s) {
  admission_policy p;
  p.worker_budget = s.worker_budget;
  p.max_admitted = s.max_admitted;
  p.tenant_max_admitted = s.tenant_max_admitted;
  p.tenant_max_active = s.tenant_max_active;
  return p;
}

scheduler_settings scheduler_from(const platform_config& base) {
  scheduler_settings s;
  s.base = base;
  s.checkpoint_root = base.service.state_dir + "/ckpt";
  s.quantum_hours = base.service.quantum_hours;
  s.max_resident = base.service.max_resident;
  return s;
}

obs::counter& svc_counter(const char* name) {
  return obs::metrics_registry::instance().get_counter(name);
}

}  // namespace

campaign_service::campaign_service(platform_config base)
    : base_(std::move(base)),
      settings_(base_.service),
      admission_(policy_from(settings_)),
      scheduler_(scheduler_from(base_)) {
  if (base_.obs_metrics) {
    obs::set_enabled(true);
    obs::register_core_families();
  }
  if (auto loaded = campaign_registry::load(registry_path())) {
    registry_ = std::move(*loaded);
    registry_.reset_transients();
    CLASP_LOG(info, "svc")
        << "reloaded registry: " << registry_.records().size()
        << " campaigns, " << registry_.count(campaign_state::queued)
        << " queued for (re)admission";
  }
}

std::string campaign_service::registry_path() const {
  return settings_.state_dir + "/registry.bin";
}

std::string campaign_service::results_path(std::uint64_t id) const {
  const campaign_record& rec = registry_.record(id);
  return settings_.results_dir + "/" + rec.tenant + "-" + std::to_string(id) +
         ".csv";
}

std::uint64_t campaign_service::submit(const std::string& tenant,
                                       campaign_spec spec) {
  validate_spec(spec);
  admission_.check_submit(registry_, tenant, spec, base_);
  const campaign_record& rec = registry_.submit(tenant, std::move(spec));
  persist();
  svc_counter(obs::family::kSvcSubmissions).add();
  CLASP_LOG(info, "svc") << "submitted campaign " << rec.id << " (" << tenant
                         << ", " << rec.spec.region << ", " << rec.spec.days
                         << "d, seed " << rec.spec.seed << ")";
  return rec.id;
}

void campaign_service::pause_campaign(std::uint64_t id) {
  registry_.transition(id, campaign_state::paused);
  campaign_record& rec = registry_.record(id);
  if (campaign_session* session = scheduler_.find(id)) {
    rec.cursor_hours = session->runner().cursor().hours_since_epoch();
  }
  // Durable sessions checkpoint and leave memory; non-durable ones stay
  // pinned resident (dropping them would lose their progress).
  scheduler_.release(id, /*checkpoint_first=*/true);
  persist();
  CLASP_LOG(info, "svc") << "paused campaign " << id << " at hour "
                         << rec.cursor_hours;
}

void campaign_service::resume_campaign(std::uint64_t id) {
  registry_.transition(id, campaign_state::queued);
  persist();
  CLASP_LOG(info, "svc") << "campaign " << id << " re-queued for admission";
}

void campaign_service::cancel_campaign(std::uint64_t id) {
  registry_.transition(id, campaign_state::cancelled);
  scheduler_.release(id, /*checkpoint_first=*/false);
  persist();
  svc_counter(obs::family::kSvcCancellations).add();
  CLASP_LOG(info, "svc") << "cancelled campaign " << id;
}

control_reply campaign_service::handle(const control_request& req) {
  svc_counter(obs::family::kSvcControlRequests).add();
  control_reply reply;
  try {
    switch (req.op) {
      case control_op::submit:
        reply.id = submit(req.tenant, req.spec);
        break;
      case control_op::status:
        break;
      case control_op::pause:
        pause_campaign(req.id);
        break;
      case control_op::resume:
        resume_campaign(req.id);
        break;
      case control_op::cancel:
        cancel_campaign(req.id);
        break;
      case control_op::shutdown:
        break;  // serve() exits its loop on the ok reply
    }
    if (req.op == control_op::status) {
      if (req.id != 0) {
        reply.campaigns.push_back(status_of(req.id));
      } else {
        for (const std::uint64_t id : registry_.ids()) {
          reply.campaigns.push_back(status_of(id));
        }
      }
    }
    reply.ok = true;
  } catch (const error& e) {
    reply.ok = false;
    reply.error = e.what();
  }
  reply.service = status_summary();
  return reply;
}

service_status campaign_service::status_summary() const {
  service_status s;
  s.queued = registry_.count(campaign_state::queued);
  s.admitted = registry_.count(campaign_state::admitted);
  s.running = registry_.count(campaign_state::running);
  s.paused = registry_.count(campaign_state::paused);
  s.done = registry_.count(campaign_state::done);
  s.failed = registry_.count(campaign_state::failed);
  s.cancelled = registry_.count(campaign_state::cancelled);
  s.worker_budget = admission_.policy().worker_budget;
  s.reserved_units = admission_.reserved_units(registry_, base_);
  s.resident = scheduler_.resident();
  const campaign_scheduler::sched_stats& st = scheduler_.stats();
  s.quanta = st.quanta;
  s.preemptions = st.preemptions;
  s.evictions = st.evictions;
  s.cold_starts = st.cold_starts;
  s.warm_resumes = st.warm_resumes;
  return s;
}

campaign_status campaign_service::status_of(std::uint64_t id) const {
  const campaign_record& rec = registry_.record(id);
  const hour_range window = spec_window(rec.spec);
  campaign_status s;
  s.id = rec.id;
  s.tenant = rec.tenant;
  s.state = to_string(rec.state);
  s.region = rec.spec.region;
  s.days = rec.spec.days;
  s.seed = rec.spec.seed;
  s.workers = rec.spec.workers;
  s.shards = rec.spec.shards;
  s.durable = rec.spec.durable;
  s.cursor_hours = rec.cursor_hours;
  s.begin_hours = window.begin_at.hours_since_epoch();
  s.end_hours = window.end_at.hours_since_epoch();
  s.preemptions = rec.preemptions;
  s.error = rec.error;
  return s;
}

std::uint64_t campaign_service::pick_next_runnable() {
  // Round-robin by submit order over the admitted+running set: the
  // lowest submit_seq strictly after the last scheduled one, wrapping to
  // the lowest overall. Every admitted campaign therefore gets a quantum
  // before any gets two.
  const campaign_record* next = nullptr;
  const campaign_record* first = nullptr;
  for (const auto& [id, rec] : registry_.records()) {
    if (rec.state != campaign_state::admitted &&
        rec.state != campaign_state::running) {
      continue;
    }
    if (first == nullptr || rec.submit_seq < first->submit_seq) first = &rec;
    if (rec.submit_seq > last_scheduled_seq_ &&
        (next == nullptr || rec.submit_seq < next->submit_seq)) {
      next = &rec;
    }
  }
  if (next == nullptr) next = first;
  return next == nullptr ? 0 : next->id;
}

void campaign_service::run_one_quantum(std::uint64_t id) {
  campaign_record& rec = registry_.record(id);
  last_scheduled_seq_ = rec.submit_seq;
  if (rec.state == campaign_state::admitted) {
    registry_.transition(id, campaign_state::running);
  }
  try {
    campaign_session& session = scheduler_.acquire(rec);
    const campaign_session::quantum_result result =
        scheduler_.run_quantum(session);
    rec.cursor_hours = session.runner().cursor().hours_since_epoch();
    if (result.finished) {
      harvest(id, session);
    } else if (!result.interrupted) {
      // Quantum expired with window left: the campaign yields its slot.
      rec.preemptions += 1;
      scheduler_.note_preemption();
      svc_counter(obs::family::kSvcPreemptions).add();
    }
    // Interrupted (drain): leave the record running — the registry
    // snapshot demotes it to queued on reload and resume is free.
  } catch (const error& e) {
    registry_.fail(id, e.what());
    scheduler_.release(id, /*checkpoint_first=*/false);
    svc_counter(obs::family::kSvcFailures).add();
    CLASP_LOG(warn, "svc") << "campaign " << id << " failed: " << e.what();
  }
}

void campaign_service::harvest(std::uint64_t id, campaign_session& session) {
  if (!settings_.results_dir.empty()) {
    fs::create_directories(settings_.results_dir);
    const std::string path = results_path(id);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    session.export_csv(out);
    out.flush();
    if (!out) throw storage_error("svc: cannot write results to " + path);
  }
  registry_.transition(id, campaign_state::done);
  scheduler_.release(id, /*checkpoint_first=*/false);
  svc_counter(obs::family::kSvcCompletions).add();
  CLASP_LOG(info, "svc") << "campaign " << id << " done";
}

bool campaign_service::tick() {
  const std::vector<std::uint64_t> admitted =
      admission_.admit(registry_, base_);
  if (!admitted.empty()) {
    CLASP_LOG(info, "svc") << "admitted " << admitted.size()
                           << " campaign(s); reserved "
                           << admission_.reserved_units(registry_, base_)
                           << "/" << admission_.policy().worker_budget
                           << " worker units";
  }
  const std::uint64_t id = pick_next_runnable();
  if (id == 0) {
    publish_metrics();
    return false;
  }
  run_one_quantum(id);
  svc_counter(obs::family::kSvcQuanta).add();
  // Only a state-machine edge (admit, done, fail) needs to reach disk;
  // a quantum that merely advanced a cursor is recovered from the
  // campaign's own checkpoint after a crash, so skip the write.
  if (registry_.dirty()) persist();
  publish_metrics();
  heartbeat();
  return true;
}

void campaign_service::run_to_idle() {
  while (registry_.count(campaign_state::queued) +
             registry_.count(campaign_state::admitted) +
             registry_.count(campaign_state::running) >
         0) {
    if (!tick()) break;
    if (drain_requested()) break;
  }
}

int campaign_service::serve() {
  dist::unix_listener listener(settings_.socket);
  CLASP_LOG(info, "svc") << "serving on " << settings_.socket << " (budget "
                         << settings_.worker_budget << " worker units, "
                         << "quantum " << settings_.quantum_hours << "h)";
  bool shutdown = false;
  while (!shutdown) {
    if (drain_requested()) {
      drain();
      return 130;
    }
    const bool busy = registry_.count(campaign_state::queued) +
                          registry_.count(campaign_state::admitted) +
                          registry_.count(campaign_state::running) >
                      0;
    // Busy: poll the socket between quanta. Idle: sleep on accept so an
    // empty daemon costs nothing.
    std::unique_ptr<dist::fd_channel> channel;
    try {
      channel = listener.accept(busy ? 0 : 50);
    } catch (const error&) {
      if (drain_requested()) {  // EINTR path raced the drain flag
        drain();
        return 130;
      }
      throw;
    }
    if (channel) {
      std::string payload;
      if (channel->recv(payload, 1000) == dist::recv_status::ok) {
        control_reply reply;
        bool decoded = false;
        control_request req;
        try {
          req = decode_request(payload);
          decoded = true;
        } catch (const error& e) {
          reply.ok = false;
          reply.error = e.what();
          reply.service = status_summary();
        }
        if (decoded) {
          reply = handle(req);
          if (req.op == control_op::shutdown && reply.ok) shutdown = true;
        }
        try {
          channel->send(encode_reply(reply));
        } catch (const error&) {
          // Client hung up before the reply; its problem, not ours.
        }
      }
      continue;  // drain control traffic before the next quantum
    }
    tick();
  }
  drain();
  CLASP_LOG(info, "svc") << "shutdown: drained and persisted";
  return 0;
}

void campaign_service::request_drain() {
  drain_.store(true, std::memory_order_relaxed);
  // Async-signal-safe: two atomic ops, no allocation, no locks.
  if (campaign_runner* active =
          scheduler_.active_runner().load(std::memory_order_acquire)) {
    active->request_interrupt();
  }
}

void campaign_service::drain() {
  scheduler_.checkpoint_all();
  persist();
  svc_counter(obs::family::kSvcDrains).add();
  CLASP_LOG(info, "svc") << "drained: " << scheduler_.resident()
                         << " resident session(s) checkpointed, registry "
                         << "persisted to " << registry_path();
}

void campaign_service::persist() const { registry_.save(registry_path()); }

void campaign_service::publish_metrics() {
  if (!base_.obs_metrics) return;
  obs::metrics_registry& reg = obs::metrics_registry::instance();
  const service_status s = status_summary();
  reg.get_gauge(obs::family::kSvcQueued).set(static_cast<double>(s.queued));
  reg.get_gauge(obs::family::kSvcAdmitted)
      .set(static_cast<double>(s.admitted));
  reg.get_gauge(obs::family::kSvcRunning).set(static_cast<double>(s.running));
  reg.get_gauge(obs::family::kSvcPaused).set(static_cast<double>(s.paused));
  reg.get_gauge(obs::family::kSvcResident)
      .set(static_cast<double>(s.resident));
  reg.get_gauge(obs::family::kSvcReservedUnits)
      .set(static_cast<double>(s.reserved_units));
  reg.get_gauge(obs::family::kSvcWorkerBudget)
      .set(static_cast<double>(s.worker_budget));
  for (const auto& [id, rec] : registry_.records()) {
    if (!state_active(rec.state)) continue;
    // Label-embedded family name; the exposition renders it literally.
    const std::string name = std::string(obs::family::kSvcCampaignCursorHours) +
                             "{tenant=\"" + rec.tenant + "\",campaign=\"" +
                             std::to_string(id) + "\"}";
    reg.get_gauge(name).set(static_cast<double>(rec.cursor_hours));
  }
}

void campaign_service::heartbeat() const {
  if (settings_.heartbeat_every_quanta == 0) return;
  const campaign_scheduler::sched_stats& st = scheduler_.stats();
  if (st.quanta % settings_.heartbeat_every_quanta != 0) return;
  CLASP_LOG(info, "svc") << "heartbeat: queued "
                         << registry_.count(campaign_state::queued)
                         << ", admitted "
                         << registry_.count(campaign_state::admitted)
                         << ", running "
                         << registry_.count(campaign_state::running)
                         << ", resident " << scheduler_.resident()
                         << ", quanta " << st.quanta << ", preemptions "
                         << st.preemptions << ", evictions " << st.evictions;
}

}  // namespace clasp::svc

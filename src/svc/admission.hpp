// Admission control: a shared worker budget plus per-tenant quotas.
//
// A campaign's cost unit is the larger of its replay threads and its
// shard processes — the peak concurrent workers its quanta occupy.
// Budget is held while a campaign is admitted or running; queued and
// paused campaigns hold nothing (a paused campaign costs only its
// checkpoint). Admission is FIFO by submit order with opportunistic
// backfill: a queued campaign that does not fit right now is skipped,
// not a head-of-line block, and reconsidered every round. A spec whose
// units alone exceed the budget is refused at submit time with a typed
// budget_exceeded_error — it could never run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/registry.hpp"

namespace clasp::svc {

struct admission_policy {
  // Sum of admitted+running campaigns' units may not exceed this.
  unsigned worker_budget{8};
  // Campaigns concurrently admitted+running, service-wide and per tenant.
  std::size_t max_admitted{4};
  std::size_t tenant_max_admitted{2};
  // Active (queued/admitted/running/paused) campaigns one tenant may
  // have; the submit-time quota.
  std::size_t tenant_max_active{16};
};

class admission_controller {
 public:
  explicit admission_controller(admission_policy policy);

  // Worker units a spec occupies while scheduled, resolved against the
  // service base config (spec -1 defaults, workers 0 = hw concurrency).
  static unsigned units(const campaign_spec& spec,
                        const platform_config& base);

  // Units currently held (admitted + running records).
  unsigned reserved_units(const campaign_registry& reg,
                          const platform_config& base) const;

  // Submit-time gate: throws budget_exceeded_error when the tenant is at
  // its active quota or the spec could never fit the worker budget.
  void check_submit(const campaign_registry& reg, const std::string& tenant,
                    const campaign_spec& spec,
                    const platform_config& base) const;

  // Admit queued campaigns in submit order while budget and quotas
  // allow; returns the ids admitted this round (already transitioned).
  std::vector<std::uint64_t> admit(campaign_registry& reg,
                                   const platform_config& base) const;

  const admission_policy& policy() const { return policy_; }

 private:
  admission_policy policy_;
};

}  // namespace clasp::svc

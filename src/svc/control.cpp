#include "svc/control.hpp"

#include "dist/channel.hpp"
#include "util/binio.hpp"
#include "util/error.hpp"

namespace clasp::svc {

namespace {

constexpr std::uint32_t kControlMagic = 0x4C525443u;  // "CTRL" little-endian
constexpr std::uint32_t kControlVersion = 1;

void write_header(binary_writer& out) {
  out.u32(kControlMagic);
  out.u32(kControlVersion);
}

binary_reader read_header(std::string_view payload, const char* what) {
  binary_reader in(payload);
  if (in.u32() != kControlMagic) {
    throw invalid_argument_error(std::string("svc control: ") + what +
                                 " has bad magic");
  }
  const std::uint32_t version = in.u32();
  if (version != kControlVersion) {
    throw invalid_argument_error(std::string("svc control: ") + what +
                                 " version " + std::to_string(version) +
                                 " unsupported");
  }
  return in;
}

control_op op_from_u8(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(control_op::shutdown)) {
    throw invalid_argument_error("svc control: unknown op " +
                                 std::to_string(raw));
  }
  return static_cast<control_op>(raw);
}

}  // namespace

const char* to_string(control_op op) {
  switch (op) {
    case control_op::submit: return "submit";
    case control_op::status: return "status";
    case control_op::pause: return "pause";
    case control_op::resume: return "resume";
    case control_op::cancel: return "cancel";
    case control_op::shutdown: return "shutdown";
  }
  return "unknown";
}

std::string encode_request(const control_request& req) {
  binary_writer out;
  write_header(out);
  out.u8(static_cast<std::uint8_t>(req.op));
  out.str(req.tenant);
  out.u64(req.id);
  out.str(encode_spec(req.spec));
  return std::string(out.bytes());
}

control_request decode_request(std::string_view payload) {
  binary_reader in = read_header(payload, "request");
  control_request req;
  req.op = op_from_u8(in.u8());
  req.tenant = in.str();
  req.id = in.u64();
  req.spec = decode_spec(in.str());
  if (!in.done()) {
    throw invalid_argument_error("svc control: trailing bytes in request");
  }
  return req;
}

std::string encode_reply(const control_reply& reply) {
  binary_writer out;
  write_header(out);
  out.boolean(reply.ok);
  out.str(reply.error);
  out.u64(reply.id);
  const service_status& s = reply.service;
  out.varint(s.queued);
  out.varint(s.admitted);
  out.varint(s.running);
  out.varint(s.paused);
  out.varint(s.done);
  out.varint(s.failed);
  out.varint(s.cancelled);
  out.varint(s.worker_budget);
  out.varint(s.reserved_units);
  out.varint(s.resident);
  out.varint(s.quanta);
  out.varint(s.preemptions);
  out.varint(s.evictions);
  out.varint(s.cold_starts);
  out.varint(s.warm_resumes);
  out.varint(reply.campaigns.size());
  for (const campaign_status& c : reply.campaigns) {
    out.u64(c.id);
    out.str(c.tenant);
    out.str(c.state);
    out.str(c.region);
    out.svarint(c.days);
    out.u64(c.seed);
    out.svarint(c.workers);
    out.svarint(c.shards);
    out.boolean(c.durable);
    out.svarint(c.cursor_hours);
    out.svarint(c.begin_hours);
    out.svarint(c.end_hours);
    out.varint(c.preemptions);
    out.str(c.error);
  }
  return std::string(out.bytes());
}

control_reply decode_reply(std::string_view payload) {
  binary_reader in = read_header(payload, "reply");
  control_reply reply;
  reply.ok = in.boolean();
  reply.error = in.str();
  reply.id = in.u64();
  service_status& s = reply.service;
  s.queued = in.varint();
  s.admitted = in.varint();
  s.running = in.varint();
  s.paused = in.varint();
  s.done = in.varint();
  s.failed = in.varint();
  s.cancelled = in.varint();
  s.worker_budget = in.varint();
  s.reserved_units = in.varint();
  s.resident = in.varint();
  s.quanta = in.varint();
  s.preemptions = in.varint();
  s.evictions = in.varint();
  s.cold_starts = in.varint();
  s.warm_resumes = in.varint();
  const std::uint64_t count = in.varint();
  reply.campaigns.resize(count);
  for (campaign_status& c : reply.campaigns) {
    c.id = in.u64();
    c.tenant = in.str();
    c.state = in.str();
    c.region = in.str();
    c.days = static_cast<int>(in.svarint());
    c.seed = in.u64();
    c.workers = static_cast<int>(in.svarint());
    c.shards = static_cast<int>(in.svarint());
    c.durable = in.boolean();
    c.cursor_hours = in.svarint();
    c.begin_hours = in.svarint();
    c.end_hours = in.svarint();
    c.preemptions = in.varint();
    c.error = in.str();
  }
  if (!in.done()) {
    throw invalid_argument_error("svc control: trailing bytes in reply");
  }
  return reply;
}

control_client::control_client(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

control_reply control_client::call(const control_request& req,
                                   int timeout_ms) {
  const std::unique_ptr<dist::fd_channel> channel =
      dist::connect_unix(socket_path_);
  channel->send(encode_request(req));
  std::string payload;
  switch (channel->recv(payload, timeout_ms)) {
    case dist::recv_status::ok:
      return decode_reply(payload);
    case dist::recv_status::timeout:
      throw state_error("svc control: daemon did not reply within " +
                        std::to_string(timeout_ms) + " ms");
    case dist::recv_status::corrupt:
      throw state_error("svc control: reply failed its CRC");
    case dist::recv_status::closed:
      throw state_error("svc control: daemon hung up mid-reply");
  }
  throw state_error("svc control: unreachable recv status");
}

}  // namespace clasp::svc

#include "svc/scheduler.hpp"

#include <algorithm>

#include "dist/coordinator.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp::svc {

campaign_session::campaign_session(const campaign_record& rec,
                                   const scheduler_settings& settings)
    : region_(rec.spec.region) {
  platform_config cfg = resolve_platform_config(rec.spec, settings.base);
  if (rec.spec.durable) {
    cfg.campaign_checkpoint_dir = settings.checkpoint_root;
    cfg.campaign_namespace = rec.tenant + "-" + std::to_string(rec.id);
  }
  platform_ = std::make_unique<clasp_platform>(std::move(cfg));
  runner_ = &platform_->start_topology_campaign(region_, spec_window(rec.spec));
  if (runner_->durable()) {
    resumed_ = runner_->resume(runner_->config().checkpoint_dir);
    if (resumed_) {
      last_checkpoint_cursor_ = runner_->cursor().hours_since_epoch();
    }
  }
}

campaign_session::quantum_result campaign_session::run_quantum(
    unsigned hours, std::atomic<campaign_runner*>* active) {
  quantum_result result;
  const hour_range window = runner_->config().window;
  const hour_stamp before = runner_->cursor();
  hour_stamp stop = before + static_cast<std::int64_t>(hours);
  if (stop > window.end_at) stop = window.end_at;
  const bool final_leg = stop == window.end_at;
  if (active) active->store(runner_, std::memory_order_release);
  bool completed;
  const std::size_t shards = platform_->config().campaign_shards;
  if (shards > 1) {
    dist::dist_config dc;
    dc.shards = shards;
    dist::shard_coordinator coord(*runner_, dc);
    // The final leg goes through run() so monthly storage is billed and
    // the closing checkpoint published, exactly as one batch run would.
    completed = final_leg ? coord.run() : coord.run_until(stop);
  } else {
    completed = final_leg ? runner_->run() : runner_->run_until(stop);
  }
  if (active) active->store(nullptr, std::memory_order_release);
  result.hours = static_cast<std::size_t>(runner_->cursor() - before);
  result.interrupted = !completed;
  result.finished = completed && final_leg;
  if (result.interrupted && runner_->durable()) {
    // run_until checkpointed before returning false.
    last_checkpoint_cursor_ = runner_->cursor().hours_since_epoch();
  }
  return result;
}

void campaign_session::checkpoint_now() {
  if (!runner_->durable()) return;
  if (runner_->cursor().hours_since_epoch() == last_checkpoint_cursor_) return;
  runner_->checkpoint(runner_->config().checkpoint_dir);
  last_checkpoint_cursor_ = runner_->cursor().hours_since_epoch();
}

void campaign_session::export_csv(std::ostream& out) const {
  tag_filter filter;
  filter.required["campaign"] = runner_->config().label;
  filter.required["region"] = region_;
  platform_->store().export_csv(out, "download_mbps", filter);
}

campaign_scheduler::campaign_scheduler(scheduler_settings settings)
    : settings_(std::move(settings)) {
  if (settings_.quantum_hours == 0) {
    throw invalid_argument_error("svc: quantum_hours must be >= 1");
  }
  if (settings_.max_resident == 0) {
    throw invalid_argument_error("svc: max_resident must be >= 1");
  }
}

campaign_session& campaign_scheduler::acquire(const campaign_record& rec) {
  const auto it = sessions_.find(rec.id);
  if (it != sessions_.end()) {
    touch(rec.id);
    return *it->second;
  }
  while (sessions_.size() >= settings_.max_resident) {
    // When every resident session is pinned (non-durable), over-commit:
    // residency past the cap only costs memory, eviction would cost
    // progress.
    if (!evict_one(rec.id)) break;
  }
  auto session = std::make_unique<campaign_session>(rec, settings_);
  campaign_session& ref = *session;
  sessions_.emplace(rec.id, std::move(session));
  lru_.push_back(rec.id);
  if (ref.resumed()) {
    stats_.warm_resumes += 1;
  } else {
    stats_.cold_starts += 1;
  }
  CLASP_LOG(info, "svc") << "session " << rec.tenant << "-" << rec.id
                         << (ref.resumed() ? " warm-resumed at "
                                           : " cold-started at ")
                         << ref.runner().cursor().to_string();
  return ref;
}

campaign_session* campaign_scheduler::find(std::uint64_t id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

campaign_session::quantum_result campaign_scheduler::run_quantum(
    campaign_session& session) {
  stats_.quanta += 1;
  return session.run_quantum(settings_.quantum_hours, &active_runner_);
}

void campaign_scheduler::release(std::uint64_t id, bool checkpoint_first) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  if (checkpoint_first) {
    if (!it->second->durable()) return;  // pinned; dropping loses progress
    it->second->checkpoint_now();
  }
  sessions_.erase(it);
  lru_.erase(std::remove(lru_.begin(), lru_.end(), id), lru_.end());
}

void campaign_scheduler::checkpoint_all() {
  for (auto& [id, session] : sessions_) session->checkpoint_now();
}

void campaign_scheduler::touch(std::uint64_t id) {
  const auto it = std::find(lru_.begin(), lru_.end(), id);
  if (it != lru_.end()) lru_.erase(it);
  lru_.push_back(id);
}

bool campaign_scheduler::evict_one(std::uint64_t keep_id) {
  for (const std::uint64_t victim : lru_) {
    if (victim == keep_id) continue;
    campaign_session* session = find(victim);
    if (session == nullptr || !session->durable()) continue;
    session->checkpoint_now();
    sessions_.erase(victim);
    lru_.erase(std::remove(lru_.begin(), lru_.end(), victim), lru_.end());
    stats_.evictions += 1;
    CLASP_LOG(info, "svc") << "evicted session for campaign " << victim
                           << " (resident cap " << settings_.max_resident
                           << ")";
    return true;
  }
  return false;
}

}  // namespace clasp::svc

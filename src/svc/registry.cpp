#include "svc/registry.hpp"

#include <filesystem>

#include "clasp/checkpoint.hpp"
#include "util/binio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp::svc {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kRegistryMagic = 0x47455243u;  // "CREG" little-endian
constexpr std::uint32_t kRegistryVersion = 1;

bool legal_transition(campaign_state from, campaign_state to) {
  switch (from) {
    case campaign_state::queued:
      return to == campaign_state::admitted || to == campaign_state::cancelled;
    case campaign_state::admitted:
      return to == campaign_state::running || to == campaign_state::paused ||
             to == campaign_state::cancelled;
    case campaign_state::running:
      return to == campaign_state::paused || to == campaign_state::done ||
             to == campaign_state::failed || to == campaign_state::cancelled;
    case campaign_state::paused:
      return to == campaign_state::queued || to == campaign_state::cancelled;
    case campaign_state::done:
    case campaign_state::failed:
    case campaign_state::cancelled:
      return false;  // terminal
  }
  return false;
}

campaign_state state_from_u8(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(campaign_state::cancelled)) {
    throw invalid_argument_error("svc: registry holds unknown state " +
                                 std::to_string(raw));
  }
  return static_cast<campaign_state>(raw);
}

}  // namespace

const char* to_string(campaign_state state) {
  switch (state) {
    case campaign_state::queued: return "queued";
    case campaign_state::admitted: return "admitted";
    case campaign_state::running: return "running";
    case campaign_state::paused: return "paused";
    case campaign_state::done: return "done";
    case campaign_state::failed: return "failed";
    case campaign_state::cancelled: return "cancelled";
  }
  return "unknown";
}

bool state_active(campaign_state state) {
  return state == campaign_state::queued ||
         state == campaign_state::admitted ||
         state == campaign_state::running || state == campaign_state::paused;
}

campaign_record& campaign_registry::submit(const std::string& tenant,
                                           campaign_spec spec) {
  if (tenant.empty()) {
    throw invalid_argument_error("svc: submission needs a tenant name");
  }
  validate_spec(spec);
  const std::uint64_t id = next_id_;
  if (spec.seed == 0) {
    // Service-assigned seed: deterministic in (tenant, id), so a
    // restarted daemon reports the same seed, and never 0 (0 would
    // re-trigger assignment on a future decode).
    spec.seed = hash_tag(hash_tag(0x5eedull, tenant), std::to_string(id));
    if (spec.seed == 0) spec.seed = 1;
  }
  const std::uint64_t fp = spec_fingerprint(spec);
  for (const auto& [other_id, rec] : records_) {
    if (rec.tenant == tenant && rec.fingerprint == fp &&
        state_active(rec.state)) {
      throw state_error("svc: tenant " + tenant +
                        " already has this campaign active as id " +
                        std::to_string(other_id) +
                        " (cancel it or change the spec)");
    }
  }
  campaign_record rec;
  rec.id = id;
  rec.tenant = tenant;
  rec.spec = std::move(spec);
  rec.fingerprint = fp;
  rec.state = campaign_state::queued;
  rec.submit_seq = next_seq_;
  rec.cursor_hours = spec_window(rec.spec).begin_at.hours_since_epoch();
  next_id_ += 1;
  next_seq_ += 1;
  dirty_ = true;
  return records_.emplace(id, std::move(rec)).first->second;
}

bool campaign_registry::contains(std::uint64_t id) const {
  return records_.count(id) != 0;
}

campaign_record& campaign_registry::record(std::uint64_t id) {
  const auto it = records_.find(id);
  if (it == records_.end()) {
    throw not_found_error("svc: no campaign with id " + std::to_string(id));
  }
  return it->second;
}

const campaign_record& campaign_registry::record(std::uint64_t id) const {
  return const_cast<campaign_registry*>(this)->record(id);
}

void campaign_registry::transition(std::uint64_t id, campaign_state to) {
  campaign_record& rec = record(id);
  if (!legal_transition(rec.state, to)) {
    throw state_error("svc: campaign " + std::to_string(id) + " cannot go " +
                      to_string(rec.state) + " -> " + to_string(to));
  }
  rec.state = to;
  dirty_ = true;
}

void campaign_registry::fail(std::uint64_t id, std::string why) {
  campaign_record& rec = record(id);
  if (!state_active(rec.state)) {
    throw state_error("svc: campaign " + std::to_string(id) +
                      " is terminal (" + to_string(rec.state) +
                      "), cannot fail it");
  }
  rec.state = campaign_state::failed;
  rec.error = std::move(why);
  dirty_ = true;
}

std::vector<std::uint64_t> campaign_registry::ids() const {
  std::vector<std::uint64_t> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(id);
  return out;
}

std::vector<std::uint64_t> campaign_registry::in_state(
    campaign_state state) const {
  std::vector<std::uint64_t> out;
  for (const auto& [id, rec] : records_) {
    if (rec.state == state) out.push_back(id);
  }
  return out;
}

std::size_t campaign_registry::count(campaign_state state) const {
  std::size_t n = 0;
  for (const auto& [id, rec] : records_) {
    if (rec.state == state) n += 1;
  }
  return n;
}

std::size_t campaign_registry::active_count() const {
  std::size_t n = 0;
  for (const auto& [id, rec] : records_) {
    if (state_active(rec.state)) n += 1;
  }
  return n;
}

std::size_t campaign_registry::active_count(const std::string& tenant) const {
  std::size_t n = 0;
  for (const auto& [id, rec] : records_) {
    if (rec.tenant == tenant && state_active(rec.state)) n += 1;
  }
  return n;
}

void campaign_registry::reset_transients() {
  for (auto& [id, rec] : records_) {
    if (rec.state == campaign_state::admitted ||
        rec.state == campaign_state::running) {
      rec.state = campaign_state::queued;
    }
  }
}

std::string campaign_registry::encode() const {
  binary_writer out;
  out.u32(kRegistryMagic);
  out.u32(kRegistryVersion);
  out.u64(next_id_);
  out.u64(next_seq_);
  out.varint(records_.size());
  for (const auto& [id, rec] : records_) {
    out.u64(rec.id);
    out.str(rec.tenant);
    out.str(encode_spec(rec.spec));
    out.u64(rec.fingerprint);
    out.u8(static_cast<std::uint8_t>(rec.state));
    out.u64(rec.submit_seq);
    out.svarint(rec.cursor_hours);
    out.varint(rec.preemptions);
    out.str(rec.error);
  }
  return std::string(out.bytes());
}

campaign_registry campaign_registry::decode(std::string_view payload) {
  binary_reader in(payload);
  if (in.u32() != kRegistryMagic) {
    throw invalid_argument_error("svc: registry snapshot has bad magic");
  }
  const std::uint32_t version = in.u32();
  if (version != kRegistryVersion) {
    throw invalid_argument_error("svc: registry snapshot version " +
                                 std::to_string(version) + " unsupported");
  }
  campaign_registry reg;
  reg.next_id_ = in.u64();
  reg.next_seq_ = in.u64();
  const std::uint64_t count = in.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    campaign_record rec;
    rec.id = in.u64();
    rec.tenant = in.str();
    rec.spec = decode_spec(in.str());
    rec.fingerprint = in.u64();
    rec.state = state_from_u8(in.u8());
    rec.submit_seq = in.u64();
    rec.cursor_hours = in.svarint();
    rec.preemptions = in.varint();
    rec.error = in.str();
    reg.records_.emplace(rec.id, std::move(rec));
  }
  if (!in.done()) {
    throw invalid_argument_error("svc: trailing bytes in registry snapshot");
  }
  return reg;
}

void campaign_registry::save(const std::string& path) const {
  const fs::path target(path);
  if (target.has_parent_path()) fs::create_directories(target.parent_path());
  const fs::path tmp = target.string() + ".tmp";
  write_crc_file(tmp.string(), encode());
  fs::rename(tmp, target);
  dirty_ = false;
}

std::optional<campaign_registry> campaign_registry::load(
    const std::string& path) {
  if (!fs::exists(path)) return std::nullopt;
  return decode(read_crc_file(path));
}

}  // namespace clasp::svc

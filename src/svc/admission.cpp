#include "svc/admission.hpp"

#include <algorithm>
#include <thread>

#include "util/error.hpp"

namespace clasp::svc {

namespace {

bool holds_budget(campaign_state state) {
  return state == campaign_state::admitted ||
         state == campaign_state::running;
}

}  // namespace

admission_controller::admission_controller(admission_policy policy)
    : policy_(policy) {
  if (policy_.worker_budget == 0) {
    throw invalid_argument_error("svc: worker_budget must be >= 1");
  }
  if (policy_.max_admitted == 0 || policy_.tenant_max_admitted == 0 ||
      policy_.tenant_max_active == 0) {
    throw invalid_argument_error("svc: admission quotas must be >= 1");
  }
}

unsigned admission_controller::units(const campaign_spec& spec,
                                     const platform_config& base) {
  unsigned workers =
      spec.workers >= 0 ? static_cast<unsigned>(spec.workers)
                        : base.campaign_workers;
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  const unsigned shards =
      spec.shards >= 1 ? static_cast<unsigned>(spec.shards)
                       : static_cast<unsigned>(base.campaign_shards);
  return std::max(1u, std::max(workers, shards));
}

unsigned admission_controller::reserved_units(
    const campaign_registry& reg, const platform_config& base) const {
  unsigned reserved = 0;
  for (const auto& [id, rec] : reg.records()) {
    if (holds_budget(rec.state)) reserved += units(rec.spec, base);
  }
  return reserved;
}

void admission_controller::check_submit(const campaign_registry& reg,
                                        const std::string& tenant,
                                        const campaign_spec& spec,
                                        const platform_config& base) const {
  const unsigned u = units(spec, base);
  if (u > policy_.worker_budget) {
    throw budget_exceeded_error(
        "svc: spec needs " + std::to_string(u) + " worker units but the "
        "service budget is " + std::to_string(policy_.worker_budget) +
        " — it could never be admitted");
  }
  if (reg.active_count(tenant) >= policy_.tenant_max_active) {
    throw budget_exceeded_error(
        "svc: tenant " + tenant + " is at its active-campaign quota (" +
        std::to_string(policy_.tenant_max_active) +
        "); cancel or wait for one to finish");
  }
}

std::vector<std::uint64_t> admission_controller::admit(
    campaign_registry& reg, const platform_config& base) const {
  // Queued records in submit order.
  std::vector<const campaign_record*> queue;
  unsigned reserved = 0;
  std::size_t admitted_total = 0;
  std::map<std::string, std::size_t> admitted_by_tenant;
  for (const auto& [id, rec] : reg.records()) {
    if (rec.state == campaign_state::queued) {
      queue.push_back(&rec);
    } else if (holds_budget(rec.state)) {
      reserved += units(rec.spec, base);
      admitted_total += 1;
      admitted_by_tenant[rec.tenant] += 1;
    }
  }
  std::sort(queue.begin(), queue.end(),
            [](const campaign_record* a, const campaign_record* b) {
              return a->submit_seq < b->submit_seq;
            });
  std::vector<std::uint64_t> admitted;
  for (const campaign_record* rec : queue) {
    const unsigned u = units(rec->spec, base);
    if (reserved + u > policy_.worker_budget) continue;  // backfill later ones
    if (admitted_total >= policy_.max_admitted) break;
    if (admitted_by_tenant[rec->tenant] >= policy_.tenant_max_admitted) {
      continue;
    }
    reg.transition(rec->id, campaign_state::admitted);
    reserved += u;
    admitted_total += 1;
    admitted_by_tenant[rec->tenant] += 1;
    admitted.push_back(rec->id);
  }
  return admitted;
}

}  // namespace clasp::svc

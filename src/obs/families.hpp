// Canonical metric family names. Instrumentation sites and tests share
// these constants so the taxonomy stays typo-free; register_core_families
// creates all of them so an exposition always covers every family, even
// when a run never touches some subsystem.
#pragma once

namespace clasp::obs::family {

// Campaign replay (src/clasp/campaign.cpp).
inline constexpr const char* kCampaignHours = "clasp_campaign_hours_total";
inline constexpr const char* kCampaignTests = "clasp_campaign_tests_total";
inline constexpr const char* kCampaignTestsFailed =
    "clasp_campaign_tests_failed_total";
inline constexpr const char* kCampaignTestRetries =
    "clasp_campaign_test_retries_total";
inline constexpr const char* kCampaignTestsMissed =
    "clasp_campaign_tests_missed_total";
inline constexpr const char* kCampaignPoints = "clasp_campaign_points_total";
inline constexpr const char* kCampaignUploadFailures =
    "clasp_campaign_upload_failures_total";
inline constexpr const char* kCampaignCursorHours =
    "clasp_campaign_cursor_hours";
inline constexpr const char* kCampaignWindowHours =
    "clasp_campaign_window_hours";
inline constexpr const char* kCampaignSessions = "clasp_campaign_sessions";
inline constexpr const char* kCampaignHourSeconds =
    "clasp_campaign_hour_seconds";

// Fleet scale + batched evaluation (SoA fast path; see DESIGN.md,
// "Memory layout & batched evaluation").
inline constexpr const char* kFleetServers = "clasp_fleet_servers";
inline constexpr const char* kFleetVms = "clasp_fleet_vms";
inline constexpr const char* kSessionsTotal = "clasp_sessions_total";
inline constexpr const char* kBatchGroupsPerHour =
    "clasp_batch_groups_per_hour";

// Thread pool (published from util::thread_pool::stats() by the campaign
// coordinator; the pool itself stays obs-free to avoid a util->obs cycle).
inline constexpr const char* kPoolWorkers = "clasp_pool_workers";
inline constexpr const char* kPoolBatches = "clasp_pool_batches";
inline constexpr const char* kPoolTasks = "clasp_pool_tasks";
inline constexpr const char* kPoolBusySeconds = "clasp_pool_busy_seconds";
inline constexpr const char* kPoolLastBatchSize =
    "clasp_pool_last_batch_size";
inline constexpr const char* kPoolUtilization = "clasp_pool_utilization";

// Hour-epoch link-condition cache (src/netsim/condition_cache.cpp).
inline constexpr const char* kCacheHits = "clasp_cache_hits_total";
inline constexpr const char* kCacheMisses = "clasp_cache_misses_total";
inline constexpr const char* kCachePrefills = "clasp_cache_prefills_total";
inline constexpr const char* kCachePrefillLinks =
    "clasp_cache_prefill_links_total";

// TSDB + WAL (src/tsdb/).
inline constexpr const char* kWalAppends = "clasp_wal_appends_total";
inline constexpr const char* kWalBytes = "clasp_wal_bytes_total";
inline constexpr const char* kWalFlushes = "clasp_wal_flushes_total";
inline constexpr const char* kTsdbSnapshots = "clasp_tsdb_snapshots_total";
inline constexpr const char* kTsdbSnapshotBytes =
    "clasp_tsdb_snapshot_bytes_total";
inline constexpr const char* kTsdbRestores = "clasp_tsdb_restores_total";
inline constexpr const char* kTsdbSnapshotSeconds =
    "clasp_tsdb_snapshot_seconds";

// Checkpoint/resume (src/clasp/checkpoint.cpp).
inline constexpr const char* kCheckpointPublishes =
    "clasp_checkpoint_publishes_total";
inline constexpr const char* kCheckpointGcRemoved =
    "clasp_checkpoint_gc_removed_total";
inline constexpr const char* kCheckpointResumes =
    "clasp_checkpoint_resumes_total";
inline constexpr const char* kCheckpointLastHour =
    "clasp_checkpoint_last_hour";
inline constexpr const char* kCheckpointPublishSeconds =
    "clasp_checkpoint_publish_seconds";

// Fault injection: planned (from the deterministic schedule) vs observed
// (what the replay actually recorded).
inline constexpr const char* kFaultsPlannedWithdrawals =
    "clasp_faults_planned_withdrawals";
inline constexpr const char* kFaultsPlannedOutages =
    "clasp_faults_planned_outages";
inline constexpr const char* kFaultsPlannedOutageHours =
    "clasp_faults_planned_outage_hours";
inline constexpr const char* kFaultsPreempts = "clasp_faults_preempts_total";
inline constexpr const char* kFaultsRedeploys =
    "clasp_faults_redeploys_total";
inline constexpr const char* kFaultsWithdrawals =
    "clasp_faults_withdrawals_total";
inline constexpr const char* kFaultsVmDownHours =
    "clasp_faults_vm_down_hours_total";
inline constexpr const char* kFaultsSkippedTests =
    "clasp_faults_skipped_tests_total";

// Vantage swarm (src/clasp/swarm.cpp): community pre-test probe
// membership, coverage and credit spend. Gauges hold the latest pre-test
// round's view; counters accumulate across pre-tests.
inline constexpr const char* kSwarmProbes = "clasp_swarm_probes";
inline constexpr const char* kSwarmActiveProbes = "clasp_swarm_active_probes";
inline constexpr const char* kSwarmCoverageRatio =
    "clasp_swarm_coverage_ratio";
inline constexpr const char* kSwarmStaleTuples = "clasp_swarm_stale_tuples";
inline constexpr const char* kSwarmCreditsSpent =
    "clasp_swarm_credits_spent_total";
inline constexpr const char* kSwarmSubstitutions =
    "clasp_swarm_substitutions_total";
inline constexpr const char* kSwarmMissedRounds =
    "clasp_swarm_missed_rounds_total";
inline constexpr const char* kSwarmRateLimited =
    "clasp_swarm_rate_limited_total";

// Distributed replay (src/dist/): coordinator-side view of the shard
// fleet. Gauges track the live topology; counters accumulate protocol
// traffic and every robustness action (timeouts, CRC rejects, resends,
// failovers) so a chaos run is fully visible in one exposition.
inline constexpr const char* kDistWorkers = "clasp_dist_workers";
inline constexpr const char* kDistBarrierHour = "clasp_dist_barrier_hour";
inline constexpr const char* kDistGroupsMerged =
    "clasp_dist_groups_merged_total";
inline constexpr const char* kDistRecords = "clasp_dist_records_total";
inline constexpr const char* kDistHeartbeats = "clasp_dist_heartbeats_total";
inline constexpr const char* kDistTimeouts = "clasp_dist_timeouts_total";
inline constexpr const char* kDistResends = "clasp_dist_resends_total";
inline constexpr const char* kDistCrcRejects =
    "clasp_dist_crc_rejects_total";
inline constexpr const char* kDistFailovers = "clasp_dist_failovers_total";
inline constexpr const char* kDistRespawns = "clasp_dist_respawns_total";
inline constexpr const char* kDistBarrierSeconds =
    "clasp_dist_barrier_seconds";

// Campaign service daemon (src/svc/). Gauges mirror the registry's state
// counts plus the scheduler's residency; counters accumulate lifecycle
// events, quanta and control traffic. Per-campaign progress additionally
// appears as label-embedded gauge names,
//   clasp_svc_campaign_cursor_hours{tenant="...",campaign="N"},
// which the registry treats as ordinary names and the Prometheus
// exposition renders literally.
inline constexpr const char* kSvcQueued = "clasp_svc_queued";
inline constexpr const char* kSvcAdmitted = "clasp_svc_admitted";
inline constexpr const char* kSvcRunning = "clasp_svc_running";
inline constexpr const char* kSvcPaused = "clasp_svc_paused";
inline constexpr const char* kSvcResident = "clasp_svc_resident";
inline constexpr const char* kSvcReservedUnits = "clasp_svc_reserved_units";
inline constexpr const char* kSvcWorkerBudget = "clasp_svc_worker_budget";
inline constexpr const char* kSvcSubmissions = "clasp_svc_submissions_total";
inline constexpr const char* kSvcCompletions = "clasp_svc_completions_total";
inline constexpr const char* kSvcFailures = "clasp_svc_failures_total";
inline constexpr const char* kSvcCancellations =
    "clasp_svc_cancellations_total";
inline constexpr const char* kSvcPreemptions = "clasp_svc_preemptions_total";
inline constexpr const char* kSvcEvictions = "clasp_svc_evictions_total";
inline constexpr const char* kSvcQuanta = "clasp_svc_quanta_total";
inline constexpr const char* kSvcColdStarts = "clasp_svc_cold_starts_total";
inline constexpr const char* kSvcWarmResumes =
    "clasp_svc_warm_resumes_total";
inline constexpr const char* kSvcControlRequests =
    "clasp_svc_control_requests_total";
inline constexpr const char* kSvcDrains = "clasp_svc_drains_total";
inline constexpr const char* kSvcCampaignCursorHours =
    "clasp_svc_campaign_cursor_hours";

}  // namespace clasp::obs::family

#include "obs/trace.hpp"

#include <time.h>

#include <chrono>

namespace clasp::obs {

const char* to_string(phase p) {
  switch (p) {
    case phase::deploy: return "deploy";
    case phase::begin_hour: return "begin_hour";
    case phase::prefill: return "prefill";
    case phase::stage: return "stage";
    case phase::commit: return "commit";
    case phase::checkpoint: return "checkpoint";
    case phase::resume: return "resume";
    case phase::analysis: return "analysis";
  }
  return "?";
}

std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

trace_ring& trace_ring::instance() {
  static trace_ring ring;
  return ring;
}

void trace_ring::record(const span_record& s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(s);
  } else {
    ring_[next_] = s;
    next_ = (next_ + 1) % capacity_;
  }
  phase_rollup& r = rollups_[static_cast<std::size_t>(s.ph)];
  ++r.count;
  r.wall_ns += s.wall_ns;
  r.cpu_ns += s.cpu_ns;
  if (s.wall_ns > r.max_wall_ns) r.max_wall_ns = s.wall_ns;
}

void trace_ring::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n == 0) n = 1;
  if (n == capacity_ && ring_.size() <= capacity_) return;
  // Re-linearize oldest-to-newest, then keep the newest n.
  std::vector<span_record> linear;
  linear.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    linear.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  if (linear.size() > n) {
    linear.erase(linear.begin(),
                 linear.begin() + static_cast<std::ptrdiff_t>(linear.size() - n));
  }
  ring_ = std::move(linear);
  next_ = 0;
  capacity_ = n;
  // A full ring must wrap at index 0 (oldest is ring_[next_]).
  if (ring_.size() == capacity_) next_ = 0;
}

std::size_t trace_ring::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::vector<span_record> trace_ring::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<span_record> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::array<phase_rollup, kPhaseCount> trace_ring::rollups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rollups_;
}

void trace_ring::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  rollups_ = {};
}

trace_span::trace_span(phase p, std::int64_t hour) : ph_(p), hour_(hour) {
  if (!enabled()) return;
  armed_ = true;
  if (cpu_timed(p)) cpu_begin_ns_ = thread_cpu_ns();
  wall_begin_ns_ = wall_ns();
}

trace_span::~trace_span() {
  if (!armed_) return;
  span_record s;
  s.ph = ph_;
  s.hour = hour_;
  const std::uint64_t wall_end = wall_ns();
  s.wall_ns = wall_end >= wall_begin_ns_ ? wall_end - wall_begin_ns_ : 0;
  if (cpu_timed(ph_)) {
    const std::uint64_t cpu_end = thread_cpu_ns();
    s.cpu_ns = cpu_end >= cpu_begin_ns_ ? cpu_end - cpu_begin_ns_ : 0;
  }
  trace_ring::instance().record(s);
}

}  // namespace clasp::obs

// RAII scoped timers over the campaign phase taxonomy.
//
// A trace_span measures wall time (steady_clock) and thread CPU time
// (CLOCK_THREAD_CPUTIME_ID where available) for one phase of work and
// records a span_record into a bounded in-memory ring plus per-phase
// rollups. Spans are created coordinator-side (a handful per campaign
// hour); the disabled cost is one relaxed atomic load in the constructor.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace clasp::obs {

// Phase taxonomy (see DESIGN.md "Observability"). `stage` covers worker
// evaluation of a whole hour (the paper-facing "evaluate" phase).
enum class phase : std::uint8_t {
  deploy = 0,
  begin_hour,
  prefill,
  stage,
  commit,
  checkpoint,
  resume,
  analysis,
};
inline constexpr std::size_t kPhaseCount = 8;

const char* to_string(phase p);

// Thread CPU time is a syscall (~hundreds of ns), so spans only read it
// for the rare heavyweight phases. The per-hour phases skip it: their
// coordinator-thread CPU time is uninformative anyway once workers do the
// evaluation, and the hot loop stays in the low tens of ns per span.
inline constexpr bool cpu_timed(phase p) {
  return p == phase::deploy || p == phase::checkpoint ||
         p == phase::resume || p == phase::analysis;
}

struct span_record {
  phase ph{phase::deploy};
  std::int64_t hour{-1};  // hours-since-epoch cursor, -1 when not hourly
  std::uint64_t wall_ns{0};
  std::uint64_t cpu_ns{0};
};

struct phase_rollup {
  std::uint64_t count{0};
  std::uint64_t wall_ns{0};
  std::uint64_t cpu_ns{0};
  std::uint64_t max_wall_ns{0};
};

// Bounded ring of recent spans + cumulative per-phase rollups. The ring
// is mutex-protected (span completion is rare); rollups are plain fields
// updated under the same mutex.
class trace_ring {
 public:
  trace_ring() = default;
  trace_ring(const trace_ring&) = delete;
  trace_ring& operator=(const trace_ring&) = delete;

  static trace_ring& instance();

  void record(const span_record& s);

  // Ring capacity; shrinking drops the oldest spans. Minimum 1.
  void set_capacity(std::size_t n);
  std::size_t capacity() const;

  // Oldest-to-newest copy of the retained spans.
  std::vector<span_record> recent() const;
  std::array<phase_rollup, kPhaseCount> rollups() const;

  // Drops all spans and zeroes the rollups (capacity unchanged).
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<span_record> ring_;  // ring_[next_] is the oldest once wrapped
  std::size_t next_{0};
  std::size_t capacity_{256};
  std::array<phase_rollup, kPhaseCount> rollups_{};
};

// Scoped timer; records into trace_ring::instance() on destruction.
// Construction when obs is disabled arms nothing and reads no clocks.
class trace_span {
 public:
  explicit trace_span(phase p, std::int64_t hour = -1);
  ~trace_span();
  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

 private:
  phase ph_;
  std::int64_t hour_;
  bool armed_{false};
  std::uint64_t wall_begin_ns_{0};
  std::uint64_t cpu_begin_ns_{0};
};

// Current thread's CPU time in ns; 0 where the platform lacks
// CLOCK_THREAD_CPUTIME_ID.
std::uint64_t thread_cpu_ns();

}  // namespace clasp::obs

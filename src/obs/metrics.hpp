// Low-overhead metrics primitives: sharded counters, gauges and
// fixed-bucket histograms behind a process-wide registry.
//
// Design constraints (see DESIGN.md "Observability"):
//  - Everything is compiled in but gated on a single global enabled flag;
//    a disabled instrumentation site costs one relaxed atomic load and a
//    predictable branch, nothing else.
//  - Hot-path counters are sharded per worker thread (cache-line aligned
//    slots indexed by a thread-local shard id) and aggregated only at
//    read time, so the campaign inner loop never contends on a counter.
//  - Metric handles returned by the registry are stable for the process
//    lifetime: instrumentation sites resolve them once and cache raw
//    pointers. reset_values() zeroes values but never invalidates handles.
//  - Recording NEVER touches simulated time or random state, so campaign
//    output stays byte-identical with metrics on or off (asserted in
//    campaign_parallel_test).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace clasp::obs {

// Number of independent counter slots. A power of two a little above the
// worker counts we run with (campaigns cap useful workers well below
// this); two workers mapping to one shard is correct, just more shared.
inline constexpr std::size_t kShardCount = 16;

namespace detail {
extern std::atomic<bool> g_enabled;
// Round-robin shard assignment for a new thread; out of line.
std::size_t assign_shard();
// kShardCount doubles as the "unassigned" sentinel so the thread-local is
// constant-initialized: no TLS init guard on the per-add fast path.
inline thread_local std::size_t t_shard = kShardCount;
// Stable small shard id for the calling thread. One TLS load and a
// predictable branch after the first call.
inline std::size_t shard_index() {
  if (t_shard >= kShardCount) t_shard = assign_shard();
  return t_shard;
}
}  // namespace detail

// Global switch. Off by default; enabling is one-way cheap (no fences
// beyond the store) and can be toggled freely in tests.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Monotonically increasing event count. add() is wait-free: one relaxed
// fetch_add on the caller's shard when enabled, a branch when not.
class counter {
 public:
  counter() = default;
  counter(const counter&) = delete;
  counter& operator=(const counter&) = delete;

  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
  }
  // Aggregates across shards; read-time only.
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<shard, kShardCount> shards_{};
};

// Last-write-wins double. Gauges are set from coordinator-side code
// (cursor position, pool utilization), so a single atomic is enough.
class gauge {
 public:
  gauge() = default;
  gauge(const gauge&) = delete;
  gauge& operator=(const gauge&) = delete;

  void set(double v) {
    if (!enabled()) return;
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

// Fixed-bucket histogram (Prometheus-style cumulative exposition).
// Bucket upper bounds are fixed at registration; observe() is a binary
// search plus one sharded relaxed add, and the sum is accumulated in
// nanounits (value * 1e9, saturating) so no CAS loop is needed.
class histogram {
 public:
  explicit histogram(std::span<const double> upper_bounds);
  histogram(const histogram&) = delete;
  histogram& operator=(const histogram&) = delete;

  void observe(double x);

  struct snapshot {
    std::vector<double> bounds;        // upper bounds, ascending
    std::vector<std::uint64_t> counts; // bounds.size() + 1 (last = overflow)
    std::uint64_t count{0};
    double sum{0.0};
  };
  snapshot read() const;

  // Quantile estimate (q in [0, 1]); see snapshot_quantile.
  double quantile(double q) const;

  void reset();

 private:
  std::vector<double> bounds_;
  struct alignas(64) shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<std::uint64_t> sum_nanos{0};
  };
  std::array<shard, kShardCount> shards_;
};

// Name → metric map with stable handles. Names follow Prometheus
// conventions (snake_case, `clasp_` prefix, `_total` for counters); the
// canonical set lives in obs/families.hpp.
class metrics_registry {
 public:
  metrics_registry() = default;
  metrics_registry(const metrics_registry&) = delete;
  metrics_registry& operator=(const metrics_registry&) = delete;

  static metrics_registry& instance();

  // Find-or-create. The returned reference stays valid for the registry's
  // lifetime. get_histogram ignores the bounds argument when the name
  // already exists (first registration wins).
  counter& get_counter(const std::string& name);
  gauge& get_gauge(const std::string& name);
  histogram& get_histogram(const std::string& name,
                           std::span<const double> upper_bounds);

  // Zero every value, keeping all registrations (handles stay valid).
  void reset_values();

  // Read-time copies for exposition; sorted by name (std::map).
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, histogram::snapshot> histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<counter>> counters_;
  std::map<std::string, std::unique_ptr<gauge>> gauges_;
  std::map<std::string, std::unique_ptr<histogram>> histograms_;
};

// Quantile estimate (q clamped to [0, 1]) by linear interpolation inside
// the selected bucket; the overflow bucket reports the largest finite
// bound. 0 when the snapshot is empty.
double snapshot_quantile(const histogram::snapshot& s, double q);

// Pre-registers every canonical metric family (obs/families.hpp) in the
// global registry so expositions cover all families even when a run never
// exercises some subsystem (e.g. a campaign without checkpoints).
void register_core_families();

// Shared duration bucket bounds (seconds) for the built-in histograms.
std::span<const double> duration_buckets();

}  // namespace clasp::obs

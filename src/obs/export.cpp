#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace clasp::obs {

namespace {

// Compact deterministic number rendering shared by both formats:
// integers print without a decimal point, everything else as %.9g.
std::string format_number(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string format_number(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) / 1e9; }

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string to_prometheus(const metrics_registry& reg,
                          const trace_ring& ring) {
  std::string out;
  for (const auto& [name, value] : reg.counters()) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + format_number(value) + "\n";
  }
  for (const auto& [name, value] : reg.gauges()) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_number(value) + "\n";
  }
  for (const auto& [name, snap] : reg.histograms()) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      cum += snap.counts[i];
      out += name + "_bucket{le=\"" + format_number(snap.bounds[i]) + "\"} " +
             format_number(cum) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + format_number(snap.count) + "\n";
    out += name + "_sum " + format_number(snap.sum) + "\n";
    out += name + "_count " + format_number(snap.count) + "\n";
  }
  const auto rollups = ring.rollups();
  out += "# TYPE clasp_span_count_total counter\n";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    out += std::string("clasp_span_count_total{phase=\"") +
           to_string(static_cast<phase>(i)) + "\"} " +
           format_number(rollups[i].count) + "\n";
  }
  out += "# TYPE clasp_span_wall_seconds_total counter\n";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    out += std::string("clasp_span_wall_seconds_total{phase=\"") +
           to_string(static_cast<phase>(i)) + "\"} " +
           format_number(ns_to_s(rollups[i].wall_ns)) + "\n";
  }
  out += "# TYPE clasp_span_cpu_seconds_total counter\n";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    out += std::string("clasp_span_cpu_seconds_total{phase=\"") +
           to_string(static_cast<phase>(i)) + "\"} " +
           format_number(ns_to_s(rollups[i].cpu_ns)) + "\n";
  }
  return out;
}

std::string to_prometheus() {
  return to_prometheus(metrics_registry::instance(), trace_ring::instance());
}

std::string to_json(const metrics_registry& reg, const trace_ring& ring) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : reg.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + format_number(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : reg.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + format_number(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : reg.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": {\"count\": " + format_number(snap.count);
    out += ", \"sum\": " + format_number(snap.sum);
    out += ", \"p50\": " + format_number(snapshot_quantile(snap, 0.50));
    out += ", \"p95\": " + format_number(snapshot_quantile(snap, 0.95));
    out += ", \"bounds\": [";
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      if (i) out += ", ";
      out += format_number(snap.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (i) out += ", ";
      out += format_number(snap.counts[i]);
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";

  const auto rollups = ring.rollups();
  out += "  \"spans\": {\n    \"rollups\": {";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += std::string("      \"") + to_string(static_cast<phase>(i)) +
           "\": {\"count\": " + format_number(rollups[i].count) +
           ", \"wall_seconds\": " + format_number(ns_to_s(rollups[i].wall_ns)) +
           ", \"cpu_seconds\": " + format_number(ns_to_s(rollups[i].cpu_ns)) +
           ", \"max_wall_seconds\": " +
           format_number(ns_to_s(rollups[i].max_wall_ns)) + "}";
  }
  out += "\n    },\n";

  const std::vector<span_record> recent = ring.recent();
  std::vector<double> walls;
  walls.reserve(recent.size());
  for (const span_record& s : recent) walls.push_back(ns_to_s(s.wall_ns));
  out += "    \"recent_wall_seconds_p50\": " +
         format_number(percentile_or(walls, 50.0, 0.0)) + ",\n";
  out += "    \"recent_wall_seconds_p95\": " +
         format_number(percentile_or(walls, 95.0, 0.0)) + ",\n";
  out += "    \"recent\": [";
  for (std::size_t i = 0; i < recent.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += std::string("      {\"phase\": \"") + to_string(recent[i].ph) +
           "\", \"hour\": " +
           format_number(static_cast<double>(recent[i].hour)) +
           ", \"wall_seconds\": " + format_number(ns_to_s(recent[i].wall_ns)) +
           ", \"cpu_seconds\": " + format_number(ns_to_s(recent[i].cpu_ns)) +
           "}";
  }
  out += recent.empty() ? "]\n" : "\n    ]\n";
  out += "  }\n}\n";
  return out;
}

std::string to_json() {
  return to_json(metrics_registry::instance(), trace_ring::instance());
}

void write_metrics_files(const std::string& path) {
  {
    std::ofstream prom(path, std::ios::trunc);
    if (!prom) throw not_found_error("metrics: cannot write " + path);
    prom << to_prometheus();
  }
  const std::string json_path = path + ".json";
  std::ofstream json(json_path, std::ios::trunc);
  if (!json) throw not_found_error("metrics: cannot write " + json_path);
  json << to_json();
}

}  // namespace clasp::obs

// Exposition: Prometheus text format and structured JSON snapshots.
//
// Both renderings are deterministic for a given metric state (names
// sorted, phases in enum order) so tests can golden-match them. Span
// quantiles reuse util/stats percentile paths.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace clasp::obs {

// Prometheus text exposition (one `# TYPE` line per family; histogram
// buckets use cumulative `_bucket{le="..."}` samples; span rollups are
// exposed as `clasp_span_*{phase="..."}` series).
std::string to_prometheus(const metrics_registry& reg,
                          const trace_ring& ring);
std::string to_prometheus();

// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
// {...}, "spans": {"rollups": {...}, "recent": [...]}}. Histograms carry
// p50/p95 estimates; recent spans carry wall-time p50/p95 computed with
// util/stats percentile.
std::string to_json(const metrics_registry& reg, const trace_ring& ring);
std::string to_json();

// Writes the Prometheus text to `path` and the JSON snapshot to
// `path + ".json"`. Throws not_found_error when either file cannot be
// opened for writing.
void write_metrics_files(const std::string& path);

}  // namespace clasp::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/families.hpp"
#include "util/error.hpp"

namespace clasp::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

std::size_t assign_shard() {
  return g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShardCount;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t counter::value() const {
  std::uint64_t total = 0;
  for (const shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void counter::reset() {
  for (shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

histogram::histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  if (bounds_.empty()) {
    throw invalid_argument_error("histogram: no bucket bounds");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw invalid_argument_error("histogram: bounds not ascending");
  }
  for (shard& s : shards_) {
    s.counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void histogram::observe(double x) {
  if (!enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  shard& s = shards_[detail::shard_index()];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  // Sum kept in nanounits so a plain fetch_add works; histograms here
  // record durations in seconds, far from the ~584-year overflow point.
  const double nanos = x * 1e9;
  const std::uint64_t add =
      nanos <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(nanos));
  s.sum_nanos.fetch_add(add, std::memory_order_relaxed);
}

histogram::snapshot histogram::read() const {
  snapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  std::uint64_t sum_nanos = 0;
  for (const shard& s : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      out.counts[i] += s.counts[i].load(std::memory_order_relaxed);
    }
    sum_nanos += s.sum_nanos.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : out.counts) out.count += c;
  out.sum = static_cast<double>(sum_nanos) / 1e9;
  return out;
}

double histogram::quantile(double q) const {
  return snapshot_quantile(read(), q);
}

double snapshot_quantile(const histogram::snapshot& s, double q) {
  if (s.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(s.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += s.counts[i];
    if (static_cast<double>(cum) < target) continue;
    if (i == s.bounds.size()) return s.bounds.back();  // overflow bucket
    const double lo = i == 0 ? 0.0 : s.bounds[i - 1];
    const double hi = s.bounds[i];
    if (s.counts[i] == 0) return hi;
    const double frac =
        (target - static_cast<double>(prev)) / static_cast<double>(s.counts[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return s.bounds.back();
}

void histogram::reset() {
  for (shard& s : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
    s.sum_nanos.store(0, std::memory_order_relaxed);
  }
}

metrics_registry& metrics_registry::instance() {
  static metrics_registry reg;
  return reg;
}

counter& metrics_registry::get_counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<counter>();
  return *slot;
}

gauge& metrics_registry::get_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<gauge>();
  return *slot;
}

histogram& metrics_registry::get_histogram(
    const std::string& name, std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<histogram>(upper_bounds);
  return *slot;
}

void metrics_registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::map<std::string, std::uint64_t> metrics_registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> metrics_registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, histogram::snapshot> metrics_registry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, histogram::snapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->read();
  return out;
}

std::span<const double> duration_buckets() {
  static const double kBounds[] = {0.0005, 0.002, 0.01, 0.05,
                                   0.25,   1.0,   5.0,  30.0};
  return kBounds;
}

void register_core_families() {
  metrics_registry& reg = metrics_registry::instance();
  for (const char* name :
       {family::kCampaignHours, family::kCampaignTests,
        family::kCampaignTestsFailed, family::kCampaignTestRetries,
        family::kCampaignTestsMissed, family::kCampaignPoints,
        family::kCampaignUploadFailures, family::kCacheHits,
        family::kCacheMisses, family::kCachePrefills,
        family::kCachePrefillLinks, family::kWalAppends, family::kWalBytes,
        family::kWalFlushes, family::kTsdbSnapshots,
        family::kTsdbSnapshotBytes, family::kTsdbRestores,
        family::kCheckpointPublishes, family::kCheckpointGcRemoved,
        family::kCheckpointResumes, family::kFaultsPreempts,
        family::kFaultsRedeploys, family::kFaultsWithdrawals,
        family::kFaultsVmDownHours, family::kFaultsSkippedTests,
        family::kSwarmCreditsSpent, family::kSwarmSubstitutions,
        family::kSwarmMissedRounds, family::kSwarmRateLimited,
        family::kDistGroupsMerged, family::kDistRecords,
        family::kDistHeartbeats, family::kDistTimeouts, family::kDistResends,
        family::kDistCrcRejects, family::kDistFailovers,
        family::kDistRespawns, family::kSvcSubmissions,
        family::kSvcCompletions, family::kSvcFailures,
        family::kSvcCancellations, family::kSvcPreemptions,
        family::kSvcEvictions, family::kSvcQuanta, family::kSvcColdStarts,
        family::kSvcWarmResumes, family::kSvcControlRequests,
        family::kSvcDrains}) {
    reg.get_counter(name);
  }
  for (const char* name :
       {family::kCampaignCursorHours, family::kCampaignWindowHours,
        family::kCampaignSessions, family::kPoolWorkers, family::kPoolBatches,
        family::kPoolTasks, family::kPoolBusySeconds,
        family::kPoolLastBatchSize, family::kPoolUtilization,
        family::kCheckpointLastHour, family::kFaultsPlannedWithdrawals,
        family::kFaultsPlannedOutages, family::kFaultsPlannedOutageHours,
        family::kFleetServers, family::kFleetVms, family::kSessionsTotal,
        family::kBatchGroupsPerHour, family::kSwarmProbes,
        family::kSwarmActiveProbes, family::kSwarmCoverageRatio,
        family::kSwarmStaleTuples, family::kDistWorkers,
        family::kDistBarrierHour, family::kSvcQueued, family::kSvcAdmitted,
        family::kSvcRunning, family::kSvcPaused, family::kSvcResident,
        family::kSvcReservedUnits, family::kSvcWorkerBudget}) {
    reg.get_gauge(name);
  }
  for (const char* name :
       {family::kCampaignHourSeconds, family::kTsdbSnapshotSeconds,
        family::kCheckpointPublishSeconds, family::kDistBarrierSeconds}) {
    reg.get_histogram(name, duration_buckets());
  }
}

}  // namespace clasp::obs

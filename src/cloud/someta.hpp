// VM metadata recording (someta analogue, Sommers et al. IMC'17).
//
// §3.2: the measurement script runs someta to record VM metadata during
// every test, and the authors "examined the resource usage during tests
// and found that the VM type we chose had sufficient computational power
// to support the test without depleting the CPU resource, which could
// degrade network throughput". This module models per-test resource
// usage of the headless-browser speed test on a given machine type and
// flags tests where CPU saturation would have capped throughput.
#pragma once

#include "cloud/gcp.hpp"
#include "util/rng.hpp"

namespace clasp {

struct vm_metadata_sample {
  hour_stamp at;
  double cpu_utilization{0.0};   // 0..1 across all vCPUs
  double memory_gb{0.0};
  double io_wait{0.0};           // fraction of time in iowait
  bool cpu_saturated{false};     // CPU would have throttled the test
};

// Model the resource usage of one speed test: the Chromium renderer and
// TLS cost scale with throughput; the baseline covers cron, tcpdump and
// someta itself.
vm_metadata_sample record_test_metadata(const machine_type& machine,
                                        mbps observed_throughput,
                                        hour_stamp at, rng& r);

// A rolling recorder, one per VM, mirroring someta's periodic snapshots.
class someta_recorder {
 public:
  explicit someta_recorder(machine_type machine)
      : machine_(std::move(machine)) {}

  const vm_metadata_sample& record(mbps observed_throughput, hour_stamp at,
                                   rng& r);

  // Merge samples staged off-thread (via record_test_metadata) into the
  // recorder, preserving their order. Lets campaign workers accumulate
  // metadata without mutating the recorder concurrently.
  void absorb(std::vector<vm_metadata_sample>&& staged);

  // Checkpoint restore: replace the sample history wholesale (the
  // machine type is rebuilt by the deterministic re-deploy).
  void restore_samples(std::vector<vm_metadata_sample> samples) {
    samples_ = std::move(samples);
  }

  const std::vector<vm_metadata_sample>& samples() const { return samples_; }
  // Fraction of recorded tests with a saturated CPU (the paper's claim:
  // ~0 for n1-standard-2 at <= 1 Gbps).
  double saturation_fraction() const;
  double peak_cpu() const;

 private:
  machine_type machine_;
  std::vector<vm_metadata_sample> samples_;
};

}  // namespace clasp

#include "cloud/gcp.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace clasp {

const std::vector<machine_type>& gcp_machine_types() {
  static const std::vector<machine_type> kTypes = {
      {"n1-standard-2", 2, 7.5, mbps::from_gbps(10.0), 0.0950},
      {"n2-standard-2", 2, 8.0, mbps::from_gbps(10.0), 0.0971},
      {"e2-standard-2", 2, 8.0, mbps::from_gbps(4.0), 0.0670},
  };
  return kTypes;
}

const machine_type& machine_type_by_name(const std::string& name) {
  for (const machine_type& t : gcp_machine_types()) {
    if (t.name == name) return t;
  }
  throw not_found_error("gcp: unknown machine type " + name);
}

const std::vector<region_info>& gcp_regions() {
  // Policy values encode the per-region interconnect behavior that shapes
  // Table 1 (egress concentration) and its Total column (route visibility).
  static const std::vector<region_info> kRegions = {
      {"us-west1", "The Dalles, OR", 3, {0.03, 0.72}},
      {"us-west2", "Los Angeles, CA", 3, {0.93, 0.89}},
      {"us-west4", "Las Vegas, NV", 3, {0.55, 0.81}},
      {"us-east1", "Moncks Corner, SC", 3, {0.30, 0.85}},
      {"us-east4", "Ashburn, VA", 3, {0.93, 0.71}},
      {"us-central1", "Council Bluffs, IA", 3, {0.80, 0.89}},
      {"europe-west1", "St. Ghislain", 3, {0.30, 0.81}},
  };
  return kRegions;
}

const region_info& region_by_name(const std::string& name) {
  for (const region_info& r : gcp_regions()) {
    if (r.name == name) return r;
  }
  throw not_found_error("gcp: unknown region " + name);
}

double egress_usd_per_gb(service_tier tier) {
  return tier == service_tier::premium ? 0.12 : 0.085;
}

void charge_sheet::add_egress(service_tier tier, megabytes volume) {
  if (tier == service_tier::premium) {
    egress_premium.value += volume.value;
  } else {
    egress_standard.value += volume.value;
  }
}

void charge_sheet::add_put(std::string bucket_region, std::string object_name,
                           double megabytes_stored) {
  puts.push_back({std::move(bucket_region), std::move(object_name),
                  megabytes_stored});
}

void charge_sheet::add_put_reusing(std::string_view bucket_region,
                                   std::string_view object_name,
                                   double megabytes_stored) {
  if (spare_puts_.empty()) {
    puts.push_back({std::string(bucket_region), std::string(object_name),
                    megabytes_stored});
    return;
  }
  object_put recycled = std::move(spare_puts_.back());
  spare_puts_.pop_back();
  recycled.bucket_region.assign(bucket_region);
  recycled.object_name.assign(object_name);
  recycled.megabytes_stored = megabytes_stored;
  puts.push_back(std::move(recycled));
}

void charge_sheet::merge(charge_sheet&& other) {
  vm_hours.insert(vm_hours.end(), other.vm_hours.begin(),
                  other.vm_hours.end());
  egress_premium.value += other.egress_premium.value;
  egress_standard.value += other.egress_standard.value;
  puts.insert(puts.end(), std::make_move_iterator(other.puts.begin()),
              std::make_move_iterator(other.puts.end()));
}

void storage_bucket::put(const std::string& object_name,
                         double megabytes_stored) {
  if (megabytes_stored < 0.0) {
    throw invalid_argument_error("storage_bucket: negative object size");
  }
  (void)object_name;
  total_mb_ += megabytes_stored;
  ++objects_;
}

gcp_cloud::gcp_cloud(internet* net, route_planner* planner)
    : net_(net), planner_(planner), vm_rng_(hash_tag(net ? net->config.seed : 0, "gcp")) {
  if (net == nullptr || planner == nullptr) {
    throw invalid_argument_error("gcp_cloud: null dependency");
  }
  // Install each region's interconnect policy into the planner.
  for (const region_info& r : gcp_regions()) {
    planner_->set_region_policy(net_->geo->city_by_name(r.city_name).id,
                                r.policy);
  }
}

city_id gcp_cloud::region_city(const std::string& region) const {
  return net_->geo->city_by_name(region_by_name(region).city_name).id;
}

gcp_cloud::vm_id gcp_cloud::create_vm(const std::string& region,
                                      service_tier tier,
                                      const std::string& machine) {
  const region_info& rinfo = region_by_name(region);
  const machine_type& mtype = machine_type_by_name(machine);
  const city_id city = region_city(region);

  const unsigned zone = next_zone_[region]++ % rinfo.zone_count;
  vm_instance vm;
  vm.region = region;
  vm.zone = zone;
  vm.type = mtype;
  vm.tier = tier;
  vm.id = "clasp-" + region + "-" + std::string(1, static_cast<char>('a' + zone)) +
          "-" + std::to_string(vms_.size());
  vm.host = net_->attach_host(net_->cloud, city, host_flavor::vm,
                              mtype.max_egress, vm_rng_);
  vms_.push_back(vm);
  CLASP_LOG(info, "gcp") << "created " << vm.id << " (" << to_string(tier)
                         << " tier)";
  return vms_.size() - 1;
}

void gcp_cloud::terminate_vm(vm_id id) {
  vm_instance& vm = vms_.at(id);
  if (!vm.running) throw state_error("gcp: VM already terminated: " + vm.id);
  vm.running = false;
}

void gcp_cloud::preempt_vm(vm_id id) {
  vm_instance& vm = vms_.at(id);
  if (!vm.running) return;  // already down (overlapping windows)
  vm.running = false;
  CLASP_LOG(info, "gcp") << "preempted " << vm.id;
}

void gcp_cloud::redeploy_vm(vm_id id) {
  vm_instance& vm = vms_.at(id);
  if (vm.running) return;
  vm.running = true;
  ++vm.restarts;
  CLASP_LOG(info, "gcp") << "redeployed " << vm.id << " (restart "
                         << vm.restarts << ")";
}

const vm_instance& gcp_cloud::vm(vm_id id) const {
  if (id >= vms_.size()) throw not_found_error("gcp: bad vm id");
  return vms_[id];
}

void gcp_cloud::charge_vm_hour(vm_id id) {
  vm_instance& vm = vms_.at(id);
  if (!vm.running) throw state_error("gcp: charging a terminated VM");
  vm.hours_run += 1.0;
  // Sustained-use discount: hours beyond half a month bill at 70%.
  constexpr double kMonthHours = 730.0;
  const double hour_in_month =
      vm.hours_run - kMonthHours * std::floor((vm.hours_run - 1.0) / kMonthHours);
  const double rate = hour_in_month > kMonthHours / 2.0 ? 0.70 : 1.0;
  costs_.vm_usd += vm.type.usd_per_hour * rate;
}

void gcp_cloud::charge_egress(service_tier tier, megabytes volume) {
  costs_.egress_usd += volume.gigabytes() * egress_usd_per_gb(tier);
}

void gcp_cloud::charge_storage_month(double gb_months) {
  costs_.storage_usd += gb_months * 0.020;  // standard storage $/GB-month
}

void gcp_cloud::apply(const charge_sheet& sheet) {
  for (const std::size_t id : sheet.vm_hours) charge_vm_hour(id);
  if (sheet.egress_premium.value > 0.0) {
    charge_egress(service_tier::premium, sheet.egress_premium);
  }
  if (sheet.egress_standard.value > 0.0) {
    charge_egress(service_tier::standard, sheet.egress_standard);
  }
  for (const charge_sheet::object_put& p : sheet.puts) {
    bucket(p.bucket_region).put(p.object_name, p.megabytes_stored);
  }
}

storage_bucket& gcp_cloud::bucket(const std::string& region) {
  auto it = buckets_.find(region);
  if (it == buckets_.end()) {
    it = buckets_.emplace(region, storage_bucket("clasp-data-" + region)).first;
  }
  return it->second;
}

void gcp_cloud::save_state(binary_writer& out) const {
  out.varint(vms_.size());
  for (const vm_instance& vm : vms_) {
    out.f64(vm.hours_run);
    out.boolean(vm.running);
    out.varint(vm.restarts);
  }
  out.f64(costs_.vm_usd);
  out.f64(costs_.egress_usd);
  out.f64(costs_.storage_usd);
  // Bucket map in sorted region order so identical state always produces
  // identical checkpoint bytes.
  std::vector<const std::string*> regions;
  regions.reserve(buckets_.size());
  for (const auto& [region, b] : buckets_) regions.push_back(&region);
  std::sort(regions.begin(), regions.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  out.varint(regions.size());
  for (const std::string* region : regions) {
    const storage_bucket& b = buckets_.at(*region);
    out.str(*region);
    out.f64(b.total_megabytes());
    out.varint(b.object_count());
  }
}

void gcp_cloud::load_state(binary_reader& in) {
  const std::uint64_t n_vms = in.varint();
  if (n_vms != vms_.size()) {
    throw state_error("gcp_cloud: checkpoint VM count mismatch");
  }
  for (vm_instance& vm : vms_) {
    vm.hours_run = in.f64();
    vm.running = in.boolean();
    vm.restarts = static_cast<unsigned>(in.varint());
  }
  costs_.vm_usd = in.f64();
  costs_.egress_usd = in.f64();
  costs_.storage_usd = in.f64();
  const std::uint64_t n_buckets = in.varint();
  for (std::uint64_t i = 0; i < n_buckets; ++i) {
    std::string region = in.str();
    const double total_mb = in.f64();
    const std::uint64_t objects = in.varint();
    bucket(region).restore(total_mb, static_cast<std::size_t>(objects));
  }
}

endpoint gcp_cloud::vm_endpoint(vm_id id) const {
  return planner_->endpoint_of_host(vm(id).host);
}

}  // namespace clasp

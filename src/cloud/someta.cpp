#include "cloud/someta.hpp"

#include <algorithm>

namespace clasp {

vm_metadata_sample record_test_metadata(const machine_type& machine,
                                        mbps observed_throughput,
                                        hour_stamp at, rng& r) {
  vm_metadata_sample sample;
  sample.at = at;

  // Cost model: a headless-Chromium speed test burns ~0.35 of one core at
  // 1 Gbps for TLS + rendering, plus a fixed ~0.12 core baseline for the
  // browser, tcpdump and someta. Normalized by vCPU count.
  const double cores = static_cast<double>(machine.vcpus);
  const double throughput_cores =
      0.35 * observed_throughput.value / 1000.0;
  const double baseline_cores = 0.12;
  const double jitter = std::max(0.0, r.normal(0.0, 0.03));
  sample.cpu_utilization = std::min(
      (throughput_cores + baseline_cores) / cores + jitter, 1.0);
  sample.cpu_saturated = sample.cpu_utilization >= 0.95;

  // Memory: Chromium plus capture buffers; well under the 7.5 GB of an
  // n1-standard-2.
  sample.memory_gb = 1.4 + 0.2 * observed_throughput.value / 1000.0 +
                     std::max(0.0, r.normal(0.0, 0.05));
  // iowait: compressing and uploading artifacts.
  sample.io_wait = std::clamp(0.01 + r.normal(0.0, 0.004), 0.0, 0.2);
  return sample;
}

const vm_metadata_sample& someta_recorder::record(mbps observed_throughput,
                                                  hour_stamp at, rng& r) {
  samples_.push_back(record_test_metadata(machine_, observed_throughput, at, r));
  return samples_.back();
}

void someta_recorder::absorb(std::vector<vm_metadata_sample>&& staged) {
  if (samples_.empty()) {
    samples_ = std::move(staged);
    return;
  }
  samples_.insert(samples_.end(), staged.begin(), staged.end());
}

double someta_recorder::saturation_fraction() const {
  if (samples_.empty()) return 0.0;
  std::size_t saturated = 0;
  for (const vm_metadata_sample& s : samples_) {
    if (s.cpu_saturated) ++saturated;
  }
  return static_cast<double>(saturated) /
         static_cast<double>(samples_.size());
}

double someta_recorder::peak_cpu() const {
  double peak = 0.0;
  for (const vm_metadata_sample& s : samples_) {
    peak = std::max(peak, s.cpu_utilization);
  }
  return peak;
}

}  // namespace clasp

// GCP substrate: regions, zones, machine types, VM lifecycle, network
// tiers, tc-style NIC shaping, egress billing and storage buckets.
//
// The paper's deployment constraints are modeled exactly:
//  * measurement VMs are n1-standard-2 / n2-standard-2 (2 vCPU, 7-8 GB),
//  * the NIC is throttled with tc to 1 Gbps down / 100 Mbps up — the
//    asymmetry exists because GCP bills egress only (§3.2),
//  * egress is billed per GB with different premium/standard rates,
//  * VMs spread across availability zones,
//  * raw results are compressed and uploaded to a per-region bucket.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netsim/generator.hpp"
#include "netsim/routing.hpp"
#include "util/binio.hpp"
#include "util/units.hpp"

namespace clasp {

struct machine_type {
  std::string name;
  unsigned vcpus{2};
  double memory_gb{7.5};
  mbps max_egress{mbps::from_gbps(10.0)};
  double usd_per_hour{0.095};
};

// The machine types the paper uses.
const std::vector<machine_type>& gcp_machine_types();
const machine_type& machine_type_by_name(const std::string& name);

struct region_info {
  std::string name;        // "us-west1"
  std::string city_name;   // geo database city hosting the region
  unsigned zone_count{3};
  // Per-region interconnect-policy knobs (see routing.hpp). These encode
  // the observed region-to-region differences in Table 1.
  egress_policy policy;
};

// The regions the paper deploys in (5 U.S. + 1 EU + us-west4 for Fig. 2).
const std::vector<region_info>& gcp_regions();
const region_info& region_by_name(const std::string& name);

// tc-style NIC throttling applied inside the measurement VM.
struct vm_shaping {
  mbps downlink{1000.0};
  mbps uplink{100.0};
};

struct vm_instance {
  std::string id;        // "clasp-us-west1-a-0"
  std::string region;
  unsigned zone{0};
  machine_type type;
  service_tier tier{service_tier::premium};
  vm_shaping shaping;
  host_index host;       // attachment in the topology
  bool running{true};
  double hours_run{0.0};
  // Times the instance came back from a maintenance/preemption window
  // (fault injection; see netsim/faults.hpp).
  unsigned restarts{0};
};

// Egress pricing per GB (2020 list prices, first tier).
double egress_usd_per_gb(service_tier tier);

// Accumulated spend, per the paper's cost breakdown (>$6k/month).
struct cost_report {
  double vm_usd{0.0};
  double egress_usd{0.0};
  double storage_usd{0.0};
  double total() const { return vm_usd + egress_usd + storage_usd; }
};

// Deferred billing: campaign workers accumulate charges and uploads into
// a sheet instead of mutating gcp_cloud from many threads; the
// coordinating thread applies sheets in VM-slot order via
// gcp_cloud::apply, so billing totals are identical to serial in-place
// charging for any worker count.
struct charge_sheet {
  // VM ids, one entry per billable VM-hour, in charge order (the
  // sustained-use discount depends on each VM's cumulative hours).
  std::vector<std::size_t> vm_hours;
  // Egress volume per tier (rates applied at apply() time).
  megabytes egress_premium{0.0};
  megabytes egress_standard{0.0};
  struct object_put {
    std::string bucket_region;
    std::string object_name;
    double megabytes_stored{0.0};
  };
  std::vector<object_put> puts;

  void add_vm_hour(std::size_t vm) { vm_hours.push_back(vm); }
  void add_egress(service_tier tier, megabytes volume);
  void add_put(std::string bucket_region, std::string object_name,
               double megabytes_stored);
  // Like add_put, but recycles an entry retired by the last reset() when
  // one is available: the retired strings' capacity is reused via
  // assign(), so a staging sheet refilled with same-shaped names every
  // hour performs zero heap allocations in steady state.
  void add_put_reusing(std::string_view bucket_region,
                       std::string_view object_name, double megabytes_stored);
  // Empty the sheet but keep the vectors' capacity (for staging buffers
  // reused every hour; assigning `{}` would free them each time). Retired
  // puts move to a spare list so add_put_reusing can recycle their string
  // storage instead of reallocating it.
  void reset() {
    vm_hours.clear();
    egress_premium = megabytes{0.0};
    egress_standard = megabytes{0.0};
    while (!puts.empty()) {
      spare_puts_.push_back(std::move(puts.back()));
      puts.pop_back();
    }
  }
  // Append `other`'s entries after this sheet's (merge order defines
  // charge order).
  void merge(charge_sheet&& other);

 private:
  std::vector<object_put> spare_puts_;  // retired entries, capacity intact
};

// A cloud storage bucket collecting compressed measurement artifacts.
class storage_bucket {
 public:
  explicit storage_bucket(std::string name) : name_(std::move(name)) {}

  void put(const std::string& object_name, double megabytes_stored);
  double total_megabytes() const { return total_mb_; }
  std::size_t object_count() const { return objects_; }
  const std::string& name() const { return name_; }

  // Checkpoint restore: overwrite the accumulated totals (gcp_cloud::
  // load_state only; puts after restore accumulate on top).
  void restore(double total_mb, std::size_t objects) {
    total_mb_ = total_mb;
    objects_ = objects;
  }

 private:
  std::string name_;
  double total_mb_{0.0};
  std::size_t objects_{0};
};

// The cloud control plane (API facade used by the orchestrator).
class gcp_cloud {
 public:
  using vm_id = std::size_t;

  // `net` must outlive the cloud; VMs are attached as topology hosts.
  gcp_cloud(internet* net, route_planner* planner);

  // Create a VM in a region; zones are assigned round-robin. Throws
  // not_found_error for unknown regions/machine types.
  vm_id create_vm(const std::string& region, service_tier tier,
                  const std::string& machine = "n1-standard-2");
  void terminate_vm(vm_id id);

  // Maintenance/preemption lifecycle (fault injection): preempt_vm marks
  // the instance not running (no VM-hour charges accrue while down);
  // redeploy_vm brings it back on the same host and counts a restart.
  // Both are idempotent and coordinator-thread only.
  void preempt_vm(vm_id id);
  void redeploy_vm(vm_id id);

  const vm_instance& vm(vm_id id) const;
  std::size_t vm_count() const { return vms_.size(); }

  city_id region_city(const std::string& region) const;

  // Billing hooks (called by the campaign runner). VM hours earn GCP's
  // sustained-use discount: after a VM has run more than half of a
  // 730-hour month, further hours bill at 70% of list price (a coarse
  // model of the real tiered schedule).
  void charge_vm_hour(vm_id id);
  void charge_egress(service_tier tier, megabytes volume);
  void charge_storage_month(double gb_months);
  // Apply a staged sheet: VM-hour charges in sheet order, then egress,
  // then bucket uploads. Coordinator-thread only.
  void apply(const charge_sheet& sheet);
  const cost_report& costs() const { return costs_; }

  storage_bucket& bucket(const std::string& region);

  // Checkpoint support: serialize the mutable billing/VM/bucket state
  // (accumulated costs, per-VM hours/running/restarts, bucket totals).
  // The fleet *shape* is not serialized — a resumed process re-runs the
  // same deterministic deploy sequence first, and load_state validates
  // the VM count matches before overwriting. See clasp/checkpoint.hpp.
  void save_state(binary_writer& out) const;
  void load_state(binary_reader& in);

  // Routing endpoint for a VM.
  endpoint vm_endpoint(vm_id id) const;

  route_planner& planner() { return *planner_; }
  const route_planner& planner() const { return *planner_; }
  const internet& net() const { return *net_; }

 private:
  internet* net_;
  route_planner* planner_;
  std::vector<vm_instance> vms_;
  std::unordered_map<std::string, unsigned> next_zone_;
  std::unordered_map<std::string, storage_bucket> buckets_;
  cost_report costs_;
  rng vm_rng_;
};

}  // namespace clasp

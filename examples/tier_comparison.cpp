// Tier comparison: the paper's differential experiment for europe-west1 —
// latency pre-test from eyeball vantage points, paired premium/standard
// VMs, one month of hourly tests, then the Δ analysis of §4.1.
//
//   $ ./build/examples/tier_comparison
#include <cmath>
#include <cstdio>

#include "clasp/platform.hpp"
#include "util/stats.hpp"

int main() {
  using namespace clasp;

  clasp_platform platform;

  // 1. Differential selection: Speedchecker-style latency pre-test.
  const differential_selection_result& selection =
      platform.select_differential("europe-west1");
  std::printf("pre-test: %zu tuples measured, %zu candidates, %zu servers\n",
              selection.tuples_measured, selection.candidates.size(),
              selection.selected.size());
  for (const auto& chosen : selection.selected) {
    std::printf("  %-44s [%s]\n",
                platform.registry().server(chosen.server_id).name.c_str(),
                to_string(chosen.cls));
  }

  // 2. One month with a premium VM and a standard VM measuring the same
  //    servers in the same hours.
  const hour_range month{hour_stamp::from_civil({2020, 8, 1}, 0),
                         hour_stamp::from_civil({2020, 9, 1}, 0)};
  auto [premium, standard] =
      platform.start_differential_campaign("europe-west1", month);
  premium->run();
  standard->run();

  // 3. Relative differences Δ = (premium - standard) / standard.
  const auto prem = platform.download_series("diff-premium", "europe-west1");
  std::printf("\n%-44s %10s %10s %10s\n", "server", "median dl Δ",
              "median ul Δ", "median lat Δ");
  std::size_t std_faster = 0;
  for (const ts_series* ps : prem.series) {
    tag_set std_tags = ps->tags();
    std_tags["campaign"] = "diff-standard";
    std_tags["tier"] = "standard";
    const ts_series* ss = platform.store().find("download_mbps", std_tags);
    if (ss == nullptr) continue;
    const auto dl = relative_differences(*ps, *ss);

    tag_set up_tags = ps->tags();
    const ts_series* pu = platform.store().find("upload_mbps", up_tags);
    const ts_series* su = platform.store().find("upload_mbps", std_tags);
    const ts_series* pl = platform.store().find("latency_ms", up_tags);
    const ts_series* sl = platform.store().find("latency_ms", std_tags);
    const auto ul = (pu && su) ? relative_differences(*pu, *su)
                               : std::vector<double>{};
    const auto lat = (pl && sl) ? relative_differences(*pl, *sl)
                                : std::vector<double>{};
    const std::size_t sid = static_cast<std::size_t>(
        std::stoul(ps->tag("server").value_or("0")));
    std::printf("%-44s %9.1f%% %9.1f%% %9.1f%%\n",
                platform.registry().server(sid).name.c_str(),
                dl.empty() ? 0.0 : 100.0 * median(dl),
                ul.empty() ? 0.0 : 100.0 * median(ul),
                lat.empty() ? 0.0 : 100.0 * median(lat));
    if (!dl.empty() && median(dl) < 0.0) ++std_faster;
  }
  std::printf("\nstandard tier faster (median) for %zu of %zu servers "
              "(the paper's headline finding)\n",
              std_faster, prem.series.size());

  // 4. Cost comparison: the standard tier is cheaper per GB too.
  std::printf("egress price: premium $%.3f/GB, standard $%.3f/GB\n",
              egress_usd_per_gb(service_tier::premium),
              egress_usd_per_gb(service_tier::standard));
  return 0;
}

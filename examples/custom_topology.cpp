// Power-user example: drive the substrate's lower-level APIs directly —
// generate a custom Internet, run a bdrmap pilot by hand, inspect a
// traceroute, and evaluate a path hour by hour.
//
//   $ ./build/examples/custom_topology
#include <cstdio>

#include "netsim/generator.hpp"
#include "netsim/network.hpp"
#include "netsim/routing.hpp"
#include "probes/bdrmap.hpp"
#include "probes/traceroute.hpp"

int main() {
  using namespace clasp;

  // A small, heavily congested Internet of our own design.
  internet_config config;
  config.seed = 7;
  config.regional_isp_count = 300;
  config.hosting_count = 150;
  config.business_count = 300;
  config.education_count = 50;
  config.congestion_prone_fraction = 0.8;  // everything hurts
  internet net = generate_internet(config);
  std::printf("generated: %zu ASes, %zu routers, %zu links, %zu planted "
              "congestion episodes\n",
              net.topo->as_count(), net.topo->router_count(),
              net.topo->link_count(), net.planted.size());

  route_planner planner(&net);
  network_view view(&net);
  prober probe(&planner, &view);
  const prefix2as_table prefix2as = net.topo->build_prefix2as();
  const bdrmap mapper(&planner, &probe, &prefix2as);

  // A synthetic measurement point at the us-central1 PoP.
  const city_id region = net.geo->city_by_name("Council Bluffs, IA").id;
  const auto region_router = net.topo->router_of(net.cloud, region);
  const endpoint vm{net.cloud, region,
                    net.topo->router_at(*region_router).loopback,
                    std::nullopt};

  // Run the bdrmap pilot scan by hand.
  rng r(99);
  const bdrmap_result pilot = mapper.run_pilot(
      vm, service_tier::premium, hour_stamp::from_civil({2020, 4, 20}, 9), r);
  std::printf("bdrmap: %zu traceroutes discovered %zu interdomain links\n",
              pilot.traceroutes_run, pilot.links.size());

  // Traceroute to one vantage point, printed like the real tool.
  const endpoint dst = planner.endpoint_of_host(net.vantage_points.front());
  const route_path path = planner.from_cloud(vm, dst, service_tier::premium);
  const traceroute_result trace =
      probe.traceroute(path, hour_stamp::from_civil({2020, 6, 1}, 20), r);
  std::printf("\ntraceroute to %s (%zu hops):\n", trace.dst.to_string().c_str(),
              trace.hops.size());
  for (const traceroute_hop& hop : trace.hops) {
    if (hop.address) {
      const auto origin = prefix2as.lookup(*hop.address);
      std::printf("%2u  %-15s  %6.1f ms  AS%u\n", hop.ttl,
                  hop.address->to_string().c_str(), hop.rtt.value,
                  origin ? origin->value : 0);
    } else {
      std::printf("%2u  *\n", hop.ttl);
    }
  }

  // Evaluate the same path across a day: the diurnal congestion cycle.
  std::printf("\npath condition through 2020-06-01 (UTC):\n");
  for (unsigned h = 0; h < 24; h += 3) {
    const path_metrics m =
        view.evaluate(path, hour_stamp::from_civil({2020, 6, 1}, h));
    std::printf("  %02u:00  rtt %6.1f ms  loss %.4f  avail %7.1f Mbps%s\n", h,
                m.rtt.value, m.loss, m.bottleneck.value,
                m.episode ? "  [planted episode active]" : "");
  }
  return 0;
}

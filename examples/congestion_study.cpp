// Congestion study: one month of measurements from us-east1, then the
// full §3.3 analysis — threshold sweep, elbow choice, per-ISP congestion
// summaries and the diurnal profile of the worst network.
//
//   $ ./build/examples/congestion_study
#include <algorithm>
#include <cstdio>
#include <vector>

#include "clasp/platform.hpp"

int main() {
  using namespace clasp;

  clasp_platform platform;
  const hour_range month{hour_stamp::from_civil({2020, 5, 1}, 0),
                         hour_stamp::from_civil({2020, 6, 1}, 0)};
  platform.start_topology_campaign("us-east1", month).run();

  const auto data = platform.download_series("topology", "us-east1");

  // 1. Choose the detection threshold with the elbow method, as §3.3.
  const threshold_sweep sweep = sweep_thresholds(data.series, data.tz);
  const double threshold = choose_threshold_elbow(sweep);
  std::printf("elbow threshold H = %.2f (paper uses 0.5)\n", threshold);

  // 2. Rank networks by congestion.
  struct ranked {
    std::string name;
    server_congestion_summary summary;
  };
  std::vector<ranked> networks;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const std::size_t sid = static_cast<std::size_t>(
        std::stoul(data.series[i]->tag("server").value_or("0")));
    networks.push_back(
        {platform.registry().server(sid).name,
         summarize_server(*data.series[i], data.tz[i], threshold)});
  }
  std::sort(networks.begin(), networks.end(), [](const auto& a, const auto& b) {
    return a.summary.congested_hours > b.summary.congested_hours;
  });

  std::printf("\nmost congested networks (of %zu measured):\n",
              networks.size());
  std::printf("%-44s %10s %14s\n", "network", "cong.days", "cong.hours");
  for (std::size_t i = 0; i < std::min<std::size_t>(networks.size(), 8); ++i) {
    std::printf("%-44s %6zu/%zu %10zu/%zu\n", networks[i].name.c_str(),
                networks[i].summary.congested_days,
                networks[i].summary.days_measured,
                networks[i].summary.congested_hours,
                networks[i].summary.hours_measured);
  }

  // 3. Diurnal congestion profile of the worst network.
  const ts_series* worst = nullptr;
  timezone_offset worst_tz{};
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const std::size_t sid = static_cast<std::size_t>(
        std::stoul(data.series[i]->tag("server").value_or("0")));
    if (platform.registry().server(sid).name == networks.front().name) {
      worst = data.series[i];
      worst_tz = data.tz[i];
    }
  }
  if (worst != nullptr) {
    std::printf("\nhourly congestion probability for %s (local time):\n",
                networks.front().name.c_str());
    const auto prob = hourly_congestion_probability(*worst, worst_tz,
                                                    threshold);
    for (unsigned h = 0; h < 24; ++h) {
      std::printf("%02u:00 %5.2f  %s\n", h, prob[h],
                  std::string(static_cast<std::size_t>(prob[h] * 50), '#')
                      .c_str());
    }
  }

  // 4. Validate against the simulator's planted ground truth — something
  //    the real platform could never do.
  detector_validation total;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const ts_series* gt =
        platform.store().find("gt_episode", data.series[i]->tags());
    if (gt == nullptr) continue;
    const auto v = validate_detector(*data.series[i], *gt, data.tz[i],
                                     threshold);
    total.true_positive += v.true_positive;
    total.false_positive += v.false_positive;
    total.false_negative += v.false_negative;
    total.true_negative += v.true_negative;
  }
  std::printf("\ndetector vs planted episodes: precision %.2f, recall %.2f\n",
              total.precision(), total.recall());

  // 5. Interconnect-level view: each measured server covers one
  //    interdomain link, so congestion aggregates to neighbor networks.
  auto links = platform.interconnect_congestion("us-east1", threshold);
  std::sort(links.begin(), links.end(),
            [](const interconnect_report& a, const interconnect_report& b) {
              return a.summary.congested_hours > b.summary.congested_hours;
            });
  std::printf("\nmost congested interconnects:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(links.size(), 6); ++i) {
    std::printf("  %-16s AS%-8u cong.hours %zu/%zu\n",
                links[i].far_side.to_string().c_str(),
                links[i].neighbor.value, links[i].summary.congested_hours,
                links[i].summary.hours_measured);
  }
  return 0;
}

// Campaign cost planner: the budget arithmetic that constrained the
// paper's deployment (§3.2 footnote 3 and §5: "egress traffic, cloud
// storage, and virtual machines costed over USD 6k per month").
//
// Plans a fleet for a target server count and cadence, then verifies the
// estimate against the simulator's own billing meter on a one-week run.
//
//   $ ./build/examples/cost_planner
#include <cstdio>

#include "clasp/platform.hpp"

int main() {
  using namespace clasp;

  // --- static plan ---------------------------------------------------------
  const std::size_t servers = 458;       // the paper's fleet
  const unsigned tests_per_vm_hour = 17; // 120 s tests + traceroute budget
  const double upload_gb_per_test = 0.18;  // ~15 s at ~100 Mbps
  const double hours_per_month = 30.0 * 24.0;

  const std::size_t vms =
      (servers + tests_per_vm_hour - 1) / tests_per_vm_hour;
  const machine_type& vm_type = machine_type_by_name("n1-standard-2");
  const double vm_usd = vms * vm_type.usd_per_hour * hours_per_month;
  const double egress_gb = servers * hours_per_month * upload_gb_per_test;
  const double egress_usd = egress_gb * egress_usd_per_gb(service_tier::premium);
  const double storage_usd = egress_gb * 0.01 * 0.020;  // compressed pcaps

  std::printf("plan for %zu servers, hourly tests:\n", servers);
  std::printf("  VMs:     %zu x %s = $%.0f/month\n", vms,
              vm_type.name.c_str(), vm_usd);
  std::printf("  egress:  %.0f GB/month = $%.0f/month\n", egress_gb,
              egress_usd);
  std::printf("  storage: $%.0f/month\n", storage_usd);
  std::printf("  total:   $%.0f/month (paper: over $6k/month)\n\n",
              vm_usd + egress_usd + storage_usd);

  // --- verify against the simulator's billing meter -------------------------
  clasp_platform platform;
  const hour_range week{hour_stamp::from_civil({2020, 5, 1}, 0),
                        hour_stamp::from_civil({2020, 5, 8}, 0)};
  campaign_runner& c = platform.start_topology_campaign("us-east1", week);
  c.run();
  const cost_report& costs = platform.cloud().costs();
  const double weekly = costs.total();
  const double per_server_month =
      weekly / static_cast<double>(c.session_count()) * (30.0 / 7.0);
  std::printf("measured on a 1-week us-east1 run (%zu servers): $%.0f\n",
              c.session_count(), weekly);
  std::printf("  -> $%.2f per server-month; %zu servers would cost "
              "$%.0f/month\n",
              per_server_month, servers, per_server_month * servers);
  std::printf("  (egress share: %.0f%%)\n",
              100.0 * costs.egress_usd / costs.total());
  return 0;
}

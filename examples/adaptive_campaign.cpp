// Adaptive operations: everything §5 proposes, running together.
//
// A two-week campaign that (1) measures with full tests, (2) runs cheap
// in-band probes between tests, (3) re-pilots mid-campaign after the
// speed-test fleet changes, and (4) finishes with the operator report.
//
//   $ ./build/examples/adaptive_campaign
#include <cstdio>

#include "clasp/inband.hpp"
#include "clasp/platform.hpp"
#include "clasp/repilot.hpp"
#include "clasp/report.hpp"

int main() {
  using namespace clasp;

  clasp_platform platform;
  const std::string region = "us-central1";

  // Week 1: the standard campaign.
  const hour_range week1{hour_stamp::from_civil({2020, 5, 1}, 0),
                         hour_stamp::from_civil({2020, 5, 8}, 0)};
  campaign_runner& campaign =
      platform.start_topology_campaign(region, week1);
  campaign.run();
  std::printf("week 1: %zu tests on %zu servers\n", campaign.tests_run(),
              campaign.session_count());

  // In-band spot checks: probe the three most congested servers' paths
  // at a fraction of a test's cost.
  const auto data = platform.download_series("topology", region);
  rng r(7);
  const gcp_cloud::vm_id probe_vm =
      platform.cloud().create_vm(region, service_tier::premium);
  const endpoint vm_ep = platform.cloud().vm_endpoint(probe_vm);
  inband_config probe_cfg;
  probe_cfg.train_length = 256;
  double probe_mb = 0.0;
  std::printf("\nin-band spot checks (%.1f MB per probe):\n",
              inband_probe_volume(probe_cfg).value);
  for (std::size_t i = 0; i < std::min<std::size_t>(data.series.size(), 3);
       ++i) {
    const std::size_t sid = static_cast<std::size_t>(
        std::stoul(data.series[i]->tag("server").value_or("0")));
    const endpoint server_ep = platform.planner().endpoint_of_host(
        platform.registry().server(sid).host);
    const route_path path =
        platform.planner().to_cloud(server_ep, vm_ep, service_tier::premium);
    const inband_result probe = run_inband_probe(
        platform.view(), path, week1.end_at, probe_cfg, r);
    probe_mb += probe.volume.value;
    std::printf("  %-44s avail ~%.0f Mbps, rtt %.1f ms, loss %.3f\n",
                platform.registry().server(sid).name.c_str(),
                probe.available_estimate.value, probe.rtt.value, probe.loss);
  }
  std::printf("  total probe traffic: %.2f MB (one full test moves >100)\n",
              probe_mb);

  // Fleet churn: a new server appears; the re-pilot plans the rollover.
  server_registry& registry =
      const_cast<server_registry&>(platform.registry());
  const as_index sonic = *platform.net().topo->find_as(asn{46375});
  const std::size_t new_server = registry.add_server(
      platform.net(), sonic, platform.net().topo->as_at(sonic).presence.front(),
      speedtest_platform::ookla, mbps::from_gbps(1.0), r);
  std::printf("\nnew server deployed: %s\n",
              registry.server(new_server).name.c_str());

  topology_selector selector(&platform.planner(), &platform.view(),
                             &platform.registry());
  topology_selection_config sel_cfg;
  sel_cfg.deployment_budget =
      platform.config().topology_budgets.at(region);  // same budget
  const repilot_result refresh = refresh_selection(
      selector, vm_ep, sel_cfg, platform.select_topology(region),
      week1.end_at, r);
  std::printf("re-pilot: +%zu/-%zu links, deploy %zu / retire %zu servers\n",
              refresh.diff.links_gained.size(),
              refresh.diff.links_lost.size(),
              refresh.diff.servers_to_deploy.size(),
              refresh.diff.servers_to_retire.size());

  // The operator report for week 1.
  std::printf("\n%s", render_campaign_report(platform, region).c_str());
  return 0;
}

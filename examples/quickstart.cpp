// Quickstart: stand up CLASP, select servers for one region, run a week
// of hourly measurements and print headline numbers.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "clasp/platform.hpp"

int main() {
  using namespace clasp;

  // 1. Build the whole substrate: synthetic Internet, speed-test fleets,
  //    cloud control plane. One seed makes the run exactly reproducible.
  clasp_platform platform;
  std::printf("internet: %zu ASes, %zu links; fleet: %zu servers\n",
              platform.net().topo->as_count(), platform.net().topo->link_count(),
              platform.registry().size());

  // 2. Topology-based server selection for us-west1 (bdrmap pilot scan +
  //    traceroutes to every U.S. server, one server per interdomain link).
  const topology_selection_result& selection =
      platform.select_topology("us-west1");
  std::printf("selection: %zu interdomain links in pilot, %zu servers "
              "selected (%.1f%% coverage)\n",
              selection.pilot.links.size(), selection.selected.size(),
              100.0 * selection.coverage());

  // 3. Run one week of hourly speed tests.
  const hour_range week{hour_stamp::from_civil({2020, 5, 1}, 0),
                        hour_stamp::from_civil({2020, 5, 8}, 0)};
  campaign_runner& campaign =
      platform.start_topology_campaign("us-west1", week);
  campaign.run();
  std::printf("campaign: %zu VMs ran %zu tests\n", campaign.vm_count(),
              campaign.tests_run());

  // 4. Analyze: the paper's V(s,d) > 0.5 congestion rule.
  const auto data = platform.download_series("topology", "us-west1");
  std::size_t congested_servers = 0;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    if (summarize_server(*data.series[i], data.tz[i], 0.5).congested_server) {
      ++congested_servers;
    }
  }
  std::printf("analysis: %zu of %zu servers show congestion (>10%% of days "
              "with an event)\n",
              congested_servers, data.series.size());
  std::printf("spend so far: $%.0f (VMs $%.0f, egress $%.0f)\n",
              platform.cloud().costs().total(), platform.cloud().costs().vm_usd,
              platform.cloud().costs().egress_usd);
  return 0;
}

// clasp_cli — command-line driver for the platform.
//
//   clasp_cli select  --region us-west1
//   clasp_cli run     --region us-west1 --days 7 [--tier standard]
//                     [--csv out.csv] [--seed 42]
//   clasp_cli pilot   --region us-east4
//   clasp_cli cost    --region us-east1 --days 3
//
// Campaign service mode (src/svc/): `clasp_cli serve` turns the binary
// into a resident multi-tenant daemon that time-slices submitted
// campaigns under a shared worker budget, and the remaining verbs are
// its clients over the control socket:
//
//   clasp_cli serve    --config svc.ini [--socket PATH]
//   clasp_cli submit   --tenant alice --region us-west1 --days 3
//   clasp_cli status   [--id N]
//   clasp_cli pause    --id N      clasp_cli resume --id N
//   clasp_cli cancel   --id N      clasp_cli shutdown
//
// SIGINT/SIGTERM to the daemon drain gracefully: every running campaign
// checkpoints at the next hour barrier, the queue is persisted, and the
// process exits 130; a restarted daemon resumes where it left off.
//
// `run` executes a topology campaign for the given number of days and can
// dump the download series as CSV for external plotting; `pilot` prints
// only the bdrmap scan summary; `cost` prints the billing breakdown.
//
// Durability: `run --checkpoint-dir DIR` checkpoints the campaign as it
// goes and Ctrl-C stops it cleanly at the next hour boundary (after a
// final checkpoint). `run --checkpoint-dir DIR --resume` continues a
// killed run; the finished output is byte-identical to an uninterrupted
// one (see DESIGN.md, "Durability & crash recovery").
//
// Observability: `--metrics-out FILE` enables the obs subsystem and
// writes a Prometheus text exposition to FILE (plus FILE.json) when the
// command finishes; `--heartbeat-every N` logs one INFO progress line
// every N simulated hours. Both are purely observational — campaign
// output is byte-identical with them on or off. CLASP_LOG=debug|info|
// warn|error sets the log level (see DESIGN.md, "Observability").
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "clasp/cli.hpp"
#include "clasp/config_loader.hpp"
#include "clasp/platform.hpp"
#include "clasp/report.hpp"
#include "dist/coordinator.hpp"
#include "obs/export.hpp"
#include "svc/control.hpp"
#include "svc/service.hpp"
#include "util/log.hpp"

namespace {

using namespace clasp;

// The campaign a SIGINT/SIGTERM should interrupt. request_interrupt only
// stores a relaxed atomic flag, so calling it from the handler is safe.
// SIGTERM gets the same graceful treatment as Ctrl-C: a batch scheduler
// or `kill` stops the run at the next hour boundary after a final
// checkpoint, instead of tearing it down mid-hour.
std::atomic<campaign_runner*> g_active_campaign{nullptr};

// Daemon mode: the same signals mean "drain" — checkpoint every running
// campaign at the next hour barrier, persist the queue, exit 130.
// request_drain only touches atomics, so it is handler-safe too.
std::atomic<svc::campaign_service*> g_active_service{nullptr};

extern "C" void handle_stop_signal(int sig) {
  if (svc::campaign_service* service = g_active_service.load()) {
    service->request_drain();
  } else if (campaign_runner* campaign = g_active_campaign.load()) {
    campaign->request_interrupt();
  } else {
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

void usage() {
  std::fprintf(stderr,
               "usage: clasp_cli <select|pilot|run|cost|report> [--region R] "
               "[--days N] [--tier premium|standard] [--csv FILE] "
               "[--seed S] [--config FILE] [--workers N] "
               "[--link-cache on|off] [--batch-eval on|off] "
               "[--fleet-scale N] [--faults off|low|high] "
               "[--swarm off|low|high] "
               "[--checkpoint-dir DIR] [--checkpoint-every HOURS] "
               "[--resume] [--shards N] [--metrics-out FILE] "
               "[--heartbeat-every HOURS]\n"
               "  --workers N   campaign replay threads (0 = hardware "
               "concurrency); results are identical for any N\n"
               "  --link-cache  hour-epoch link-condition cache (default "
               "on); off only slows replay, results are identical\n"
               "  --batch-eval  batched link-hour evaluation (default on); "
               "off only slows replay, results are identical\n"
               "  --fleet-scale N  measure N replicas of every selected "
               "server (default 1 = the paper-scale fleet); the generated "
               "world and the base fleet's results are unchanged\n"
               "  --faults      deterministic fault injection preset "
               "(server churn, transient failures, VM preemption); run "
               "prints a campaign health report when enabled\n"
               "  --swarm       churn-tolerant community probe swarm for "
               "the differential pre-test (default off = fixed panel); "
               "low/high set join/leave rates, per-probe credits and "
               "hourly rate limits\n"
               "  --checkpoint-dir DIR  checkpoint the campaign under DIR "
               "as it runs; Ctrl-C then stops cleanly at the next hour\n"
               "  --checkpoint-every H  hours between checkpoints "
               "(default 24; hours in between are WAL-covered)\n"
               "  --resume      continue a killed run from DIR's latest "
               "checkpoint; output is byte-identical to an uninterrupted "
               "run\n"
               "  --shards N    distributed replay across N forked worker "
               "processes with heartbeats and shard failover; a killed "
               "worker is respawned and output stays byte-identical to "
               "--shards 1\n"
               "  --metrics-out FILE    write Prometheus metrics to FILE "
               "(and JSON to FILE.json) when the command finishes\n"
               "  --heartbeat-every H   log one progress line every H "
               "simulated hours (cursor, tests, cache hits, WAL bytes)\n"
               "service mode: clasp_cli <serve|submit|status|pause|resume|"
               "cancel|shutdown> [--socket PATH]\n"
               "  serve         run the campaign service daemon (SIGINT/"
               "SIGTERM drain: checkpoint, persist queue, exit 130)\n"
               "  submit        queue a campaign: --tenant NAME plus any of "
               "--region --days --seed --workers --shards --fleet-scale "
               "--faults --durable on|off\n"
               "  status        service summary + campaign table "
               "(--id N for one campaign)\n"
               "  pause/resume/cancel --id N   control one campaign; a "
               "paused durable campaign costs only its checkpoint\n"
               "  shutdown      drain the daemon remotely\n");
}

int cmd_select(clasp_platform& platform, const cli_options& opts) {
  const auto& sel = platform.select_topology(opts.region);
  std::printf("%s: pilot links %zu, links traversed by US servers %zu, "
              "servers selected %zu (coverage %.1f%%)\n",
              opts.region.c_str(), sel.pilot.links.size(),
              sel.links_traversed_by_servers, sel.selected.size(),
              100.0 * sel.coverage());
  for (const selected_server& s : sel.selected) {
    std::printf("  %-46s AS%-7u via %s (AS path %zu, %.1f ms)\n",
                platform.registry().server(s.server_id).name.c_str(),
                s.neighbor.value, s.far_side.to_string().c_str(),
                s.as_path_len, s.rtt.value);
  }
  // With the community swarm enabled (--swarm low|high or [swarm] in the
  // config) also run the §3.1 differential pre-test through it and show
  // what churn did to tuple coverage.
  if (platform.config().differential.swarm.enabled) {
    const differential_selection_result& diff =
        platform.select_differential(opts.region);
    const swarm_report& s = diff.swarm;
    std::printf(
        "differential pre-test (swarm): %.0f/%zu probes online on average, "
        "%.1f%% tuple coverage, %zu substitutions, %zu missed rounds, "
        "%zu stale tuples, %zu credits spent\n",
        s.mean_active, s.probe_population, 100.0 * s.mean_coverage,
        s.substitutions, s.missed_rounds, s.stale_tuples, s.credits_spent);
    std::printf(
        "  %zu tuples measured (%zu incomplete), %zu candidates -> "
        "%zu servers%s\n",
        diff.tuples_measured, diff.tuples_incomplete, diff.candidates.size(),
        diff.selected.size(),
        diff.platform_exhausted ? " [platform exhausted]" : "");
  }
  return 0;
}

int cmd_pilot(clasp_platform& platform, const cli_options& opts) {
  const auto& sel = platform.select_topology(opts.region);
  std::printf("%s pilot: %zu interdomain links discovered\n",
              opts.region.c_str(), sel.pilot.links.size());
  std::printf("top neighbors by path count:\n");
  std::vector<border_observation> links = sel.pilot.links;
  std::sort(links.begin(), links.end(),
            [](const border_observation& a, const border_observation& b) {
              return a.path_count > b.path_count;
            });
  for (std::size_t i = 0; i < std::min<std::size_t>(links.size(), 15); ++i) {
    std::printf("  %-16s AS%-8u %5zu paths, min rtt %.1f ms\n",
                links[i].far_side.to_string().c_str(),
                links[i].neighbor.value, links[i].path_count,
                links[i].min_rtt.value);
  }
  return 0;
}

int cmd_run(clasp_platform& platform, const cli_options& opts) {
  const hour_range window{
      hour_stamp::from_civil({2020, 5, 1}, 0),
      hour_stamp::from_civil({2020, 5, 1}, 0) + opts.days * 24};
  campaign_runner& campaign =
      platform.start_topology_campaign(opts.region, window);
  if (campaign.durable()) {
    if (opts.resume) {
      if (campaign.resume(campaign.config().checkpoint_dir)) {
        std::printf("resumed from %s at %s\n",
                    campaign.config().checkpoint_dir.c_str(),
                    campaign.cursor().to_string().c_str());
      } else {
        std::printf("no checkpoint under %s, starting fresh\n",
                    campaign.config().checkpoint_dir.c_str());
      }
    }
    // Ctrl-C and SIGTERM now mean "checkpoint and stop at the next hour
    // boundary".
    g_active_campaign.store(&campaign);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
  }
  bool completed;
  const std::size_t shards = platform.config().campaign_shards;
  if (shards > 1) {
    // Distributed replay: fork a worker per shard under a coordinator.
    // Killing any worker (kill -9 <pid>; pids are logged at spawn with
    // CLASP_LOG=info) triggers failover, and the output stays
    // byte-identical to --shards 1.
    dist::dist_config dc;
    dc.shards = shards;
    dist::shard_coordinator coordinator(campaign, dc);
    std::printf("distributed replay: %zu worker shards over %zu VMs\n",
                coordinator.shards(), campaign.vm_count());
    completed = coordinator.run();
    const dist::dist_report& r = coordinator.report();
    if (r.failovers > 0 || r.resends > 0 || r.timeouts > 0) {
      std::printf(
          "dist recovery: %zu failovers (%zu respawns), %zu resends, "
          "%zu CRC rejects, %zu timeouts\n",
          r.failovers, r.respawns, r.resends, r.crc_rejects, r.timeouts);
    }
  } else {
    completed = campaign.run();
  }
  g_active_campaign.store(nullptr);
  if (!completed) {
    std::printf("interrupted at %s; rerun with --resume to continue\n",
                campaign.cursor().to_string().c_str());
    return 130;
  }
  std::printf("ran %zu tests on %zu servers from %zu VMs\n",
              campaign.tests_run(), campaign.session_count(),
              campaign.vm_count());

  if (campaign.config().faults.enabled) {
    const campaign_health health = campaign.health();
    std::printf(
        "campaign health: %.1f%% mean completeness, %zu retries, "
        "%zu failed tests, %zu servers withdrawn, %zu VM redeploys "
        "(%zu downtime hours), %zu uploads lost\n",
        100.0 * health.mean_completeness(), health.total_retries,
        health.failed_tests, health.withdrawn_servers, health.vm_redeploys,
        health.vm_downtime_hours, health.upload_failures);
    const auto excluded = health.low_completeness_servers(0.8);
    std::printf("servers below 80%% completeness (excluded from "
                "aggregation): %zu\n",
                excluded.size());
  }

  const auto data = platform.download_series("topology", opts.region);
  std::size_t congested = 0;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    if (summarize_server(*data.series[i], data.tz[i], 0.5).congested_server) {
      ++congested;
    }
  }
  std::printf("congested servers (>10%% of days with events): %zu/%zu\n",
              congested, data.series.size());

  if (!opts.csv_path.empty()) {
    std::ofstream out(opts.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opts.csv_path.c_str());
      return 1;
    }
    tag_filter filter;
    filter.required["campaign"] = "topology";
    filter.required["region"] = opts.region;
    platform.store().export_csv(out, "download_mbps", filter);
    std::printf("wrote download series to %s\n", opts.csv_path.c_str());
  }
  return 0;
}

int cmd_report(clasp_platform& platform, const cli_options& opts) {
  const hour_range window{
      hour_stamp::from_civil({2020, 5, 1}, 0),
      hour_stamp::from_civil({2020, 5, 1}, 0) + opts.days * 24};
  platform.start_topology_campaign(opts.region, window).run();
  std::fputs(render_campaign_report(platform, opts.region).c_str(), stdout);
  return 0;
}

int cmd_cost(clasp_platform& platform, const cli_options& opts) {
  const hour_range window{
      hour_stamp::from_civil({2020, 5, 1}, 0),
      hour_stamp::from_civil({2020, 5, 1}, 0) + opts.days * 24};
  campaign_runner& campaign =
      platform.start_topology_campaign(opts.region, window);
  campaign.run();
  const cost_report& costs = platform.cloud().costs();
  std::printf("%d-day %s campaign (%zu servers):\n", opts.days,
              opts.region.c_str(), campaign.session_count());
  std::printf("  VMs:     $%8.2f\n", costs.vm_usd);
  std::printf("  egress:  $%8.2f\n", costs.egress_usd);
  std::printf("  storage: $%8.2f\n", costs.storage_usd);
  std::printf("  total:   $%8.2f  (~$%.0f/month at this cadence)\n",
              costs.total(), costs.total() * 30.0 / opts.days);
  return 0;
}

// --- campaign service verbs -------------------------------------------

int cmd_serve(const platform_config& cfg) {
  svc::campaign_service service(cfg);
  g_active_service.store(&service);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::printf("campaign service listening on %s (budget %zu worker units, "
              "quantum %u h)\n",
              cfg.service.socket.c_str(), cfg.service.worker_budget,
              cfg.service.quantum_hours);
  const int rc = service.serve();
  g_active_service.store(nullptr);
  if (rc == 130) {
    std::printf("drained; rerun `clasp_cli serve` to resume the queue\n");
  }
  return rc;
}

void print_campaign_row(const svc::campaign_status& c) {
  const std::int64_t total = c.end_hours - c.begin_hours;
  const std::int64_t done = c.cursor_hours - c.begin_hours;
  const double pct = total > 0 ? 100.0 * static_cast<double>(done) /
                                     static_cast<double>(total)
                               : 0.0;
  std::printf("  #%-4llu %-12s %-9s %-12s %dd seed %-10llu %lld/%lld h "
              "(%3.0f%%)%s%s%s\n",
              static_cast<unsigned long long>(c.id), c.tenant.c_str(),
              c.state.c_str(), c.region.c_str(), c.days,
              static_cast<unsigned long long>(c.seed),
              static_cast<long long>(done), static_cast<long long>(total),
              pct, c.durable ? "" : " [ephemeral]",
              c.preemptions > 0 ? " [preempted]" : "",
              c.error.empty() ? "" : (" error: " + c.error).c_str());
}

void print_service_summary(const svc::service_status& s) {
  std::printf("service: %llu queued, %llu admitted, %llu running, "
              "%llu paused, %llu done, %llu failed, %llu cancelled | "
              "budget %llu/%llu units, %llu resident sessions\n",
              static_cast<unsigned long long>(s.queued),
              static_cast<unsigned long long>(s.admitted),
              static_cast<unsigned long long>(s.running),
              static_cast<unsigned long long>(s.paused),
              static_cast<unsigned long long>(s.done),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.cancelled),
              static_cast<unsigned long long>(s.reserved_units),
              static_cast<unsigned long long>(s.worker_budget),
              static_cast<unsigned long long>(s.resident));
  std::printf("scheduler: %llu quanta, %llu preemptions, %llu evictions, "
              "%llu cold starts, %llu warm resumes\n",
              static_cast<unsigned long long>(s.quanta),
              static_cast<unsigned long long>(s.preemptions),
              static_cast<unsigned long long>(s.evictions),
              static_cast<unsigned long long>(s.cold_starts),
              static_cast<unsigned long long>(s.warm_resumes));
}

int cmd_control(const platform_config& cfg, const cli_options& opts) {
  svc::control_request req;
  req.tenant = opts.tenant;
  req.id = opts.id;
  if (opts.command == "submit") {
    req.op = svc::control_op::submit;
    req.spec.region = opts.region;
    req.spec.days = opts.days;
    req.spec.seed = opts.seed;
    req.spec.workers = opts.workers;
    req.spec.shards = opts.shards;
    req.spec.fleet_scale = opts.fleet_scale;
    req.spec.faults = opts.faults;
    req.spec.durable = opts.durable != 0;  // -1 (default) and 1 mean on
  } else if (opts.command == "status") {
    req.op = svc::control_op::status;
  } else if (opts.command == "pause") {
    req.op = svc::control_op::pause;
  } else if (opts.command == "resume") {
    req.op = svc::control_op::resume;
  } else if (opts.command == "cancel") {
    req.op = svc::control_op::cancel;
  } else {  // shutdown
    req.op = svc::control_op::shutdown;
  }
  const std::string socket =
      opts.socket.empty() ? cfg.service.socket : opts.socket;
  try {
    svc::control_client client(socket);
    const svc::control_reply reply = client.call(req);
    if (!reply.ok) {
      std::fprintf(stderr, "clasp_cli: %s\n", reply.error.c_str());
      return 1;
    }
    switch (req.op) {
      case svc::control_op::submit:
        std::printf("submitted campaign %llu for tenant %s\n",
                    static_cast<unsigned long long>(reply.id),
                    opts.tenant.c_str());
        break;
      case svc::control_op::status:
        print_service_summary(reply.service);
        for (const svc::campaign_status& c : reply.campaigns) {
          print_campaign_row(c);
        }
        break;
      case svc::control_op::pause:
        std::printf("paused campaign %llu\n",
                    static_cast<unsigned long long>(opts.id));
        break;
      case svc::control_op::resume:
        std::printf("resumed campaign %llu\n",
                    static_cast<unsigned long long>(opts.id));
        break;
      case svc::control_op::cancel:
        std::printf("cancelled campaign %llu\n",
                    static_cast<unsigned long long>(opts.id));
        break;
      case svc::control_op::shutdown:
        std::printf("daemon draining\n");
        break;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clasp_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  init_log_from_env();
  cli_options opts;
  const cli_parse_result parsed = parse_cli_args(argc, argv, opts);
  if (!parsed.ok) {
    if (!parsed.error.empty()) {
      std::fprintf(stderr, "clasp_cli: %s\n", parsed.error.c_str());
    }
    usage();
    return 2;
  }
  platform_config cfg;
  if (!opts.config_path.empty()) {
    try {
      cfg = load_platform_config_file(opts.config_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  cfg.internet.seed = opts.seed;
  if (opts.workers >= 0) {
    cfg.campaign_workers = static_cast<unsigned>(opts.workers);
  }
  if (opts.link_cache >= 0) {
    cfg.campaign_link_cache = opts.link_cache != 0;
  }
  if (opts.batch_eval >= 0) {
    cfg.campaign_batch_eval = opts.batch_eval != 0;
  }
  if (opts.fleet_scale > 0) {
    cfg.fleet_scale = static_cast<std::size_t>(opts.fleet_scale);
  }
  if (!opts.faults.empty()) {
    cfg.campaign_faults = fault_config::preset(opts.faults);
  }
  if (!opts.swarm.empty()) {
    cfg.differential.swarm = swarm_config::preset(opts.swarm);
  }
  if (!opts.checkpoint_dir.empty()) {
    cfg.campaign_checkpoint_dir = opts.checkpoint_dir;
  }
  if (opts.checkpoint_every > 0) {
    cfg.campaign_checkpoint_every_hours =
        static_cast<unsigned>(opts.checkpoint_every);
  }
  if (opts.shards > 0) {
    cfg.campaign_shards = static_cast<std::size_t>(opts.shards);
  }
  if (!opts.metrics_out.empty()) cfg.obs_metrics = true;
  if (opts.heartbeat_every > 0) {
    cfg.obs_metrics = true;
    cfg.obs_heartbeat_every_hours =
        static_cast<unsigned>(opts.heartbeat_every);
    // The heartbeat goes through the info level; a default-warn build
    // would swallow it.
    if (get_log_level() > log_level::info) set_log_level(log_level::info);
  }
  if (!opts.socket.empty()) cfg.service.socket = opts.socket;

  // Service verbs never build a platform here: the client verbs only dial
  // the control socket, and the daemon constructs one platform per
  // resident campaign session itself.
  if (opts.command == "serve") {
    try {
      const int rc = cmd_serve(cfg);
      if (!opts.metrics_out.empty()) {
        obs::write_metrics_files(opts.metrics_out);
        std::printf("wrote metrics to %s and %s.json\n",
                    opts.metrics_out.c_str(), opts.metrics_out.c_str());
      }
      return rc;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "clasp_cli: %s\n", e.what());
      return 1;
    }
  }
  if (opts.command == "submit" || opts.command == "status" ||
      opts.command == "pause" || opts.command == "resume" ||
      opts.command == "cancel" || opts.command == "shutdown") {
    return cmd_control(cfg, opts);
  }

  clasp_platform platform(cfg);

  int rc = 0;
  if (opts.command == "select") {
    rc = cmd_select(platform, opts);
  } else if (opts.command == "pilot") {
    rc = cmd_pilot(platform, opts);
  } else if (opts.command == "run") {
    rc = cmd_run(platform, opts);
  } else if (opts.command == "report") {
    rc = cmd_report(platform, opts);
  } else {
    rc = cmd_cost(platform, opts);
  }
  if (!opts.metrics_out.empty()) {
    try {
      obs::write_metrics_files(opts.metrics_out);
      std::printf("wrote metrics to %s and %s.json\n",
                  opts.metrics_out.c_str(), opts.metrics_out.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  return rc;
}

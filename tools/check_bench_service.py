#!/usr/bin/env python3
"""CI gate for BENCH_service.json.

Asserts the campaign-service bench ran both legs and that the daemon's
two budgets held:

  1. Latency — a warm resident session's first hour must be cheaper
     than a cold submit (which builds a world, selects, deploys); the
     warm-checkpoint figure only has to exist and be positive, since it
     rebuilds a platform just like cold does.
  2. Throughput — time-slicing 1/4/8 concurrent campaigns must keep
     aggregate simulated hours/sec at >= 0.9x the same campaign set run
     back-to-back in batch mode (scheduling + registry persistence +
     session switching all inside 10%), and every harvested CSV must be
     byte-identical to its batch twin — identity is a contract, not a
     budget.

Usage: check_bench_service.py BENCH_service.json
"""

import json
import sys

THROUGHPUT_RATIO_FLOOR = 0.9


def fail(msg):
    print(f"bench gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_service.json")
    with open(sys.argv[1]) as f:
        bench = json.load(f)

    latency = bench.get("latency")
    if not latency:
        fail("missing 'latency' leg")
    cold = latency.get("cold_first_hour_seconds", 0.0)
    warm_resident = latency.get("warm_resident_first_hour_seconds", 0.0)
    warm_checkpoint = latency.get("warm_checkpoint_first_hour_seconds", 0.0)
    if cold <= 0.0 or warm_resident <= 0.0 or warm_checkpoint <= 0.0:
        fail("latency figures must all be positive "
             f"(cold={cold}, warm_resident={warm_resident}, "
             f"warm_checkpoint={warm_checkpoint})")
    if warm_resident >= cold:
        fail(f"warm resident first hour ({warm_resident}s) is not cheaper "
             f"than cold ({cold}s) — the scheduler is rebuilding sessions "
             "it already holds")

    runs = bench.get("throughput", [])
    by_n = {r.get("concurrent"): r for r in runs}
    for n in (1, 4, 8):
        if n not in by_n:
            fail(f"missing {n}-concurrent throughput run")
    for n, run in sorted(by_n.items()):
        if not run.get("output_identical"):
            fail(f"{n}-concurrent run's harvested CSVs diverged from the "
                 "batch twins")
        ratio = run.get("ratio", 0.0)
        if ratio < THROUGHPUT_RATIO_FLOOR:
            fail(f"{n}-concurrent throughput is {ratio:.3f}x sequential "
                 f"batch (floor {THROUGHPUT_RATIO_FLOOR})")
        if run.get("hours_per_sec", 0.0) <= 0.0:
            fail(f"{n}-concurrent run reports no progress")
    multi = by_n[8]
    if multi.get("preemptions", 0) < 1:
        fail("8-concurrent run recorded no preemptions — the scheduler "
             "never actually time-sliced")

    print("bench gate: OK: "
          f"cold {cold}s vs warm-resident {warm_resident}s; ratios " +
          ", ".join(f"{n}x={by_n[n].get('ratio'):.3f}"
                    for n in sorted(by_n)))


if __name__ == "__main__":
    main()

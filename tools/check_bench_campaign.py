#!/usr/bin/env python3
"""CI gate for BENCH_campaign.json.

Asserts the campaign bench emitted the fleet-scale configurations and the
speedup_at_10x field, and applies the soft perf-regression gate: fail when
the serial batched-cached 1x ns/hour regresses more than 10% over the
committed baseline (bench/campaign_baseline.json).

Usage: check_bench_campaign.py BENCH_campaign.json campaign_baseline.json
"""

import json
import sys

SPEEDUP_FLOOR = 5.0
REGRESSION_HEADROOM = 1.10


def fail(msg):
    print(f"bench gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} BENCH_campaign.json campaign_baseline.json")
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    # 1. The fleet-scale axis ran: both 10x whole-hour configurations
    #    (legacy-uncached baseline and batched-cached fast path).
    runs = bench.get("runs", [])
    scaled = {(r["cached"], r["batch"]) for r in runs if r.get("fleet_scale") == 10}
    for want, name in [
        ((False, False), "legacy-uncached"),
        ((True, True), "batched-cached"),
    ]:
        if want not in scaled:
            fail(f"missing 10x fleet run ({name}) in 'runs'")

    # 2. The link-hour evaluation pair ran at 10x and the recorded
    #    speedup meets the refactor's floor.
    link_runs = bench.get("link_eval_runs", [])
    link_scaled = {r["batch"] for r in link_runs if r.get("fleet_scale") == 10}
    if link_scaled != {True, False}:
        fail("missing 10x link-hour evaluation pair in 'link_eval_runs'")
    speedup = bench.get("speedup_at_10x")
    if speedup is None:
        fail("missing 'speedup_at_10x'")
    if speedup < SPEEDUP_FLOOR:
        fail(
            f"speedup_at_10x = {speedup:.2f} < {SPEEDUP_FLOOR} (batched "
            "link-hour evaluation vs per-session evaluate at 10x fleet)"
        )
    hour_speedup = bench.get("hour_speedup_at_10x")
    if hour_speedup is None:
        fail("missing 'hour_speedup_at_10x'")
    if hour_speedup <= 1.0:
        fail(f"hour_speedup_at_10x = {hour_speedup:.2f} <= 1 (whole-hour regression)")

    # 3. Soft perf gate: 1x fleet must not regress > 10% vs the committed
    #    baseline.
    one_x = bench.get("ns_per_hour_1x")
    if one_x is None:
        fail("missing 'ns_per_hour_1x'")
    base = baseline.get("ns_per_hour_1x")
    if not base or base <= 0:
        fail("baseline file has no positive 'ns_per_hour_1x'")
    limit = base * REGRESSION_HEADROOM
    if one_x > limit:
        fail(
            f"ns_per_hour_1x = {one_x:.0f} exceeds {limit:.0f} "
            f"(baseline {base:.0f} + 10%). If this is an accepted cost or a "
            "hardware change, re-baseline: copy the new value into "
            "bench/campaign_baseline.json with a note in the PR."
        )

    print(
        f"bench gate: OK: speedup_at_10x={speedup:.2f} (floor {SPEEDUP_FLOOR}), "
        f"hour_speedup_at_10x={hour_speedup:.2f}, "
        f"ns_per_hour_1x={one_x:.0f} (baseline {base:.0f}, limit {limit:.0f})"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CI gate for BENCH_dist.json.

Asserts the distributed-replay bench ran the full shard axis and that the
subsystem's three contracts held:

  1. Identity — every shard count, and the SIGKILL failover leg, hashed
     identically to the single-process run.
  2. Failover recovery — exactly the in-flight barrier hour, never more
     than a checkpoint interval, with at least one real failover.
  3. Merge overhead — the coordinator's deployed cost (per-barrier work
     over the real-time hour it covers) stays under 10%. The raw sim
     wall-clock ratio is only gated on full-scale runs: the simulator
     compresses a 3600-second hour into microseconds, so at --fast scale
     per-barrier IPC is magnified against a microseconds-long baseline
     and the ratio measures the time compression, not the coordinator.

Usage: check_bench_dist.py BENCH_dist.json
"""

import json
import sys

DEPLOYED_OVERHEAD_LIMIT_PCT = 10.0
SIM_OVERHEAD_LIMIT_PCT = 10.0  # full-scale runs only


def fail(msg):
    print(f"bench gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_dist.json")
    with open(sys.argv[1]) as f:
        bench = json.load(f)

    fast = bench.get("fast", False)
    runs = bench.get("runs", [])
    by_shards = {r.get("shards"): r for r in runs}

    # 1. The shard axis ran.
    for shards in (1, 2, 4):
        if shards not in by_shards:
            fail(f"missing {shards}-shard run in 'runs'")

    # 2. Identity at every shard count.
    for shards, run in sorted(by_shards.items()):
        if not run.get("output_identical"):
            fail(f"{shards}-shard output diverged from the single-process run")
        if run.get("groups_merged", 0) < shards:
            fail(f"{shards}-shard run merged {run.get('groups_merged')} "
                 "groups — the workers never shipped anything")

    # 3. The failover leg: a real kill, bounded recovery, identical output.
    failover = bench.get("failover")
    if not failover:
        fail("missing 'failover' leg")
    if failover.get("failovers", 0) < 1:
        fail("the failover leg recorded no failovers — the kill never landed")
    if not failover.get("output_identical"):
        fail("output moved after a worker SIGKILL + failover")
    recovery = failover.get("failover_recovery_hours")
    interval = failover.get("checkpoint_every_hours")
    if recovery is None or interval is None:
        fail("failover leg is missing recovery/checkpoint fields")
    if recovery > interval:
        fail(f"failover recovery took {recovery} hours, more than the "
             f"{interval}-hour checkpoint interval")

    # 4. Merge overhead. Deployed cost is the asserted budget; the sim
    #    wall-clock ratio only means something at full scale.
    best = min(
        (r for r in runs if r.get("shards", 0) >= 1),
        key=lambda r: r.get("merge_overhead_pct", float("inf")),
    )
    deployed = best.get("deployed_overhead_pct")
    if deployed is None:
        fail("runs are missing 'deployed_overhead_pct'")
    if deployed >= DEPLOYED_OVERHEAD_LIMIT_PCT:
        fail(f"deployed merge overhead {deployed:.6f}% exceeds the "
             f"{DEPLOYED_OVERHEAD_LIMIT_PCT}% budget")
    if not fast and best.get("merge_overhead_pct", 0.0) >= SIM_OVERHEAD_LIMIT_PCT:
        fail(f"full-scale merge overhead {best['merge_overhead_pct']:.2f}% "
             f"exceeds {SIM_OVERHEAD_LIMIT_PCT}% at the best shard count")

    print(
        "bench gate: OK: shards {1,2,4} byte-identical, "
        f"failover recovery {recovery}h <= {interval}h interval, "
        f"deployed merge overhead {deployed:.6f}%"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env bash
# Campaign service smoke test: the daemon lifecycle end to end, through
# the real binary and the real unix socket.
#
#   1. start `clasp_cli serve` on a tiny world
#   2. submit 4 campaigns from 2 tenants — one more than max_admitted,
#      so the last one queues behind the admission controller
#   3. kill -9 the daemon mid-run (no drain, no checkpoint-on-exit)
#   4. restart it: the registry reloads, admitted/running campaigns are
#      demoted to queued, durable ones warm-resume from checkpoints
#   5. wait for all 4 to finish, shut the daemon down remotely
#   6. re-run every campaign in plain batch mode and require the
#      service's harvested CSVs to be byte-identical
#
# Usage: tools/service_smoke.sh [path/to/clasp_cli]
set -euo pipefail

CLI="${1:-build/examples/clasp_cli}"
if [[ ! -x "$CLI" ]]; then
  echo "service_smoke: no clasp_cli at $CLI (build with CLASP_BUILD_EXAMPLES=ON)" >&2
  exit 1
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/clasp_svc_smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
  [[ -n "$DAEMON_PID" ]] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

CFG="$WORK/smoke.ini"
cat > "$CFG" <<EOF
[internet]
seed = 777
regional_isp_count = 120
hosting_count = 80
business_count = 150
education_count = 30
large_isp_count = 20
vantage_point_count = 120

[servers]
us_server_target = 120
global_server_target = 600

[budgets]
us-west1 = 40

[service]
socket = $WORK/svc.sock
state_dir = $WORK/state
results_dir = $WORK/results
quantum_hours = 6
worker_budget = 4
max_admitted = 3
tenant_max_admitted = 2
tenant_max_active = 16
max_resident = 4
EOF

DAYS=30
status() { "$CLI" status --config "$CFG" 2>/dev/null || true; }

start_daemon() {
  "$CLI" serve --config "$CFG" > "$WORK/daemon-$1.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [[ -S "$WORK/svc.sock" ]] && return 0
    sleep 0.1
  done
  echo "service_smoke: daemon never opened $WORK/svc.sock" >&2
  cat "$WORK/daemon-$1.log" >&2
  exit 1
}

echo "== start daemon =="
start_daemon first

echo "== submit 4 campaigns (2 tenants, max_admitted is 3) =="
"$CLI" submit --config "$CFG" --tenant alice --region us-west1 --days $DAYS --seed 101 --durable on
"$CLI" submit --config "$CFG" --tenant alice --region us-west1 --days $DAYS --seed 102 --durable on
"$CLI" submit --config "$CFG" --tenant bob   --region us-west1 --days $DAYS --seed 103 --durable off
"$CLI" submit --config "$CFG" --tenant bob   --region us-west1 --days $DAYS --seed 104 --durable on

echo "== wait until the scheduler is actually running campaigns =="
for _ in $(seq 1 100); do
  status | grep -q " running," && ! status | grep -q "service: .* 0 running," && break
  sleep 0.1
done
sleep 0.5
status

echo "== kill -9 the daemon mid-run =="
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
if ! status >/dev/null 2>&1; then :; fi

echo "== restart: registry reloads, queue resumes =="
start_daemon second

echo "== wait for all 4 campaigns to finish =="
DONE=0
for _ in $(seq 1 600); do
  if status | grep -q " 4 done,"; then DONE=1; break; fi
  if status | grep -qE " [1-9][0-9]* failed,"; then
    echo "service_smoke: a campaign failed" >&2
    status >&2
    exit 1
  fi
  sleep 0.2
done
status
if [[ "$DONE" != 1 ]]; then
  echo "service_smoke: campaigns never finished" >&2
  cat "$WORK/daemon-second.log" >&2
  exit 1
fi

echo "== a restarted durable campaign must have warm-resumed =="
if ! status | grep -qE "scheduler: .* [1-9][0-9]* warm resumes"; then
  echo "service_smoke: no warm resumes after restart (expected checkpoint resume)" >&2
  status >&2
  exit 1
fi

echo "== remote shutdown =="
"$CLI" shutdown --config "$CFG"
for _ in $(seq 1 50); do
  [[ ! -S "$WORK/svc.sock" ]] && break
  sleep 0.1
done

echo "== batch-mode twins must match the harvested results byte for byte =="
declare -A SEED_OF=([1]=101 [2]=102 [3]=103 [4]=104)
declare -A TENANT_OF=([1]=alice [2]=alice [3]=bob [4]=bob)
for id in 1 2 3 4; do
  seed="${SEED_OF[$id]}"
  tenant="${TENANT_OF[$id]}"
  "$CLI" run --config "$CFG" --region us-west1 --days $DAYS --seed "$seed" \
    --csv "$WORK/batch-$seed.csv" > /dev/null
  if ! cmp -s "$WORK/results/$tenant-$id.csv" "$WORK/batch-$seed.csv"; then
    echo "service_smoke: campaign $id (seed $seed) diverged from batch mode" >&2
    exit 1
  fi
  echo "campaign $id (tenant $tenant, seed $seed): identical to batch"
done

echo "service_smoke: OK"

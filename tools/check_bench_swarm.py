#!/usr/bin/env python3
"""CI gate for BENCH_swarm.json.

Asserts the churn sweep ran all three presets (off / low / high) and that
the low-churn pre-test kept every common ⟨city, AS⟩ tuple within one
latency class of the fixed-panel baseline — the swarm scheduler's
correctness contract.

Usage: check_bench_swarm.py BENCH_swarm.json
"""

import json
import sys

MAX_LOW_CLASS_SHIFT = 1


def fail(msg):
    print(f"bench gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} BENCH_swarm.json")
    with open(sys.argv[1]) as f:
        bench = json.load(f)

    # 1. All three presets ran, in sweep order.
    sweep = {p.get("preset"): p for p in bench.get("sweep", [])}
    for preset in ("off", "low", "high"):
        if preset not in sweep:
            fail(f"missing '{preset}' preset in 'sweep'")

    # 2. The fixed-panel baseline actually classified tuples, and the
    #    churned runs produced an overlap to compare against.
    off = sweep["off"]
    if off.get("candidates", 0) <= 0:
        fail("fixed-panel run classified no candidate tuples")
    low = sweep["low"]
    compared = low.get("compared_tuples", 0)
    if compared <= 0:
        fail("low-churn run shares no classified tuple with the fixed panel")

    # 3. The ±1-class gate at "low": churn may drop sparse tuples, but a
    #    tuple classified by both runs must not flip between
    #    premium_lower and standard_lower.
    shift = low.get("max_class_shift")
    if shift is None:
        fail("missing 'max_class_shift' in the low-churn entry")
    if shift > MAX_LOW_CLASS_SHIFT:
        hist = low.get("shift_histogram")
        fail(
            f"low-churn max class shift {shift} > {MAX_LOW_CLASS_SHIFT} "
            f"(shift histogram {hist})"
        )

    # 4. Churn was actually on: the swarm presets must show membership
    #    dynamics the fixed panel cannot have.
    for preset in ("low", "high"):
        p = sweep[preset]
        if p.get("joins", 0) + p.get("leaves", 0) <= 0:
            fail(f"'{preset}' run shows no membership churn")
        if p.get("credits_spent", 0) <= 0:
            fail(f"'{preset}' run spent no probe credits")

    print(
        f"bench gate: OK: low max_class_shift={shift} "
        f"(limit {MAX_LOW_CLASS_SHIFT}), compared={compared}, "
        f"low coverage={low.get('mean_coverage')}, "
        f"high coverage={sweep['high'].get('mean_coverage')}"
    )


if __name__ == "__main__":
    main()

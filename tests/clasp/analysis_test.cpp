#include "clasp/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {
namespace {

constexpr timezone_offset kUtc{0};

// Build a series with a fixed daily pattern over `days` days starting at
// the 2020-05-01 epoch. `value_at(local_hour, day)` supplies values.
template <typename Fn>
ts_series make_series(int days, Fn value_at, timezone_offset tz = kUtc) {
  ts_series s("download_mbps", {{"server", "1"}});
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  for (int d = 0; d < days; ++d) {
    for (int h = 0; h < 24; ++h) {
      const hour_stamp t = start + d * 24 + h;
      s.append(t, value_at(t.local_hour_of_day(tz), d));
    }
  }
  return s;
}

TEST(DailyVariabilityTest, FlatSeriesHasZeroV) {
  const ts_series s = make_series(5, [](unsigned, int) { return 400.0; });
  const auto days = daily_variability(s, kUtc);
  ASSERT_EQ(days.size(), 5u);
  for (const day_variability& d : days) {
    EXPECT_DOUBLE_EQ(d.v, 0.0);
    EXPECT_EQ(d.samples, 24u);
  }
}

TEST(DailyVariabilityTest, KnownPeakToTrough) {
  // 500 at night, 250 in the evening: V = (500-250)/500 = 0.5.
  const ts_series s = make_series(3, [](unsigned h, int) {
    return (h >= 19 && h <= 22) ? 250.0 : 500.0;
  });
  for (const day_variability& d : daily_variability(s, kUtc)) {
    EXPECT_DOUBLE_EQ(d.v, 0.5);
    EXPECT_DOUBLE_EQ(d.t_max, 500.0);
    EXPECT_DOUBLE_EQ(d.t_min, 250.0);
  }
}

TEST(DailyVariabilityTest, SparseDaysSkipped) {
  ts_series s("m", {});
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  for (int h = 0; h < 5; ++h) s.append(start + h, 100.0);  // 5 samples only
  EXPECT_TRUE(daily_variability(s, kUtc, 12).empty());
  EXPECT_EQ(daily_variability(s, kUtc, 5).size(), 1u);
}

TEST(DailyVariabilityTest, TimezoneBoundsDays) {
  // A dip spanning 23:00-01:00 UTC falls within one local day at UTC-8.
  const ts_series s = make_series(4, [](unsigned h, int) {
    return (h >= 15 && h <= 17) ? 100.0 : 400.0;  // local-hour based
  }, timezone_offset{-8});
  const auto days = daily_variability(s, timezone_offset{-8});
  for (const auto& d : days) {
    if (d.samples == 24) EXPECT_NEAR(d.v, 0.75, 1e-12);
  }
}

TEST(IntradayLabelTest, LabelsMatchThreshold) {
  const ts_series s = make_series(2, [](unsigned h, int) {
    return (h == 20) ? 100.0 : 500.0;  // V_H = 0.8 at hour 20
  });
  const auto labels = intraday_labels(s, kUtc, 0.5);
  std::size_t congested = 0;
  for (const hour_label& l : labels) {
    EXPECT_GE(l.v_h, 0.0);
    EXPECT_LE(l.v_h, 1.0);
    if (l.congested) {
      ++congested;
      EXPECT_EQ(l.at.utc_hour_of_day(), 20u);
      EXPECT_NEAR(l.v_h, 0.8, 1e-12);
    }
  }
  EXPECT_EQ(congested, 2u);  // one per day
}

TEST(SweepTest, FractionsMonotoneDecreasing) {
  rng r(3);
  const ts_series s = make_series(20, [&](unsigned h, int) {
    return 500.0 - 200.0 * std::sin(h / 24.0 * 6.283) + r.uniform(-30, 30);
  });
  const std::vector<const ts_series*> series{&s};
  const std::vector<timezone_offset> tz{kUtc};
  const threshold_sweep sweep = sweep_thresholds(series, tz);
  ASSERT_EQ(sweep.thresholds.size(), sweep.day_fraction.size());
  for (std::size_t i = 1; i < sweep.thresholds.size(); ++i) {
    EXPECT_LE(sweep.day_fraction[i], sweep.day_fraction[i - 1] + 1e-12);
    EXPECT_LE(sweep.hour_fraction[i], sweep.hour_fraction[i - 1] + 1e-12);
  }
  EXPECT_DOUBLE_EQ(sweep.day_fraction.front(), 1.0);   // V > 0 everywhere
  EXPECT_DOUBLE_EQ(sweep.day_fraction.back(), 0.0);    // V never > 1
}

TEST(SweepTest, SizeMismatchRejected) {
  const ts_series s = make_series(2, [](unsigned, int) { return 1.0; });
  EXPECT_THROW(sweep_thresholds({&s}, {}), invalid_argument_error);
  EXPECT_THROW(sweep_thresholds({&s}, {kUtc}, 2), invalid_argument_error);
}

TEST(SweepTest, ElbowFindsTransition) {
  // Series whose V(s,d) is ~0.35 on most days, so the day-fraction curve
  // collapses just above 0.35: the elbow lands near there.
  const ts_series s = make_series(30, [](unsigned h, int) {
    return (h >= 18 && h <= 22) ? 325.0 : 500.0;
  });
  const threshold_sweep sweep = sweep_thresholds({&s}, {kUtc});
  const double elbow = choose_threshold_elbow(sweep);
  EXPECT_GT(elbow, 0.15);
  EXPECT_LT(elbow, 0.6);
}

TEST(SummarizeTest, CongestedServerRule) {
  // Congested 1 day in 10 -> fraction 0.1, NOT > 0.1 -> not congested.
  const ts_series borderline = make_series(10, [](unsigned h, int d) {
    return (d == 0 && h == 20) ? 50.0 : 500.0;
  });
  const auto s1 = summarize_server(borderline, kUtc, 0.5);
  EXPECT_EQ(s1.days_measured, 10u);
  EXPECT_EQ(s1.congested_days, 1u);
  EXPECT_FALSE(s1.congested_server);

  // Congested 3 days in 10 -> congested server.
  const ts_series heavy = make_series(10, [](unsigned h, int d) {
    return (d < 3 && h == 20) ? 50.0 : 500.0;
  });
  const auto s2 = summarize_server(heavy, kUtc, 0.5);
  EXPECT_EQ(s2.congested_days, 3u);
  EXPECT_TRUE(s2.congested_server);
  EXPECT_EQ(s2.congested_hours, 3u);
  EXPECT_EQ(s2.hours_measured, 240u);
}

TEST(HourlyProbabilityTest, PeaksAtCongestedHour) {
  const ts_series s = make_series(20, [](unsigned h, int d) {
    // Hour 21 congested on even days.
    return (h == 21 && d % 2 == 0) ? 100.0 : 500.0;
  });
  const auto prob = hourly_congestion_probability(s, kUtc, 0.5);
  EXPECT_NEAR(prob[21], 0.5, 1e-12);
  for (unsigned h = 0; h < 24; ++h) {
    if (h != 21) EXPECT_DOUBLE_EQ(prob[h], 0.0) << h;
  }
}

TEST(HourlyProbabilityTest, LocalTimezoneApplied) {
  const timezone_offset pacific{-8};
  // Congested at local hour 20 (= 04:00 UTC next day).
  const ts_series s = make_series(10, [](unsigned local_h, int) {
    return (local_h == 20) ? 100.0 : 500.0;
  }, pacific);
  const auto prob = hourly_congestion_probability(s, pacific, 0.5);
  EXPECT_NEAR(prob[20], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(prob[4], 0.0);
}

TEST(ValidationTest, PerfectDetectorOnCleanSignal) {
  const ts_series download = make_series(15, [](unsigned h, int) {
    return (h >= 19 && h <= 21) ? 100.0 : 500.0;
  });
  ts_series truth("gt_episode", {});
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  for (int i = 0; i < 15 * 24; ++i) {
    const hour_stamp t = start + i;
    const unsigned h = t.utc_hour_of_day();
    truth.append(t, (h >= 19 && h <= 21) ? 1.0 : 0.0);
  }
  const auto v = validate_detector(download, truth, kUtc, 0.5);
  EXPECT_EQ(v.false_positive, 0u);
  EXPECT_EQ(v.false_negative, 0u);
  EXPECT_DOUBLE_EQ(v.precision(), 1.0);
  EXPECT_DOUBLE_EQ(v.recall(), 1.0);
}

TEST(AcfDetectorTest, SuppressesNonDiurnalNoise) {
  rng r(5);
  // Pure noise: amplitude-only detector would flag hours, ACF gate kills.
  const ts_series noisy = make_series(20, [&](unsigned, int) {
    return 400.0 + r.uniform(-200.0, 200.0);
  });
  const auto labels = acf_detector_labels(noisy, kUtc, 0.25, 0.4);
  for (const hour_label& l : labels) EXPECT_FALSE(l.congested);
}

TEST(AcfDetectorTest, KeepsDiurnalCongestion) {
  const ts_series diurnal = make_series(20, [](unsigned h, int) {
    return (h >= 19 && h <= 22) ? 150.0 : 500.0;
  });
  const auto labels = acf_detector_labels(diurnal, kUtc, 0.25, 0.4);
  std::size_t congested = 0;
  for (const hour_label& l : labels) congested += l.congested ? 1 : 0;
  EXPECT_EQ(congested, 20u * 4u);
}

TEST(CompletenessTest, CountsOnlyInWindowPoints) {
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  const hour_range window{start, start + 48};
  // A series missing 12 of its 48 hours, plus points outside the window
  // (which must not count toward completeness).
  ts_series s("download_mbps", {{"server", "1"}});
  s.append(start + (-5), 1.0);
  for (int h = 0; h < 48; ++h) {
    if (h % 4 == 3) continue;  // gap every fourth hour
    s.append(start + h, 100.0);
  }
  s.append(start + 50, 1.0);
  EXPECT_DOUBLE_EQ(series_completeness(s, window), 36.0 / 48.0);

  ts_series empty("download_mbps", {{"server", "2"}});
  EXPECT_DOUBLE_EQ(series_completeness(empty, window), 0.0);
  EXPECT_DOUBLE_EQ(series_completeness(s, {start, start}), 0.0);
}

TEST(CompletenessTest, FilterKeepsServersAboveTheFloor) {
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  const hour_range window{start, start + 24};
  ts_series full("download_mbps", {{"server", "1"}});
  ts_series half("download_mbps", {{"server", "2"}});
  ts_series empty("download_mbps", {{"server", "3"}});
  for (int h = 0; h < 24; ++h) {
    full.append(start + h, 1.0);
    if (h < 12) half.append(start + h, 1.0);
  }
  const std::vector<const ts_series*> series{&full, &half, &empty, nullptr};
  EXPECT_EQ(filter_low_completeness(series, window, 0.8),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(filter_low_completeness(series, window, 0.5),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(filter_low_completeness(series, window, 0.0),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RelativeDifferenceTest, JoinsOnCommonHours) {
  ts_series prem("download_mbps", {{"tier", "premium"}});
  ts_series stnd("download_mbps", {{"tier", "standard"}});
  const hour_stamp start = hour_stamp::from_civil({2020, 8, 1}, 0);
  for (int i = 0; i < 10; ++i) {
    prem.append(start + i, 200.0);
    stnd.append(start + i, 400.0);
  }
  stnd.append(start + 10, 100.0);  // unmatched hour ignored
  const auto deltas = relative_differences(prem, stnd);
  ASSERT_EQ(deltas.size(), 10u);
  for (const double d : deltas) EXPECT_DOUBLE_EQ(d, -0.5);
}

TEST(RelativeDifferenceTest, ZeroStandardSkipped) {
  ts_series prem("m", {}), stnd("m", {});
  prem.append(hour_stamp{0}, 100.0);
  stnd.append(hour_stamp{0}, 0.0);
  EXPECT_TRUE(relative_differences(prem, stnd).empty());
}

TEST(MonthlyPerformanceTest, AggregatesByCalendarMonth) {
  ts_series download("download_mbps", {});
  ts_series latency("latency_ms", {});
  // May: downloads 100..199; June: 500s.
  hour_stamp may = hour_stamp::from_civil({2020, 5, 1}, 0);
  for (int i = 0; i < 100; ++i) {
    download.append(may + i, 100.0 + i);
    latency.append(may + i, 50.0 - i * 0.1);
  }
  hour_stamp june = hour_stamp::from_civil({2020, 6, 1}, 0);
  for (int i = 0; i < 100; ++i) {
    download.append(june + i, 500.0);
    latency.append(june + i, 20.0);
  }
  const auto months = monthly_best_performance(download, latency);
  ASSERT_EQ(months.size(), 2u);
  EXPECT_EQ(months[0].month, 5u);
  EXPECT_NEAR(months[0].p95_download_mbps, 194.05, 0.1);
  EXPECT_NEAR(months[0].p5_latency_ms, 40.6, 0.2);
  EXPECT_EQ(months[1].month, 6u);
  EXPECT_DOUBLE_EQ(months[1].p95_download_mbps, 500.0);
  EXPECT_EQ(months[0].samples, 100u);
}

}  // namespace
}  // namespace clasp

// Appended: latency detector, weekday/weekend split, downsampling.
namespace clasp {
namespace {

TEST(LatencyDetectorTest, FlagsInflatedHours) {
  ts_series lat("latency_ms", {});
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  for (int d = 0; d < 10; ++d) {
    for (int h = 0; h < 24; ++h) {
      lat.append(start + d * 24 + h, (h >= 20 && h <= 21) ? 120.0 : 40.0);
    }
  }
  const auto labels = latency_inflation_labels(lat, timezone_offset{0}, 1.0);
  std::size_t congested = 0;
  for (const hour_label& l : labels) {
    if (l.congested) {
      ++congested;
      const unsigned h = l.at.utc_hour_of_day();
      EXPECT_TRUE(h >= 20 && h <= 21);
      EXPECT_NEAR(l.v_h, 2.0, 1e-9);  // (120-40)/40
    }
  }
  EXPECT_EQ(congested, 20u);
}

TEST(LatencyDetectorTest, MissesNonQueueingCongestion) {
  // Throughput collapses but latency stays flat (loss-only congestion):
  // the latency detector sees nothing — the paper's §2 point.
  ts_series lat("latency_ms", {});
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  for (int h = 0; h < 72; ++h) lat.append(start + h, 40.0);
  for (const hour_label& l :
       latency_inflation_labels(lat, timezone_offset{0}, 0.5)) {
    EXPECT_FALSE(l.congested);
  }
}

TEST(WeekendTest, DayTypeArithmetic) {
  // 2020-01-01 (day 0) = Wednesday; 2020-01-04 (day 3) = Saturday.
  EXPECT_FALSE(is_weekend_day(0));
  EXPECT_FALSE(is_weekend_day(2));  // Friday
  EXPECT_TRUE(is_weekend_day(3));   // Saturday
  EXPECT_TRUE(is_weekend_day(4));   // Sunday
  EXPECT_FALSE(is_weekend_day(5));  // Monday
  EXPECT_TRUE(is_weekend_day(3 + 7 * 10));
}

TEST(WeekendTest, SplitCountsByDayType) {
  ts_series s("download_mbps", {});
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  // Congest hour 20 on weekends only. 2020-05-02 is a Saturday.
  for (int d = 0; d < 28; ++d) {
    for (int h = 0; h < 24; ++h) {
      const std::int64_t day = (start + d * 24).utc_day_index();
      const bool weekend = is_weekend_day(day);
      s.append(start + d * 24 + h,
               (weekend && h == 20) ? 100.0 : 500.0);
    }
  }
  const auto split = split_by_day_type(s, timezone_offset{0}, 0.5);
  EXPECT_EQ(split.weekday_hours + split.weekend_hours, 28u * 24u);
  EXPECT_EQ(split.weekday_congested, 0u);
  EXPECT_EQ(split.weekend_congested, 8u);  // 8 weekend days in 28
  EXPECT_GT(split.weekend_fraction(), split.weekday_fraction());
}

TEST(DownsampleTest, MeanMinMax) {
  ts_series s("m", {{"k", "v"}});
  for (int i = 0; i < 12; ++i) s.append(hour_stamp{i}, i);
  const ts_series mean6 = downsample(s, 6, downsample_op::mean);
  ASSERT_EQ(mean6.size(), 2u);
  EXPECT_DOUBLE_EQ(mean6.points()[0].value, 2.5);   // mean(0..5)
  EXPECT_DOUBLE_EQ(mean6.points()[1].value, 8.5);   // mean(6..11)
  EXPECT_EQ(mean6.points()[0].at, hour_stamp{0});
  EXPECT_EQ(mean6.points()[1].at, hour_stamp{6});
  EXPECT_EQ(mean6.tags().at("k"), "v");

  const ts_series max6 = downsample(s, 6, downsample_op::max);
  EXPECT_DOUBLE_EQ(max6.points()[0].value, 5.0);
  const ts_series min6 = downsample(s, 6, downsample_op::min);
  EXPECT_DOUBLE_EQ(min6.points()[1].value, 6.0);
}

TEST(DownsampleTest, GapsStartNewBuckets) {
  ts_series s("m", {});
  s.append(hour_stamp{0}, 1.0);
  s.append(hour_stamp{1}, 3.0);
  s.append(hour_stamp{100}, 7.0);
  const ts_series out = downsample(s, 24, downsample_op::mean);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.points()[0].value, 2.0);
  EXPECT_EQ(out.points()[1].at, hour_stamp{96});
}

TEST(DownsampleTest, EmptyAndErrors) {
  ts_series s("m", {});
  EXPECT_EQ(downsample(s, 6, downsample_op::mean).size(), 0u);
  s.append(hour_stamp{0}, 1.0);
  EXPECT_THROW(downsample(s, 0, downsample_op::mean),
               invalid_argument_error);
}

}  // namespace
}  // namespace clasp

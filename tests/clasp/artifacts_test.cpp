#include "clasp/artifacts.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {
namespace {

speed_test_report sample_report() {
  speed_test_report r;
  r.server_id = 421;
  r.at = hour_stamp::from_civil({2020, 7, 14}, 19);
  r.tier = service_tier::standard;
  r.download = mbps{487.25};
  r.upload = mbps{93.118};
  r.latency = millis{42.75};
  r.download_loss = 0.0123;
  r.upload_loss = 0.0004;
  r.ground_truth_episode = true;
  return r;
}

traceroute_result sample_trace() {
  traceroute_result t;
  t.src = ipv4_addr::parse("35.4.0.17");
  t.dst = ipv4_addr::parse("16.22.8.3");
  t.at = hour_stamp::from_civil({2020, 7, 14}, 19);
  t.reached = true;
  t.hops.push_back({1, ipv4_addr::parse("35.0.0.14"), millis{0.4}});
  t.hops.push_back({2, std::nullopt, millis{0.0}});  // "*"
  t.hops.push_back({3, ipv4_addr::parse("72.14.0.3"), millis{12.5}});
  t.hops.push_back({4, ipv4_addr::parse("16.22.8.3"), millis{31.125}});
  return t;
}

TEST(ArtifactsTest, ReportRoundTrip) {
  const speed_test_report original = sample_report();
  const speed_test_report parsed = parse_report(serialize_report(original));
  EXPECT_EQ(parsed.server_id, original.server_id);
  EXPECT_EQ(parsed.at, original.at);
  EXPECT_EQ(parsed.tier, original.tier);
  EXPECT_DOUBLE_EQ(parsed.download.value, original.download.value);
  EXPECT_DOUBLE_EQ(parsed.upload.value, original.upload.value);
  EXPECT_DOUBLE_EQ(parsed.latency.value, original.latency.value);
  EXPECT_DOUBLE_EQ(parsed.download_loss, original.download_loss);
  EXPECT_DOUBLE_EQ(parsed.upload_loss, original.upload_loss);
  EXPECT_EQ(parsed.ground_truth_episode, original.ground_truth_episode);
}

TEST(ArtifactsTest, ReportRoundTripIsExactForRandomValues) {
  rng r(7);
  for (int i = 0; i < 100; ++i) {
    speed_test_report original = sample_report();
    original.download = mbps{r.uniform(0.01, 1000.0)};
    original.latency = millis{r.uniform(1.0, 400.0)};
    original.download_loss = r.uniform(0.0, 0.9);
    original.at = hour_stamp{r.uniform_int(0, 100000)};
    const speed_test_report parsed =
        parse_report(serialize_report(original));
    EXPECT_DOUBLE_EQ(parsed.download.value, original.download.value);
    EXPECT_DOUBLE_EQ(parsed.latency.value, original.latency.value);
    EXPECT_DOUBLE_EQ(parsed.download_loss, original.download_loss);
    EXPECT_EQ(parsed.at, original.at);
  }
}

TEST(ArtifactsTest, TracerouteRoundTrip) {
  const traceroute_result original = sample_trace();
  const traceroute_result parsed =
      parse_traceroute(serialize_traceroute(original));
  EXPECT_EQ(parsed.src, original.src);
  EXPECT_EQ(parsed.dst, original.dst);
  EXPECT_EQ(parsed.at, original.at);
  EXPECT_EQ(parsed.reached, original.reached);
  ASSERT_EQ(parsed.hops.size(), original.hops.size());
  for (std::size_t i = 0; i < parsed.hops.size(); ++i) {
    EXPECT_EQ(parsed.hops[i].ttl, original.hops[i].ttl);
    EXPECT_EQ(parsed.hops[i].address, original.hops[i].address);
    EXPECT_DOUBLE_EQ(parsed.hops[i].rtt.value, original.hops[i].rtt.value);
  }
}

TEST(ArtifactsTest, BundleRoundTrip) {
  artifact_bundle bundle;
  bundle.reports.push_back(sample_report());
  bundle.reports.push_back(sample_report());
  bundle.traces.push_back(sample_trace());
  const artifact_bundle parsed = parse_bundle(serialize_bundle(bundle));
  EXPECT_EQ(parsed.reports.size(), 2u);
  EXPECT_EQ(parsed.traces.size(), 1u);
  EXPECT_EQ(parsed.reports[0].server_id, 421u);
}

TEST(ArtifactsTest, EmptyBundle) {
  const artifact_bundle parsed = parse_bundle("");
  EXPECT_TRUE(parsed.reports.empty());
  EXPECT_TRUE(parsed.traces.empty());
}

TEST(ArtifactsTest, MalformedLinesRejected) {
  EXPECT_THROW(parse_report("R|notanumber|0|premium|1|1|1|0|0|0"),
               invalid_argument_error);
  EXPECT_THROW(parse_report("R|1|0|gold|1|1|1|0|0|0"),
               invalid_argument_error);
  EXPECT_THROW(parse_report("X|1|0"), invalid_argument_error);
  EXPECT_THROW(parse_traceroute("T|1.2.3.4|5.6.7.8|0|1"),
               invalid_argument_error);
  EXPECT_THROW(parse_traceroute("T|1.2.3.4|5.6.7.8|0|1|1:bad"),
               invalid_argument_error);
  EXPECT_THROW(parse_bundle("R|1|0|premium|1|1|1|0|0|0\nGARBAGE\n"),
               invalid_argument_error);
}

TEST(ArtifactsTest, BundleErrorReportsLineNumber) {
  try {
    parse_bundle("R|1|0|premium|1|1|1|0|0|0\nZ|bad\n");
    FAIL() << "expected throw";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace clasp
// Appended: binary (warts-lite) codec tests.
namespace clasp {
namespace {

artifact_bundle sample_bundle() {
  artifact_bundle b;
  speed_test_report r;
  r.server_id = 421;
  r.at = hour_stamp::from_civil({2020, 7, 14}, 19);
  r.tier = service_tier::standard;
  r.download = mbps{487.25};
  r.upload = mbps{93.118};
  r.latency = millis{42.75};
  r.download_loss = 0.0123;
  r.upload_loss = 0.0004;
  r.ground_truth_episode = true;
  b.reports.push_back(r);
  r.at = r.at + 1;
  r.tier = service_tier::premium;
  r.download = mbps{12.5};
  r.ground_truth_episode = false;
  b.reports.push_back(r);

  traceroute_result t;
  t.src = ipv4_addr::parse("35.4.0.17");
  t.dst = ipv4_addr::parse("16.22.8.3");
  t.at = hour_stamp::from_civil({2020, 7, 14}, 19);
  t.reached = true;
  t.hops.push_back({1, ipv4_addr::parse("35.0.0.14"), millis{0.4}});
  t.hops.push_back({2, std::nullopt, millis{0.0}});
  t.hops.push_back({3, ipv4_addr::parse("72.14.0.3"), millis{12.5}});
  b.traces.push_back(t);
  return b;
}

TEST(WartsLiteTest, RoundTripsAtMilliPrecision) {
  const artifact_bundle original = sample_bundle();
  const auto bytes = serialize_bundle_binary(original);
  const artifact_bundle parsed = parse_bundle_binary(bytes);
  ASSERT_EQ(parsed.reports.size(), 2u);
  ASSERT_EQ(parsed.traces.size(), 1u);
  // Fixed-point codec: values agree to 1e-3 (1e-6 for losses).
  EXPECT_NEAR(parsed.reports[0].download.value, 487.25, 1e-3);
  EXPECT_NEAR(parsed.reports[0].latency.value, 42.75, 1e-3);
  EXPECT_NEAR(parsed.reports[0].download_loss, 0.0123, 1e-6);
  EXPECT_EQ(parsed.reports[0].at, original.reports[0].at);
  EXPECT_EQ(parsed.reports[1].tier, service_tier::premium);
  EXPECT_TRUE(parsed.reports[0].ground_truth_episode);
  EXPECT_FALSE(parsed.reports[1].ground_truth_episode);
  ASSERT_EQ(parsed.traces[0].hops.size(), 3u);
  EXPECT_EQ(parsed.traces[0].hops[0].address, original.traces[0].hops[0].address);
  EXPECT_FALSE(parsed.traces[0].hops[1].address.has_value());
  EXPECT_NEAR(parsed.traces[0].hops[2].rtt.value, 12.5, 1e-3);
}

TEST(WartsLiteTest, BinaryBeatsTextOnSize) {
  artifact_bundle big;
  rng r(3);
  hour_stamp t = hour_stamp::from_civil({2020, 6, 1}, 0);
  for (int i = 0; i < 200; ++i) {
    speed_test_report rep;
    rep.server_id = static_cast<std::size_t>(r.uniform_int(0, 2000));
    rep.at = t = t + 1;
    rep.download = mbps{r.uniform(10.0, 900.0)};
    rep.upload = mbps{r.uniform(10.0, 100.0)};
    rep.latency = millis{r.uniform(5.0, 200.0)};
    rep.download_loss = r.uniform(0.0, 0.3);
    rep.upload_loss = r.uniform(0.0, 0.05);
    big.reports.push_back(rep);
  }
  const auto bytes = serialize_bundle_binary(big);
  const std::string text = serialize_bundle(big);
  EXPECT_LT(bytes.size() * 2, text.size());
  const artifact_bundle parsed = parse_bundle_binary(bytes);
  EXPECT_EQ(parsed.reports.size(), big.reports.size());
}

TEST(WartsLiteTest, EmptyBundle) {
  const auto bytes = serialize_bundle_binary({});
  const artifact_bundle parsed = parse_bundle_binary(bytes);
  EXPECT_TRUE(parsed.reports.empty());
  EXPECT_TRUE(parsed.traces.empty());
}

TEST(WartsLiteTest, CorruptInputRejected) {
  const artifact_bundle original = sample_bundle();
  auto bytes = serialize_bundle_binary(original);
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(parse_bundle_binary(bad_magic), invalid_argument_error);
  // Truncation at every prefix length must throw, never crash.
  for (std::size_t cut = 4; cut < bytes.size(); cut += 7) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + cut);
    EXPECT_THROW(parse_bundle_binary(truncated), invalid_argument_error)
        << "cut at " << cut;
  }
  // Trailing garbage.
  auto trailing = bytes;
  trailing.push_back(0x42);
  EXPECT_THROW(parse_bundle_binary(trailing), invalid_argument_error);
}

TEST(WartsLiteTest, ImplausibleCountsRejected) {
  std::vector<std::uint8_t> bytes{'C', 'L', 'W', '1'};
  // Claim 2^40 reports.
  for (const std::uint8_t b : {0x80, 0x80, 0x80, 0x80, 0x80, 0x40}) {
    bytes.push_back(b);
  }
  bytes.push_back(0);
  EXPECT_THROW(parse_bundle_binary(bytes), invalid_argument_error);
}

}  // namespace
}  // namespace clasp

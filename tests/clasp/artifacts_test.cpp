#include "clasp/artifacts.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {
namespace {

speed_test_report sample_report() {
  speed_test_report r;
  r.server_id = 421;
  r.at = hour_stamp::from_civil({2020, 7, 14}, 19);
  r.tier = service_tier::standard;
  r.download = mbps{487.25};
  r.upload = mbps{93.118};
  r.latency = millis{42.75};
  r.download_loss = 0.0123;
  r.upload_loss = 0.0004;
  r.ground_truth_episode = true;
  return r;
}

traceroute_result sample_trace() {
  traceroute_result t;
  t.src = ipv4_addr::parse("35.4.0.17");
  t.dst = ipv4_addr::parse("16.22.8.3");
  t.at = hour_stamp::from_civil({2020, 7, 14}, 19);
  t.reached = true;
  t.hops.push_back({1, ipv4_addr::parse("35.0.0.14"), millis{0.4}});
  t.hops.push_back({2, std::nullopt, millis{0.0}});  // "*"
  t.hops.push_back({3, ipv4_addr::parse("72.14.0.3"), millis{12.5}});
  t.hops.push_back({4, ipv4_addr::parse("16.22.8.3"), millis{31.125}});
  return t;
}

TEST(ArtifactsTest, ReportRoundTrip) {
  const speed_test_report original = sample_report();
  const speed_test_report parsed = parse_report(serialize_report(original));
  EXPECT_EQ(parsed.server_id, original.server_id);
  EXPECT_EQ(parsed.at, original.at);
  EXPECT_EQ(parsed.tier, original.tier);
  EXPECT_DOUBLE_EQ(parsed.download.value, original.download.value);
  EXPECT_DOUBLE_EQ(parsed.upload.value, original.upload.value);
  EXPECT_DOUBLE_EQ(parsed.latency.value, original.latency.value);
  EXPECT_DOUBLE_EQ(parsed.download_loss, original.download_loss);
  EXPECT_DOUBLE_EQ(parsed.upload_loss, original.upload_loss);
  EXPECT_EQ(parsed.ground_truth_episode, original.ground_truth_episode);
}

TEST(ArtifactsTest, ReportRoundTripIsExactForRandomValues) {
  rng r(7);
  for (int i = 0; i < 100; ++i) {
    speed_test_report original = sample_report();
    original.download = mbps{r.uniform(0.01, 1000.0)};
    original.latency = millis{r.uniform(1.0, 400.0)};
    original.download_loss = r.uniform(0.0, 0.9);
    original.at = hour_stamp{r.uniform_int(0, 100000)};
    const speed_test_report parsed =
        parse_report(serialize_report(original));
    EXPECT_DOUBLE_EQ(parsed.download.value, original.download.value);
    EXPECT_DOUBLE_EQ(parsed.latency.value, original.latency.value);
    EXPECT_DOUBLE_EQ(parsed.download_loss, original.download_loss);
    EXPECT_EQ(parsed.at, original.at);
  }
}

TEST(ArtifactsTest, TracerouteRoundTrip) {
  const traceroute_result original = sample_trace();
  const traceroute_result parsed =
      parse_traceroute(serialize_traceroute(original));
  EXPECT_EQ(parsed.src, original.src);
  EXPECT_EQ(parsed.dst, original.dst);
  EXPECT_EQ(parsed.at, original.at);
  EXPECT_EQ(parsed.reached, original.reached);
  ASSERT_EQ(parsed.hops.size(), original.hops.size());
  for (std::size_t i = 0; i < parsed.hops.size(); ++i) {
    EXPECT_EQ(parsed.hops[i].ttl, original.hops[i].ttl);
    EXPECT_EQ(parsed.hops[i].address, original.hops[i].address);
    EXPECT_DOUBLE_EQ(parsed.hops[i].rtt.value, original.hops[i].rtt.value);
  }
}

TEST(ArtifactsTest, BundleRoundTrip) {
  artifact_bundle bundle;
  bundle.reports.push_back(sample_report());
  bundle.reports.push_back(sample_report());
  bundle.traces.push_back(sample_trace());
  const artifact_bundle parsed = parse_bundle(serialize_bundle(bundle));
  EXPECT_EQ(parsed.reports.size(), 2u);
  EXPECT_EQ(parsed.traces.size(), 1u);
  EXPECT_EQ(parsed.reports[0].server_id, 421u);
}

TEST(ArtifactsTest, EmptyBundle) {
  const artifact_bundle parsed = parse_bundle("");
  EXPECT_TRUE(parsed.reports.empty());
  EXPECT_TRUE(parsed.traces.empty());
}

TEST(ArtifactsTest, MalformedLinesRejected) {
  EXPECT_THROW(parse_report("R|notanumber|0|premium|1|1|1|0|0|0"),
               invalid_argument_error);
  EXPECT_THROW(parse_report("R|1|0|gold|1|1|1|0|0|0"),
               invalid_argument_error);
  EXPECT_THROW(parse_report("X|1|0"), invalid_argument_error);
  EXPECT_THROW(parse_traceroute("T|1.2.3.4|5.6.7.8|0|1"),
               invalid_argument_error);
  EXPECT_THROW(parse_traceroute("T|1.2.3.4|5.6.7.8|0|1|1:bad"),
               invalid_argument_error);
  EXPECT_THROW(parse_bundle("R|1|0|premium|1|1|1|0|0|0\nGARBAGE\n"),
               invalid_argument_error);
}

TEST(ArtifactsTest, BundleErrorReportsLineNumber) {
  try {
    parse_bundle("R|1|0|premium|1|1|1|0|0|0\nZ|bad\n");
    FAIL() << "expected throw";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace clasp
// Appended: binary (warts-lite) codec tests.
namespace clasp {
namespace {

artifact_bundle sample_bundle() {
  artifact_bundle b;
  speed_test_report r;
  r.server_id = 421;
  r.at = hour_stamp::from_civil({2020, 7, 14}, 19);
  r.tier = service_tier::standard;
  r.download = mbps{487.25};
  r.upload = mbps{93.118};
  r.latency = millis{42.75};
  r.download_loss = 0.0123;
  r.upload_loss = 0.0004;
  r.ground_truth_episode = true;
  b.reports.push_back(r);
  r.at = r.at + 1;
  r.tier = service_tier::premium;
  r.download = mbps{12.5};
  r.ground_truth_episode = false;
  b.reports.push_back(r);

  traceroute_result t;
  t.src = ipv4_addr::parse("35.4.0.17");
  t.dst = ipv4_addr::parse("16.22.8.3");
  t.at = hour_stamp::from_civil({2020, 7, 14}, 19);
  t.reached = true;
  t.hops.push_back({1, ipv4_addr::parse("35.0.0.14"), millis{0.4}});
  t.hops.push_back({2, std::nullopt, millis{0.0}});
  t.hops.push_back({3, ipv4_addr::parse("72.14.0.3"), millis{12.5}});
  b.traces.push_back(t);
  return b;
}

TEST(WartsLiteTest, RoundTripsAtMilliPrecision) {
  const artifact_bundle original = sample_bundle();
  const auto bytes = serialize_bundle_binary(original);
  const artifact_bundle parsed = parse_bundle_binary(bytes);
  ASSERT_EQ(parsed.reports.size(), 2u);
  ASSERT_EQ(parsed.traces.size(), 1u);
  // Fixed-point codec: values agree to 1e-3 (1e-6 for losses).
  EXPECT_NEAR(parsed.reports[0].download.value, 487.25, 1e-3);
  EXPECT_NEAR(parsed.reports[0].latency.value, 42.75, 1e-3);
  EXPECT_NEAR(parsed.reports[0].download_loss, 0.0123, 1e-6);
  EXPECT_EQ(parsed.reports[0].at, original.reports[0].at);
  EXPECT_EQ(parsed.reports[1].tier, service_tier::premium);
  EXPECT_TRUE(parsed.reports[0].ground_truth_episode);
  EXPECT_FALSE(parsed.reports[1].ground_truth_episode);
  ASSERT_EQ(parsed.traces[0].hops.size(), 3u);
  EXPECT_EQ(parsed.traces[0].hops[0].address, original.traces[0].hops[0].address);
  EXPECT_FALSE(parsed.traces[0].hops[1].address.has_value());
  EXPECT_NEAR(parsed.traces[0].hops[2].rtt.value, 12.5, 1e-3);
}

TEST(WartsLiteTest, BinaryBeatsTextOnSize) {
  artifact_bundle big;
  rng r(3);
  hour_stamp t = hour_stamp::from_civil({2020, 6, 1}, 0);
  for (int i = 0; i < 200; ++i) {
    speed_test_report rep;
    rep.server_id = static_cast<std::size_t>(r.uniform_int(0, 2000));
    rep.at = t = t + 1;
    rep.download = mbps{r.uniform(10.0, 900.0)};
    rep.upload = mbps{r.uniform(10.0, 100.0)};
    rep.latency = millis{r.uniform(5.0, 200.0)};
    rep.download_loss = r.uniform(0.0, 0.3);
    rep.upload_loss = r.uniform(0.0, 0.05);
    big.reports.push_back(rep);
  }
  const auto bytes = serialize_bundle_binary(big);
  const std::string text = serialize_bundle(big);
  EXPECT_LT(bytes.size() * 2, text.size());
  const artifact_bundle parsed = parse_bundle_binary(bytes);
  EXPECT_EQ(parsed.reports.size(), big.reports.size());
}

TEST(WartsLiteTest, EmptyBundle) {
  const auto bytes = serialize_bundle_binary({});
  const artifact_bundle parsed = parse_bundle_binary(bytes);
  EXPECT_TRUE(parsed.reports.empty());
  EXPECT_TRUE(parsed.traces.empty());
}

TEST(WartsLiteTest, CorruptInputRejected) {
  const artifact_bundle original = sample_bundle();
  auto bytes = serialize_bundle_binary(original);
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(parse_bundle_binary(bad_magic), invalid_argument_error);
  // Truncation at every prefix length must throw, never crash.
  for (std::size_t cut = 4; cut < bytes.size(); cut += 7) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + cut);
    EXPECT_THROW(parse_bundle_binary(truncated), invalid_argument_error)
        << "cut at " << cut;
  }
  // Trailing garbage.
  auto trailing = bytes;
  trailing.push_back(0x42);
  EXPECT_THROW(parse_bundle_binary(trailing), invalid_argument_error);
}

// --- fuzz-ish round-trips ---------------------------------------------------
//
// Random bundles, drawn on the codec's quantization grid (millis /
// micros), must survive serialize -> parse -> serialize byte-identically
// in both the text and binary codecs. Covers empty bundles, empty hop
// lists, unresponsive hops, negative hour stamps and out-of-order times.

speed_test_report random_report(rng& r) {
  speed_test_report rep;
  rep.server_id = static_cast<std::size_t>(r.uniform_int(0, 1 << 20));
  // Negative stamps exercise the zigzag delta path.
  rep.at = hour_stamp{r.uniform_int(-5000, 500000)};
  rep.tier = r.bernoulli(0.5) ? service_tier::premium : service_tier::standard;
  rep.download = mbps{static_cast<double>(r.uniform_int(0, 2'000'000)) / 1e3};
  rep.upload = mbps{static_cast<double>(r.uniform_int(0, 1'000'000)) / 1e3};
  rep.latency = millis{static_cast<double>(r.uniform_int(0, 400'000)) / 1e3};
  rep.download_loss = static_cast<double>(r.uniform_int(0, 1'000'000)) / 1e6;
  rep.upload_loss = static_cast<double>(r.uniform_int(0, 1'000'000)) / 1e6;
  rep.ground_truth_episode = r.bernoulli(0.2);
  return rep;
}

traceroute_result random_trace(rng& r) {
  traceroute_result t;
  t.src = ipv4_addr{static_cast<std::uint32_t>(r.uniform_int(0, 0xFFFFFFFF))};
  t.dst = ipv4_addr{static_cast<std::uint32_t>(r.uniform_int(0, 0xFFFFFFFF))};
  t.at = hour_stamp{r.uniform_int(-5000, 500000)};
  t.reached = r.bernoulli(0.7);
  const std::int64_t hops = r.uniform_int(0, 40);
  for (std::int64_t h = 0; h < hops; ++h) {
    traceroute_hop hop;
    hop.ttl = static_cast<unsigned>(h + 1);
    if (r.bernoulli(0.85)) {
      hop.address =
          ipv4_addr{static_cast<std::uint32_t>(r.uniform_int(0, 0xFFFFFFFF))};
    }
    hop.rtt = millis{static_cast<double>(r.uniform_int(0, 300'000)) / 1e3};
    t.hops.push_back(hop);
  }
  return t;
}

artifact_bundle random_bundle(rng& r) {
  artifact_bundle b;
  const std::int64_t n_reports = r.uniform_int(0, 20);
  const std::int64_t n_traces = r.uniform_int(0, 10);
  for (std::int64_t i = 0; i < n_reports; ++i) {
    b.reports.push_back(random_report(r));
  }
  for (std::int64_t i = 0; i < n_traces; ++i) {
    b.traces.push_back(random_trace(r));
  }
  return b;
}

TEST(WartsLiteTest, FuzzRoundTripIsByteIdentical) {
  rng r(20210815);
  for (int iter = 0; iter < 200; ++iter) {
    const artifact_bundle original = random_bundle(r);
    // Binary: bytes -> bundle -> bytes must be the identity.
    const std::vector<std::uint8_t> bytes = serialize_bundle_binary(original);
    const artifact_bundle decoded = parse_bundle_binary(bytes);
    ASSERT_EQ(decoded.reports.size(), original.reports.size());
    ASSERT_EQ(decoded.traces.size(), original.traces.size());
    EXPECT_EQ(serialize_bundle_binary(decoded), bytes);
    // Text: the same bundle through the line codec.
    const std::string text = serialize_bundle(original);
    const artifact_bundle reparsed = parse_bundle(text);
    EXPECT_EQ(serialize_bundle(reparsed), text);
    // And the two codecs agree with each other.
    EXPECT_EQ(serialize_bundle_binary(reparsed), bytes);
  }
}

TEST(WartsLiteTest, FuzzFieldEqualityOnTheQuantizationGrid) {
  rng r(99);
  for (int iter = 0; iter < 50; ++iter) {
    const artifact_bundle original = random_bundle(r);
    const artifact_bundle decoded =
        parse_bundle_binary(serialize_bundle_binary(original));
    for (std::size_t i = 0; i < original.reports.size(); ++i) {
      const speed_test_report& a = original.reports[i];
      const speed_test_report& b = decoded.reports[i];
      EXPECT_EQ(a.server_id, b.server_id);
      EXPECT_EQ(a.at, b.at);
      EXPECT_EQ(a.tier, b.tier);
      EXPECT_EQ(a.download.value, b.download.value);
      EXPECT_EQ(a.upload.value, b.upload.value);
      EXPECT_EQ(a.latency.value, b.latency.value);
      EXPECT_EQ(a.download_loss, b.download_loss);
      EXPECT_EQ(a.upload_loss, b.upload_loss);
      EXPECT_EQ(a.ground_truth_episode, b.ground_truth_episode);
    }
    for (std::size_t i = 0; i < original.traces.size(); ++i) {
      const traceroute_result& a = original.traces[i];
      const traceroute_result& b = decoded.traces[i];
      EXPECT_EQ(a.src.value(), b.src.value());
      EXPECT_EQ(a.dst.value(), b.dst.value());
      EXPECT_EQ(a.at, b.at);
      EXPECT_EQ(a.reached, b.reached);
      ASSERT_EQ(a.hops.size(), b.hops.size());
      for (std::size_t h = 0; h < a.hops.size(); ++h) {
        EXPECT_EQ(a.hops[h].ttl, b.hops[h].ttl);
        EXPECT_EQ(a.hops[h].address.has_value(), b.hops[h].address.has_value());
        if (a.hops[h].address) {
          EXPECT_EQ(a.hops[h].address->value(), b.hops[h].address->value());
        }
        EXPECT_EQ(a.hops[h].rtt.value, b.hops[h].rtt.value);
      }
    }
  }
}

TEST(WartsLiteTest, EmptyBundleRoundTripsInBothCodecs) {
  const artifact_bundle empty;
  const std::vector<std::uint8_t> bytes = serialize_bundle_binary(empty);
  const artifact_bundle decoded = parse_bundle_binary(bytes);
  EXPECT_TRUE(decoded.reports.empty());
  EXPECT_TRUE(decoded.traces.empty());
  EXPECT_EQ(serialize_bundle_binary(decoded), bytes);
  EXPECT_TRUE(parse_bundle(serialize_bundle(empty)).reports.empty());
}

TEST(WartsLiteTest, OversizedHopListRejectedSymmetrically) {
  // The parser caps hop counts at 255; the serializer must refuse the
  // same bundles rather than emit bytes that can never be parsed back.
  traceroute_result t = sample_trace();
  t.hops.clear();
  for (unsigned ttl = 1; ttl <= 256; ++ttl) {
    t.hops.push_back({ttl, std::nullopt, millis{1.0}});
  }
  artifact_bundle bundle;
  bundle.traces.push_back(t);
  EXPECT_THROW(serialize_bundle_binary(bundle), invalid_argument_error);
  // One fewer hop is within the contract on both sides.
  bundle.traces[0].hops.pop_back();
  const artifact_bundle decoded =
      parse_bundle_binary(serialize_bundle_binary(bundle));
  ASSERT_EQ(decoded.traces.size(), 1u);
  EXPECT_EQ(decoded.traces[0].hops.size(), 255u);
}

TEST(WartsLiteTest, ImplausibleCountsRejected) {
  std::vector<std::uint8_t> bytes{'C', 'L', 'W', '1'};
  // Claim 2^40 reports.
  for (const std::uint8_t b : {0x80, 0x80, 0x80, 0x80, 0x80, 0x40}) {
    bytes.push_back(b);
  }
  bytes.push_back(0);
  EXPECT_THROW(parse_bundle_binary(bytes), invalid_argument_error);
}

}  // namespace
}  // namespace clasp

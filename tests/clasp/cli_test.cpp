#include "clasp/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace clasp {
namespace {

cli_parse_result parse(std::vector<const char*> argv, cli_options& opts) {
  argv.insert(argv.begin(), "clasp_cli");
  return parse_cli_args(static_cast<int>(argv.size()), argv.data(), opts);
}

TEST(CliTest, ParsesRunWithCommonFlags) {
  cli_options opts;
  const auto r = parse({"run", "--region", "us-east1", "--days", "3",
                        "--tier", "standard", "--workers", "4",
                        "--seed", "99"},
                       opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(opts.command, "run");
  EXPECT_EQ(opts.region, "us-east1");
  EXPECT_EQ(opts.days, 3);
  EXPECT_EQ(opts.tier, "standard");
  EXPECT_EQ(opts.workers, 4);
  EXPECT_EQ(opts.seed, 99u);
}

TEST(CliTest, ParsesObservabilityFlags) {
  cli_options opts;
  const auto r = parse(
      {"run", "--metrics-out", "/tmp/m.prom", "--heartbeat-every", "6"},
      opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(opts.metrics_out, "/tmp/m.prom");
  EXPECT_EQ(opts.heartbeat_every, 6);
}

TEST(CliTest, ParsesFleetScaleAndBatchEval) {
  cli_options opts;
  const auto r = parse(
      {"run", "--fleet-scale", "10", "--batch-eval", "off"}, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(opts.fleet_scale, 10);
  EXPECT_EQ(opts.batch_eval, 0);
  // Both default to "use the config's value".
  cli_options defaults;
  ASSERT_TRUE(parse({"run"}, defaults).ok);
  EXPECT_EQ(defaults.fleet_scale, -1);
  EXPECT_EQ(defaults.batch_eval, -1);
}

TEST(CliTest, RejectsZeroFleetScaleWithGuidance) {
  cli_options opts;
  const auto r = parse({"run", "--fleet-scale", "0"}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--fleet-scale must be an integer >= 1"),
            std::string::npos);
  // The message explains what the knob is and the paper-scale value.
  EXPECT_NE(r.error.find("--fleet-scale 1"), std::string::npos);
  EXPECT_FALSE(parse({"run", "--fleet-scale", "-4"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--fleet-scale", "ten"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--batch-eval", "maybe"}, opts).ok);
}

TEST(CliTest, FleetScaleTypoGetsSuggestion) {
  cli_options opts;
  const auto r = parse({"run", "--fleet-scal", "10"}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("did you mean --fleet-scale?"), std::string::npos);
}

TEST(CliTest, ParsesSwarmPreset) {
  cli_options opts;
  const auto r = parse({"select", "--swarm", "low"}, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(opts.swarm, "low");
  // Default: empty = use the config's swarm settings.
  cli_options defaults;
  ASSERT_TRUE(parse({"select"}, defaults).ok);
  EXPECT_TRUE(defaults.swarm.empty());

  const auto bad = parse({"select", "--swarm", "extreme"}, opts);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("--swarm must be off, low or high"),
            std::string::npos);

  cli_options typo;
  const auto suggest = parse({"select", "--swrm", "low"}, typo);
  EXPECT_FALSE(suggest.ok);
  EXPECT_NE(suggest.error.find("did you mean --swarm?"), std::string::npos);
}

TEST(CliTest, RejectsUnknownCommand) {
  cli_options opts;
  const auto r = parse({"explode"}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown command"), std::string::npos);
}

TEST(CliTest, RejectsUnknownFlagWithSuggestion) {
  cli_options opts;
  const auto r = parse({"run", "--metrics-ot", "f"}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown flag --metrics-ot"), std::string::npos);
  EXPECT_NE(r.error.find("did you mean --metrics-out?"), std::string::npos);

  cli_options opts2;
  const auto r2 = parse({"run", "--wrokers", "4"}, opts2);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("did you mean --workers?"), std::string::npos);
}

TEST(CliTest, UnknownFlagFarFromAnythingGetsNoSuggestion) {
  cli_options opts;
  const auto r = parse({"run", "--zzzzqqqq", "1"}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown flag --zzzzqqqq"), std::string::npos);
  EXPECT_EQ(r.error.find("did you mean"), std::string::npos);
}

TEST(CliTest, MissingValueNamesTheFlag) {
  cli_options opts;
  const auto r = parse({"run", "--region"}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "missing value for --region");
}

TEST(CliTest, ValidatesValueRanges) {
  cli_options opts;
  EXPECT_FALSE(parse({"run", "--days", "0"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--days", "154"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--days", "seven"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--tier", "gold"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--workers", "-1"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--link-cache", "maybe"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--faults", "medium"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--swarm", "medium"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--checkpoint-every", "0"}, opts).ok);
  EXPECT_FALSE(parse({"run", "--heartbeat-every", "0"}, opts).ok);
}

TEST(CliTest, ResumeRequiresCheckpointDir) {
  cli_options opts;
  const auto r = parse({"run", "--resume"}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--resume requires --checkpoint-dir"),
            std::string::npos);

  cli_options opts2;
  const auto r2 =
      parse({"run", "--checkpoint-dir", "/tmp/ck", "--resume"}, opts2);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_TRUE(opts2.resume);
  EXPECT_EQ(opts2.checkpoint_dir, "/tmp/ck");
}

TEST(CliTest, PositionalGarbageRejected) {
  cli_options opts;
  const auto r = parse({"run", "us-west1"}, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("expected a --flag"), std::string::npos);
}

}  // namespace
}  // namespace clasp

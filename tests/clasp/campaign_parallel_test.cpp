// Parallel replay determinism: the same campaign run with 1, 2 and 8
// workers — and with the hour-epoch link-condition cache on or off —
// must produce point-for-point identical TSDB contents, billing totals,
// someta records and bucket artifacts. Every VM-hour draws from its own
// counter-based RNG stream and staged results merge in VM-slot order, so
// the worker count can only change wall-clock, never values; the cache
// stores exactly what the load model computes, so it too is invisible in
// the output.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_support.hpp"

// --- counting allocator ---------------------------------------------------
// Binary-wide replacement of the global allocation functions so the
// steady-state staging test below can assert the worker path performs
// zero heap allocations. Counting is armed only around the measured
// section; outside it the replacement is a plain malloc shim.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) noexcept {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size != 0 ? size : 1);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
// --------------------------------------------------------------------------

namespace clasp {
namespace {

using ::clasp::testing::small_internet_config;
using ::clasp::testing::small_server_config;

platform_config tiny_config(unsigned workers, bool link_cache = true,
                            bool batch_eval = true) {
  platform_config cfg;
  cfg.internet = small_internet_config();
  cfg.internet.seed = 777;
  // Shrink the substrate: this test builds several platforms in sequence.
  cfg.internet.regional_isp_count = 120;
  cfg.internet.business_count = 150;
  cfg.internet.hosting_count = 80;
  cfg.internet.education_count = 30;
  cfg.internet.vantage_point_count = 120;
  cfg.servers = small_server_config();
  cfg.servers.us_server_target = 120;
  cfg.servers.global_server_target = 600;
  cfg.topology_budgets = {{"us-west1", 40}};
  cfg.campaign_workers = workers;
  cfg.campaign_link_cache = link_cache;
  cfg.campaign_batch_eval = batch_eval;
  return cfg;
}

hour_range two_days() {
  return {hour_stamp::from_civil({2020, 5, 1}, 0),
          hour_stamp::from_civil({2020, 5, 3}, 0)};
}

const char* kMetrics[] = {"download_mbps", "upload_mbps",   "latency_ms",
                          "download_loss", "upload_loss",   "gt_episode"};

// Everything a campaign produces, flattened for exact comparison.
struct campaign_snapshot {
  struct series_dump {
    std::string metric;
    tag_set tags;
    std::vector<ts_point> points;
  };
  std::vector<series_dump> series;
  cost_report costs;
  double bucket_mb{0.0};
  std::size_t bucket_objects{0};
  std::size_t tests_run{0};
  std::size_t tests_missed{0};
  unsigned effective_workers{0};
  std::vector<std::vector<vm_metadata_sample>> someta;  // per VM slot
  std::string csv;  // export_csv of all six metrics, concatenated
};

campaign_snapshot snapshot_of(clasp_platform& p, campaign_runner& c) {
  campaign_snapshot snap;
  for (const char* metric : kMetrics) {
    for (const ts_series* s : p.store().query(metric)) {
      snap.series.push_back({s->metric(), s->tags(), s->points()});
    }
  }
  snap.costs = p.cloud().costs();
  const storage_bucket& bucket = p.cloud().bucket(c.config().region);
  snap.bucket_mb = bucket.total_megabytes();
  snap.bucket_objects = bucket.object_count();
  snap.tests_run = c.tests_run();
  snap.tests_missed = c.tests_missed();
  snap.effective_workers = c.workers();
  for (std::size_t v = 0; v < c.vm_count(); ++v) {
    snap.someta.push_back(c.metadata(v).samples());
  }
  std::ostringstream csv;
  for (const char* metric : kMetrics) p.store().export_csv(csv, metric);
  snap.csv = csv.str();
  return snap;
}

// Each (workers, link_cache, batch_eval) platform is built once and its
// snapshot shared across tests (platform construction dominates this
// suite's runtime).
const campaign_snapshot& run_once(unsigned workers, bool link_cache = true,
                                  bool batch_eval = true) {
  static std::map<std::tuple<unsigned, bool, bool>, campaign_snapshot>* memo =
      new std::map<std::tuple<unsigned, bool, bool>, campaign_snapshot>();
  const auto key = std::make_tuple(workers, link_cache, batch_eval);
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;

  clasp_platform p(tiny_config(workers, link_cache, batch_eval));
  campaign_runner& c = p.start_topology_campaign("us-west1", two_days());
  // Exercise the outage path too: slot 0 down for four mid-window hours.
  c.inject_vm_outage(0, {two_days().begin_at + 20, two_days().begin_at + 24});
  c.run();
  return memo->emplace(key, snapshot_of(p, c)).first->second;
}

void expect_identical(const campaign_snapshot& a, const campaign_snapshot& b) {
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.tests_missed, b.tests_missed);

  // Billing totals, bit for bit.
  EXPECT_EQ(a.costs.vm_usd, b.costs.vm_usd);
  EXPECT_EQ(a.costs.egress_usd, b.costs.egress_usd);
  EXPECT_EQ(a.costs.storage_usd, b.costs.storage_usd);

  // Bucket artifacts.
  EXPECT_EQ(a.bucket_objects, b.bucket_objects);
  EXPECT_EQ(a.bucket_mb, b.bucket_mb);

  // TSDB contents, point for point, in identical series order.
  ASSERT_EQ(a.series.size(), b.series.size());
  ASSERT_FALSE(a.series.empty());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].metric, b.series[i].metric);
    EXPECT_EQ(a.series[i].tags, b.series[i].tags);
    ASSERT_EQ(a.series[i].points.size(), b.series[i].points.size());
    for (std::size_t j = 0; j < a.series[i].points.size(); ++j) {
      EXPECT_EQ(a.series[i].points[j].at, b.series[i].points[j].at);
      EXPECT_EQ(a.series[i].points[j].value, b.series[i].points[j].value);
    }
  }

  // someta records per VM slot.
  ASSERT_EQ(a.someta.size(), b.someta.size());
  for (std::size_t v = 0; v < a.someta.size(); ++v) {
    ASSERT_EQ(a.someta[v].size(), b.someta[v].size());
    for (std::size_t j = 0; j < a.someta[v].size(); ++j) {
      EXPECT_EQ(a.someta[v][j].at, b.someta[v][j].at);
      EXPECT_EQ(a.someta[v][j].cpu_utilization, b.someta[v][j].cpu_utilization);
      EXPECT_EQ(a.someta[v][j].memory_gb, b.someta[v][j].memory_gb);
      EXPECT_EQ(a.someta[v][j].io_wait, b.someta[v][j].io_wait);
      EXPECT_EQ(a.someta[v][j].cpu_saturated, b.someta[v][j].cpu_saturated);
    }
  }

  // Exported CSV, byte for byte.
  EXPECT_EQ(a.csv, b.csv);
}

TEST(CampaignParallelTest, WorkerCountNeverChangesResults) {
  const campaign_snapshot& serial = run_once(1);
  EXPECT_EQ(serial.effective_workers, 1u);
  EXPECT_GT(serial.tests_run, 0u);
  EXPECT_GT(serial.tests_missed, 0u);

  const campaign_snapshot& two = run_once(2);
  EXPECT_EQ(two.effective_workers, 2u);
  expect_identical(serial, two);

  const campaign_snapshot& eight = run_once(8);
  EXPECT_EQ(eight.effective_workers, 8u);
  expect_identical(serial, eight);
}

TEST(CampaignParallelTest, LinkCacheNeverChangesResults) {
  // The full cache on/off x workers 1/2/8 matrix must agree byte for
  // byte (the cached runs come memoized from the test above when it ran
  // first; order doesn't matter).
  const campaign_snapshot& reference = run_once(1, /*link_cache=*/true);
  ASSERT_FALSE(reference.csv.empty());
  for (const unsigned workers : {1u, 2u, 8u}) {
    expect_identical(reference, run_once(workers, /*link_cache=*/true));
    expect_identical(reference, run_once(workers, /*link_cache=*/false));
  }
}

TEST(CampaignParallelTest, MetricsNeverChangeResults) {
  // Observability must be a pure observer: the same campaign with the
  // obs subsystem recording (counters, spans, heartbeat cadence) must be
  // byte-identical to the memoized metrics-off runs, for every worker
  // count. Runs fresh (not memoized) so the enabled flag is honored.
  const campaign_snapshot& reference = run_once(1);
  for (const unsigned workers : {1u, 2u, 8u}) {
    obs::metrics_registry::instance().reset_values();
    obs::trace_ring::instance().reset();
    obs::set_enabled(true);
    platform_config cfg = tiny_config(workers);
    cfg.obs_metrics = true;
    cfg.obs_heartbeat_every_hours = 7;  // exercise the heartbeat path too
    clasp_platform p(cfg);
    campaign_runner& c = p.start_topology_campaign("us-west1", two_days());
    c.inject_vm_outage(0,
                       {two_days().begin_at + 20, two_days().begin_at + 24});
    c.run();
    const campaign_snapshot snap = snapshot_of(p, c);
    obs::set_enabled(false);
    expect_identical(reference, snap);

    // The recorded totals must agree with the runner's own bookkeeping.
    const auto counters = obs::metrics_registry::instance().counters();
    EXPECT_EQ(counters.at(obs::family::kCampaignTests), snap.tests_run);
    EXPECT_EQ(counters.at(obs::family::kCampaignTestsMissed),
              snap.tests_missed);
    EXPECT_EQ(counters.at(obs::family::kCampaignHours), 48u);

    // The hour-epoch cache must be effective while being counted: after
    // the first hour warms it, virtually every link lookup hits.
    const std::uint64_t hits = counters.at(obs::family::kCacheHits);
    const std::uint64_t misses = counters.at(obs::family::kCacheMisses);
    ASSERT_GT(hits + misses, 0u);
    EXPECT_GT(static_cast<double>(hits) / static_cast<double>(hits + misses),
              0.9);
  }
}

TEST(CampaignParallelTest, BatchEvalNeverChangesResults) {
  // The legacy per-session path is kept: the full batch on/off x cache
  // on/off x workers 1/2/8 matrix must agree byte for byte.
  const campaign_snapshot& reference = run_once(1, /*link_cache=*/true,
                                                /*batch_eval=*/true);
  ASSERT_FALSE(reference.csv.empty());
  for (const unsigned workers : {1u, 2u, 8u}) {
    expect_identical(reference, run_once(workers, true, false));
    expect_identical(reference, run_once(workers, false, false));
    expect_identical(reference, run_once(workers, false, true));
  }
}

TEST(CampaignParallelTest, FaultsWithBatchEvalAgree) {
  // Retries are the risky path: a retried test in batch mode reuses the
  // hour's precomputed path metrics, while the legacy path re-evaluates
  // them per attempt. Both must produce the same bytes under the low
  // fault preset (which exercises retries, churn and VM preemption).
  campaign_snapshot snaps[2];
  for (int b = 0; b < 2; ++b) {
    platform_config cfg = tiny_config(1, /*link_cache=*/true,
                                      /*batch_eval=*/b == 1);
    cfg.campaign_faults = fault_config::preset("low");
    clasp_platform p(cfg);
    campaign_runner& c = p.start_topology_campaign("us-west1", two_days());
    c.run();
    snaps[b] = snapshot_of(p, c);
  }
  EXPECT_GT(snaps[0].tests_run, 0u);
  expect_identical(snaps[0], snaps[1]);
}

TEST(CampaignParallelTest, SteadyStateStagingIsAllocationFree) {
  // The per-VM-hour worker path (stage_vm_hour_into after warmup) must
  // not touch the heap: every buffer it needs — staging vectors, the
  // session-order scratch, the artifact object name, charge-sheet put
  // records — is preallocated or recycled. Guarded by the binary-wide
  // counting allocator above.
  clasp_platform p(tiny_config(1));
  campaign_runner& c = p.start_topology_campaign("us-west1", two_days());
  const hour_stamp begin = two_days().begin_at;
  // Warm up: full hours grow every reusable buffer to steady-state
  // capacity (and resolve the arena + condition cache slots).
  for (int h = 0; h < 6; ++h) c.run_hour(begin + h);

  const hour_stamp at = begin + 6;
  c.begin_hour(at);
  p.view().link_cache().prefill(at);
  c.evaluate_hour(at);
  // One staging pass warms this thread's scratch and the reused slot.
  campaign_runner::vm_hour_staging staged;
  for (std::size_t v = 0; v < c.vm_count(); ++v) {
    c.stage_vm_hour_into(v, at, staged);
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (std::size_t v = 0; v < c.vm_count(); ++v) {
    c.stage_vm_hour_into(v, at, staged);
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "stage_vm_hour_into allocated in steady state";
}

TEST(CampaignParallelTest, PlatformFanOutMatchesSerialRun) {
  // Driving a campaign through the platform's cross-campaign fan-out
  // must reproduce campaign_runner::run exactly — with the shared-cache
  // prefill path on and off.
  const campaign_snapshot& serial = run_once(1);

  for (const bool link_cache : {true, false}) {
    clasp_platform p(tiny_config(1, link_cache));
    campaign_runner& c = p.start_topology_campaign("us-west1", two_days());
    c.inject_vm_outage(0,
                       {two_days().begin_at + 20, two_days().begin_at + 24});
    p.run_campaigns({&c}, 4);
    expect_identical(serial, snapshot_of(p, c));
  }
}

}  // namespace
}  // namespace clasp

#include "clasp/differential.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

TEST(DifferentialTest, SelectionProducesServers) {
  auto& p = small_platform();
  const differential_selection_result& result =
      p.select_differential("europe-west1");
  EXPECT_GT(result.tuples_measured, 50u);
  EXPECT_FALSE(result.candidates.empty());
  EXPECT_FALSE(result.selected.empty());
  EXPECT_LE(result.selected.size(), p.config().differential.target_servers);
}

TEST(DifferentialTest, CandidatesRespectThresholds) {
  auto& p = small_platform();
  const auto& cfg = p.config().differential;
  const auto& result = p.select_differential("europe-west1");
  for (const diff_candidate& c : result.candidates) {
    const double delta = std::abs(c.delta_ms());
    switch (c.cls) {
      case latency_class::comparable:
        EXPECT_LE(delta, cfg.small_delta_ms + 1e-9);
        break;
      case latency_class::premium_lower:
        EXPECT_GE(c.delta_ms(), cfg.big_delta_ms - 1e-9);
        break;
      case latency_class::standard_lower:
        EXPECT_LE(c.delta_ms(), -(cfg.big_delta_ms - 1e-9));
        break;
    }
    EXPECT_GE(c.samples, cfg.min_measurements);
  }
}

TEST(DifferentialTest, SelectedServersMatchCandidateTuples) {
  auto& p = small_platform();
  const auto& result = p.select_differential("europe-west1");
  for (const auto& chosen : result.selected) {
    const speed_server& s = p.registry().server(chosen.server_id);
    bool matches_candidate = false;
    for (const diff_candidate& c : result.candidates) {
      if (c.city == s.city && c.network == s.network &&
          c.cls == chosen.cls) {
        matches_candidate = true;
        break;
      }
    }
    EXPECT_TRUE(matches_candidate) << s.name;
  }
}

TEST(DifferentialTest, NoDuplicateServers) {
  auto& p = small_platform();
  const auto& result = p.select_differential("europe-west1");
  std::vector<std::size_t> ids;
  for (const auto& chosen : result.selected) ids.push_back(chosen.server_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(DifferentialTest, MediansArePositive) {
  auto& p = small_platform();
  const auto& result = p.select_differential("europe-west1");
  for (const diff_candidate& c : result.candidates) {
    EXPECT_GT(c.median_premium_ms, 0.0);
    EXPECT_GT(c.median_standard_ms, 0.0);
  }
}

TEST(DifferentialTest, ClassNames) {
  EXPECT_STREQ(to_string(latency_class::premium_lower), "premium_lower");
  EXPECT_STREQ(to_string(latency_class::comparable), "comparable");
  EXPECT_STREQ(to_string(latency_class::standard_lower), "standard_lower");
}

TEST(DifferentialTest, CachedPerRegion) {
  auto& p = small_platform();
  const auto& a = p.select_differential("europe-west1");
  const auto& b = p.select_differential("europe-west1");
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace clasp

#include "clasp/platform.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

TEST(PlatformTest, SubstrateWired) {
  auto& p = small_platform();
  EXPECT_GT(p.net().topo->as_count(), 500u);
  EXPECT_GT(p.registry().size(), 1000u);
  EXPECT_EQ(&p.view().net(), &p.net());
  EXPECT_EQ(&p.planner().net(), &p.net());
}

TEST(PlatformTest, TimezoneOfServerMatchesGeo) {
  auto& p = small_platform();
  const speed_server& s = p.registry().server(0);
  EXPECT_EQ(p.timezone_of_server(0).hours_east_of_utc,
            p.net().geo->city(s.city).tz.hours_east_of_utc);
}

TEST(PlatformTest, DifferentialCampaignRequiresServers) {
  // A platform whose pre-test finds no servers must throw, not deploy an
  // empty campaign. Build a platform with no vantage points: selection
  // measures zero tuples.
  platform_config cfg;
  cfg.internet = ::clasp::testing::small_internet_config();
  cfg.internet.seed = 4242;
  cfg.internet.vantage_point_count = 0;
  cfg.servers = ::clasp::testing::small_server_config();
  // Named-AS VPs are always seeded, so aim the differential config at an
  // impossible sample count instead.
  cfg.differential.min_measurements = 1000000;
  clasp_platform p(cfg);
  EXPECT_THROW(p.start_differential_campaign("europe-west1"), state_error);
}

TEST(PlatformTest, DownloadSeriesFilterByTier) {
  auto& p = small_platform();
  // The shared fixture has run campaigns already (other suites); query a
  // campaign that exists for sure after selecting + running here.
  const hour_range day{hour_stamp::from_civil({2020, 9, 1}, 0),
                       hour_stamp::from_civil({2020, 9, 2}, 0)};
  campaign_runner& c = p.start_topology_campaign("us-west4", day);
  c.run();
  const auto all = p.download_series("topology", "us-west4");
  const auto premium =
      p.download_series("topology", "us-west4", "download_mbps", "premium");
  const auto standard =
      p.download_series("topology", "us-west4", "download_mbps", "standard");
  EXPECT_EQ(all.series.size(), premium.series.size());
  EXPECT_TRUE(standard.series.empty());
  EXPECT_EQ(all.series.size(), all.tz.size());
}

TEST(PlatformTest, SometaMetadataRecorded) {
  auto& p = small_platform();
  ::clasp::testing::ensure_east1_campaign(p);
  bool checked = false;
  for (const auto& runner : p.campaigns()) {
    if (runner->tests_run() == 0) continue;
    const someta_recorder& meta = runner->metadata(0);
    EXPECT_GT(meta.samples().size(), 0u);
    // The paper's finding: no CPU saturation on the chosen VM type.
    EXPECT_LT(meta.saturation_fraction(), 0.01);
    checked = true;
  }
  EXPECT_TRUE(checked);
}

TEST(PlatformTest, CsvExportProducesRows) {
  auto& p = small_platform();
  ::clasp::testing::ensure_east1_campaign(p);
  tag_filter filter;
  filter.required["campaign"] = "topology";
  std::ostringstream os;
  p.store().export_csv(os, "download_mbps", filter);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("hour,value"), std::string::npos);
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 10);
}

TEST(PlatformTest, InterconnectCongestionJoinsSelectionAndData) {
  auto& p = small_platform();
  // us-east1 has campaign data in the shared fixture (campaign_test runs
  // first in this binary); if not, run a short window.
  if (p.download_series("topology", "us-east1").series.empty()) {
    const hour_range window{hour_stamp::from_civil({2020, 5, 1}, 0),
                            hour_stamp::from_civil({2020, 5, 4}, 0)};
    p.start_topology_campaign("us-east1", window).run();
  }
  const auto reports = p.interconnect_congestion("us-east1");
  ASSERT_FALSE(reports.empty());
  const auto& selection = p.select_topology("us-east1");
  EXPECT_LE(reports.size(), selection.selected.size());
  for (const interconnect_report& r : reports) {
    EXPECT_NE(r.neighbor, cloud_asn());
    EXPECT_GT(r.summary.hours_measured, 0u);
    // The far side must be one the selection covered.
    bool found = false;
    for (const selected_server& s : selection.selected) {
      if (s.far_side == r.far_side) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(PlatformTest, UnknownRegionThrows) {
  auto& p = small_platform();
  EXPECT_THROW(p.select_topology("mars-north1"), not_found_error);
}

}  // namespace
}  // namespace clasp

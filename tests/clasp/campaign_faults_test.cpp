// Fault-injected replay: determinism, health accounting and detector
// robustness.
//
//  * faults-on output must be byte-identical across workers 1/2/8 and
//    with the link-condition cache on or off (the schedule and every
//    fault draw come from dedicated counter-based streams);
//  * enabling faults with all rates at zero must leave the measurement
//    output identical to faults-off (zero extra draws on the
//    measurement streams);
//  * campaign_health completeness must match the injected outage and
//    churn schedule exactly;
//  * strict_hour_budget surfaces budget_exceeded_error (catchable as
//    clasp::error) through the staging path and the worker pool;
//  * the V_H detector's precision/recall on planted ground truth at the
//    "low" fault rate must stay within 2 points of the fault-free run.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet_config;
using ::clasp::testing::small_server_config;

platform_config faulty_config(unsigned workers, bool link_cache,
                              const std::string& preset) {
  platform_config cfg;
  cfg.internet = small_internet_config();
  cfg.internet.seed = 777;
  cfg.internet.regional_isp_count = 120;
  cfg.internet.business_count = 150;
  cfg.internet.hosting_count = 80;
  cfg.internet.education_count = 30;
  cfg.internet.vantage_point_count = 120;
  cfg.servers = small_server_config();
  cfg.servers.us_server_target = 120;
  cfg.servers.global_server_target = 600;
  cfg.topology_budgets = {{"us-west1", 40}};
  cfg.campaign_workers = workers;
  cfg.campaign_link_cache = link_cache;
  cfg.campaign_faults = fault_config::preset(preset);
  // Raise the stress scenario's preemption rate so a short window
  // reliably exercises the preempt/redeploy path on this tiny fleet;
  // "low" keeps its true preset rates (the detector-robustness bound is
  // against the real preset).
  if (preset == "high") {
    cfg.campaign_faults.vm_preemption_rate = 0.02;
  }
  return cfg;
}

hour_range four_days() {
  return {hour_stamp::from_civil({2020, 5, 1}, 0),
          hour_stamp::from_civil({2020, 5, 5}, 0)};
}

const char* kMetrics[] = {"download_mbps", "upload_mbps",  "latency_ms",
                          "download_loss", "upload_loss",  "gt_episode",
                          "test_status"};

struct faulty_snapshot {
  std::string csv;  // export_csv of all seven metrics, concatenated
  cost_report costs;
  double bucket_mb{0.0};
  std::size_t bucket_objects{0};
  std::size_t tests_run{0};
  campaign_health health;
};

faulty_snapshot snapshot_of(clasp_platform& p, campaign_runner& c) {
  faulty_snapshot snap;
  std::ostringstream csv;
  for (const char* metric : kMetrics) p.store().export_csv(csv, metric);
  snap.csv = csv.str();
  snap.costs = p.cloud().costs();
  const storage_bucket& bucket = p.cloud().bucket(c.config().region);
  snap.bucket_mb = bucket.total_megabytes();
  snap.bucket_objects = bucket.object_count();
  snap.tests_run = c.tests_run();
  snap.health = c.health();
  return snap;
}

// One platform per (workers, link_cache, preset), memoized: platform
// construction dominates this suite's runtime.
const faulty_snapshot& run_once(unsigned workers, bool link_cache,
                                const std::string& preset) {
  using key_t = std::tuple<unsigned, bool, std::string>;
  static std::map<key_t, faulty_snapshot>* memo =
      new std::map<key_t, faulty_snapshot>();
  const key_t key{workers, link_cache, preset};
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;

  clasp_platform p(faulty_config(workers, link_cache, preset));
  campaign_runner& c = p.start_topology_campaign("us-west1", four_days());
  c.run();
  return memo->emplace(key, snapshot_of(p, c)).first->second;
}

void expect_identical(const faulty_snapshot& a, const faulty_snapshot& b) {
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.costs.vm_usd, b.costs.vm_usd);
  EXPECT_EQ(a.costs.egress_usd, b.costs.egress_usd);
  EXPECT_EQ(a.costs.storage_usd, b.costs.storage_usd);
  EXPECT_EQ(a.bucket_objects, b.bucket_objects);
  EXPECT_EQ(a.bucket_mb, b.bucket_mb);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.health.total_retries, b.health.total_retries);
  EXPECT_EQ(a.health.failed_tests, b.health.failed_tests);
  EXPECT_EQ(a.health.upload_failures, b.health.upload_failures);
  EXPECT_EQ(a.health.withdrawn_servers, b.health.withdrawn_servers);
  EXPECT_EQ(a.health.vm_redeploys, b.health.vm_redeploys);
  EXPECT_EQ(a.health.vm_downtime_hours, b.health.vm_downtime_hours);
  ASSERT_EQ(a.health.servers.size(), b.health.servers.size());
  for (std::size_t i = 0; i < a.health.servers.size(); ++i) {
    EXPECT_EQ(a.health.servers[i].completed, b.health.servers[i].completed);
    EXPECT_EQ(a.health.servers[i].failed, b.health.servers[i].failed);
    EXPECT_EQ(a.health.servers[i].retries, b.health.servers[i].retries);
  }
}

TEST(CampaignFaultsTest, FaultsOnIsByteIdenticalAcrossWorkersAndCache) {
  const faulty_snapshot& reference = run_once(1, true, "high");
  ASSERT_FALSE(reference.csv.empty());
  // High rates actually exercised something.
  EXPECT_GT(reference.health.total_retries, 0u);
  EXPECT_GT(reference.health.withdrawn_servers, 0u);
  for (const unsigned workers : {1u, 2u, 8u}) {
    expect_identical(reference, run_once(workers, true, "high"));
    expect_identical(reference, run_once(workers, false, "high"));
  }
}

TEST(CampaignFaultsTest, ZeroRatesMatchFaultsOffMetrics) {
  // Enabled-with-zero-rates draws nothing from the measurement streams,
  // so every metric matches the faults-off run; only the test_status
  // series is extra.
  clasp_platform off(faulty_config(1, true, "off"));
  campaign_runner& c_off = off.start_topology_campaign("us-west1", four_days());
  c_off.run();

  platform_config zero_cfg = faulty_config(1, true, "off");
  zero_cfg.campaign_faults.enabled = true;  // all rates stay 0
  clasp_platform zero(zero_cfg);
  campaign_runner& c_zero = zero.start_topology_campaign("us-west1", four_days());
  c_zero.run();

  for (const char* metric :
       {"download_mbps", "upload_mbps", "latency_ms", "download_loss",
        "upload_loss", "gt_episode"}) {
    std::ostringstream a, b;
    off.store().export_csv(a, metric);
    zero.store().export_csv(b, metric);
    EXPECT_EQ(a.str(), b.str()) << metric;
  }
  EXPECT_EQ(c_off.tests_run(), c_zero.tests_run());
  EXPECT_EQ(off.cloud().costs().total(), zero.cloud().costs().total());
  // Zero rates: the health report shows a perfectly complete campaign.
  EXPECT_EQ(c_zero.health().mean_completeness(), 1.0);
  // And faults-off opens no test_status series at all.
  EXPECT_TRUE(off.store().query("test_status").empty());
  EXPECT_FALSE(zero.store().query("test_status").empty());
}

TEST(CampaignFaultsTest, HealthMatchesInjectedOutageScheduleExactly) {
  // Hand-injected outages with zero fault rates: the health report must
  // reproduce the schedule hour for hour.
  platform_config cfg = faulty_config(1, true, "off");
  cfg.campaign_faults.enabled = true;
  clasp_platform p(cfg);
  campaign_runner& c = p.start_topology_campaign("us-west1", four_days());
  const hour_stamp t0 = four_days().begin_at;
  c.inject_vm_outage(0, {t0 + 10, t0 + 14});  // 4 hours
  c.inject_vm_outage(0, {t0 + 40, t0 + 41});  // 1 hour
  c.inject_vm_outage(1, {t0 + 20, t0 + 26});  // 6 hours
  c.run();

  const campaign_health health = c.health();
  EXPECT_EQ(health.window_hours, 96u);
  EXPECT_EQ(health.vm_downtime_hours, 11u);
  EXPECT_EQ(health.vm_redeploys, 3u);  // every window ends mid-campaign
  const std::size_t window_hours = 96;
  for (const auto& entry : health.servers) {
    EXPECT_EQ(entry.scheduled_hours, window_hours);
    EXPECT_EQ(entry.failed, 0u);
    EXPECT_EQ(entry.retries, 0u);
    EXPECT_EQ(entry.withdrawn_hours, 0u);
    // Sessions on VM 0 lost exactly 5 hours, on VM 1 exactly 6, others 0.
    EXPECT_TRUE(entry.down_hours == 0u || entry.down_hours == 5u ||
                entry.down_hours == 6u)
        << entry.down_hours;
    EXPECT_EQ(entry.completed + entry.down_hours, window_hours);
    EXPECT_DOUBLE_EQ(
        entry.completeness(),
        static_cast<double>(entry.completed) / window_hours);
  }
  // The fleet-level aggregate agrees with the per-server view.
  double mean = 0.0;
  for (const auto& entry : health.servers) mean += entry.completeness();
  mean /= static_cast<double>(health.servers.size());
  EXPECT_DOUBLE_EQ(health.mean_completeness(), mean);
  // VM redeploys show up on the substrate's restart counters too (slot->
  // vm_id mapping is internal, so compare the fleet-wide sum).
  unsigned restarts = 0;
  for (std::size_t v = 0; v < p.cloud().vm_count(); ++v) {
    restarts += p.cloud().vm(v).restarts;
  }
  EXPECT_EQ(restarts, 3u);
}

TEST(CampaignFaultsTest, StrictBudgetSurfacesBudgetExceededError) {
  // A 100% failure rate with a strict budget: retries starve later
  // sessions of their slots on the very first hour.
  platform_config cfg = faulty_config(1, true, "off");
  cfg.campaign_faults.enabled = true;
  cfg.campaign_faults.test_failure_rate = 1.0;
  cfg.campaign_faults.max_retries = 16;
  cfg.campaign_faults.strict_hour_budget = true;

  for (const unsigned workers : {1u, 4u}) {
    cfg.campaign_workers = workers;  // also through the pool's rethrow
    clasp_platform p(cfg);
    campaign_runner& c = p.start_topology_campaign("us-west1", four_days());
    EXPECT_THROW(c.run_hour(four_days().begin_at), budget_exceeded_error);
    // And the root-of-hierarchy handler catches it too.
    try {
      c.run_hour(four_days().begin_at + 1);
      FAIL() << "expected budget_exceeded_error";
    } catch (const error& e) {
      EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
    }
  }
}

TEST(CampaignFaultsTest, LowFaultRateKeepsDetectorWithinTwoPoints) {
  // Gap tolerance end to end: precision/recall of the V_H detector
  // against planted ground truth, fault-free vs the "low" preset.
  // A longer window than the determinism tests': the precision/recall
  // estimates need enough labeled hours that the 2-point bound measures
  // fault impact, not small-sample noise.
  const hour_range window{four_days().begin_at, four_days().begin_at + 240};
  auto validated = [&](const std::string& preset) {
    clasp_platform p(faulty_config(1, true, preset));
    campaign_runner& c = p.start_topology_campaign("us-west1", window);
    c.run();
    detector_validation total;
    const auto data = p.download_series("topology", c.config().region);
    for (std::size_t i = 0; i < data.series.size(); ++i) {
      const ts_series* gt =
          p.store().find("gt_episode", data.series[i]->tags());
      if (gt == nullptr || data.series[i]->size() == 0) continue;
      const detector_validation v =
          validate_detector(*data.series[i], *gt, data.tz[i], 0.5);
      total.true_positive += v.true_positive;
      total.false_positive += v.false_positive;
      total.false_negative += v.false_negative;
      total.true_negative += v.true_negative;
    }
    return total;
  };

  const detector_validation clean = validated("off");
  const detector_validation low = validated("low");
  ASSERT_GT(clean.true_positive + clean.false_negative, 0u);
  ASSERT_GT(low.true_positive + low.false_negative, 0u);
  EXPECT_LT(std::abs(clean.precision() - low.precision()), 0.02)
      << "clean " << clean.precision() << " vs low " << low.precision();
  EXPECT_LT(std::abs(clean.recall() - low.recall()), 0.02)
      << "clean " << clean.recall() << " vs low " << low.recall();
}

TEST(CampaignFaultsTest, AnalysisGapToleranceFiltersIncompleteServers) {
  // The analysis-side completeness helpers agree with campaign_health.
  const faulty_snapshot& snap = run_once(1, true, "high");
  clasp_platform p(faulty_config(1, true, "high"));
  campaign_runner& c = p.start_topology_campaign("us-west1", four_days());
  c.run();
  const auto data = p.download_series("topology", c.config().region);
  ASSERT_FALSE(data.series.empty());

  const auto kept = filter_low_completeness(data.series, four_days(), 0.8);
  EXPECT_LE(kept.size(), data.series.size());
  for (const std::size_t i : kept) {
    EXPECT_GE(series_completeness(*data.series[i], four_days()), 0.8);
  }
  // Health and store views of completeness agree per server: a series'
  // in-window point count is that server's completed-test count.
  const campaign_health health = c.health();
  ASSERT_EQ(health.servers.size(), snap.health.servers.size());
  for (const auto& entry : health.servers) {
    const ts_series* s = nullptr;
    for (const ts_series* cand : data.series) {
      if (cand->tag("server") == std::to_string(entry.server_id)) {
        s = cand;
        break;
      }
    }
    if (s == nullptr) {
      EXPECT_EQ(entry.completed, 0u);
      continue;
    }
    EXPECT_DOUBLE_EQ(series_completeness(*s, four_days()),
                     entry.completeness());
  }
}

}  // namespace
}  // namespace clasp

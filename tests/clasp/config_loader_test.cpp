#include "clasp/config_loader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace clasp {
namespace {

TEST(ConfigLoaderTest, EmptyTextGivesDefaults) {
  const platform_config cfg = load_platform_config("");
  const platform_config defaults;
  EXPECT_EQ(cfg.internet.seed, defaults.internet.seed);
  EXPECT_EQ(cfg.servers.us_server_target, defaults.servers.us_server_target);
  EXPECT_EQ(cfg.topology_budgets, defaults.topology_budgets);
}

TEST(ConfigLoaderTest, OverridesApply) {
  const platform_config cfg = load_platform_config(
      "[internet]\n"
      "seed = 99\n"
      "regional_isp_count = 500\n"
      "congestion_prone_fraction = 0.7\n"
      "[servers]\n"
      "us_server_target = 700\n"
      "global_server_target = 5000\n"
      "[differential]\n"
      "target_servers = 17\n");
  EXPECT_EQ(cfg.internet.seed, 99u);
  EXPECT_EQ(cfg.internet.regional_isp_count, 500u);
  EXPECT_DOUBLE_EQ(cfg.internet.congestion_prone_fraction, 0.7);
  EXPECT_EQ(cfg.servers.us_server_target, 700u);
  EXPECT_EQ(cfg.differential.target_servers, 17u);
}

TEST(ConfigLoaderTest, BudgetsReplaceDefaults) {
  const platform_config cfg = load_platform_config(
      "[budgets]\n"
      "us-west1 = 10\n"
      "us-east1 = 20\n");
  EXPECT_EQ(cfg.topology_budgets.size(), 2u);
  EXPECT_EQ(cfg.topology_budgets.at("us-west1"), 10u);
  EXPECT_EQ(cfg.topology_budgets.at("us-east1"), 20u);
}

TEST(ConfigLoaderTest, UnknownKeyRejected) {
  EXPECT_THROW(load_platform_config("[internet]\nseeed = 1\n"),
               invalid_argument_error);
  EXPECT_THROW(load_platform_config("random = 1\n"), invalid_argument_error);
}

TEST(ConfigLoaderTest, UnknownKeySuggestsNearestValidKey) {
  try {
    load_platform_config("[internet]\nseeed = 1\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key internet.seeed"), std::string::npos)
        << what;
    EXPECT_NE(what.find("did you mean internet.seed?"), std::string::npos)
        << what;
  }
  try {
    load_platform_config("[faults]\nserver_churn_rte = 0.1\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what())
                  .find("did you mean faults.server_churn_rate?"),
              std::string::npos)
        << e.what();
  }
  // Nothing close: the hint is omitted rather than misleading.
  try {
    load_platform_config("utterly_wrong_key_zzz = 1\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos)
        << e.what();
  }
}

TEST(ConfigLoaderTest, FaultKeysApply) {
  const platform_config cfg = load_platform_config(
      "[faults]\n"
      "enabled = true\n"
      "seed = 9\n"
      "server_churn_rate = 0.05\n"
      "test_failure_rate = 0.03\n"
      "max_retries = 4\n"
      "vm_preemption_rate = 0.002\n"
      "vm_outage_hours_min = 2\n"
      "vm_outage_hours_max = 6\n"
      "upload_failure_rate = 0.01\n"
      "strict_hour_budget = true\n");
  EXPECT_TRUE(cfg.campaign_faults.enabled);
  EXPECT_EQ(cfg.campaign_faults.seed, 9u);
  EXPECT_DOUBLE_EQ(cfg.campaign_faults.server_churn_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.campaign_faults.test_failure_rate, 0.03);
  EXPECT_EQ(cfg.campaign_faults.max_retries, 4u);
  EXPECT_DOUBLE_EQ(cfg.campaign_faults.vm_preemption_rate, 0.002);
  EXPECT_EQ(cfg.campaign_faults.vm_outage_hours_min, 2u);
  EXPECT_EQ(cfg.campaign_faults.vm_outage_hours_max, 6u);
  EXPECT_DOUBLE_EQ(cfg.campaign_faults.upload_failure_rate, 0.01);
  EXPECT_TRUE(cfg.campaign_faults.strict_hour_budget);
}

TEST(ConfigLoaderTest, FaultPresetSeedsRatesAndKeysOverride) {
  // Defaults: faults off.
  EXPECT_FALSE(load_platform_config("").campaign_faults.enabled);

  const platform_config preset =
      load_platform_config("[faults]\npreset = low\n");
  const fault_config low = fault_config::preset("low");
  EXPECT_TRUE(preset.campaign_faults.enabled);
  EXPECT_DOUBLE_EQ(preset.campaign_faults.server_churn_rate,
                   low.server_churn_rate);

  // An individual key overrides the preset regardless of file order.
  const platform_config mixed = load_platform_config(
      "[faults]\n"
      "test_failure_rate = 0.25\n"
      "preset = low\n");
  EXPECT_DOUBLE_EQ(mixed.campaign_faults.test_failure_rate, 0.25);
  EXPECT_DOUBLE_EQ(mixed.campaign_faults.upload_failure_rate,
                   low.upload_failure_rate);

  EXPECT_THROW(load_platform_config("[faults]\npreset = extreme\n"),
               invalid_argument_error);
  EXPECT_THROW(load_platform_config("[faults]\ntest_failure_rate = 1.5\n"),
               invalid_argument_error);
}

TEST(ConfigLoaderTest, SwarmKeysApply) {
  const platform_config cfg = load_platform_config(
      "[swarm]\n"
      "enabled = true\n"
      "seed = 17\n"
      "join_rate = 0.2\n"
      "leave_rate = 0.05\n"
      "credits_per_probe = 250\n"
      "rate_limit_per_hour = 4\n"
      "coverage_target = 0.85\n"
      "max_substitutes = 5\n"
      "retry_backoff_hours = 2\n");
  const swarm_config& swarm = cfg.differential.swarm;
  EXPECT_TRUE(swarm.enabled);
  EXPECT_EQ(swarm.seed, 17u);
  EXPECT_DOUBLE_EQ(swarm.join_rate, 0.2);
  EXPECT_DOUBLE_EQ(swarm.leave_rate, 0.05);
  EXPECT_EQ(swarm.credits_per_probe, 250u);
  EXPECT_EQ(swarm.rate_limit_per_hour, 4u);
  EXPECT_DOUBLE_EQ(swarm.coverage_target, 0.85);
  EXPECT_EQ(swarm.max_substitutes, 5u);
  EXPECT_EQ(swarm.retry_backoff_hours, 2u);
  // Defaults: swarm off, the legacy fixed panel.
  EXPECT_FALSE(load_platform_config("").differential.swarm.enabled);
}

TEST(ConfigLoaderTest, SwarmPresetSeedsConfigAndKeysOverride) {
  const platform_config preset =
      load_platform_config("[swarm]\npreset = low\n");
  const swarm_config low = swarm_config::preset("low");
  EXPECT_TRUE(preset.differential.swarm.enabled);
  EXPECT_DOUBLE_EQ(preset.differential.swarm.join_rate, low.join_rate);
  EXPECT_EQ(preset.differential.swarm.credits_per_probe,
            low.credits_per_probe);

  // An individual key overrides the preset regardless of file order.
  const platform_config mixed = load_platform_config(
      "[swarm]\n"
      "credits_per_probe = 9999\n"
      "preset = low\n");
  EXPECT_EQ(mixed.differential.swarm.credits_per_probe, 9999u);
  EXPECT_DOUBLE_EQ(mixed.differential.swarm.leave_rate, low.leave_rate);

  EXPECT_THROW(load_platform_config("[swarm]\npreset = extreme\n"),
               invalid_argument_error);
  EXPECT_THROW(load_platform_config("[swarm]\njoin_rate = 1.5\n"),
               invalid_argument_error);
}

TEST(ConfigLoaderTest, SwarmKeyTyposGetSuggestions) {
  try {
    load_platform_config("[swarm]\ncredits_per_prob = 100\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what())
                  .find("did you mean swarm.credits_per_probe?"),
              std::string::npos)
        << e.what();
  }
  try {
    load_platform_config("[swarm]\ncoverage_targt = 0.8\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(
        std::string(e.what()).find("did you mean swarm.coverage_target?"),
        std::string::npos)
        << e.what();
  }
}

TEST(ConfigLoaderTest, CheckpointKeysApply) {
  const platform_config cfg = load_platform_config(
      "[campaign]\n"
      "checkpoint_dir = /var/lib/clasp/ckpt\n"
      "checkpoint_every_hours = 6\n");
  EXPECT_EQ(cfg.campaign_checkpoint_dir, "/var/lib/clasp/ckpt");
  EXPECT_EQ(cfg.campaign_checkpoint_every_hours, 6u);
  // Defaults: durability off, daily cadence once a dir is set.
  const platform_config defaults = load_platform_config("");
  EXPECT_TRUE(defaults.campaign_checkpoint_dir.empty());
  EXPECT_EQ(defaults.campaign_checkpoint_every_hours, 24u);
}

TEST(ConfigLoaderTest, ZeroCheckpointCadenceRejected) {
  try {
    load_platform_config("[campaign]\ncheckpoint_every_hours = 0\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checkpoint_every_hours must be >= 1"),
              std::string::npos)
        << what;
    // The message explains how to disable durability instead.
    EXPECT_NE(what.find("checkpoint_dir"), std::string::npos) << what;
  }
}

TEST(ConfigLoaderTest, FleetScaleAndBatchEvalApply) {
  const platform_config cfg = load_platform_config(
      "[campaign]\n"
      "fleet_scale = 10\n"
      "batch_eval = false\n");
  EXPECT_EQ(cfg.fleet_scale, 10u);
  EXPECT_FALSE(cfg.campaign_batch_eval);
  // Defaults: paper-scale fleet, batched evaluation on.
  const platform_config defaults = load_platform_config("");
  EXPECT_EQ(defaults.fleet_scale, 1u);
  EXPECT_TRUE(defaults.campaign_batch_eval);
}

TEST(ConfigLoaderTest, ZeroFleetScaleRejected) {
  try {
    load_platform_config("[campaign]\nfleet_scale = 0\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fleet_scale must be >= 1"), std::string::npos)
        << what;
    // The message explains the knob and names the paper-scale value.
    EXPECT_NE(what.find("fleet_scale = 1"), std::string::npos) << what;
  }
}

TEST(ConfigLoaderTest, FleetScaleTypoGetsSuggestion) {
  try {
    load_platform_config("[campaign]\nfleet_scal = 10\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(
        std::string(e.what()).find("did you mean campaign.fleet_scale?"),
        std::string::npos)
        << e.what();
  }
}

TEST(ConfigLoaderTest, CheckpointKeyTyposGetSuggestions) {
  try {
    load_platform_config("[campaign]\ncheckpoint_every_hour = 12\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what())
                  .find("did you mean campaign.checkpoint_every_hours?"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigLoaderTest, ServiceKeysApply) {
  const platform_config cfg = load_platform_config(
      "[service]\n"
      "socket = /run/clasp/svc.sock\n"
      "state_dir = /var/lib/clasp/svc\n"
      "results_dir = /var/lib/clasp/results\n"
      "quantum_hours = 12\n"
      "worker_budget = 16\n"
      "max_admitted = 6\n"
      "tenant_max_admitted = 3\n"
      "tenant_max_active = 32\n"
      "max_resident = 5\n"
      "heartbeat_every_quanta = 8\n");
  EXPECT_EQ(cfg.service.socket, "/run/clasp/svc.sock");
  EXPECT_EQ(cfg.service.state_dir, "/var/lib/clasp/svc");
  EXPECT_EQ(cfg.service.results_dir, "/var/lib/clasp/results");
  EXPECT_EQ(cfg.service.quantum_hours, 12u);
  EXPECT_EQ(cfg.service.worker_budget, 16u);
  EXPECT_EQ(cfg.service.max_admitted, 6u);
  EXPECT_EQ(cfg.service.tenant_max_admitted, 3u);
  EXPECT_EQ(cfg.service.tenant_max_active, 32u);
  EXPECT_EQ(cfg.service.max_resident, 5u);
  EXPECT_EQ(cfg.service.heartbeat_every_quanta, 8u);
  // Defaults: results stay in-store, heartbeat off.
  const platform_config defaults = load_platform_config("");
  EXPECT_TRUE(defaults.service.results_dir.empty());
  EXPECT_EQ(defaults.service.heartbeat_every_quanta, 0u);
}

TEST(ConfigLoaderTest, ZeroServiceQuantumRejected) {
  try {
    load_platform_config("[service]\nquantum_hours = 0\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("quantum_hours must be >= 1"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigLoaderTest, ServiceKeyTyposGetSuggestions) {
  try {
    load_platform_config("[service]\nworker_budgets = 8\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(
        std::string(e.what()).find("did you mean service.worker_budget?"),
        std::string::npos)
        << e.what();
  }
}

TEST(ConfigLoaderTest, ObsKeysApply) {
  const platform_config cfg = load_platform_config(
      "[obs]\n"
      "metrics = true\n"
      "heartbeat_every_hours = 12\n"
      "span_ring_capacity = 512\n");
  EXPECT_TRUE(cfg.obs_metrics);
  EXPECT_EQ(cfg.obs_heartbeat_every_hours, 12u);
  EXPECT_EQ(cfg.obs_span_ring_capacity, 512u);
  // Defaults: observability fully off.
  const platform_config defaults = load_platform_config("");
  EXPECT_FALSE(defaults.obs_metrics);
  EXPECT_EQ(defaults.obs_heartbeat_every_hours, 0u);
  EXPECT_EQ(defaults.obs_span_ring_capacity, 0u);
}

TEST(ConfigLoaderTest, ObsKeyTyposGetSuggestions) {
  try {
    load_platform_config("[obs]\nmetric = true\n");
    FAIL() << "expected invalid_argument_error";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean obs.metrics?"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigLoaderTest, BadValuesRejected) {
  EXPECT_THROW(load_platform_config("[internet]\nseed = abc\n"),
               invalid_argument_error);
  EXPECT_THROW(
      load_platform_config("[internet]\ncongestion_prone_fraction = 1.5\n"),
      invalid_argument_error);
  EXPECT_THROW(load_platform_config("[internet]\ntier1_count = -3\n"),
               invalid_argument_error);
  EXPECT_THROW(load_platform_config("[budgets]\nmars-north1 = 5\n"),
               not_found_error);
  EXPECT_THROW(load_platform_config("[servers]\nus_server_target = 100\n"
                                    "global_server_target = 50\n"),
               invalid_argument_error);
}

TEST(ConfigLoaderTest, FileRoundTrip) {
  const char* path = "/tmp/clasp_config_test.ini";
  {
    std::ofstream out(path);
    out << "[internet]\nseed = 1234\n";
  }
  const platform_config cfg = load_platform_config_file(path);
  EXPECT_EQ(cfg.internet.seed, 1234u);
  std::remove(path);
  EXPECT_THROW(load_platform_config_file(path), not_found_error);
}

TEST(ConfigLoaderTest, LoadedConfigBuildsAPlatform) {
  const platform_config cfg = load_platform_config(
      "[internet]\n"
      "seed = 5\n"
      "regional_isp_count = 150\n"
      "hosting_count = 80\n"
      "business_count = 150\n"
      "education_count = 30\n"
      "vantage_point_count = 100\n"
      "[servers]\n"
      "us_server_target = 150\n"
      "global_server_target = 700\n"
      "[budgets]\n"
      "us-west1 = 12\n");
  clasp_platform platform(cfg);
  EXPECT_EQ(platform.registry().size(), 700u);
  const auto& sel = platform.select_topology("us-west1");
  EXPECT_LE(sel.selected.size(), 12u);
}

}  // namespace
}  // namespace clasp

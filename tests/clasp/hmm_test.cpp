#include "clasp/hmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {
namespace {

// Synthetic observation sequence from a known two-state process.
std::vector<double> synth_sequence(rng& r, std::size_t n, double p_enter,
                                   double p_stay, double lo_mean,
                                   double hi_mean, double sigma,
                                   std::vector<bool>* truth = nullptr) {
  std::vector<double> obs;
  bool congested = false;
  for (std::size_t i = 0; i < n; ++i) {
    congested = congested ? r.bernoulli(p_stay) : r.bernoulli(p_enter);
    if (truth) truth->push_back(congested);
    obs.push_back(r.normal(congested ? hi_mean : lo_mean, sigma));
  }
  return obs;
}

TEST(HmmFitTest, RecoversSeparatedStates) {
  rng r(1);
  const auto obs = synth_sequence(r, 2000, 0.05, 0.85, 0.10, 0.70, 0.08);
  const hmm_model m = fit_hmm(obs);
  EXPECT_TRUE(m.converged);
  EXPECT_NEAR(m.mean[0], 0.10, 0.05);
  EXPECT_NEAR(m.mean[1], 0.70, 0.08);
  EXPECT_GT(m.stay_congested, 0.6);
  EXPECT_GT(m.stay_normal, 0.85);
}

TEST(HmmFitTest, StateOrderingInvariant) {
  rng r(2);
  const auto obs = synth_sequence(r, 1000, 0.1, 0.8, 0.2, 0.6, 0.1);
  const hmm_model m = fit_hmm(obs);
  EXPECT_LE(m.mean[0], m.mean[1]);
  EXPECT_GE(m.stddev[0], 0.02 - 1e-12);
  EXPECT_GE(m.stddev[1], 0.02 - 1e-12);
}

TEST(HmmFitTest, RejectsTinySequences) {
  const std::vector<double> few{0.1, 0.2, 0.3};
  EXPECT_THROW(fit_hmm(few), invalid_argument_error);
}

TEST(HmmFitTest, StableOnConstantSeries) {
  const std::vector<double> flat(100, 0.25);
  const hmm_model m = fit_hmm(flat);
  // Degenerate input must not produce NaNs or zero stddevs.
  EXPECT_TRUE(std::isfinite(m.mean[0]));
  EXPECT_TRUE(std::isfinite(m.mean[1]));
  EXPECT_GE(m.stddev[0], 0.02 - 1e-12);
}

TEST(HmmViterbiTest, DecodesPlantedEpisodes) {
  rng r(3);
  std::vector<bool> truth;
  const auto obs =
      synth_sequence(r, 3000, 0.04, 0.90, 0.10, 0.75, 0.07, &truth);
  const hmm_model m = fit_hmm(obs);
  const auto decoded = viterbi_decode(m, obs);
  ASSERT_EQ(decoded.size(), truth.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    agree += decoded[i] == truth[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(agree) / truth.size(), 0.92);
}

TEST(HmmViterbiTest, EmptyAndSingle) {
  hmm_model m;
  EXPECT_TRUE(viterbi_decode(m, {}).empty());
  const std::vector<double> one{0.9};
  const auto path = viterbi_decode(m, one);
  ASSERT_EQ(path.size(), 1u);
}

TEST(HmmViterbiTest, PersistenceSmoothsIsolatedSpikes) {
  // One isolated high observation inside a long normal run should not be
  // labeled congested when transitions are sticky.
  hmm_model m;
  m.stay_normal = 0.99;
  m.stay_congested = 0.7;
  m.mean[0] = 0.1;
  m.mean[1] = 0.7;
  m.stddev[0] = 0.15;
  m.stddev[1] = 0.15;
  std::vector<double> obs(50, 0.1);
  obs[25] = 0.55;  // ambiguous spike
  const auto path = viterbi_decode(m, obs);
  EXPECT_FALSE(path[25]);
}

// --- series-level detector -------------------------------------------------

ts_series make_diurnal_series(int days, bool congested_evenings) {
  ts_series s("download_mbps", {});
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  rng r(9);
  for (int d = 0; d < days; ++d) {
    for (int h = 0; h < 24; ++h) {
      double value = 500.0 + r.uniform(-20.0, 20.0);
      if (congested_evenings && h >= 19 && h <= 22 && d % 2 == 0) {
        value = 120.0 + r.uniform(-20.0, 20.0);
      }
      s.append(start + d * 24 + h, value);
    }
  }
  return s;
}

TEST(HmmDetectorTest, FlagsCongestedSeries) {
  const ts_series s = make_diurnal_series(30, true);
  const hmm_detection det = hmm_detector(s, timezone_offset{0});
  ASSERT_TRUE(det.usable);
  ASSERT_EQ(det.congested.size(), s.size());
  std::size_t flagged = 0, correct = 0, evening_hours = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const ts_point& p = s.points()[i];
    const unsigned h = p.at.utc_hour_of_day();
    const int d = static_cast<int>(p.at.utc_day_index() -
                                   s.points().front().at.utc_day_index());
    const bool truth = h >= 19 && h <= 22 && d % 2 == 0;
    evening_hours += truth ? 1 : 0;
    flagged += det.congested[i] ? 1 : 0;
    if (det.congested[i] && truth) ++correct;
  }
  EXPECT_GT(correct, evening_hours * 7 / 10);   // recall > 70%
  EXPECT_LT(flagged, evening_hours * 2);        // not wildly over-flagging
}

TEST(HmmDetectorTest, QuietSeriesUnusableOrSilent) {
  const ts_series s = make_diurnal_series(30, false);
  const hmm_detection det = hmm_detector(s, timezone_offset{0});
  std::size_t flagged = 0;
  for (const bool c : det.congested) flagged += c ? 1 : 0;
  // Either the separation gate rejects the fit or nearly nothing is
  // flagged.
  EXPECT_LT(flagged, s.size() / 20);
}

TEST(HmmDetectorTest, ShortSeriesHandled) {
  ts_series s("m", {});
  for (int i = 0; i < 5; ++i) s.append(hour_stamp{i}, 100.0);
  const hmm_detection det = hmm_detector(s, timezone_offset{0});
  EXPECT_FALSE(det.usable);
  EXPECT_EQ(det.congested.size(), s.size());
}

}  // namespace
}  // namespace clasp

#include <gtest/gtest.h>

#include "clasp/analysis.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

constexpr timezone_offset kUtc{0};

struct triple {
  ts_series download{"download_mbps", {}};
  ts_series dl_loss{"download_loss", {}};
  ts_series ul_loss{"upload_loss", {}};
};

// Congestion at hour 20 each day; loss pattern chosen by the caller.
triple make_triple(int days, double dl_loss_peak, double ul_loss_peak) {
  triple t;
  const hour_stamp start = hour_stamp::from_civil({2020, 5, 1}, 0);
  for (int d = 0; d < days; ++d) {
    for (int h = 0; h < 24; ++h) {
      const hour_stamp at = start + d * 24 + h;
      const bool congested = h == 20;
      t.download.append(at, congested ? 100.0 : 500.0);
      t.dl_loss.append(at, congested ? dl_loss_peak : 0.002);
      t.ul_loss.append(at, congested ? ul_loss_peak : 0.002);
    }
  }
  return t;
}

TEST(AsymmetryTest, ReversePathCoxPattern) {
  // The paper's Cox case: heavy download loss, <1% upload loss.
  const triple t = make_triple(20, 0.30, 0.005);
  const asymmetry_summary s =
      classify_asymmetry(t.download, t.dl_loss, t.ul_loss, kUtc, 0.5);
  EXPECT_EQ(s.congested_hours, 20u);
  EXPECT_EQ(s.ingress_hours, 20u);
  EXPECT_EQ(s.egress_hours, 0u);
  EXPECT_EQ(s.dominant(), congestion_direction::ingress);
}

TEST(AsymmetryTest, ForwardPathPattern) {
  // Upload side lossy: congestion on the cloud -> ISP direction. The
  // download still has to *look* congested for hours to be classified,
  // which models shared-link congestion observed from both tests.
  const triple t = make_triple(10, 0.004, 0.25);
  const asymmetry_summary s =
      classify_asymmetry(t.download, t.dl_loss, t.ul_loss, kUtc, 0.5);
  EXPECT_EQ(s.egress_hours, 10u);
  EXPECT_EQ(s.dominant(), congestion_direction::egress);
}

TEST(AsymmetryTest, BothDirections) {
  const triple t = make_triple(10, 0.2, 0.2);
  const asymmetry_summary s =
      classify_asymmetry(t.download, t.dl_loss, t.ul_loss, kUtc, 0.5);
  EXPECT_EQ(s.both_hours, 10u);
  EXPECT_EQ(s.dominant(), congestion_direction::both);
}

TEST(AsymmetryTest, InconclusiveLoss) {
  // Loss between the clean and congested bounds: unknown.
  const triple t = make_triple(10, 0.02, 0.02);
  const asymmetry_summary s =
      classify_asymmetry(t.download, t.dl_loss, t.ul_loss, kUtc, 0.5);
  EXPECT_EQ(s.unknown_hours, 10u);
  EXPECT_EQ(s.dominant(), congestion_direction::unknown);
}

TEST(AsymmetryTest, NoCongestionNoHours) {
  triple t = make_triple(5, 0.3, 0.001);
  // Flatten the throughput: nothing crosses V_H = 0.5.
  ts_series flat("download_mbps", {});
  for (const ts_point& p : t.download.points()) flat.append(p.at, 500.0);
  const asymmetry_summary s =
      classify_asymmetry(flat, t.dl_loss, t.ul_loss, kUtc, 0.5);
  EXPECT_EQ(s.congested_hours, 0u);
  EXPECT_EQ(s.dominant(), congestion_direction::unknown);
}

TEST(AsymmetryTest, MissingLossSeriesIsUnknown) {
  const triple t = make_triple(5, 0.3, 0.001);
  ts_series empty_loss("upload_loss", {});
  const asymmetry_summary s =
      classify_asymmetry(t.download, t.dl_loss, empty_loss, kUtc, 0.5);
  EXPECT_EQ(s.unknown_hours, s.congested_hours);
}

TEST(AsymmetryTest, BadThresholdsRejected) {
  const triple t = make_triple(5, 0.3, 0.001);
  EXPECT_THROW(classify_asymmetry(t.download, t.dl_loss, t.ul_loss, kUtc, 0.5,
                                  /*high_loss=*/0.01, /*low_loss=*/0.02),
               invalid_argument_error);
}

TEST(AsymmetryTest, DirectionNames) {
  EXPECT_STREQ(to_string(congestion_direction::ingress), "ingress");
  EXPECT_STREQ(to_string(congestion_direction::egress), "egress");
  EXPECT_STREQ(to_string(congestion_direction::both), "both");
  EXPECT_STREQ(to_string(congestion_direction::unknown), "unknown");
}

// End-to-end: the planted Cox archetype in the fixture produces
// ingress-dominant congestion through the real pipeline.
TEST(AsymmetryTest, CoxServersClassifyAsIngress) {
  auto& p = ::clasp::testing::small_platform();
  ::clasp::testing::ensure_east1_campaign(p);
  const clasp_platform::labeled_series data =
      p.download_series("topology", "us-east1");
  std::size_t cox_checked = 0;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    if (data.series[i]->tag("network").value_or("") != "22773") continue;
    tag_set tags = data.series[i]->tags();
    const ts_series* dl = p.store().find("download_loss", tags);
    const ts_series* ul = p.store().find("upload_loss", tags);
    ASSERT_NE(dl, nullptr);
    ASSERT_NE(ul, nullptr);
    const asymmetry_summary s =
        classify_asymmetry(*data.series[i], *dl, *ul, data.tz[i], 0.5);
    if (s.congested_hours < 3) continue;  // quiet server in short window
    ++cox_checked;
    EXPECT_GT(s.ingress_hours, s.egress_hours);
  }
  if (cox_checked == 0) {
    GTEST_SKIP() << "no congested Cox hours in the short fixture window";
  }
}

}  // namespace
}  // namespace clasp

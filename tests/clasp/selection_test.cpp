#include "clasp/selection.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_support.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

TEST(SelectionTest, WithdrawnServersAreNeverSelected) {
  // Candidates come from registry crawls, which filter withdrawn
  // servers; a selection run after churn must not pick them. Dedicated
  // platform: retirement mutates shared registry state.
  platform_config cfg;
  cfg.internet = ::clasp::testing::small_internet_config();
  cfg.internet.seed = 2024;
  cfg.servers = ::clasp::testing::small_server_config();
  cfg.topology_budgets = {{"us-west1", 40}};
  clasp_platform p(cfg);
  server_registry& reg = const_cast<server_registry&>(p.registry());

  // Withdraw a spread of the US fleet before selection runs.
  std::unordered_set<std::size_t> withdrawn;
  const auto us = reg.crawl("US");
  for (std::size_t i = 0; i < us.size(); i += 4) {
    reg.retire_server(us[i]);
    withdrawn.insert(us[i]);
  }
  ASSERT_FALSE(withdrawn.empty());

  const topology_selection_result& result = p.select_topology("us-west1");
  ASSERT_FALSE(result.selected.empty());
  for (const selected_server& s : result.selected) {
    EXPECT_FALSE(withdrawn.count(s.server_id))
        << "withdrawn server " << s.server_id << " was selected";
    EXPECT_FALSE(reg.server(s.server_id).withdrawn);
  }
}

TEST(SelectionTest, PilotAndSelectionShapes) {
  auto& p = small_platform();
  const topology_selection_result& result = p.select_topology("us-west1");

  EXPECT_GT(result.pilot.links.size(), 200u);
  EXPECT_GT(result.servers_probed, 100u);
  EXPECT_GT(result.links_traversed_by_servers, 10u);
  // One selected server per unique link, capped by the budget.
  EXPECT_LE(result.selected.size(), result.links_traversed_by_servers);
  EXPECT_LE(result.selected.size(), 40u);  // fixture budget
  EXPECT_GT(result.coverage(), 0.0);
  EXPECT_LE(result.coverage(), 1.0);
}

TEST(SelectionTest, SelectedServersCoverDistinctLinks) {
  auto& p = small_platform();
  const auto& result = p.select_topology("us-west1");
  std::unordered_set<std::uint32_t> far_sides;
  std::unordered_set<std::size_t> servers;
  for (const selected_server& s : result.selected) {
    EXPECT_TRUE(far_sides.insert(s.far_side.value()).second)
        << "duplicate link " << s.far_side.to_string();
    servers.insert(s.server_id);
    // Every covered link was seen in the pilot.
    EXPECT_TRUE(result.pilot.contains(s.far_side));
  }
  // A server may cover at most one link in the result.
  EXPECT_EQ(servers.size(), result.selected.size());
}

TEST(SelectionTest, PrefersDirectPeering) {
  auto& p = small_platform();
  const auto& result = p.select_topology("us-west1");
  ASSERT_FALSE(result.selected.empty());
  // Sorted by AS-path length: the first entries are direct peers.
  EXPECT_EQ(result.selected.front().as_path_len, 1u);
  for (std::size_t i = 1; i < result.selected.size(); ++i) {
    EXPECT_GE(result.selected[i].as_path_len,
              result.selected[i - 1].as_path_len);
  }
}

TEST(SelectionTest, SharedInterconnectFractionInPaperBand) {
  auto& p = small_platform();
  const auto& result = p.select_topology("us-west1");
  // Paper: 75.5%-91.6% of U.S. servers share interconnects. The scaled
  // fixture loosens the band slightly.
  EXPECT_GT(result.shared_interconnect_fraction, 0.55);
  EXPECT_LE(result.shared_interconnect_fraction, 1.0);
}

TEST(SelectionTest, CachedPerRegion) {
  auto& p = small_platform();
  const auto& a = p.select_topology("us-west1");
  const auto& b = p.select_topology("us-west1");
  EXPECT_EQ(&a, &b);
}

TEST(SelectionTest, RegionsDiffer) {
  auto& p = small_platform();
  const auto& west = p.select_topology("us-west1");
  const auto& east = p.select_topology("us-east4");
  // Different policies (visibility/concentration) must change the picture.
  EXPECT_NE(west.pilot.links.size(), east.pilot.links.size());
  EXPECT_GT(west.links_traversed_by_servers,
            east.links_traversed_by_servers);
}

TEST(SelectionTest, NeighborsAreRealAses) {
  auto& p = small_platform();
  const auto& result = p.select_topology("us-west1");
  for (const selected_server& s : result.selected) {
    EXPECT_TRUE(p.net().topo->find_as(s.neighbor).has_value());
    EXPECT_NE(s.neighbor, cloud_asn());
  }
}

TEST(SelectionTest, RttsArePlausible) {
  auto& p = small_platform();
  const auto& result = p.select_topology("us-west1");
  for (const selected_server& s : result.selected) {
    EXPECT_GT(s.rtt.value, 0.0);
    EXPECT_LT(s.rtt.value, 250.0);  // U.S. servers from a U.S. region
  }
}

}  // namespace
}  // namespace clasp

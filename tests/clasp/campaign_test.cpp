#include "clasp/campaign.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

// A dedicated short-window campaign for these tests, deployed once.
campaign_runner& short_campaign() {
  static campaign_runner* runner = [] {
    auto& p = small_platform();
    const hour_range window{hour_stamp::from_civil({2020, 5, 1}, 0),
                            hour_stamp::from_civil({2020, 5, 4}, 0)};
    campaign_runner& r = p.start_topology_campaign("us-east1", window);
    r.run();
    return &r;
  }();
  return *runner;
}

TEST(CampaignTest, VmFleetSizedForHourlyGranularity) {
  campaign_runner& c = short_campaign();
  const std::size_t expected_vms =
      (c.session_count() + c.config().tests_per_vm_hour - 1) /
      c.config().tests_per_vm_hour;
  EXPECT_EQ(c.vm_count(), expected_vms);
  EXPECT_GT(c.session_count(), 0u);
}

TEST(CampaignTest, EveryServerTestedEveryHour) {
  campaign_runner& c = short_campaign();
  const std::size_t hours =
      static_cast<std::size_t>(c.config().window.count());
  EXPECT_EQ(c.tests_run(), c.session_count() * hours);
}

TEST(CampaignTest, MetricsLandInStore) {
  auto& p = small_platform();
  campaign_runner& c = short_campaign();
  tag_filter filter;
  filter.required["campaign"] = "topology";
  filter.required["region"] = "us-east1";
  const auto series = p.store().query("download_mbps", filter);
  EXPECT_EQ(series.size(), c.session_count());
  const std::size_t hours =
      static_cast<std::size_t>(c.config().window.count());
  for (const ts_series* s : series) {
    EXPECT_EQ(s->size(), hours);
    EXPECT_EQ(s->tag("tier").value_or(""), "premium");
    EXPECT_TRUE(s->tag("server").has_value());
    EXPECT_TRUE(s->tag("network").has_value());
  }
  // Companion metrics exist with the same cardinality.
  for (const char* metric : {"upload_mbps", "latency_ms", "download_loss",
                             "upload_loss", "gt_episode"}) {
    EXPECT_EQ(p.store().query(metric, filter).size(), c.session_count())
        << metric;
  }
}

TEST(CampaignTest, BillingAdvanced) {
  auto& p = small_platform();
  campaign_runner& c = short_campaign();
  const cost_report& costs = p.cloud().costs();
  EXPECT_GT(costs.vm_usd, 0.0);
  EXPECT_GT(costs.egress_usd, 0.0);
  EXPECT_GT(costs.storage_usd, 0.0);
  // VM-hours: fleet * hours at the n1-standard-2 rate, plus any other VMs
  // charged in this shared fixture.
  const double campaign_vm_usd = c.vm_count() *
                                 static_cast<double>(c.config().window.count()) *
                                 0.095;
  EXPECT_GE(costs.vm_usd, campaign_vm_usd - 1e-6);
}

TEST(CampaignTest, BucketReceivedArtifacts) {
  auto& p = small_platform();
  campaign_runner& c = short_campaign();
  const storage_bucket& bucket = p.cloud().bucket("us-east1");
  EXPECT_GE(bucket.object_count(),
            c.vm_count() * static_cast<std::size_t>(c.config().window.count()));
  EXPECT_GT(bucket.total_megabytes(), 0.0);
}

TEST(CampaignTest, DeployValidation) {
  auto& p = small_platform();
  campaign_runner fresh(&p.cloud(), &p.view(), &p.registry(), &p.store());
  campaign_config cfg;
  cfg.region = "us-west4";
  EXPECT_THROW(fresh.deploy(cfg, {}), invalid_argument_error);
  cfg.tests_per_vm_hour = 0;
  EXPECT_THROW(fresh.deploy(cfg, {0}), invalid_argument_error);
  EXPECT_THROW(fresh.run(), state_error);  // not deployed
  EXPECT_THROW(fresh.run_hour(hour_stamp{0}), state_error);

  cfg.tests_per_vm_hour = 17;
  cfg.label = "validation";
  fresh.deploy(cfg, {0, 1, 2});
  EXPECT_THROW(fresh.deploy(cfg, {0}), state_error);  // double deploy
}

TEST(CampaignTest, NullDependenciesRejected) {
  auto& p = small_platform();
  EXPECT_THROW(
      campaign_runner(nullptr, &p.view(), &p.registry(), &p.store()),
      invalid_argument_error);
}

TEST(CampaignTest, DownloadValuesArePlausible) {
  auto& p = small_platform();
  tag_filter filter;
  filter.required["campaign"] = "topology";
  filter.required["region"] = "us-east1";
  for (const ts_series* s : p.store().query("download_mbps", filter)) {
    for (const ts_point& pt : s->points()) {
      EXPECT_GT(pt.value, 0.0);
      EXPECT_LE(pt.value, 1100.0);
    }
  }
}

}  // namespace
}  // namespace clasp
// Appended: failure injection.
namespace clasp {
namespace {

TEST(CampaignOutageTest, VmOutageCreatesGapsWithoutCharges) {
  auto& p = small_platform();
  campaign_runner runner(&p.cloud(), &p.view(), &p.registry(), &p.store());
  campaign_config cfg;
  cfg.region = "us-west2";
  cfg.label = "outage-test";
  cfg.window = hour_range{hour_stamp::from_civil({2020, 6, 1}, 0),
                          hour_stamp::from_civil({2020, 6, 3}, 0)};
  // Two servers on one VM.
  const auto us = p.registry().crawl("US");
  runner.deploy(cfg, {us[0], us[1]});
  ASSERT_EQ(runner.vm_count(), 1u);

  // Bad injections rejected.
  EXPECT_THROW(runner.inject_vm_outage(5, cfg.window),
               invalid_argument_error);
  EXPECT_THROW(
      runner.inject_vm_outage(0, hour_range{cfg.window.begin_at,
                                            cfg.window.begin_at}),
      invalid_argument_error);

  // Take the VM down for the first 12 hours of day 2.
  const hour_range outage{cfg.window.begin_at + 24, cfg.window.begin_at + 36};
  runner.inject_vm_outage(0, outage);

  const double vm_usd_before = p.cloud().costs().vm_usd;
  runner.run();
  const double vm_hours_billed =
      (p.cloud().costs().vm_usd - vm_usd_before) / 0.095;

  // 48 window hours minus 12 outage hours.
  EXPECT_NEAR(vm_hours_billed, 36.0, 1e-6);
  EXPECT_EQ(runner.tests_run(), 2u * 36u);
  EXPECT_EQ(runner.tests_missed(), 2u * 12u);

  // The series really has a gap over the outage.
  tag_filter filter;
  filter.required["campaign"] = "outage-test";
  const auto series = p.store().query("download_mbps", filter);
  ASSERT_EQ(series.size(), 2u);
  for (const ts_series* s : series) {
    EXPECT_EQ(s->size(), 36u);
    EXPECT_TRUE(s->range(outage.begin_at, outage.end_at).empty());
  }
}

}  // namespace
}  // namespace clasp

#include "clasp/report.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

TEST(ReportTest, RendersAllSections) {
  auto& p = small_platform();
  ::clasp::testing::ensure_east1_campaign(p);
  const std::string report = render_campaign_report(p, "us-east1");
  EXPECT_NE(report.find("CLASP campaign report — us-east1"),
            std::string::npos);
  EXPECT_NE(report.find("servers measured:"), std::string::npos);
  EXPECT_NE(report.find("interdomain links:"), std::string::npos);
  EXPECT_NE(report.find("spend to date:"), std::string::npos);
  EXPECT_NE(report.find("congested servers"), std::string::npos);
  EXPECT_NE(report.find("most congested interconnects:"), std::string::npos);
  EXPECT_NE(report.find("direction"), std::string::npos);
}

TEST(ReportTest, TopServersOptionLimitsRows) {
  auto& p = small_platform();
  ::clasp::testing::ensure_east1_campaign(p);
  report_options opts;
  opts.top_servers = 3;
  const std::string report = render_campaign_report(p, "us-east1", opts);
  // Header + underline + 3 rows => the table section has 5 lines.
  const std::size_t table_start = report.find("network");
  ASSERT_NE(table_start, std::string::npos);
  const std::string rest = report.substr(table_start);
  const std::size_t blank = rest.find("\n\n");
  ASSERT_NE(blank, std::string::npos);
  EXPECT_EQ(std::count(rest.begin(), rest.begin() + blank, '\n'), 4);
}

TEST(ReportTest, NoDataThrows) {
  auto& p = small_platform();
  EXPECT_THROW(render_campaign_report(p, "europe-west1"), state_error);
}

}  // namespace
}  // namespace clasp

// vantage_swarm unit + integration tests: presets, membership churn,
// per-probe credits and rate limits, account faults passing through, the
// ledger wire format, the coverage-aware differential scheduler, and the
// checkpoint round-trip of both ledgers.
#include "clasp/swarm.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "clasp/differential.hpp"
#include "obs/export.hpp"
#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

namespace fs = std::filesystem;

using ::clasp::testing::small_internet;
using ::clasp::testing::small_internet_config;
using ::clasp::testing::small_server_config;

// A swarm whose churn chain is pinned fully online (join 1, leave 0), so
// credit/rate tests see only the budget machinery.
swarm_config always_online() {
  swarm_config cfg;
  cfg.enabled = true;
  cfg.join_rate = 1.0;
  cfg.leave_rate = 0.0;
  return cfg;
}

hour_range pretest_days(int days) {
  return {hour_stamp::from_civil({2020, 7, 10}, 0),
          hour_stamp::from_civil({2020, 7, 10}, 0) + days * 24};
}

class SwarmTest : public ::testing::Test {
 protected:
  SwarmTest() : net_(small_internet()), planner_(&net_), view_(&net_) {
    const city_id region = net_.geo->city_by_name("St. Ghislain").id;
    const auto router = net_.topo->router_of(net_.cloud, region);
    target_ = endpoint{net_.cloud, region,
                       net_.topo->router_at(*router).loopback, std::nullopt};
  }

  internet& net_;
  route_planner planner_;
  network_view view_;
  endpoint target_;
};

TEST_F(SwarmTest, PresetsCoverTheThreeLevels) {
  EXPECT_FALSE(swarm_config::preset("off").enabled);
  const swarm_config low = swarm_config::preset("low");
  EXPECT_TRUE(low.enabled);
  EXPECT_GT(low.join_rate, low.leave_rate);  // mostly-online population
  EXPECT_GT(low.credits_per_probe, 0u);
  EXPECT_GT(low.rate_limit_per_hour, 0u);
  const swarm_config high = swarm_config::preset("high");
  EXPECT_TRUE(high.enabled);
  EXPECT_GT(high.leave_rate, high.join_rate);  // mostly-offline population
  EXPECT_LT(high.credits_per_probe, low.credits_per_probe);
  EXPECT_LT(high.rate_limit_per_hour, low.rate_limit_per_hour);
  EXPECT_LT(high.coverage_target, low.coverage_target);
  EXPECT_THROW(swarm_config::preset("medium"), invalid_argument_error);
}

TEST_F(SwarmTest, BadConfigRejected) {
  swarm_config cfg = always_online();
  cfg.join_rate = 1.5;
  EXPECT_THROW(vantage_swarm(&planner_, &view_, cfg), invalid_argument_error);
  cfg = always_online();
  cfg.coverage_target = -0.1;
  EXPECT_THROW(vantage_swarm(&planner_, &view_, cfg), invalid_argument_error);
}

TEST_F(SwarmTest, DisabledSwarmIsTheFixedPanel) {
  vantage_swarm swarm(&planner_, &view_);
  EXPECT_FALSE(swarm.enabled());
  swarm.plan(pretest_days(3));
  EXPECT_EQ(swarm.active_probes(pretest_days(3).begin_at),
            swarm.probes().size());
  EXPECT_TRUE(swarm.online(0, pretest_days(3).begin_at + 40));
  rng r(1);
  const auto result = swarm.try_probe(0, target_, service_tier::premium,
                                      pretest_days(3).begin_at, r);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->rtt.value, 0.0);
}

TEST_F(SwarmTest, MembershipIsDeterministicPerSeed) {
  swarm_config cfg = swarm_config::preset("low");
  cfg.seed = 5;
  vantage_swarm a(&planner_, &view_, cfg, {}, 99);
  vantage_swarm b(&planner_, &view_, cfg, {}, 99);
  const hour_range window = pretest_days(4);
  a.plan(window);
  b.plan(window);
  std::size_t offline_hours = 0;
  for (std::size_t p = 0; p < a.probes().size(); ++p) {
    for (hour_stamp t = window.begin_at; t < window.end_at; t = t + 1) {
      EXPECT_EQ(a.online(p, t), b.online(p, t));
      offline_hours += !a.online(p, t);
    }
  }
  EXPECT_GT(offline_hours, 0u);  // the low preset really churns
  // A different platform stream seed decorrelates the swarm.
  vantage_swarm c(&planner_, &view_, cfg, {}, 100);
  c.plan(window);
  std::size_t differs = 0;
  for (std::size_t p = 0; p < a.probes().size(); ++p) {
    for (hour_stamp t = window.begin_at; t < window.end_at; t = t + 1) {
      differs += a.online(p, t) != c.online(p, t);
    }
  }
  EXPECT_GT(differs, 0u);
}

TEST_F(SwarmTest, OfflineProbeRefusesWithoutSpending) {
  swarm_config cfg = always_online();
  cfg.join_rate = 0.0;  // stationary distribution: everyone offline
  cfg.leave_rate = 1.0;
  vantage_swarm swarm(&planner_, &view_, cfg);
  swarm.plan(pretest_days(2));
  EXPECT_EQ(swarm.active_probes(pretest_days(2).begin_at), 0u);
  rng r(2);
  vantage_swarm::refusal why{};
  const auto result = swarm.try_probe(3, target_, service_tier::premium,
                                      pretest_days(2).begin_at, r, &why);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(why, vantage_swarm::refusal::offline);
  EXPECT_EQ(swarm.credits_spent(), 0u);
  EXPECT_EQ(swarm.platform().used_in_month(pretest_days(2).begin_at), 0u);
}

TEST_F(SwarmTest, CreditsEnforcedPerProbeWithMonthlyRollover) {
  swarm_config cfg = always_online();
  cfg.credits_per_probe = 2;
  vantage_swarm swarm(&planner_, &view_, cfg);
  swarm.plan({hour_stamp::from_civil({2020, 7, 10}, 0),
              hour_stamp::from_civil({2020, 8, 10}, 0)});
  rng r(3);
  const hour_stamp july = hour_stamp::from_civil({2020, 7, 10}, 0);
  EXPECT_EQ(swarm.credits_remaining(0, july), 2u);
  EXPECT_TRUE(swarm.try_probe(0, target_, service_tier::premium, july, r));
  EXPECT_TRUE(
      swarm.try_probe(0, target_, service_tier::standard, july + 1, r));
  EXPECT_EQ(swarm.credits_remaining(0, july), 0u);
  vantage_swarm::refusal why{};
  EXPECT_FALSE(
      swarm.try_probe(0, target_, service_tier::premium, july + 2, r, &why));
  EXPECT_EQ(why, vantage_swarm::refusal::out_of_credits);
  // Other probes keep their own budget; a new month restores it.
  EXPECT_EQ(swarm.credits_remaining(1, july), 2u);
  EXPECT_TRUE(swarm.try_probe(1, target_, service_tier::premium, july, r));
  const hour_stamp august = hour_stamp::from_civil({2020, 8, 2}, 0);
  EXPECT_EQ(swarm.credits_remaining(0, august), 2u);
  EXPECT_TRUE(swarm.try_probe(0, target_, service_tier::premium, august, r));
  EXPECT_EQ(swarm.credits_spent(), 4u);
}

TEST_F(SwarmTest, RateLimitWindowRollsOverHourly) {
  swarm_config cfg = always_online();
  cfg.rate_limit_per_hour = 1;
  vantage_swarm swarm(&planner_, &view_, cfg);
  swarm.plan(pretest_days(2));
  rng r(4);
  const hour_stamp t = pretest_days(2).begin_at;
  EXPECT_TRUE(swarm.try_probe(0, target_, service_tier::premium, t, r));
  vantage_swarm::refusal why{};
  EXPECT_FALSE(swarm.try_probe(0, target_, service_tier::standard, t, r, &why));
  EXPECT_EQ(why, vantage_swarm::refusal::rate_limited);
  EXPECT_EQ(swarm.rate_limited_count(), 1u);
  // A different probe has its own slot; the next hour resets everyone.
  EXPECT_TRUE(swarm.try_probe(1, target_, service_tier::premium, t, r));
  EXPECT_TRUE(swarm.try_probe(0, target_, service_tier::standard, t + 1, r));
}

TEST_F(SwarmTest, AccountFaultsPassThrough) {
  speedchecker_config account;
  account.monthly_quota = 1;
  vantage_swarm swarm(&planner_, &view_, always_online(), account);
  swarm.plan(pretest_days(2));
  rng r(5);
  const hour_stamp t = pretest_days(2).begin_at;
  EXPECT_TRUE(swarm.platform_admissible(t));
  EXPECT_TRUE(swarm.try_probe(0, target_, service_tier::premium, t, r));
  EXPECT_FALSE(swarm.platform_admissible(t + 1));
  EXPECT_THROW(swarm.try_probe(1, target_, service_tier::premium, t + 1, r),
               budget_exceeded_error);

  // Probing at exactly the retirement hour is a state_error; one hour
  // before still serves.
  vantage_swarm fresh(&planner_, &view_, always_online());
  const hour_stamp retirement = fresh.platform().config().retirement;
  fresh.plan({retirement + (-24), retirement + 24});
  EXPECT_TRUE(
      fresh.try_probe(0, target_, service_tier::premium, retirement + (-1), r));
  EXPECT_THROW(
      fresh.try_probe(0, target_, service_tier::premium, retirement, r),
      state_error);
}

TEST_F(SwarmTest, LedgersRoundTripTheWireFormat) {
  swarm_config cfg = always_online();
  cfg.credits_per_probe = 10;
  vantage_swarm swarm(&planner_, &view_, cfg);
  swarm.plan(pretest_days(2));
  rng r(6);
  const hour_stamp t = pretest_days(2).begin_at;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        swarm.try_probe(static_cast<std::size_t>(i % 2), target_,
                        service_tier::premium, t + i, r));
  }
  binary_writer out;
  swarm.save_state(out);
  out.varint(0xC0FFEEu);  // sentinel: load must consume exactly the blob

  vantage_swarm restored(&planner_, &view_, cfg);
  binary_reader in(out.bytes());
  restored.load_state(in);
  EXPECT_EQ(in.varint(), 0xC0FFEEu);
  EXPECT_EQ(restored.credits_spent(), 5u);
  EXPECT_EQ(restored.credits_remaining(0, t), 7u);
  EXPECT_EQ(restored.credits_remaining(1, t), 8u);
  EXPECT_EQ(restored.platform().used_in_month(t), 5u);

  // skip_state walks the same layout without applying it.
  binary_reader skip(out.bytes());
  vantage_swarm::skip_state(skip);
  EXPECT_EQ(skip.varint(), 0xC0FFEEu);
}

// --- scheduler integration through differential_selector ---

differential_config small_pretest(std::size_t min_measurements = 20) {
  differential_config cfg;
  cfg.pretest_window = pretest_days(3);
  cfg.min_measurements = min_measurements;
  return cfg;
}

void expect_same_selection(const differential_selection_result& a,
                           const differential_selection_result& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].city.value, b.candidates[i].city.value);
    EXPECT_EQ(a.candidates[i].network.value, b.candidates[i].network.value);
    EXPECT_EQ(a.candidates[i].cls, b.candidates[i].cls);
    EXPECT_EQ(a.candidates[i].median_premium_ms,
              b.candidates[i].median_premium_ms);
    EXPECT_EQ(a.candidates[i].median_standard_ms,
              b.candidates[i].median_standard_ms);
    EXPECT_EQ(a.candidates[i].samples, b.candidates[i].samples);
  }
  ASSERT_EQ(a.selected.size(), b.selected.size());
  for (std::size_t i = 0; i < a.selected.size(); ++i) {
    EXPECT_EQ(a.selected[i].server_id, b.selected[i].server_id);
    EXPECT_EQ(a.selected[i].cls, b.selected[i].cls);
  }
  EXPECT_EQ(a.tuples_measured, b.tuples_measured);
}

TEST(SwarmSelectionTest, SwarmOffMatchesTheLegacyFixedPanel) {
  // The swarm-off pre-test must be byte-identical no matter how the
  // selector is invoked: legacy 3-arg, explicit null swarm, or a disabled
  // persistent swarm — all consume identical RNG draws and produce
  // identical selections.
  auto& p = ::clasp::testing::small_platform();
  differential_selector selector(&p.planner(), &p.view(), &p.registry());
  const differential_config cfg = small_pretest();
  const gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-east1", service_tier::premium);
  const endpoint target = p.cloud().vm_endpoint(vm);

  rng r1(7), r2(7), r3(7);
  const auto legacy = selector.run(target, cfg, r1);
  const auto null_swarm = selector.run(target, cfg, r2, nullptr);
  vantage_swarm disabled(&p.planner(), &p.view(), swarm_config{},
                         cfg.platform);
  const auto off_swarm = selector.run(target, cfg, r3, &disabled);
  expect_same_selection(legacy, null_swarm);
  expect_same_selection(legacy, off_swarm);
  // And the three rngs ended in the same state.
  const double d1 = r1.uniform(), d2 = r2.uniform(), d3 = r3.uniform();
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d2, d3);
  EXPECT_FALSE(legacy.platform_exhausted);
  EXPECT_EQ(legacy.tuples_incomplete, 0u);
  EXPECT_EQ(legacy.swarm.mean_coverage, 1.0);
  EXPECT_EQ(legacy.swarm.probe_population, legacy.swarm.min_active);
}

TEST(SwarmSelectionTest, SwarmOnIsDeterministicAndCoverageAware) {
  auto& p = ::clasp::testing::small_platform();
  differential_selector selector(&p.planner(), &p.view(), &p.registry());
  differential_config cfg = small_pretest(/*min_measurements=*/10);
  cfg.swarm = swarm_config::preset("low");
  const gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-east1", service_tier::premium);
  const endpoint target = p.cloud().vm_endpoint(vm);

  rng r1(8), r2(8);
  vantage_swarm a(&p.planner(), &p.view(), cfg.swarm, cfg.platform);
  vantage_swarm b(&p.planner(), &p.view(), cfg.swarm, cfg.platform);
  const auto first = selector.run(target, cfg, r1, &a);
  const auto second = selector.run(target, cfg, r2, &b);
  expect_same_selection(first, second);

  // The swarm really churned and the scheduler still covered tuples.
  EXPECT_EQ(first.swarm.probe_population, a.probes().size());
  EXPECT_LT(first.swarm.min_active, first.swarm.probe_population);
  EXPECT_GT(first.swarm.joins + first.swarm.leaves, 0u);
  EXPECT_GT(first.swarm.credits_spent, 0u);
  EXPECT_EQ(first.swarm.credits_spent, a.credits_spent());
  EXPECT_GT(first.swarm.mean_coverage, 0.5);
  EXPECT_FALSE(first.coverage.empty());
  EXPECT_FALSE(first.candidates.empty());
  EXPECT_FALSE(first.selected.empty());
  std::size_t completed = 0;
  for (const auto& c : first.coverage) {
    EXPECT_EQ(c.scheduled_rounds, first.coverage.front().scheduled_rounds);
    EXPECT_EQ(c.completed_rounds + c.missed_rounds, c.scheduled_rounds);
    completed += c.completed_rounds;
  }
  EXPECT_GT(completed, 0u);
}

TEST(SwarmSelectionTest, HighChurnDegradesCoverageNotCorrectness) {
  auto& p = ::clasp::testing::small_platform();
  differential_selector selector(&p.planner(), &p.view(), &p.registry());
  differential_config low_cfg = small_pretest(/*min_measurements=*/10);
  low_cfg.swarm = swarm_config::preset("low");
  differential_config high_cfg = low_cfg;
  high_cfg.swarm = swarm_config::preset("high");
  const gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-central1", service_tier::premium);
  const endpoint target = p.cloud().vm_endpoint(vm);

  rng r1(9), r2(9);
  vantage_swarm low_swarm(&p.planner(), &p.view(), low_cfg.swarm,
                          low_cfg.platform);
  vantage_swarm high_swarm(&p.planner(), &p.view(), high_cfg.swarm,
                           high_cfg.platform);
  const auto low = selector.run(target, low_cfg, r1, &low_swarm);
  const auto high = selector.run(target, high_cfg, r2, &high_swarm);
  EXPECT_LT(high.swarm.mean_active, low.swarm.mean_active);
  EXPECT_GE(high.swarm.missed_rounds, low.swarm.missed_rounds);
  EXPECT_LE(high.swarm.mean_coverage, low.swarm.mean_coverage);
  // Even under adversarial churn the run completes and reports coverage
  // instead of throwing.
  EXPECT_EQ(high.coverage.size(), low.coverage.size());
}

TEST(SwarmSelectionTest, PlatformPretestUsesThePersistentSwarm) {
  // Through the platform facade, swarm-on pre-tests accumulate ledgers on
  // the platform-owned swarm across regions.
  platform_config cfg;
  cfg.internet = small_internet_config();
  cfg.internet.vantage_point_count = 120;
  cfg.servers = small_server_config();
  cfg.differential = differential_config{};
  cfg.differential.pretest_window = pretest_days(3);
  cfg.differential.min_measurements = 10;
  cfg.differential.swarm = swarm_config::preset("low");
  clasp_platform platform(cfg);
  EXPECT_TRUE(platform.pretest_swarm().enabled());
  EXPECT_EQ(platform.pretest_swarm().credits_spent(), 0u);
  platform.select_differential("us-east1");
  const std::size_t after_first = platform.pretest_swarm().credits_spent();
  EXPECT_GT(after_first, 0u);
  platform.select_differential("us-central1");
  EXPECT_GT(platform.pretest_swarm().credits_spent(), after_first);
}

TEST(SwarmSelectionTest, CheckpointCarriesTheSwarmLedgers) {
  // A campaign checkpoint snapshots the platform swarm's ledgers; a
  // resumed campaign in a fresh process restores them, so the pre-test
  // budget cannot double-spend or silently reset.
  const fs::path root = fs::temp_directory_path() / "clasp_swarm_ckpt";
  fs::remove_all(root);
  fs::create_directories(root);

  auto make_config = [&]() {
    platform_config cfg;
    cfg.internet = small_internet_config();
    cfg.internet.seed = 777;
    cfg.internet.regional_isp_count = 120;
    cfg.internet.business_count = 150;
    cfg.internet.hosting_count = 80;
    cfg.internet.education_count = 30;
    cfg.internet.vantage_point_count = 120;
    cfg.servers = small_server_config();
    cfg.servers.us_server_target = 120;
    cfg.servers.global_server_target = 600;
    cfg.topology_budgets = {{"us-west1", 40}};
    cfg.differential.pretest_window = pretest_days(2);
    cfg.differential.min_measurements = 8;
    cfg.differential.swarm = swarm_config::preset("low");
    cfg.campaign_checkpoint_dir = root.string();
    cfg.campaign_checkpoint_every_hours = 10;
    return cfg;
  };
  const hour_range window{hour_stamp::from_civil({2020, 5, 1}, 0),
                          hour_stamp::from_civil({2020, 5, 1}, 0) + 36};

  // Spend swarm credits by probing directly (a full pre-test would also
  // create a VM, which the cloud checkpoint would then expect on resume).
  auto spend_credits = [](clasp_platform& p, std::size_t want) {
    const internet& net = p.net();
    const city_id region = net.geo->city_by_name("St. Ghislain").id;
    const auto router = net.topo->router_of(net.cloud, region);
    const endpoint target{net.cloud, region,
                          net.topo->router_at(*router).loopback, std::nullopt};
    vantage_swarm& swarm = p.pretest_swarm();
    swarm.plan(pretest_days(2));
    rng r(21);
    std::size_t served = 0;
    for (std::size_t probe = 0; probe < swarm.probes().size() && served < want;
         ++probe) {
      if (swarm.try_probe(probe, target, service_tier::premium,
                          pretest_days(2).begin_at, r)) {
        ++served;
      }
    }
    return served;
  };

  std::size_t spent = 0;
  {
    clasp_platform p(make_config());
    ASSERT_GT(spend_credits(p, 12), 0u);
    spent = p.pretest_swarm().credits_spent();
    ASSERT_GT(spent, 0u);
    campaign_runner& c = p.start_topology_campaign("us-west1", window);
    EXPECT_TRUE(c.run_until(window.begin_at + 20));  // checkpoint at 20
  }
  {
    clasp_platform p(make_config());
    EXPECT_EQ(p.pretest_swarm().credits_spent(), 0u);
    campaign_runner& c = p.start_topology_campaign("us-west1", window);
    ASSERT_TRUE(c.resume(c.config().checkpoint_dir));
    EXPECT_EQ(p.pretest_swarm().credits_spent(), spent);
    EXPECT_GT(p.pretest_swarm().platform().used_in_month(
                  pretest_days(2).begin_at),
              0u);
    EXPECT_TRUE(c.run());
  }
  fs::remove_all(root);
}

TEST(SwarmSelectionTest, SwarmMetricsReachTheExposition) {
  obs::set_enabled(true);
  obs::register_core_families();
  auto& p = ::clasp::testing::small_platform();
  differential_selector selector(&p.planner(), &p.view(), &p.registry());
  differential_config cfg = small_pretest(/*min_measurements=*/10);
  cfg.swarm = swarm_config::preset("low");
  const gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-east1", service_tier::premium);
  rng r(10);
  vantage_swarm swarm(&p.planner(), &p.view(), cfg.swarm, cfg.platform);
  selector.run(p.cloud().vm_endpoint(vm), cfg, r, &swarm);

  obs::metrics_registry& reg = obs::metrics_registry::instance();
  EXPECT_GT(reg.get_counter(obs::family::kSwarmCreditsSpent).value(), 0u);
  EXPECT_GT(reg.get_gauge(obs::family::kSwarmProbes).value(), 0.0);
  EXPECT_GT(reg.get_gauge(obs::family::kSwarmCoverageRatio).value(), 0.0);
  const std::string text = obs::to_prometheus();
  EXPECT_NE(text.find("clasp_swarm_credits_spent_total"), std::string::npos);
  EXPECT_NE(text.find("clasp_swarm_active_probes"), std::string::npos);
  EXPECT_NE(text.find("clasp_swarm_coverage_ratio"), std::string::npos);
  EXPECT_NE(text.find("clasp_swarm_stale_tuples"), std::string::npos);
  obs::set_enabled(false);
}

}  // namespace
}  // namespace clasp

// Crash-consistent checkpoint/resume: a campaign killed at any hour
// boundary — or mid-hour, with a torn WAL tail — must resume in a fresh
// process and finish with output byte-identical to an uninterrupted run:
// TSDB contents, exported CSV, billing totals, bucket artifacts, someta
// records and the campaign_health report. The sweep crosses kill points
// (checkpoint boundary, mid-interval, torn/partial WAL) with worker
// counts {1, 2, 8}, link cache on/off and fault presets off/low; the
// already-proven invariance across workers and cache means each kill
// state needs only some of the combos, spread to cover them all.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "clasp/checkpoint.hpp"
#include "test_support.hpp"
#include "tsdb/wal.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

namespace fs = std::filesystem;

using ::clasp::testing::small_internet_config;
using ::clasp::testing::small_server_config;

platform_config tiny_config(unsigned workers, bool link_cache,
                            const std::string& faults_preset,
                            const std::string& checkpoint_dir = "",
                            unsigned every_hours = 10) {
  platform_config cfg;
  cfg.internet = small_internet_config();
  cfg.internet.seed = 777;
  // Shrink the substrate: this suite builds many platforms in sequence.
  cfg.internet.regional_isp_count = 120;
  cfg.internet.business_count = 150;
  cfg.internet.hosting_count = 80;
  cfg.internet.education_count = 30;
  cfg.internet.vantage_point_count = 120;
  cfg.servers = small_server_config();
  cfg.servers.us_server_target = 120;
  cfg.servers.global_server_target = 600;
  cfg.topology_budgets = {{"us-west1", 40}};
  cfg.campaign_workers = workers;
  cfg.campaign_link_cache = link_cache;
  cfg.campaign_faults = fault_config::preset(faults_preset);
  cfg.campaign_checkpoint_dir = checkpoint_dir;
  cfg.campaign_checkpoint_every_hours = every_hours;
  return cfg;
}

// 36 hours: several 10-hour checkpoint intervals plus a ragged tail.
hour_range window() {
  return {hour_stamp::from_civil({2020, 5, 1}, 0),
          hour_stamp::from_civil({2020, 5, 1}, 0) + 36};
}

const char* kMetrics[] = {"download_mbps", "upload_mbps", "latency_ms",
                          "download_loss", "upload_loss", "gt_episode",
                          "test_status"};

// Everything a campaign produces, flattened for exact comparison.
struct campaign_snapshot {
  std::string csv;  // export_csv of every metric, concatenated
  cost_report costs;
  double bucket_mb{0.0};
  std::size_t bucket_objects{0};
  std::size_t tests_run{0};
  std::size_t tests_missed{0};
  std::vector<std::vector<vm_metadata_sample>> someta;  // per VM slot
  campaign_health health;
};

campaign_snapshot snapshot_of(clasp_platform& p, campaign_runner& c) {
  campaign_snapshot snap;
  std::ostringstream csv;
  for (const char* metric : kMetrics) p.store().export_csv(csv, metric);
  snap.csv = csv.str();
  snap.costs = p.cloud().costs();
  const storage_bucket& bucket = p.cloud().bucket(c.config().region);
  snap.bucket_mb = bucket.total_megabytes();
  snap.bucket_objects = bucket.object_count();
  snap.tests_run = c.tests_run();
  snap.tests_missed = c.tests_missed();
  for (std::size_t v = 0; v < c.vm_count(); ++v) {
    snap.someta.push_back(c.metadata(v).samples());
  }
  snap.health = c.health();
  return snap;
}

void expect_identical(const campaign_snapshot& a, const campaign_snapshot& b) {
  // Exported CSV byte for byte covers every TSDB point and tag.
  ASSERT_FALSE(a.csv.empty());
  EXPECT_EQ(a.csv, b.csv);
  // Billing totals, bit for bit.
  EXPECT_EQ(a.costs.vm_usd, b.costs.vm_usd);
  EXPECT_EQ(a.costs.egress_usd, b.costs.egress_usd);
  EXPECT_EQ(a.costs.storage_usd, b.costs.storage_usd);
  EXPECT_EQ(a.bucket_mb, b.bucket_mb);
  EXPECT_EQ(a.bucket_objects, b.bucket_objects);
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.tests_missed, b.tests_missed);
  ASSERT_EQ(a.someta.size(), b.someta.size());
  for (std::size_t v = 0; v < a.someta.size(); ++v) {
    ASSERT_EQ(a.someta[v].size(), b.someta[v].size());
    for (std::size_t j = 0; j < a.someta[v].size(); ++j) {
      EXPECT_EQ(a.someta[v][j].at, b.someta[v][j].at);
      EXPECT_EQ(a.someta[v][j].cpu_utilization, b.someta[v][j].cpu_utilization);
      EXPECT_EQ(a.someta[v][j].memory_gb, b.someta[v][j].memory_gb);
      EXPECT_EQ(a.someta[v][j].io_wait, b.someta[v][j].io_wait);
      EXPECT_EQ(a.someta[v][j].cpu_saturated, b.someta[v][j].cpu_saturated);
    }
  }
  // The campaign_health report, entry by entry.
  EXPECT_EQ(a.health.window_hours, b.health.window_hours);
  EXPECT_EQ(a.health.total_retries, b.health.total_retries);
  EXPECT_EQ(a.health.failed_tests, b.health.failed_tests);
  EXPECT_EQ(a.health.upload_failures, b.health.upload_failures);
  EXPECT_EQ(a.health.withdrawn_servers, b.health.withdrawn_servers);
  EXPECT_EQ(a.health.vm_redeploys, b.health.vm_redeploys);
  EXPECT_EQ(a.health.vm_downtime_hours, b.health.vm_downtime_hours);
  ASSERT_EQ(a.health.servers.size(), b.health.servers.size());
  for (std::size_t i = 0; i < a.health.servers.size(); ++i) {
    const auto& sa = a.health.servers[i];
    const auto& sb = b.health.servers[i];
    EXPECT_EQ(sa.server_id, sb.server_id);
    EXPECT_EQ(sa.scheduled_hours, sb.scheduled_hours);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.failed, sb.failed);
    EXPECT_EQ(sa.retries, sb.retries);
    EXPECT_EQ(sa.down_hours, sb.down_hours);
    EXPECT_EQ(sa.withdrawn_hours, sb.withdrawn_hours);
    EXPECT_EQ(sa.skipped_hours, sb.skipped_hours);
  }
}

// The uninterrupted, durability-free reference per fault preset (built
// once; platform construction dominates this suite's runtime).
const campaign_snapshot& reference(const std::string& faults_preset) {
  static std::map<std::string, campaign_snapshot>* memo =
      new std::map<std::string, campaign_snapshot>();
  const auto it = memo->find(faults_preset);
  if (it != memo->end()) return it->second;
  clasp_platform p(tiny_config(1, true, faults_preset));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  EXPECT_TRUE(c.run());
  return memo->emplace(faults_preset, snapshot_of(p, c)).first->second;
}

// Fresh per-test checkpoint root.
fs::path test_dir() {
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("clasp_resume_") +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Run the durable campaign up to `kill_at_hour` past the window begin and
// abandon the process state (the platform destructs), leaving the
// checkpoint directory exactly as a SIGKILL at that hour boundary would.
// Returns the campaign's checkpoint directory.
std::string run_and_kill(const std::string& root, unsigned workers,
                         bool link_cache, const std::string& faults_preset,
                         int kill_at_hour) {
  clasp_platform p(tiny_config(workers, link_cache, faults_preset, root));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  EXPECT_TRUE(c.run_until(window().begin_at + kill_at_hour));
  return c.config().checkpoint_dir;
}

// Fresh process: rebuild the platform deterministically, resume from the
// checkpoint directory, finish the window and snapshot the output.
campaign_snapshot resume_and_finish(const std::string& root, unsigned workers,
                                    bool link_cache,
                                    const std::string& faults_preset,
                                    bool expect_resumed = true) {
  clasp_platform p(tiny_config(workers, link_cache, faults_preset, root));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  EXPECT_EQ(c.resume(c.config().checkpoint_dir), expect_resumed);
  EXPECT_TRUE(c.run());
  return snapshot_of(p, c);
}

TEST(CampaignResume, DurableRunIsByteIdenticalToPlainRun) {
  // Checkpointing and WAL logging must never perturb the output — and a
  // durable run is comparable across worker counts like any other.
  for (const char* preset : {"off", "low"}) {
    const fs::path root = test_dir();
    clasp_platform p(tiny_config(2, true, preset, root.string()));
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    EXPECT_TRUE(c.durable());
    EXPECT_TRUE(c.run());
    expect_identical(reference(preset), snapshot_of(p, c));
    // The final checkpoint is published and points at the window end.
    const auto current = current_checkpoint(c.config().checkpoint_dir);
    ASSERT_TRUE(current.has_value());
    EXPECT_EQ(read_checkpoint_info(*current).cursor_hours,
              window().end_at.hours_since_epoch());
    fs::remove_all(root);
  }
}

TEST(CampaignResume, KillAtCheckpointBoundary) {
  // Hour 20 is a checkpoint multiple (every 10): the WAL is empty and
  // recovery is pure snapshot restore. Resume with a different worker
  // count and cache setting than the killed run used.
  for (const char* preset : {"off", "low"}) {
    const fs::path root = test_dir();
    run_and_kill(root.string(), 2, true, preset, 20);
    expect_identical(reference(preset),
                     resume_and_finish(root.string(), 8, false, preset));
    fs::remove_all(root);
  }
}

TEST(CampaignResume, KillMidInterval) {
  // Hour 25: snapshot at 20 plus five WAL-covered hours to replay.
  for (const char* preset : {"off", "low"}) {
    const fs::path root = test_dir();
    run_and_kill(root.string(), 2, true, preset, 25);
    expect_identical(reference(preset),
                     resume_and_finish(root.string(), 1, true, preset));
    fs::remove_all(root);
  }
}

TEST(CampaignResume, RepeatedKillsAcrossTheWindow) {
  // Kill -> resume -> kill -> resume ... across hours that are neither
  // checkpoint multiples nor aligned with each other; serial and
  // parallel replay alternate across the legs.
  const fs::path root = test_dir();
  run_and_kill(root.string(), 1, true, "low", 7);
  {
    clasp_platform p(tiny_config(8, true, "low", root.string()));
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    ASSERT_TRUE(c.resume(c.config().checkpoint_dir));
    EXPECT_TRUE(c.run_until(window().begin_at + 23));
  }
  expect_identical(reference("low"),
                   resume_and_finish(root.string(), 2, false, "low"));
  fs::remove_all(root);
}

TEST(CampaignResume, TornWalTailReRunsTheLostHour) {
  // Kill mid-hour: the WAL's last record is torn mid-frame. Recovery
  // drops the torn record and the now-partial hour group; those hours
  // re-run deterministically.
  for (const char* preset : {"off", "low"}) {
    const fs::path root = test_dir();
    const std::string dir = run_and_kill(root.string(), 2, true, preset, 25);
    const std::string wal_path = dir + "/wal.log";
    const wal_scan_result scan = scan_wal(wal_path);
    ASSERT_GE(scan.records.size(), 6u);  // 5 hours x >= 2 VMs
    // Tear three bytes into the final record's frame.
    fs::resize_file(wal_path, scan.record_end.back() - 3);
    expect_identical(reference(preset),
                     resume_and_finish(root.string(), 2, true, preset));
    fs::remove_all(root);
  }
}

TEST(CampaignResume, PartialHourGroupIsDropped) {
  // Kill between two slot commits of the same hour: complete frames, but
  // not all of the hour's VM records made it. The whole hour re-runs.
  const fs::path root = test_dir();
  const std::string dir = run_and_kill(root.string(), 2, true, "low", 25);
  const std::string wal_path = dir + "/wal.log";
  const wal_scan_result scan = scan_wal(wal_path);
  ASSERT_GT(scan.records.size(), 1u);
  // Keep all but the last record: the final hour's group loses one slot.
  truncate_wal(wal_path, scan.record_end[scan.record_end.size() - 2]);
  expect_identical(reference("low"),
                   resume_and_finish(root.string(), 2, true, "low"));
  fs::remove_all(root);
}

TEST(CampaignResume, StaleWalRecordsAreSkipped) {
  // Crash between checkpoint publish and WAL reset: the log still holds
  // records from hours the snapshot already covers. They are skipped.
  const fs::path root = test_dir();
  const std::string dir = run_and_kill(root.string(), 2, true, "low", 25);
  // Save the five WAL-covered hours (20..24).
  std::string stale;
  {
    std::ifstream in(dir + "/wal.log", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    stale = buf.str();
  }
  ASSERT_FALSE(stale.empty());
  // Advance the same directory to the hour-30 checkpoint (WAL reset),
  // then re-plant the stale records as if the reset never happened.
  {
    clasp_platform p(tiny_config(2, true, "low", root.string()));
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    ASSERT_TRUE(c.resume(dir));
    EXPECT_TRUE(c.run_until(window().begin_at + 30));
  }
  {
    std::ofstream out(dir + "/wal.log",
                      std::ios::binary | std::ios::trunc);
    out << stale;
  }
  expect_identical(reference("low"),
                   resume_and_finish(root.string(), 2, true, "low"));
  fs::remove_all(root);
}

TEST(CampaignResume, InterruptCheckpointsAndResumeFinishes) {
  const fs::path root = test_dir();
  std::string dir;
  {
    clasp_platform p(tiny_config(2, true, "low", root.string()));
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    dir = c.config().checkpoint_dir;
    c.request_interrupt();
    EXPECT_FALSE(c.run());  // stops at the first boundary, checkpointed
    EXPECT_TRUE(current_checkpoint(dir).has_value());
  }
  expect_identical(reference("low"),
                   resume_and_finish(root.string(), 2, true, "low"));
  fs::remove_all(root);
}

TEST(CampaignResume, KillMidIntervalAtTenTimesFleetScale) {
  // The scaled fleet's CSR/arena state must round-trip the checkpoint
  // wire format: at 10x fleet_scale, kill mid-interval (snapshot at 20
  // plus WAL-covered hours) and finish byte-identically to an
  // uninterrupted 10x run — resuming with different worker count, cache
  // and batch settings than the killed run used.
  campaign_snapshot ref;
  {
    platform_config cfg = tiny_config(2, true, "low");
    cfg.fleet_scale = 10;
    clasp_platform p(cfg);
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    EXPECT_TRUE(c.run());
    ref = snapshot_of(p, c);
  }
  const fs::path root = test_dir();
  {
    platform_config cfg = tiny_config(2, true, "low", root.string());
    cfg.fleet_scale = 10;
    clasp_platform p(cfg);
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    EXPECT_GT(c.session_count(), 300u);  // the fleet really is 10x
    EXPECT_TRUE(c.run_until(window().begin_at + 25));
  }
  {
    platform_config cfg = tiny_config(1, false, "low", root.string());
    cfg.fleet_scale = 10;
    cfg.campaign_batch_eval = false;  // resume on the legacy path
    clasp_platform p(cfg);
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    ASSERT_TRUE(c.resume(c.config().checkpoint_dir));
    EXPECT_TRUE(c.run());
    expect_identical(ref, snapshot_of(p, c));
  }
  fs::remove_all(root);
}

TEST(CampaignResume, ResumeWithoutCheckpointReturnsFalse) {
  const fs::path root = test_dir();
  expect_identical(reference("off"),
                   resume_and_finish(root.string(), 1, true, "off",
                                     /*expect_resumed=*/false));
  fs::remove_all(root);
}

TEST(CampaignResume, ResumeAfterCompletionIsANoOp) {
  // Resuming a finished campaign must not re-run hours or double-bill
  // the monthly storage charge.
  const fs::path root = test_dir();
  {
    clasp_platform p(tiny_config(2, true, "off", root.string()));
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    EXPECT_TRUE(c.run());
  }
  expect_identical(reference("off"),
                   resume_and_finish(root.string(), 2, true, "off"));
  fs::remove_all(root);
}

TEST(CampaignResume, FingerprintMismatchIsRejected) {
  const fs::path root = test_dir();
  run_and_kill(root.string(), 1, true, "low", 20);
  // Same directory, different fault schedule -> a different campaign.
  clasp_platform p(tiny_config(1, true, "off", root.string()));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  EXPECT_THROW(c.resume(c.config().checkpoint_dir), state_error);
  fs::remove_all(root);
}

TEST(CampaignResume, CorruptCheckpointIsRejected) {
  const fs::path root = test_dir();
  const std::string dir = run_and_kill(root.string(), 1, true, "off", 20);
  const auto current = current_checkpoint(dir);
  ASSERT_TRUE(current.has_value());
  // Flip one byte of the serialized state: the CRC frame must catch it.
  const std::string state_path = *current + "/state.bin";
  std::string bytes;
  {
    std::ifstream in(state_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  {
    std::ofstream out(state_path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  clasp_platform p(tiny_config(1, true, "off", root.string()));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  EXPECT_THROW(c.resume(c.config().checkpoint_dir), invalid_argument_error);
  fs::remove_all(root);
}

TEST(CampaignResume, CheckpointPublishFailureQuarantinesAndKeepsCurrent) {
  // ENOSPC (simulated) mid-publish: the failed checkpoint must not
  // damage durable state — the old CURRENT stays valid, the partial
  // staging directory is quarantined, and the error is typed.
  const fs::path root = test_dir();
  std::string dir;
  {
    clasp_platform p(tiny_config(2, true, "low", root.string()));
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    ASSERT_TRUE(c.run_until(window().begin_at + 20));
    dir = c.config().checkpoint_dir;
    const auto before = current_checkpoint(dir);
    ASSERT_TRUE(before.has_value());
    set_checkpoint_write_failures_for_testing(1);
    EXPECT_THROW(c.run_until(window().begin_at + 30), storage_error);
    set_checkpoint_write_failures_for_testing(0);
    const auto after = current_checkpoint(dir);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(*before, *after);
    EXPECT_EQ(read_checkpoint_info(*after).cursor_hours,
              (window().begin_at + 20).hours_since_epoch());
    bool quarantined = false;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string base = entry.path().filename().string();
      EXPECT_FALSE(base.ends_with(".staging")) << base;
      if (base.ends_with(".quarantine")) quarantined = true;
    }
    EXPECT_TRUE(quarantined);
  }
  // The surviving checkpoint (plus the WAL hours committed before the
  // failed publish) resumes and finishes byte-identically.
  expect_identical(reference("low"),
                   resume_and_finish(root.string(), 2, true, "low"));
  fs::remove_all(root);
}

TEST(CampaignResume, CorruptWalInteriorRefusesResume) {
  // A CRC mismatch on a fully-present frame is rewrite damage, not a
  // crash tear: resume must refuse the log with a typed error instead
  // of silently truncating and re-running.
  const fs::path root = test_dir();
  const std::string dir = run_and_kill(root.string(), 2, true, "low", 25);
  const std::string wal_path = dir + "/wal.log";
  const wal_scan_result scan = scan_wal(wal_path);
  ASSERT_GT(scan.records.size(), 2u);
  {
    // Flip one byte two bytes into the second record's payload; every
    // byte of the frame is still on disk.
    std::fstream f(wal_path, std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff at =
        static_cast<std::streamoff>(scan.record_end[0] + 8 + 2);
    f.seekg(at);
    const char byte = static_cast<char>(f.get());
    f.seekp(at);
    f.put(static_cast<char>(byte ^ 0x01));
  }
  clasp_platform p(tiny_config(2, true, "low", root.string()));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  EXPECT_THROW(c.resume(c.config().checkpoint_dir), corruption_error);
  fs::remove_all(root);
}

}  // namespace
}  // namespace clasp

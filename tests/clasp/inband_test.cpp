#include "clasp/inband.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;

class InbandTest : public ::testing::Test {
 protected:
  InbandTest() : net_(small_internet()), planner_(&net_), view_(&net_) {
    const city_id region = net_.geo->city_by_name("Ashburn, VA").id;
    const auto router = net_.topo->router_of(net_.cloud, region);
    const endpoint vm{net_.cloud, region,
                      net_.topo->router_at(*router).loopback, std::nullopt};
    const endpoint src =
        planner_.endpoint_of_host(net_.vantage_points[11]);
    path_ = planner_.to_cloud(src, vm, service_tier::premium);
  }

  internet& net_;
  route_planner planner_;
  network_view view_;
  route_path path_;
};

TEST_F(InbandTest, EstimateTracksTruth) {
  rng r(1);
  inband_config cfg;
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 10}, 4);
  const path_metrics truth = view_.evaluate(path_, t);
  // Median of many probes lands near the true available bandwidth.
  std::vector<double> estimates;
  for (int i = 0; i < 200; ++i) {
    estimates.push_back(
        run_inband_probe(view_, path_, t, cfg, r).available_estimate.value);
  }
  EXPECT_NEAR(median(estimates), truth.bottleneck.value,
              truth.bottleneck.value * 0.15);
}

TEST_F(InbandTest, LongerTrainsReduceVariance) {
  rng r1(2), r2(2);
  inband_config short_cfg;
  short_cfg.train_length = 8;
  inband_config long_cfg;
  long_cfg.train_length = 256;
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 10}, 4);
  std::vector<double> short_est, long_est;
  for (int i = 0; i < 300; ++i) {
    short_est.push_back(
        run_inband_probe(view_, path_, t, short_cfg, r1)
            .available_estimate.value);
    long_est.push_back(
        run_inband_probe(view_, path_, t, long_cfg, r2)
            .available_estimate.value);
  }
  EXPECT_LT(sample_stddev(long_est), sample_stddev(short_est));
}

TEST_F(InbandTest, VolumeIsTiny) {
  inband_config cfg;
  const megabytes v = inband_probe_volume(cfg);
  // 3 trains x 64 packets x 1500 B = 288 KB — vs >100 MB for a full test.
  EXPECT_NEAR(v.value, 0.288, 1e-9);
  rng r(3);
  const auto result = run_inband_probe(
      view_, path_, hour_stamp::from_civil({2020, 6, 10}, 4), cfg, r);
  EXPECT_DOUBLE_EQ(result.volume.value, v.value);
}

TEST_F(InbandTest, DetectsCongestionDrop) {
  rng r(4);
  inband_config cfg;
  cfg.trains = 5;
  // Compare trough vs evening estimates over a month of probing: the
  // diurnal dip must be visible through the probe noise.
  double trough_sum = 0.0, peak_sum = 0.0;
  const int tz = net_.geo->city(
      planner_.endpoint_of_address(path_.src_addr).city)
                     .tz.hours_east_of_utc;
  for (int d = 0; d < 28; ++d) {
    const hour_stamp base = hour_stamp::from_civil({2020, 6, 1}, 0) + d * 24;
    const hour_stamp trough = base + ((4 - tz + 24) % 24);
    const hour_stamp peak = base + ((20 - tz + 24) % 24);
    trough_sum +=
        run_inband_probe(view_, path_, trough, cfg, r).available_estimate.value;
    peak_sum +=
        run_inband_probe(view_, path_, peak, cfg, r).available_estimate.value;
  }
  EXPECT_LT(peak_sum, trough_sum);
}

TEST_F(InbandTest, BottleneckIdentified) {
  rng r(5);
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 10}, 20);
  const auto result = run_inband_probe(view_, path_, t, {}, r);
  EXPECT_EQ(result.bottleneck.value,
            view_.evaluate(path_, t).bottleneck_link.value);
}

TEST_F(InbandTest, ConfigValidation) {
  rng r(6);
  inband_config bad;
  bad.train_length = 1;
  EXPECT_THROW(run_inband_probe(view_, path_, hour_stamp{0}, bad, r),
               invalid_argument_error);
  bad = {};
  bad.trains = 0;
  EXPECT_THROW(run_inband_probe(view_, path_, hour_stamp{0}, bad, r),
               invalid_argument_error);
}

TEST_F(InbandTest, RttAtLeastPathRtt) {
  rng r(7);
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 10}, 12);
  const path_metrics truth = view_.evaluate(path_, t);
  for (int i = 0; i < 20; ++i) {
    EXPECT_GE(run_inband_probe(view_, path_, t, {}, r).rtt.value,
              truth.rtt.value);
  }
}

}  // namespace
}  // namespace clasp

#include "clasp/repilot.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet_config;
using ::clasp::testing::small_server_config;

// A dedicated platform: re-piloting mutates the fleet (new servers), so
// the shared fixture must not be touched.
clasp_platform& repilot_platform() {
  static clasp_platform* p = [] {
    platform_config cfg;
    cfg.internet = small_internet_config();
    cfg.internet.seed = 77;
    cfg.servers = small_server_config();
    cfg.topology_budgets = {};  // no budget: selection covers all links
    return new clasp_platform(cfg);
  }();
  return *p;
}

TEST(RepilotTest, StableWorldMeansEmptyDiff) {
  auto& p = repilot_platform();
  const auto& original = p.select_topology("us-west1");

  topology_selector selector(&p.planner(), &p.view(), &p.registry());
  topology_selection_config cfg;  // same defaults as the platform's
  const gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-west1", service_tier::premium);
  rng r(123);
  const repilot_result refreshed = refresh_selection(
      selector, p.cloud().vm_endpoint(vm), cfg,
      original, topology_campaign_window().begin_at + 24 * 60, r);

  // The substrate's links and fleet are static, so the refresh must find
  // nearly the same picture; only residual probe-noise churn (unresolved
  // after retries) is tolerated.
  const std::size_t links = original.pilot.links.size();
  EXPECT_LT(refreshed.diff.links_gained.size(), links / 50 + 2);
  EXPECT_LT(refreshed.diff.links_lost.size(), links / 50 + 2);
  // Server choice within a link group tie-breaks on probed RTT, which
  // varies with the load at probe time — the churn that made the paper
  // pin its server lists at campaign start ("for consistency and
  // continuity"). A quarter of the list may rotate; the link picture may
  // not.
  const std::size_t servers = original.selected.size();
  EXPECT_LT(refreshed.diff.servers_to_deploy.size(), servers / 4 + 2);
  EXPECT_LT(refreshed.diff.servers_to_retire.size(), servers / 4 + 2);
}

TEST(RepilotTest, NewServersDetectedAfterFleetGrowth) {
  auto& p = repilot_platform();
  const auto original = p.select_topology("us-west1");  // copy

  // Fleet churn: a brand-new Ookla server appears in a U.S. eyeball AS
  // that hosted none before. The re-pilot must be able to pick it up,
  // and the rollover plan must stay internally consistent.
  rng r(5);
  server_registry& registry = const_cast<server_registry&>(p.registry());
  as_index fresh_as{};
  bool found = false;
  for (const as_info& a : p.net().topo->ases()) {
    if (a.role != as_role::regional_isp || !a.peers_with_cloud) continue;
    if (p.net().geo->city(a.presence.front()).country != "US") continue;
    bool hosts_server = false;
    for (const speed_server& s : registry.all()) {
      if (s.owner == a.index) hosts_server = true;
    }
    if (!hosts_server) {
      fresh_as = a.index;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "fixture has no peering AS without servers";
  const std::size_t new_id = registry.add_server(
      p.net(), fresh_as, p.net().topo->as_at(fresh_as).presence.front(),
      speedtest_platform::ookla, mbps::from_gbps(1.0), r);

  topology_selector selector(&p.planner(), &p.view(), &p.registry());
  topology_selection_config cfg;
  const gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-west1", service_tier::premium);
  const repilot_result refreshed = refresh_selection(
      selector, p.cloud().vm_endpoint(vm), cfg, original,
      topology_campaign_window().begin_at + 24 * 90, r);

  // The new server covers a link no previous server covered, so the plan
  // deploys it.
  EXPECT_NE(std::find(refreshed.diff.servers_to_deploy.begin(),
                      refreshed.diff.servers_to_deploy.end(), new_id),
            refreshed.diff.servers_to_deploy.end())
      << "re-pilot missed the newly deployed server";

  // Internal consistency of the plan.
  for (const std::size_t sid : refreshed.diff.servers_to_deploy) {
    bool in_fresh = false;
    for (const selected_server& s : refreshed.fresh.selected) {
      if (s.server_id == sid) in_fresh = true;
    }
    EXPECT_TRUE(in_fresh);
  }
  for (const std::size_t sid : refreshed.diff.servers_to_retire) {
    bool in_original = false;
    for (const selected_server& s : original.selected) {
      if (s.server_id == sid) in_original = true;
    }
    EXPECT_TRUE(in_original);
  }
  registry.retire_server(new_id);  // leave the shared fixture clean
}

TEST(RepilotTest, DiffIsSymmetricOnSwap) {
  auto& p = repilot_platform();
  const auto& a = p.select_topology("us-west1");
  const auto& b = p.select_topology("us-east4");
  const selection_diff forward = diff_selections(a, b);
  const selection_diff backward = diff_selections(b, a);
  EXPECT_EQ(forward.links_gained.size(), backward.links_lost.size());
  EXPECT_EQ(forward.links_lost.size(), backward.links_gained.size());
  EXPECT_EQ(forward.servers_to_deploy.size(),
            backward.servers_to_retire.size());
  EXPECT_FALSE(forward.unchanged());  // different regions differ
}

TEST(RepilotTest, SelfDiffIsEmpty) {
  auto& p = repilot_platform();
  const auto& a = p.select_topology("us-west1");
  EXPECT_TRUE(diff_selections(a, a).unchanged());
}

}  // namespace
}  // namespace clasp

#include "clasp/speedchecker.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;

class SpeedcheckerTest : public ::testing::Test {
 protected:
  SpeedcheckerTest() : net_(small_internet()), planner_(&net_), view_(&net_) {
    const city_id region = net_.geo->city_by_name("St. Ghislain").id;
    const auto router = net_.topo->router_of(net_.cloud, region);
    target_ = endpoint{net_.cloud, region,
                       net_.topo->router_at(*router).loopback, std::nullopt};
  }

  internet& net_;
  route_planner planner_;
  network_view view_;
  endpoint target_;
};

TEST_F(SpeedcheckerTest, NullDependenciesRejected) {
  EXPECT_THROW(speedchecker_service(nullptr, &view_), invalid_argument_error);
  EXPECT_THROW(speedchecker_service(&planner_, nullptr),
               invalid_argument_error);
}

TEST_F(SpeedcheckerTest, ProbeReturnsPlausibleRtt) {
  speedchecker_service svc(&planner_, &view_);
  rng r(1);
  const hour_stamp t = hour_stamp::from_civil({2020, 7, 10}, 12);
  for (int i = 0; i < 10; ++i) {
    const auto result = svc.probe(svc.vantage_points()[i * 7], target_,
                                  service_tier::premium, t, r);
    EXPECT_GT(result.rtt.value, 0.5);
    EXPECT_LT(result.rtt.value, 500.0);
    EXPECT_EQ(result.at, t);
  }
  EXPECT_EQ(svc.used_in_month(t), 10u);
}

TEST_F(SpeedcheckerTest, QuotaEnforcedPerMonth) {
  speedchecker_config cfg;
  cfg.monthly_quota = 5;
  speedchecker_service svc(&planner_, &view_, cfg);
  rng r(2);
  const hour_stamp july = hour_stamp::from_civil({2020, 7, 10}, 0);
  for (int i = 0; i < 5; ++i) {
    svc.probe(svc.vantage_points()[0], target_, service_tier::premium,
              july + i, r);
  }
  EXPECT_THROW(svc.probe(svc.vantage_points()[0], target_,
                         service_tier::premium, july + 6, r),
               budget_exceeded_error);
  // A new month resets the quota.
  const hour_stamp august = hour_stamp::from_civil({2020, 8, 1}, 0);
  EXPECT_NO_THROW(svc.probe(svc.vantage_points()[0], target_,
                            service_tier::premium, august, r));
  EXPECT_EQ(svc.used_in_month(august), 1u);
  EXPECT_EQ(svc.used_in_month(july), 5u);
}

TEST_F(SpeedcheckerTest, RetirementEndsService) {
  speedchecker_service svc(&planner_, &view_);
  rng r(3);
  // Footnote 1: retired June 2021.
  const hour_stamp after = hour_stamp::from_civil({2021, 6, 1}, 0);
  EXPECT_THROW(svc.probe(svc.vantage_points()[0], target_,
                         service_tier::premium, after, r),
               state_error);
  const hour_stamp just_before = hour_stamp::from_civil({2021, 5, 31}, 23);
  EXPECT_NO_THROW(svc.probe(svc.vantage_points()[0], target_,
                            service_tier::premium, just_before, r));
}

TEST_F(SpeedcheckerTest, TiersProduceDifferentPaths) {
  speedchecker_service svc(&planner_, &view_);
  rng r(4);
  const hour_stamp t = hour_stamp::from_civil({2020, 7, 10}, 4);
  // Find a VP far from the region: tier latencies should differ for at
  // least some of the fleet.
  std::size_t differing = 0, probed = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const host_index vp = svc.vantage_points()[i * 11 %
                                               svc.vantage_points().size()];
    const double prem =
        svc.probe(vp, target_, service_tier::premium, t, r).rtt.value;
    const double stnd =
        svc.probe(vp, target_, service_tier::standard, t, r).rtt.value;
    ++probed;
    if (std::abs(prem - stnd) > 5.0) ++differing;
  }
  EXPECT_GT(differing, probed / 10);
}

TEST_F(SpeedcheckerTest, AdmissibleTracksQuotaAndRetirement) {
  speedchecker_config cfg;
  cfg.monthly_quota = 2;
  speedchecker_service svc(&planner_, &view_, cfg);
  rng r(6);
  const hour_stamp july = hour_stamp::from_civil({2020, 7, 10}, 0);
  EXPECT_TRUE(svc.admissible(july));
  svc.probe(svc.vantage_points()[0], target_, service_tier::premium, july, r);
  EXPECT_TRUE(svc.admissible(july + 1));
  svc.probe(svc.vantage_points()[0], target_, service_tier::premium, july + 1,
            r);
  EXPECT_FALSE(svc.admissible(july + 2));  // quota spent
  // Quota resets with the month; retirement is terminal.
  EXPECT_TRUE(svc.admissible(hour_stamp::from_civil({2020, 8, 1}, 0)));
  EXPECT_TRUE(svc.admissible(hour_stamp::from_civil({2021, 5, 31}, 23)));
  EXPECT_FALSE(svc.admissible(hour_stamp::from_civil({2021, 6, 1}, 0)));
}

TEST_F(SpeedcheckerTest, MonthLedgerSurvivesSerialization) {
  speedchecker_service svc(&planner_, &view_);
  rng r(7);
  const hour_stamp july = hour_stamp::from_civil({2020, 7, 10}, 0);
  const hour_stamp august = hour_stamp::from_civil({2020, 8, 2}, 0);
  for (int i = 0; i < 3; ++i) {
    svc.probe(svc.vantage_points()[0], target_, service_tier::premium,
              july + i, r);
  }
  svc.probe(svc.vantage_points()[0], target_, service_tier::premium, august,
            r);
  binary_writer out;
  svc.save_state(out);

  speedchecker_service restored(&planner_, &view_);
  binary_reader in(out.bytes());
  restored.load_state(in);
  EXPECT_EQ(restored.used_in_month(july), 3u);
  EXPECT_EQ(restored.used_in_month(august), 1u);
  EXPECT_EQ(restored.used_in_month(hour_stamp::from_civil({2020, 9, 1}, 0)),
            0u);
}

TEST_F(SpeedcheckerTest, DifferentialSelectorDegradesOnQuota) {
  // A pre-test that needs more probes than the plan allows no longer
  // aborts: it records the exhaustion and marks short tuples incomplete
  // so the caller can substitute or re-lease instead of losing the run.
  auto& p = ::clasp::testing::small_platform();
  differential_selector selector(&p.planner(), &p.view(), &p.registry());
  differential_config cfg;
  cfg.platform.monthly_quota = 100;  // far below what the pre-test needs
  rng r(5);
  const gcp_cloud::vm_id vm =
      p.cloud().create_vm("europe-west1", service_tier::premium);
  differential_selection_result result;
  ASSERT_NO_THROW(result = selector.run(p.cloud().vm_endpoint(vm), cfg, r));
  EXPECT_TRUE(result.platform_exhausted);
  EXPECT_GT(result.tuples_incomplete, 0u);
  EXPECT_FALSE(result.coverage.empty());
  // Every tuple records what it missed instead of the run aborting.
  std::size_t missed = 0;
  for (const auto& c : result.coverage) missed += c.missed_rounds;
  EXPECT_GT(missed, 0u);
  EXPECT_GT(result.swarm.stale_tuples, 0u);
}

}  // namespace
}  // namespace clasp
